#!/usr/bin/env python3
"""Quickstart: exploring weak-memory behaviours of a small program.

Builds the classic message-passing litmus test in two variants — all
relaxed, and release/acquire — and exhaustively enumerates every
RC11 RAR behaviour of each.  The relaxed variant exhibits the stale
read (r1 = 1 but r2 = 0); the annotated variant provably cannot.

Run:  python examples/quickstart.py
"""

from repro import Lit, Program, Thread, ast as A, explore


def message_passing(release: bool, acquire: bool) -> Program:
    """d := 5; f :=[R] 1  ||  r1 ←[A] f; r2 ← d."""
    producer = A.seq(
        A.Write("d", Lit(5)),
        A.Write("f", Lit(1), release=release),
    )
    consumer = A.seq(
        A.Read("r1", "f", acquire=acquire),
        A.Read("r2", "d"),
    )
    return Program(
        threads={"producer": Thread(producer), "consumer": Thread(consumer)},
        client_vars={"d": 0, "f": 0},
    )


def main() -> None:
    for label, release, acquire in [
        ("relaxed", False, False),
        ("release/acquire", True, True),
    ]:
        program = message_passing(release, acquire)
        result = explore(program)
        outcomes = sorted(
            result.terminal_locals(("consumer", "r1"), ("consumer", "r2"))
        )
        print(f"message passing ({label}):")
        print(f"  states explored : {result.state_count}")
        print(f"  outcomes (r1,r2): {outcomes}")
        stale = (1, 0) in outcomes
        print(f"  stale read      : {'reachable' if stale else 'impossible'}")
        print()

    print("The release/acquire annotations remove exactly the (1, 0) row:")
    print("reading the flag synchronises the consumer with every write the")
    print("producer made before the releasing write — the paper's Figure 5")
    print("Read rule merging the write's modification view into the reader.")


if __name__ == "__main__":
    main()
