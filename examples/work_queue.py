#!/usr/bin/env python3
"""Producer/consumer task handoff over an abstract work queue.

The motivating workload for client-library message passing: a producer
prepares task data in plain (relaxed) client variables, then enqueues a
task id; consumers dequeue ids and read the corresponding data.  With a
releasing ``enqR`` / acquiring ``deqA`` pair the library guarantees the
consumer sees fully-initialised task data; with relaxed queue operations
a consumer can dequeue a task id and still read *uninitialised* data —
the exact failure mode the paper's Section 2 opens with, at work-queue
scale.

The example also shows FIFO handoff with two consumers: dequeued ids
are distinct, and task 2 is never handed out before task 1.

Run:  python examples/work_queue.py
"""

from repro import AbstractQueue, EMPTY, Lit, Program, Reg, Thread, ast as A, explore


def handoff(sync: bool) -> Program:
    enq = "enqR" if sync else "enq"
    deq = "deqA" if sync else "deq"
    producer = A.seq(
        A.Write("task1_data", Lit(11)),
        A.MethodCall("q", enq, arg=Lit(1)),
        A.Write("task2_data", Lit(22)),
        A.MethodCall("q", enq, arg=Lit(2)),
    )

    def consumer(idreg: str, datareg: str):
        return A.seq(
            A.do_until(
                A.MethodCall("q", deq, dest=idreg), Reg(idreg).ne(EMPTY)
            ),
            A.If(
                Reg(idreg).eq(1),
                A.Read(datareg, "task1_data"),
                A.Read(datareg, "task2_data"),
            ),
        )

    return Program(
        threads={
            "prod": Thread(producer),
            "c1": Thread(consumer("id1", "data1")),
            "c2": Thread(consumer("id2", "data2")),
        },
        client_vars={"task1_data": 0, "task2_data": 0},
        objects=(AbstractQueue("q"),),
    )


def main() -> None:
    for label, sync in (("synchronising enqR/deqA", True), ("relaxed enq/deq", False)):
        program = handoff(sync)
        result = explore(program)
        regs = (("c1", "id1"), ("c1", "data1"), ("c2", "id2"), ("c2", "data2"))
        outcomes = result.terminal_locals(*regs)
        torn = sorted(
            o
            for o in outcomes
            if (o[0] == 1 and o[1] != 11)
            or (o[0] == 2 and o[1] != 22)
            or (o[2] == 1 and o[3] != 11)
            or (o[2] == 2 and o[3] != 22)
        )
        fifo_ok = all(
            not (o[0] == 2 and o[2] == 2) for o in outcomes
        ) and all(o[0] != o[2] for o in outcomes)
        print(f"work queue with {label}")
        print(f"  states                  : {result.state_count}")
        print(f"  distinct final outcomes : {len(outcomes)}")
        print(f"  uninitialised-data reads: {len(torn)}")
        print(f"  ids distinct & FIFO     : {fifo_ok}")
        if torn:
            print(f"    e.g. {torn[0]}  (id, data, id, data)")
        print()
    print("The releasing enqueue publishes everything the producer wrote")
    print("before it; the relaxed variant hands out task ids whose data")
    print("may still be unobservable — a classic work-stealing bug.")


if __name__ == "__main__":
    main()
