#!/usr/bin/env python3
"""Extending the framework with a new abstract object.

The paper's Section 4 framework is generic: an abstract object
contributes timestamped operations to the library state and decides how
its methods synchronise thread views across components.  This example
defines a **once-flag** (a write-once publication cell, like a
`std::latch` with a payload) from scratch:

* ``set(v)`` — enabled only while unset; a releasing operation;
* ``get()`` — returns the payload if the flag is observably set, else
  ``Empty``; an acquiring ``get`` that sees the set synchronises with it.

A client then uses the flag for one-shot publication, and the example
verifies the publication guarantee and an Owicki–Gries outline for it.

Run:  python examples/custom_object.py
"""

from typing import Iterator, Tuple

from repro import EMPTY, Lit, Program, Reg, Thread, ast as A, explore
from repro.memory.actions import Op, mk_method
from repro.memory.state import ComponentState
from repro.memory.views import merge_views, view_union
from repro.objects.base import AbstractObject, ObjStep
from repro.util.rationals import TS_ZERO, fresh_after


class OnceFlag(AbstractObject):
    """A write-once publication cell with release/acquire semantics."""

    @property
    def methods(self) -> Tuple[str, ...]:
        return ("set", "get")

    def init_ops(self) -> Tuple[Op, ...]:
        return (Op(mk_method(self.name, "init", index=0), TS_ZERO),)

    def is_set(self, lib: ComponentState):
        for op in lib.ops_on(self.name):
            if op.act.method == "set":
                return op
        return None

    def method_steps(
        self, lib, cli, tid, method, arg=None
    ) -> Iterator[ObjStep]:
        if method == "set":
            if self.is_set(lib) is not None:
                return  # one-shot: second set is disabled
            latest = self.latest(lib)
            q = fresh_after(latest.ts, lib.timestamps())
            op = Op(
                mk_method(self.name, "set", tid=tid, val=arg, index=1, sync=True),
                q,
            )
            tview2 = lib.thread_view_map(tid).set(self.name, op)
            mview2 = view_union(tview2, cli.thread_view_map(tid))
            yield ObjStep(op.act, None, lib.add_op(op, mview2, tid, tview2), cli)
        elif method == "get":
            # A get may observe any operation at/after the viewfront:
            # the init (returns Empty) or the set (returns the payload).
            for op in lib.obs(tid, self.name):
                if op.act.method == "init":
                    yield ObjStep(None, EMPTY, lib, cli)
                else:
                    mv = lib.mview[op]
                    tview2 = merge_views(lib.thread_view_map(tid), mv)
                    ctview2 = merge_views(cli.thread_view_map(tid), mv)
                    yield ObjStep(
                        None,
                        op.act.val,
                        lib.with_thread_view(tid, tview2),
                        cli.with_thread_view(tid, ctview2),
                    )
        else:
            raise ValueError(f"once-flag has no method {method!r}")


def publication_client() -> Program:
    flag = OnceFlag("once")
    producer = A.seq(
        A.Write("data", Lit(42)),
        A.MethodCall("once", "set", arg=Lit(1)),
    )
    consumer = A.seq(
        A.do_until(A.MethodCall("once", "get", dest="got"), Reg("got").ne(EMPTY)),
        A.Read("out", "data"),
    )
    return Program(
        threads={"p": Thread(producer), "c": Thread(consumer)},
        client_vars={"data": 0},
        objects=(flag,),
    )


def main() -> None:
    program = publication_client()
    result = explore(program)
    outcomes = sorted(result.terminal_locals(("c", "got"), ("c", "out")), key=repr)
    print("once-flag publication client")
    print(f"  states  : {result.state_count}")
    print(f"  outcomes: {outcomes}")
    ok = all(out == 42 for _got, out in outcomes)
    print(f"  publication guarantee (out = 42 once flag seen): {ok}")
    assert ok, "a custom synchronising object must publish its payload"
    print()
    print("The OnceFlag was defined in ~40 lines: operations enter the")
    print("library state with fresh timestamps, and the acquiring get")
    print("merges the set's modification view into both components —")
    print("the same recipe as the paper's lock (Figure 6).")


if __name__ == "__main__":
    main()
