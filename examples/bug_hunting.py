#!/usr/bin/env python3
"""Bug hunting: Peterson's lock is broken under RC11 RAR.

The framework is not only a proof checker — when a property fails it
produces the shortest interleaving exhibiting the failure.  Peterson's
algorithm is the classic example: correct under sequential consistency,
broken under release/acquire, because its entry protocol ("write my
flag, then read yours") is a store-buffering shape that RAR cannot
order.  Running this example:

1. explores the full state space of a release/acquire Peterson;
2. finds configurations where *both* threads occupy their critical
   sections;
3. extracts and prints the shortest witness execution — note the stale
   ``rdA(flag?, 0)`` read after the other thread's ``wrR(flag?, 1)``;
4. contrasts with the CAS-based spinlock, which is correct (RMW
   operations provide the ordering Peterson lacks).

Run:  python examples/bug_hunting.py
"""

from repro.engine import ExplorationEngine
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.litmus.peterson import mutual_exclusion_violated, peterson_program
from repro.semantics.explore import explore
from repro.semantics.witness import replay_witness
from repro.toolkit import verify_lock_implementation
from repro.util.pretty import format_locals


def main() -> None:
    program = peterson_program()
    result = explore(program)
    violations = [
        c
        for c in result.configs.values()
        if mutual_exclusion_violated(c, program)
    ]
    print("Peterson's algorithm with release/acquire annotations")
    print(f"  reachable states          : {result.state_count}")
    print(f"  mutual-exclusion failures : {len(violations)}")
    print()

    # Witness extraction rides the engine: the ε-closure-reduced search
    # visits far fewer states, and the fused macro-steps are re-expanded
    # into the concrete schedule below — replay_witness re-checks every
    # step against the raw unreduced successors relation.
    engine = ExplorationEngine(reduction="closure")
    witness = engine.find_witness(
        program, lambda c: mutual_exclusion_violated(c, program)
    )
    replay_witness(program, witness)
    print(witness.describe())
    print()
    print("Reading the witness: thread 2's acquiring read of flag1 returns")
    print("the *stale* initial 0 even though thread 1's releasing write of")
    print("flag1 = 1 happened first — release/acquire orders writes *made")
    print("before* a release against reads *after* the matching acquire,")
    print("but never forces a read to see the globally latest write.")
    print()

    print("The CAS-based spinlock is immune (RMWs are ordered):")
    report = verify_lock_implementation(
        spinlock_fill, SPINLOCK_VARS, check_traces=False
    )
    print(report.describe())


if __name__ == "__main__":
    main()
