#!/usr/bin/env python3
"""One abstract lock, three implementations (paper Sections 4–6).

The same client template is instantiated with the abstract lock
specification (Figure 6) and with three concrete implementations —
the paper's sequence lock (§6.2) and ticket lock (§6.3), plus a
test-and-set spinlock.  For each implementation the example

1. explores the client and shows it produces the same outcomes;
2. solves the forward-simulation game of Definition 8 (Propositions
   9 and 10 and the spinlock analogue);
3. confirms contextual refinement directly by trace inclusion
   (Definitions 5–7) — the Theorem 8.1 cross-check;
4. shows what goes wrong for a deliberately broken lock whose release
   write is relaxed.

Run:  python examples/lock_refinement.py
"""

from repro import (
    AbstractLock,
    Lit,
    Reg,
    ast as A,
    check_program_refinement,
    explore,
    find_forward_simulation,
)
from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.litmus.clients import abstract_fill, lock_client


def broken_fill(obj, method, dest=None):
    """A spinlock whose release is a *relaxed* write: mutual exclusion
    still holds, but the critical section is not published."""
    if method == "acquire":
        return A.LibBlock(
            A.do_until(A.Cas("_b", "lk", Lit(0), Lit(1)), Reg("_b"))
        )
    return A.LibBlock(A.Write("lk", Lit(0)))  # missing release annotation


def main() -> None:
    afill, aobjs = abstract_fill(lambda: AbstractLock("l"))
    abstract = lock_client(afill, objects=aobjs)
    abs_result = explore(abstract)
    regs = (("2", "a"), ("2", "b"))
    print("abstract lock client (Figure 7 shape)")
    print(f"  states  : {abs_result.state_count}")
    print(f"  outcomes: {sorted(abs_result.terminal_locals(*regs))}\n")

    implementations = [
        ("sequence lock (§6.2, Prop. 9)", seqlock_fill, SEQLOCK_VARS),
        ("ticket lock   (§6.3, Prop. 10)", ticketlock_fill, TICKETLOCK_VARS),
        ("spinlock      (extension)", spinlock_fill, SPINLOCK_VARS),
        ("BROKEN lock   (relaxed release)", broken_fill, {"lk": 0}),
    ]

    for name, fill, lib_vars in implementations:
        concrete = lock_client(fill, lib_vars=dict(lib_vars))
        conc_result = explore(concrete)
        sim = find_forward_simulation(concrete, abstract)
        ref = check_program_refinement(concrete, abstract)
        print(name)
        print(
            f"  states {conc_result.state_count:4d}   "
            f"outcomes {sorted(conc_result.terminal_locals(*regs))}"
        )
        print(
            f"  forward simulation: {'found, |R| = ' + str(sim.relation_size) if sim.found else 'NONE'}"
        )
        print(f"  trace refinement  : {ref.refines}")
        if not ref.refines:
            print(
                f"  -> {len(ref.unmatched)} concrete traces have no abstract"
                " match: the client can observe stale data the abstract"
                " lock never exposes"
            )
        print()


if __name__ == "__main__":
    main()
