#!/usr/bin/env python3
"""The paper's running example: publication via a library stack.

Reproduces Section 2 end to end:

* Figure 1 — a relaxed stack: popping the element does **not** make the
  producer's data visible; the consumer can read stale 0.
* Figure 2 — a releasing push and acquiring pop: the stack operations
  induce happens-before synchronisation in the *client*, so the consumer
  always reads 5.
* Figure 3 — the Owicki–Gries proof outline for Figure 2, checked
  mechanically: initial validity, local correctness, interference
  freedom, and the postcondition r2 = 5.

Run:  python examples/message_passing_stack.py
"""

from repro import check_proof_outline, explore
from repro.figures.fig1 import fig1_program
from repro.figures.fig2 import fig2_program
from repro.figures.fig3 import fig3_outline


def main() -> None:
    print("Figure 1 — unsynchronised message passing via a relaxed stack")
    r1 = explore(fig1_program())
    outcomes = sorted(v for (v,) in r1.terminal_locals(("2", "r2")))
    print(f"  r2 outcomes: {outcomes}   ({r1.state_count} states)")
    print("  the stale read r2 = 0 is a real behaviour: the pop returned 1")
    print("  but transferred no view of d\n")

    print("Figure 2 — publication via pushR / popA")
    r2 = explore(fig2_program())
    outcomes = sorted(v for (v,) in r2.terminal_locals(("2", "r2")))
    print(f"  r2 outcomes: {outcomes}   ({r2.state_count} states)")
    print("  popping 1 synchronises with the releasing push: the stale")
    print("  initial write of d is no longer observable\n")

    print("Figure 3 — the proof outline, checked Owicki-Gries style")
    result = check_proof_outline(fig3_outline())
    print(f"  valid        : {result.valid}")
    print(f"  states       : {result.states}")
    print(f"  obligations  : {result.obligations}")
    print("  assertions used: [d = v]t (definite observation),")
    print("  ¬⟨s.pop 1⟩ (possible pop), ⟨s.pop 1⟩[d = 5]2 (conditional")
    print("  observation through the push's modification view)")


if __name__ == "__main__":
    main()
