#!/usr/bin/env python3
"""Run the RC11 RAR litmus battery and print the verdict table.

Every test enumerates the complete behaviour set of a standard litmus
shape under the paper's memory semantics (Figure 5) and compares it with
the RC11 RAR verdict from the literature: which weak behaviours the
model admits (MP-relaxed, SB, IRIW, 2+2W) and which it forbids
(MP-release/acquire, load buffering, coherence violations, RMW
atomicity violations).

Run:  python examples/litmus_explorer.py
"""

from repro.litmus.catalog import LITMUS_TESTS, run_litmus


def main() -> None:
    header = f"{'test':18s} {'states':>6s} {'weak behaviour':>16s} {'outcomes':>9s} verdict"
    print(header)
    print("-" * len(header))
    all_ok = True
    for test in LITMUS_TESTS:
        result = run_litmus(test)
        weak = "observed" if result["weak_observed"] else "absent"
        expected = "allowed" if test.weak_allowed else "forbidden"
        ok = result["verdict_ok"]
        all_ok &= ok
        print(
            f"{test.name:18s} {result['states']:6d} "
            f"{weak + ' / ' + expected:>16s} {len(result['outcomes']):9d} "
            f"{'OK' if ok else 'MISMATCH'}"
        )
    print("-" * len(header))
    print(f"battery {'PASSES' if all_ok else 'FAILS'}: every outcome set "
          "matches the RC11 RAR verdicts exactly")
    print()
    for test in LITMUS_TESTS[:2]:
        result = run_litmus(test)
        print(f"{test.name}: {test.description}")
        print(f"  outcomes: {sorted(result['outcomes'], key=repr)}")


if __name__ == "__main__":
    main()
