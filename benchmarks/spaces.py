"""Shared benchmark state spaces.

The ``wide`` relaxed-access grid is the workload several benchmarks and
their *committed baselines* are stated over (``BENCH_state_index.json``,
``BENCH_parallel_pipeline.json``): one definition keeps the recorded
headline numbers comparable across benchmark files.
"""

from __future__ import annotations

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread


def wide_program(n: int, reads: int = 2) -> Program:
    """``n`` threads, each writing its own variable then reading
    ``reads`` neighbours — a relaxed-access grid whose space grows
    combinatorially (``wide_program(4, reads=3)`` ≈ 54k states)."""
    threads = {}
    for i in range(n):
        stmts = [A.Write(f"x{i}", Lit(1))]
        for j in range(1, reads + 1):
            stmts.append(A.Read(f"r{i}_{j}", f"x{(i + j) % n}"))
        threads[str(i + 1)] = Thread(A.seq(*stmts))
    return Program(
        threads=threads, client_vars={f"x{i}": 0 for i in range(n)}
    )
