"""E1 — Engine: sequential vs sharded-parallel exploration wall-clock.

Measures the multiprocess exploration engine against the sequential BFS
reference on the Peterson and ticket-lock state spaces, asserting
bit-identical results (state and edge counts, terminal outcomes) and
recording the wall-clock speedup.  The speedup bar (≥2× with 4 workers)
is only enforced when the host actually has ≥4 CPUs — on smaller boxes
the run still validates parity and records the measured ratio.

Set ``REPRO_BENCH_LARGE=1`` to additionally measure a ≥50k-state space
(several minutes sequential; excluded from the default suite).
"""

import os

import pytest

from benchmarks.spaces import wide_program
from repro.engine import ExplorationEngine
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.lang.program import Program
from repro.litmus.clients import lock_client_three_threads
from repro.litmus.peterson import peterson_program
from repro.semantics.explore import explore

CPUS = os.cpu_count() or 1
WORKERS = 4 if CPUS >= 4 else 2
ENFORCE_SPEEDUP = CPUS >= 4


def _ticketlock_3t() -> Program:
    return lock_client_three_threads(
        ticketlock_fill, lib_vars=dict(TICKETLOCK_VARS)
    )


CASES = [
    ("peterson", peterson_program),
    ("ticketlock-3T", _ticketlock_3t),
]


@pytest.mark.parametrize("name,build", CASES, ids=[c[0] for c in CASES])
def test_parallel_parity_and_speedup(benchmark, record_row, name, build):
    program = build()
    seq = explore(program)
    engine = ExplorationEngine(workers=WORKERS)
    par = benchmark.pedantic(
        engine.explore, args=(program,), iterations=1, rounds=1
    )
    # Result keys are representation-specific (the parallel backend uses
    # stable digests), so parity is checked on the representation-
    # independent observables.
    parity = (
        par.state_count == seq.state_count
        and par.edge_count == seq.edge_count
        and len(par.terminals) == len(seq.terminals)
        and len(par.stuck) == len(seq.stuck)
    )
    speedup = seq.elapsed / par.elapsed if par.elapsed > 0 else float("inf")
    # Speedup on these *small* spaces is informational only: per-round
    # pool/pickle overhead dominates at ~1k states, and shared CI
    # runners add noise.  The >=2x bar is enforced by the large-space
    # benchmark below, where parallel compute actually amortises.
    record_row(
        f"E1 engine {name}",
        f"parallel ({WORKERS}w) bit-identical (speedup informational)",
        f"{par.state_count} states, {speedup:.2f}x "
        f"({CPUS} cpu{'s' if CPUS != 1 else ''})",
        parity,
    )
    assert parity


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="large state space (minutes of sequential exploration); "
    "set REPRO_BENCH_LARGE=1",
)
def test_parallel_large_space(benchmark, record_row):
    """The ≥50k-state configuration the speedup claim is stated over."""
    program = wide_program(5, reads=3)
    seq = explore(program, max_states=2_000_000)
    engine = ExplorationEngine(workers=WORKERS, max_states=2_000_000)
    par = benchmark.pedantic(
        engine.explore, args=(program,), iterations=1, rounds=1
    )
    parity = (
        par.state_count == seq.state_count
        and par.edge_count == seq.edge_count
    )
    speedup = seq.elapsed / par.elapsed if par.elapsed > 0 else float("inf")
    big_enough = seq.state_count >= 50_000
    ok = parity and big_enough and (speedup >= 2.0 or not ENFORCE_SPEEDUP)
    record_row(
        "E1 engine large",
        ">=50k states, >=2x speedup on >=4 cpus",
        f"{par.state_count} states, {speedup:.2f}x ({CPUS} cpus)",
        ok,
    )
    assert parity and big_enough
    if ENFORCE_SPEEDUP:
        assert speedup >= 2.0
