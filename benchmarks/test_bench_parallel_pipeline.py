"""P1 — Pipelined sharded exploration vs the rounds backend.

Measures the two sharded backends (:mod:`repro.engine.pipeline` vs the
level-synchronous ``rounds`` backend in :mod:`repro.engine.parallel`)
against each other on the summary exploration path
(``keep_configs=False`` — the ``engine.run``/verdict workload), with
bit-identical-result parity asserted on every run, plus the compact
config codec (:mod:`repro.memory.codec`) against the pre-codec wire
format.

Three legs:

* **codec** (always on, deterministic): total blob bytes of the
  Peterson configuration set under the compact codec vs
  ``legacy_dumps``.  Byte counts are host-independent, so the ≥1.3x
  bar is enforced unconditionally — and the committed baseline's
  recorded large-space headline ratio is re-checked against the ≥1.5x
  claim, so a regressed regeneration cannot slip through CI.
* **smoke** (always on): pipeline vs rounds states/sec on the Peterson
  space.  Records the measured ratio next to the committed baseline in
  ``benchmarks/BENCH_parallel_pipeline.json``; with
  ``REPRO_PERF_SMOKE=1`` (the CI perf job) on a ≥4-CPU host, a >2x
  regression against the baseline *ratio* fails the run — the ratio of
  two same-host measurements transfers across machines, absolute
  wall-clock does not.  Regenerate with
  ``REPRO_BENCH_WRITE_BASELINE=1``.
* **large** (``REPRO_BENCH_LARGE=1``): the ≥50k-state space the
  headline claim is stated over — pipeline must be ≥1.5x the rounds
  backend's states/sec at 4 workers (enforced on ≥4-CPU hosts; smaller
  boxes still validate parity and record the measured ratio).
"""

import json
import os
import pickle
import time
from pathlib import Path

import pytest

from benchmarks.spaces import wide_program
from repro.engine.parallel import explore_parallel
from repro.lang.program import Program
from repro.litmus.peterson import peterson_program
from repro.memory.codec import legacy_dumps
from repro.semantics.explore import explore

BASELINE_PATH = Path(__file__).parent / "BENCH_parallel_pipeline.json"

CPUS = os.cpu_count() or 1
WORKERS = 4 if CPUS >= 4 else 2
ENFORCE = CPUS >= 4

#: Headline bar: pipeline states/sec over rounds at 4 workers.
SPEEDUP_BAR = 1.5
#: Codec bar: legacy blob bytes over compact codec blob bytes.
CODEC_BAR = 1.3
#: Perf-smoke gate: fail when the measured smoke ratio regresses by
#: more than this factor against the committed baseline ratio.
REGRESSION_FACTOR = 2.0


def _measure(program: Program, workers: int):
    """Run both backends on the summary path; assert parity, return
    ``(states, rounds_s, pipeline_s)``."""
    t0 = time.perf_counter()
    rounds = explore_parallel(
        program,
        workers=workers,
        max_states=2_000_000,
        keep_configs=False,
        backend="rounds",
    )
    rounds_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pipe = explore_parallel(
        program,
        workers=workers,
        max_states=2_000_000,
        keep_configs=False,
        backend="pipeline",
    )
    pipeline_s = time.perf_counter() - t0
    assert not rounds.truncated and not pipe.truncated
    assert pipe.state_count == rounds.state_count, (
        f"backend parity broken: pipeline {pipe.state_count} vs "
        f"rounds {rounds.state_count}"
    )
    assert pipe.edge_count == rounds.edge_count
    assert len(pipe.terminals) == len(rounds.terminals)
    assert len(pipe.stuck) == len(rounds.stuck)
    return pipe.state_count, rounds_s, pipeline_s


def _read_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _update_baseline(section: str, payload: dict) -> None:
    data = _read_baseline() if BASELINE_PATH.exists() else {}
    data[section] = payload
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_codec_blob_bytes(record_row):
    """Compact codec ≥1.3x smaller than the pre-codec wire format —
    deterministic byte counts, enforced on every host."""
    result = explore(peterson_program())
    configs = list(result.configs.values())
    codec_bytes = sum(
        len(pickle.dumps(c, pickle.HIGHEST_PROTOCOL)) for c in configs
    )
    legacy_bytes = sum(len(legacy_dumps(c)) for c in configs)
    ratio = legacy_bytes / codec_bytes

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "codec",
            {
                "program": "peterson",
                "states": len(configs),
                "codec_bytes": codec_bytes,
                "legacy_bytes": legacy_bytes,
                "ratio": round(ratio, 2),
            },
        )

    record_row(
        "P1 codec bytes",
        f"compact codec ≥{CODEC_BAR}x smaller than legacy pickles",
        f"{len(configs)} states, {codec_bytes} vs {legacy_bytes} B "
        f"({ratio:.2f}x)",
        ratio >= CODEC_BAR,
    )
    assert ratio >= CODEC_BAR
    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        return  # partially (re)generated baseline: claims checked next run
    # The committed headline claim stays honest: a regenerated baseline
    # whose recorded large-space ratio dropped below the bar fails here.
    baseline = _read_baseline()
    assert baseline["large"]["states_per_sec_ratio"] >= SPEEDUP_BAR, (
        "committed BENCH_parallel_pipeline.json no longer shows the "
        f"≥{SPEEDUP_BAR}x large-space pipeline speedup; regenerate with "
        "REPRO_BENCH_LARGE=1 REPRO_BENCH_WRITE_BASELINE=1 and investigate"
    )
    assert baseline["codec"]["ratio"] >= CODEC_BAR


def test_pipeline_vs_rounds_smoke(record_row):
    states, rounds_s, pipeline_s = _measure(peterson_program(), WORKERS)
    ratio = rounds_s / pipeline_s if pipeline_s > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "smoke",
            {
                "program": "peterson",
                "states": states,
                "workers": WORKERS,
                "rounds_s": round(rounds_s, 4),
                "pipeline_s": round(pipeline_s, 4),
                "states_per_sec_ratio": round(ratio, 2),
            },
        )

    baseline = _read_baseline()["smoke"]
    floor = baseline["states_per_sec_ratio"] / REGRESSION_FACTOR
    enforce = ENFORCE and os.environ.get("REPRO_PERF_SMOKE", "") == "1"
    ok = ratio >= floor or not enforce
    record_row(
        "P1 pipeline smoke",
        f"pipeline ≥ {floor:.2f}x rounds (½ of committed "
        f"{baseline['states_per_sec_ratio']}x)"
        + ("" if enforce else " [informational]"),
        f"{states} states, {ratio:.2f}x ({pipeline_s:.2f}s vs "
        f"{rounds_s:.2f}s, {WORKERS}w/{CPUS}cpu)",
        ok,
    )
    assert states == baseline["states"], (
        "smoke program changed: regenerate BENCH_parallel_pipeline.json "
        "with REPRO_BENCH_WRITE_BASELINE=1"
    )
    if enforce:
        assert ratio >= floor, (
            f"pipeline perf regression: {ratio:.2f}x < {floor:.2f}x "
            f"(committed baseline {baseline['states_per_sec_ratio']}x, "
            f"allowed regression {REGRESSION_FACTOR}x)"
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="≥50k-state space (minutes per backend); set REPRO_BENCH_LARGE=1",
)
def test_pipeline_vs_rounds_large_space(record_row):
    """The ≥1.5x states/sec headline at 4 workers on ≥50k states."""
    states, rounds_s, pipeline_s = _measure(wide_program(4, reads=3), 4)
    ratio = rounds_s / pipeline_s if pipeline_s > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "large",
            {
                "program": "wide-4x3",
                "states": states,
                "workers": 4,
                "rounds_s": round(rounds_s, 2),
                "pipeline_s": round(pipeline_s, 2),
                "states_per_sec_ratio": round(ratio, 2),
            },
        )

    big_enough = states >= 50_000
    ok = big_enough and (ratio >= SPEEDUP_BAR or not ENFORCE)
    record_row(
        "P1 pipeline large",
        f"≥50k states, pipeline ≥{SPEEDUP_BAR}x rounds states/sec "
        "at 4 workers" + ("" if ENFORCE else " [informational on this host]"),
        f"{states} states, {ratio:.2f}x ({pipeline_s:.1f}s vs "
        f"{rounds_s:.1f}s, {CPUS}cpus)",
        ok,
    )
    assert big_enough
    if ENFORCE:
        assert ratio >= SPEEDUP_BAR
