"""X3 — Negative result: Peterson's lock is broken under RC11 RAR.

The framework as a bug finder: Peterson's algorithm — correct under SC
— embeds a store-buffering shape that release/acquire cannot order.
The explorer finds the mutual-exclusion violation and extracts the
shortest interleaving exhibiting it (the stale flag read).  This is the
flip side of the paper's Figure 6: the abstract lock *specification* is
what a client should program against, because not every plausible
implementation discipline survives weak memory.
"""

from repro.litmus.peterson import mutual_exclusion_violated, peterson_program
from repro.semantics.explore import explore
from repro.semantics.witness import find_path


def run_peterson():
    p = peterson_program()
    witness = find_path(p, lambda c: mutual_exclusion_violated(c, p))
    return p, witness


def test_peterson_broken(benchmark, record_row):
    p, witness = benchmark.pedantic(run_peterson, iterations=1, rounds=3)
    ok = witness is not None
    record_row(
        "X3 Peterson under RA",
        "mutual exclusion violated (SB shape, no SC fences)",
        f"violation witness of {len(witness)} steps" if ok else "no violation",
        ok,
    )
    assert ok


def test_peterson_statespace(benchmark, record_row):
    result = benchmark.pedantic(
        lambda: explore(peterson_program()), rounds=1, iterations=1
    )
    violations = sum(
        1
        for c in result.configs.values()
        if mutual_exclusion_violated(c, result.program)
    )
    ok = violations > 0 and not result.truncated
    record_row(
        "X3 Peterson states",
        "violations are plentiful, not a corner case",
        f"{violations} violating / {result.state_count} states",
        ok,
    )
    assert ok
