"""P2 — Zero-copy shm ring transport vs the queue transport.

Measures the pipeline backend's two transports (shared-memory SPSC
rings in :mod:`repro.engine.shm` vs the pickled-blob master-routed
queues) against each other, with bit-identical-result parity asserted
on every run, plus the transport-level copy discipline.

Three legs:

* **copies** (always on, deterministic): intermediate batch copies per
  published batch, from the ``pipeline.batch_copies`` counter.  The shm
  transport must report **zero** (batches are pickled directly into
  ring memory and decoded directly out of it); the queue transport
  deterministically pays two (encode to a blob, queue pickles the blob
  again).  Copy counts are host-independent, so this gate is enforced
  unconditionally on every host.
* **smoke** (always on): shm vs queue states/sec on the Peterson
  space, recorded next to the committed baseline in
  ``benchmarks/BENCH_shm_ring.json``.
* **large** (``REPRO_BENCH_LARGE=1``): the ≥50k-state space the
  ≥1.5x headline claim is stated over, at 4 workers.

**Where the speed gates arm.**  The shm transport's win is a
*parallelism* win, not a per-byte one: both transports pay the same
(dominant) object pickling per batch, and what shm removes is the
master router — a serial bottleneck every cross-shard byte must cross
— plus the byte-level blob copies around it.  On a single-CPU host
everything is compute-bound, the router costs CPU the workers weren't
using anyway, and an honest measurement shows ~1.0x; only with real
cores does removing the serial hop pay.  Each committed baseline
section therefore records the ``cpus`` of the host that measured it,
and the states/sec gates (smoke: ≥1.3x with ``REPRO_PERF_SMOKE=1``;
large: ≥1.5x) enforce **only when both the measuring host and the
committed baseline's recording host have ≥4 CPUs** — a
single-CPU-recorded baseline cannot arm a parallel-speedup gate.
Regenerate on a ≥4-CPU host with ``REPRO_BENCH_WRITE_BASELINE=1``
(plus ``REPRO_BENCH_LARGE=1`` for the large leg) to arm them.  The
zero-copy discipline is deterministic and gates everywhere regardless.
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.spaces import wide_program
from repro.engine.parallel import explore_parallel
from repro.engine.shm import shm_available
from repro.lang.program import Program
from repro.litmus.peterson import peterson_program
from repro.obs.metrics import Metrics

BASELINE_PATH = Path(__file__).parent / "BENCH_shm_ring.json"

CPUS = os.cpu_count() or 1
WORKERS = 4 if CPUS >= 4 else 2
ENFORCE = CPUS >= 4

#: Headline bar: shm states/sec over queue at 4 workers (large leg).
SPEEDUP_BAR = 1.5
#: Smoke-leg bar on armed perf-smoke hosts.
SMOKE_BAR = 1.3
#: Perf-smoke gate: fail when the measured smoke ratio regresses by
#: more than this factor against the committed baseline ratio.
REGRESSION_FACTOR = 2.0


def _armed(section: dict) -> bool:
    """A speed gate arms only when the committed record was measured
    with real parallelism (see the module docstring)."""
    return section.get("cpus", 1) >= 4

pytestmark = pytest.mark.skipif(
    not shm_available(),
    reason="SharedMemory unavailable: shm transport falls back to queue, "
    "nothing to compare",
)


def _run(program: Program, workers: int, transport: str):
    m = Metrics()
    t0 = time.perf_counter()
    result = explore_parallel(
        program,
        workers=workers,
        max_states=2_000_000,
        keep_configs=False,
        backend="pipeline",
        transport=transport,
        metrics=m,
    )
    elapsed = time.perf_counter() - t0
    assert not result.truncated
    return result, elapsed, m.counters


def _measure(program: Program, workers: int):
    """Run the pipeline backend under both transports; assert parity
    and the copy discipline, return ``(states, queue_s, shm_s)``."""
    queue_r, queue_s, queue_c = _run(program, workers, "queue")
    shm_r, shm_s, shm_c = _run(program, workers, "shm")
    assert shm_r.state_count == queue_r.state_count, (
        f"transport parity broken: shm {shm_r.state_count} vs "
        f"queue {queue_r.state_count}"
    )
    assert shm_r.edge_count == queue_r.edge_count
    assert len(shm_r.terminals) == len(queue_r.terminals)
    assert len(shm_r.stuck) == len(queue_r.stuck)
    # The copy discipline is part of parity: every measured run must
    # show the queue's two copies per batch and shm's zero.
    assert queue_c["pipeline.batch_copies"] == (
        2 * queue_c["pipeline.batches"]
    )
    assert shm_c.get("pipeline.batch_copies", 0) == 0
    return shm_r.state_count, queue_s, shm_s


def _read_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _update_baseline(section: str, payload: dict) -> None:
    data = _read_baseline() if BASELINE_PATH.exists() else {}
    data[section] = payload
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_transport_copy_discipline(record_row):
    """shm publishes with zero intermediate batch copies; the queue
    path deterministically pays two per batch — enforced on every
    host."""
    program = peterson_program()
    _, _, queue_c = _run(program, WORKERS, "queue")
    _, _, shm_c = _run(program, WORKERS, "shm")

    queue_batches = queue_c["pipeline.batches"]
    queue_copies = queue_c["pipeline.batch_copies"]
    shm_batches = shm_c["pipeline.batches"]
    shm_copies = shm_c.get("pipeline.batch_copies", 0)

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "copies",
            {
                "program": "peterson",
                "workers": WORKERS,
                "cpus": CPUS,
                "queue_batches": queue_batches,
                "queue_copies_per_batch": 2,
                "shm_batches": shm_batches,
                "shm_copies": shm_copies,
                "shm_ring_frames": shm_c["shm.ring.frames"],
                "shm_ring_bytes": shm_c["shm.ring.bytes"],
            },
        )

    ok = (
        shm_batches > 0
        and shm_copies == 0
        and queue_copies == 2 * queue_batches
    )
    record_row(
        "P2 transport copies",
        "shm: 0 intermediate batch copies; queue: exactly 2 per batch",
        f"shm {shm_copies} copies / {shm_batches} batches "
        f"({shm_c['shm.ring.frames']} frames, {shm_c['shm.ring.bytes']} B); "
        f"queue {queue_copies} / {queue_batches}",
        ok,
    )
    assert shm_batches > 0 and queue_batches > 0
    assert shm_copies == 0, (
        "shm transport made intermediate batch copies: the rings are "
        "too small for whole batches (chunk fallback) or the zero-copy "
        "encode path regressed"
    )
    assert queue_copies == 2 * queue_batches
    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        return  # partially (re)generated baseline: claims checked next run
    # The committed record stays honest: a regenerated baseline with
    # copies, or with a ≥4-CPU-recorded large ratio below the headline
    # bar, fails here.  (A single-CPU-recorded large ratio is
    # compute-bound parity by construction — see the module docstring —
    # so it carries no speedup claim to re-check.)
    baseline = _read_baseline()
    assert baseline["copies"]["shm_copies"] == 0
    large = baseline["large"]
    if _armed(large):
        assert large["states_per_sec_ratio"] >= SPEEDUP_BAR, (
            "committed BENCH_shm_ring.json no longer shows the "
            f"≥{SPEEDUP_BAR}x large-space shm speedup; regenerate with "
            "REPRO_BENCH_LARGE=1 REPRO_BENCH_WRITE_BASELINE=1 and "
            "investigate"
        )


def test_shm_vs_queue_smoke(record_row):
    states, queue_s, shm_s = _measure(peterson_program(), WORKERS)
    ratio = queue_s / shm_s if shm_s > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "smoke",
            {
                "program": "peterson",
                "states": states,
                "workers": WORKERS,
                "cpus": CPUS,
                "queue_s": round(queue_s, 4),
                "shm_s": round(shm_s, 4),
                "states_per_sec_ratio": round(ratio, 2),
            },
        )

    baseline = _read_baseline()["smoke"]
    enforce = (
        ENFORCE
        and os.environ.get("REPRO_PERF_SMOKE", "") == "1"
        and _armed(baseline)
    )
    floor = max(
        SMOKE_BAR, baseline["states_per_sec_ratio"] / REGRESSION_FACTOR
    )
    ok = ratio >= floor or not enforce
    record_row(
        "P2 shm ring smoke",
        f"shm ≥ {floor:.2f}x queue (max of {SMOKE_BAR}x bar, ½ of "
        f"committed {baseline['states_per_sec_ratio']}x)"
        + (
            ""
            if enforce
            else " [informational: needs ≥4 CPUs measured *and* recorded]"
        ),
        f"{states} states, {ratio:.2f}x ({shm_s:.2f}s vs "
        f"{queue_s:.2f}s, {WORKERS}w/{CPUS}cpu)",
        ok,
    )
    assert states == baseline["states"], (
        "smoke program changed: regenerate BENCH_shm_ring.json with "
        "REPRO_BENCH_WRITE_BASELINE=1"
    )
    if enforce:
        assert ratio >= floor, (
            f"shm transport perf regression: {ratio:.2f}x < {floor:.2f}x "
            f"(committed baseline {baseline['states_per_sec_ratio']}x, "
            f"allowed regression {REGRESSION_FACTOR}x, bar {SMOKE_BAR}x)"
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="≥50k-state space (minutes per transport); set REPRO_BENCH_LARGE=1",
)
def test_shm_vs_queue_large_space(record_row):
    """The ≥1.5x states/sec headline at 4 workers on ≥50k states."""
    states, queue_s, shm_s = _measure(wide_program(4, reads=3), 4)
    ratio = queue_s / shm_s if shm_s > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "large",
            {
                "program": "wide-4x3",
                "states": states,
                "workers": 4,
                "cpus": CPUS,
                "queue_s": round(queue_s, 2),
                "shm_s": round(shm_s, 2),
                "states_per_sec_ratio": round(ratio, 2),
            },
        )

    big_enough = states >= 50_000
    ok = big_enough and (ratio >= SPEEDUP_BAR or not ENFORCE)
    record_row(
        "P2 shm ring large",
        f"≥50k states, shm ≥{SPEEDUP_BAR}x queue states/sec "
        "at 4 workers"
        + ("" if ENFORCE else " [informational: single-CPU host]"),
        f"{states} states, {ratio:.2f}x ({shm_s:.1f}s vs "
        f"{queue_s:.1f}s, {CPUS}cpus)",
        ok,
    )
    assert big_enough
    if ENFORCE:
        assert ratio >= SPEEDUP_BAR
