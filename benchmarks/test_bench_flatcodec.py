"""P3 — Flat wire codec blob size + hot-kernel sequential throughput.

Measures the two deliverables of the successor-path performance pass:

* the pickle-free flat batch codec (:mod:`repro.memory.flatcodec`)
  against the v1 pickle codec it replaces as the cross-shard default,
  by encoded bytes of identical batches — a within-run, deterministic,
  host-independent comparison;
* the specialised sequential inner loop (transitions/step/canon), by
  states/sec against the committed pre-specialisation reference.

Three legs:

* **blob** (always on, deterministic): flat vs pickle encoded bytes of
  the Peterson ``(digest, Config)`` batch, with decode parity asserted
  on every run.  Byte counts are host-independent, so the ≥1.8x bar is
  enforced unconditionally — and the committed baseline's recorded
  ratio is re-checked, so a regressed regeneration cannot slip
  through CI.
* **kernel smoke** (always on): sequential states/sec on the Peterson
  space, recorded next to the committed value in
  ``benchmarks/BENCH_flatcodec.json``; with ``REPRO_PERF_SMOKE=1`` on
  an armed host (see below), a >2x regression against the committed
  states/sec fails the run.
* **kernel large** (``REPRO_BENCH_LARGE=1``): the ≥50k-state wide-4x3
  space the ≥1.3x headline is stated over — measured states/sec vs the
  committed ``baseline_states_per_sec`` (the pre-specialisation inner
  loop, measured once on the recording host and *preserved* across
  regenerations: it is the reference the speedup claim is relative
  to).

**Where the speed gates arm.**  Absolute states/sec does not transfer
across machines, so — following the ``BENCH_shm_ring`` convention —
each committed section records the ``cpus`` of the recording host and
the wall-clock gates enforce only when both the measuring host and the
committed record have ≥4 CPUs.  The blob-size gate is deterministic
and gates everywhere regardless.  Regenerate with
``pytest --bench-update`` (or ``REPRO_BENCH_WRITE_BASELINE=1``), plus
``REPRO_BENCH_LARGE=1`` for the large leg.
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.spaces import wide_program
from repro.engine.core import explore_sequential
from repro.engine.fingerprint import stable_digest
from repro.lang.program import Program
from repro.litmus.peterson import peterson_program
from repro.memory.flatcodec import decode_batch, get_codec
from repro.semantics.canon import canonical_key
from repro.semantics.explore import explore

BASELINE_PATH = Path(__file__).parent / "BENCH_flatcodec.json"

CPUS = os.cpu_count() or 1
ENFORCE = CPUS >= 4

#: Blob-size bar: pickle batch bytes over flat batch bytes.
BLOB_BAR = 1.8
#: Headline kernel bar: states/sec over the committed
#: pre-specialisation baseline (large leg).
KERNEL_BAR = 1.3
#: Perf-smoke gate: fail when measured states/sec regresses by more
#: than this factor against the committed smoke record.
REGRESSION_FACTOR = 2.0


def _armed(section: dict) -> bool:
    """A wall-clock gate arms only when the committed record was
    measured with real parallelism headroom (see module docstring)."""
    return section.get("cpus", 1) >= 4


def _read_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _update_baseline(section: str, payload: dict) -> None:
    data = _read_baseline() if BASELINE_PATH.exists() else {}
    prior = data.get(section, {})
    # The pre-specialisation reference is a historical constant of the
    # recording host, not a re-measurable quantity: preserve it.
    if "baseline_states_per_sec" in prior:
        payload.setdefault(
            "baseline_states_per_sec", prior["baseline_states_per_sec"]
        )
    data[section] = payload
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _cross_shard_batch(program: Program):
    result = explore(program)
    return [
        (stable_digest(repr(i).encode()), cfg)
        for i, cfg in enumerate(result.configs.values())
    ]


def _measure_sequential(program: Program):
    t0 = time.perf_counter()
    result = explore_sequential(program, 2_000_000)
    elapsed = time.perf_counter() - t0
    assert not result.truncated
    states = result.state_total or len(result.configs)
    return states, elapsed, states / elapsed if elapsed > 0 else 0.0


def test_flat_vs_pickle_blob_bytes(record_row):
    """Flat batches ≥1.8x smaller than pickle batches of the same
    configs — deterministic byte counts, enforced on every host, with
    value parity (bit-identical canonical keys) asserted in-run."""
    program = peterson_program()
    batch = _cross_shard_batch(program)
    flat_blob = get_codec("flat").encode_bytes(batch)
    pickle_blob = get_codec("pickle").encode_bytes(batch)
    ratio = len(pickle_blob) / len(flat_blob)

    # Parity is part of the measurement: both blobs decode to the same
    # values with bit-identical canonical keys.
    flat_back = decode_batch(flat_blob)
    pickle_back = decode_batch(pickle_blob)
    assert len(flat_back) == len(pickle_back) == len(batch)
    for fe, pe, be in zip(flat_back, pickle_back, batch):
        assert fe[0] == pe[0] == be[0]
        assert fe[1] == pe[1] == be[1]
        assert (
            canonical_key(program, fe[1])
            == canonical_key(program, pe[1])
            == canonical_key(program, be[1])
        )

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "blob",
            {
                "program": "peterson",
                "entries": len(batch),
                "cpus": CPUS,
                "flat_bytes": len(flat_blob),
                "pickle_bytes": len(pickle_blob),
                "ratio": round(ratio, 2),
            },
        )

    record_row(
        "P3 flat codec bytes",
        f"flat batches ≥{BLOB_BAR}x smaller than pickle batches",
        f"{len(batch)} entries, {len(flat_blob)} vs {len(pickle_blob)} B "
        f"({ratio:.2f}x)",
        ratio >= BLOB_BAR,
    )
    assert ratio >= BLOB_BAR
    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        return  # partially (re)generated baseline: claims checked next run
    # The committed record stays honest.
    baseline = _read_baseline()
    assert baseline["blob"]["ratio"] >= BLOB_BAR, (
        "committed BENCH_flatcodec.json no longer shows the "
        f"≥{BLOB_BAR}x flat-vs-pickle blob ratio; regenerate with "
        "pytest --bench-update and investigate"
    )
    large = baseline["kernel_large"]
    assert (
        large["states_per_sec"]
        >= KERNEL_BAR * large["baseline_states_per_sec"]
    ), (
        "committed BENCH_flatcodec.json no longer shows the "
        f"≥{KERNEL_BAR}x sequential kernel speedup; regenerate with "
        "REPRO_BENCH_LARGE=1 pytest --bench-update and investigate"
    )


def test_sequential_kernel_smoke(record_row):
    states, elapsed, sps = _measure_sequential(peterson_program())

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "kernel_smoke",
            {
                "program": "peterson",
                "states": states,
                "cpus": CPUS,
                "elapsed_s": round(elapsed, 4),
                "states_per_sec": round(sps, 1),
            },
        )

    baseline = _read_baseline()["kernel_smoke"]
    floor = baseline["states_per_sec"] / REGRESSION_FACTOR
    enforce = (
        ENFORCE
        and os.environ.get("REPRO_PERF_SMOKE", "") == "1"
        and _armed(baseline)
    )
    ok = sps >= floor or not enforce
    record_row(
        "P3 kernel smoke",
        f"sequential ≥ {floor:.0f} states/sec (½ of committed "
        f"{baseline['states_per_sec']})"
        + (
            ""
            if enforce
            else " [informational: needs ≥4 CPUs measured *and* recorded]"
        ),
        f"{states} states, {sps:.0f} states/sec ({elapsed:.2f}s, "
        f"{CPUS}cpu)",
        ok,
    )
    assert states == baseline["states"], (
        "smoke program changed: regenerate BENCH_flatcodec.json with "
        "pytest --bench-update"
    )
    if enforce:
        assert sps >= floor, (
            f"sequential kernel regression: {sps:.0f} < {floor:.0f} "
            f"states/sec (committed {baseline['states_per_sec']}, "
            f"allowed regression {REGRESSION_FACTOR}x)"
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="≥50k-state space (minutes); set REPRO_BENCH_LARGE=1",
)
def test_sequential_kernel_large_space(record_row):
    """The ≥1.3x states/sec headline over the committed
    pre-specialisation baseline, on the ≥50k-state wide-4x3 space."""
    states, elapsed, sps = _measure_sequential(wide_program(4, reads=3))

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        _update_baseline(
            "kernel_large",
            {
                "program": "wide-4x3",
                "states": states,
                "cpus": CPUS,
                "elapsed_s": round(elapsed, 2),
                "states_per_sec": round(sps, 1),
            },
        )

    baseline = _read_baseline()["kernel_large"]
    ref = baseline["baseline_states_per_sec"]
    ratio = sps / ref if ref > 0 else float("inf")
    big_enough = states >= 50_000
    enforce = ENFORCE and _armed(baseline)
    ok = big_enough and (ratio >= KERNEL_BAR or not enforce)
    record_row(
        "P3 kernel large",
        f"≥50k states, ≥{KERNEL_BAR}x states/sec vs pre-specialisation "
        f"baseline ({ref:.0f})"
        + ("" if enforce else " [informational on this host]"),
        f"{states} states, {sps:.0f} states/sec = {ratio:.2f}x "
        f"({elapsed:.1f}s, {CPUS}cpus)",
        ok,
    )
    assert big_enough
    assert states == baseline["states"], (
        "large program changed: regenerate BENCH_flatcodec.json with "
        "REPRO_BENCH_LARGE=1 pytest --bench-update"
    )
    if enforce:
        assert ratio >= KERNEL_BAR
