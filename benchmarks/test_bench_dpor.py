"""R2 — DPOR layer: sleep sets + persistent sets vs ε-closure alone.

Both legs drive the same engine loop (``explore_sequential``) over a
family of *composed* litmus programs — disjoint-variable products of
catalog tests, the workload class whose interleavings are exponential
in the number of independent components and where partial-order
reduction pays — once with ``reduction="closure"`` and once with
``reduction="dpor"`` (:mod:`repro.semantics.dpor`), asserting
terminal-valuation parity on every run so the measured ratios isolate
the DPOR layer.

Plain single litmus tests are deliberately *not* the benchmark family:
their threads all conflict on the same variables, so the persistent
sets degenerate to full expansion and the sink-product floor (every
distinct terminal canonical state must be stored by any sound policy)
caps the achievable ratio near 1x.  The composed family is where DPOR
is designed to win — and the headline **≥5x aggregate stored-state
reduction over closure** is asserted deterministically on every run.

Per-member counts are committed to ``benchmarks/BENCH_dpor.json``
(regenerate with ``REPRO_BENCH_WRITE_BASELINE=1``); with
``REPRO_PERF_SMOKE=1`` (the CI perf job) a >2x regression of the
recorded closure-vs-dpor wall-clock ratio fails the run.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.engine.core import explore_sequential
from repro.lang import ast as A
from repro.lang.program import Program, Thread
from repro.litmus.catalog import LITMUS_TESTS

BASELINE_PATH = Path(__file__).parent / "BENCH_dpor.json"

#: Fail the perf-smoke gate when the measured dpor-vs-closure wall-clock
#: speedup drops below half the committed baseline speedup.
REGRESSION_FACTOR = 2.0

#: The headline aggregate state-reduction gate over the composed family.
STATE_RATIO_FLOOR = 5.0

_BY_NAME = {t.name: t for t in LITMUS_TESTS}


def _ren_node(node, suffix):
    """Rename every global variable in ``node`` by appending ``suffix``
    (registers are thread-local and need no renaming)."""
    if node is None:
        return None
    if isinstance(node, (A.Write, A.Read, A.Cas, A.Fai)):
        return dataclasses.replace(node, var=node.var + suffix)
    if isinstance(node, A.Seq):
        return dataclasses.replace(
            node,
            first=_ren_node(node.first, suffix),
            second=_ren_node(node.second, suffix),
        )
    if isinstance(node, A.If):
        return dataclasses.replace(
            node,
            then_branch=_ren_node(node.then_branch, suffix),
            else_branch=_ren_node(node.else_branch, suffix),
        )
    if isinstance(node, A.While):
        return dataclasses.replace(node, body=_ren_node(node.body, suffix))
    if isinstance(node, A.Labeled):
        return dataclasses.replace(node, body=_ren_node(node.body, suffix))
    if isinstance(node, A.LibBlock):
        return dataclasses.replace(node, body=_ren_node(node.body, suffix))
    # LocalAssign (register-only) and anything without globals.
    return node


def _compose(*programs):
    """The disjoint product: all threads side by side, with each
    component's variables (and thread ids, for uniqueness) suffixed."""
    threads = {}
    client_vars = {}
    for i, program in enumerate(programs):
        suffix = "" if i == 0 else chr(ord("a") + i - 1)
        for tid, thread in program.threads.items():
            threads[tid + suffix] = Thread(
                _ren_node(thread.body, suffix), thread.done_label
            )
        for var, val in program.client_vars.items():
            client_vars[var + suffix] = val
    return Program(threads=threads, client_vars=client_vars)


def _family():
    ring2 = _BY_NAME["MP-ring-2-RA"].build
    iriw = _BY_NAME["IRIW-await-RA"].build
    w22 = _BY_NAME["2+2W-RA"].build
    return {
        "2+2W-x-ring2": _compose(w22(), ring2()),
        "iriw-await-x2": _compose(iriw(), iriw()),
        "iriw-await-x-ring2": _compose(iriw(), ring2()),
        "ring2-x2": _compose(ring2(), ring2()),
    }


def _terminal_valuations(result):
    return {
        tuple(
            sorted((tid, ls.items_sorted()) for tid, ls in cfg.locals.items())
        )
        for cfg in result.terminals
    }


def _measure_family():
    per_member = {}
    tot_closure = tot_dpor = 0
    t_closure = t_dpor = 0.0
    for name, program in _family().items():
        t0 = time.perf_counter()
        closure = explore_sequential(program, reduction="closure")
        t_closure += time.perf_counter() - t0
        t0 = time.perf_counter()
        dpor = explore_sequential(program, reduction="dpor")
        t_dpor += time.perf_counter() - t0
        assert _terminal_valuations(closure) == _terminal_valuations(
            dpor
        ), f"terminal parity broken on {name}"
        assert bool(closure.stuck) == bool(dpor.stuck), name
        per_member[name] = {
            "closure": closure.state_count,
            "dpor": dpor.state_count,
        }
        tot_closure += closure.state_count
        tot_dpor += dpor.state_count
    return per_member, tot_closure, tot_dpor, t_closure, t_dpor


def test_dpor_family_smoke(record_row):
    per_member, tot_closure, tot_dpor, t_closure, t_dpor = _measure_family()
    state_ratio = tot_closure / tot_dpor
    time_ratio = t_closure / t_dpor if t_dpor > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "family": per_member,
                    "totals": {
                        "closure": tot_closure,
                        "dpor": tot_dpor,
                        "state_ratio": round(state_ratio, 2),
                        "time_ratio": round(time_ratio, 2),
                    },
                },
                indent=2,
            )
            + "\n"
        )

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["totals"]["time_ratio"] / REGRESSION_FACTOR
    enforce = os.environ.get("REPRO_PERF_SMOKE", "") == "1"
    ok = state_ratio >= STATE_RATIO_FLOOR and (
        time_ratio >= floor or not enforce
    )
    record_row(
        "R2 dpor family",
        f"≥{STATE_RATIO_FLOOR}x fewer stored states than closure over "
        "the composed-litmus family, terminals identical",
        f"{tot_closure} -> {tot_dpor} states ({state_ratio:.2f}x), "
        f"wall-clock {time_ratio:.2f}x",
        ok,
    )
    # Counts are deterministic: both the committed baseline and the
    # headline gate hold on every run, on any hardware.
    assert per_member == baseline["family"], (
        "family or dpor changed: regenerate BENCH_dpor.json with "
        "REPRO_BENCH_WRITE_BASELINE=1"
    )
    assert state_ratio >= STATE_RATIO_FLOOR, (
        f"dpor regressed: {state_ratio:.2f}x < {STATE_RATIO_FLOOR}x "
        "aggregate stored-state reduction vs closure over the family"
    )
    if enforce:
        assert time_ratio >= floor, (
            f"dpor perf regression: {time_ratio:.2f}x < {floor:.2f}x "
            f"(committed baseline {baseline['totals']['time_ratio']}x, "
            f"allowed regression {REGRESSION_FACTOR}x)"
        )
