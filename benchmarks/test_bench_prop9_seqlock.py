"""P9 — Proposition 9: the sequence lock refines the abstract lock.

Paper claim: for synchronisation-free clients there is a forward
simulation between the abstract lock and the sequence lock.  The bench
solves the simulation game (Definition 8) over the product of the
abstract and concrete configuration graphs; the surviving greatest
fixpoint is the simulation relation.
"""

from repro.refinement.simulation import find_forward_simulation
from tests.conftest import abstract_lock_client, seqlock_client


def run_prop9():
    return find_forward_simulation(seqlock_client(), abstract_lock_client())


def test_prop9_simulation(benchmark, record_row):
    result = benchmark(run_prop9)
    record_row(
        "P9 (seqlock ⊑ abstract lock)",
        "forward simulation exists",
        f"found={result.found}, |R|={result.relation_size}, "
        f"{result.concrete_states} conc / {result.abstract_states} abs states",
        result.found,
    )
    assert result.found


def test_prop9_writer_client(benchmark, record_row):
    result = benchmark.pedantic(
        lambda: find_forward_simulation(
            seqlock_client(readers=False), abstract_lock_client(readers=False)
        ),
        rounds=1,
        iterations=1,
    )
    record_row(
        "P9 writer client",
        "simulation across client battery",
        f"found={result.found}, |R|={result.relation_size}",
        result.found,
    )
    assert result.found


def test_prop9_trace_confirmation(benchmark, record_row):
    """Definition 6 checked directly for the same client."""
    from repro.refinement.tracecheck import check_program_refinement

    result = benchmark.pedantic(
        lambda: check_program_refinement(seqlock_client(), abstract_lock_client()),
        rounds=1,
        iterations=1,
    )
    record_row(
        "P9 traces",
        "C[seqlock] ⊑ C[abstract]",
        f"refines={result.refines} "
        f"({result.concrete_traces} conc / {result.abstract_traces} abs traces)",
        result.refines,
    )
    assert result.refines


def test_prop9_supplied_relation(benchmark, record_row):
    """The paper's workflow: a hand-built relation (client alignment +
    glb-parity with the CAS completion window) discharged against
    Definition 8's conditions."""
    from repro.refinement.checkrel import check_simulation_relation
    from tests.test_refinement_checkrel import TestSeqlockRelation

    result = benchmark.pedantic(
        lambda: check_simulation_relation(
            seqlock_client(), abstract_lock_client(), TestSeqlockRelation.relation
        ),
        rounds=1,
        iterations=1,
    )
    record_row(
        "P9 hand-built R",
        "supplied relation satisfies Definition 8",
        f"valid={result.valid}, {result.related_pairs} related pairs, "
        f"{result.checked_steps} steps matched",
        result.valid,
    )
    assert result.valid
