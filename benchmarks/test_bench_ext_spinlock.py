"""X1 — Extension: a test-and-set spinlock refines the abstract lock.

The paper's §7 names further data types as future work; the spinlock is
the simplest additional lock and demonstrates the same abstract
specification serves a third implementation (the paper's question (3)).
"""

from repro.refinement.simulation import find_forward_simulation
from repro.refinement.tracecheck import check_program_refinement
from tests.conftest import abstract_lock_client, spinlock_client


def run_spinlock():
    return find_forward_simulation(spinlock_client(), abstract_lock_client())


def test_spinlock_simulation(benchmark, record_row):
    result = benchmark(run_spinlock)
    record_row(
        "X1 (spinlock ⊑ abstract lock)",
        "same spec serves a third implementation",
        f"found={result.found}, |R|={result.relation_size}",
        result.found,
    )
    assert result.found


def test_spinlock_traces(benchmark, record_row):
    result = benchmark.pedantic(
        lambda: check_program_refinement(spinlock_client(), abstract_lock_client()),
        rounds=1,
        iterations=1,
    )
    record_row(
        "X1 traces",
        "C[spinlock] ⊑ C[abstract]",
        f"refines={result.refines}",
        result.refines,
    )
    assert result.refines


def test_counter_extension(benchmark, record_row):
    """X2: the FAI counter refines the abstract atomic counter —
    the framework generalises beyond locks."""
    from repro.impls.counter_fai import FAICOUNTER_VARS, counter_fill
    from repro.lang import ast as A
    from repro.lang.expr import Lit
    from repro.lang.program import Program, Thread
    from repro.objects.counter import AbstractCounter

    def client(fill, objects=(), lib_vars=None):
        t1 = A.seq(
            A.Labeled(1, A.Write("x", Lit(5))),
            A.Labeled(2, fill("c", "inc", "a")),
        )
        t2 = A.seq(
            A.Labeled(1, fill("c", "inc", "b")),
            A.Labeled(2, A.Read("r", "x")),
        )
        return Program(
            threads={
                "1": Thread(t1, done_label=3),
                "2": Thread(t2, done_label=3),
            },
            client_vars={"x": 0},
            lib_vars=dict(lib_vars or {}),
            objects=tuple(objects),
        )

    conc = client(counter_fill, lib_vars=FAICOUNTER_VARS)
    abst = client(
        lambda o, m, d=None: A.MethodCall(o, m, dest=d),
        objects=(AbstractCounter("c"),),
    )
    def work():
        return (
            find_forward_simulation(conc, abst),
            check_program_refinement(conc, abst),
        )

    sim, ref = benchmark.pedantic(work, rounds=1, iterations=1)
    ok = sim.found and ref.refines
    record_row(
        "X2 (FAI counter ⊑ abstract counter)",
        "framework generalises beyond locks",
        f"sim={sim.found}, traces={ref.refines}",
        ok,
    )
    assert ok
