"""T8.1 — Theorem 8.1: forward simulation implies contextual refinement.

Cross-validation of the two checkers: wherever the simulation game finds
a relation, the direct Definition 6 trace check must confirm refinement
(soundness).  The broken-lock controls confirm the converse failure mode
is also visible.
"""

import pytest

from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.litmus.clients import abstract_fill, lock_client
from repro.objects.lock import AbstractLock
from repro.refinement.simulation import find_forward_simulation
from repro.refinement.tracecheck import check_program_refinement

IMPLS = [
    ("seqlock", seqlock_fill, SEQLOCK_VARS),
    ("ticketlock", ticketlock_fill, TICKETLOCK_VARS),
    ("spinlock", spinlock_fill, SPINLOCK_VARS),
]


def _abstract(**kw):
    fill, objs = abstract_fill(lambda: AbstractLock("l"))
    return lock_client(fill, objects=objs, **kw)


def crosscheck(fill, lib_vars, **kw):
    conc = lock_client(fill, lib_vars=dict(lib_vars), **kw)
    abst = _abstract(**kw)
    sim = find_forward_simulation(conc, abst)
    ref = check_program_refinement(conc, abst)
    return sim, ref


@pytest.mark.parametrize("name,fill,lib_vars", IMPLS, ids=[i[0] for i in IMPLS])
def test_soundness(benchmark, record_row, name, fill, lib_vars):
    sim, ref = benchmark.pedantic(
        crosscheck, args=(fill, lib_vars), iterations=1, rounds=3
    )
    ok = sim.found and ref.refines
    record_row(
        f"T8.1 {name}",
        "simulation ⇒ trace refinement",
        f"sim={sim.found}, traces={ref.refines}",
        ok,
    )
    assert ok


def test_soundness_control(benchmark, record_row):
    """Broken lock: both checkers must reject (the implication is not
    vacuously witnessed)."""

    def broken(obj, method, dest=None):
        if method == "acquire":
            return A.LibBlock(
                A.do_until(A.Cas("_b", "lk", Lit(0), Lit(1)), Reg("_b"))
            )
        return A.LibBlock(A.Write("lk", Lit(0)))  # relaxed release: broken

    conc = lock_client(broken, lib_vars={"lk": 0})
    abst = _abstract()

    def work():
        return (
            find_forward_simulation(conc, abst),
            check_program_refinement(conc, abst),
        )

    sim, ref = benchmark.pedantic(work, rounds=1, iterations=1)
    ok = (not sim.found) and (not ref.refines)
    record_row(
        "T8.1 control",
        "broken lock rejected by both checkers",
        f"sim={sim.found}, traces={ref.refines}",
        ok,
    )
    assert ok
