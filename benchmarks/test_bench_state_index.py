"""S1 — State index: indexed vs naive component-state exploration.

The indexed :class:`~repro.memory.state.ComponentState` answers
``obs``/placement/canonicalisation queries through an incrementally
maintained per-variable index; :mod:`repro.memory.naive` retains the
original full-scan implementation.  Both representations are driven
through the *same* BFS loop over the same programs, so the measured
ratio isolates the state representation (parity of state/edge counts is
asserted on every run).

Two legs:

* **smoke** (always on): the Peterson state space (~1k states).
  Records the measured speedup next to the committed baseline in
  ``benchmarks/BENCH_state_index.json``; with ``REPRO_PERF_SMOKE=1``
  (the CI perf job) a >2x regression against the baseline *ratio*
  fails the run — the ratio of two same-host measurements transfers
  across machines, absolute wall-clock does not.  Regenerate the
  baseline with ``REPRO_BENCH_WRITE_BASELINE=1``.
* **large** (``REPRO_BENCH_LARGE=1``): the ≥50k-state space the
  headline claim is stated over — the index must be ≥2x faster than
  the naive representation sequentially.
"""

import json
import os
import time
from collections import deque
from pathlib import Path

import pytest

from benchmarks.spaces import wide_program
from repro.lang.program import Program
from repro.litmus.peterson import peterson_program
from repro.memory.naive import explore_naive
from repro.semantics.canon import canonical_key
from repro.semantics.config import initial_config
from repro.semantics.step import successors

BASELINE_PATH = Path(__file__).parent / "BENCH_state_index.json"

#: Fail the perf-smoke gate when the measured indexed-vs-naive speedup
#: drops below half the committed baseline speedup (a >2x regression).
REGRESSION_FACTOR = 2.0


def _bfs_indexed(program: Program):
    """The indexed leg: identical loop shape to ``explore_naive``."""
    init = initial_config(program)
    seen = {canonical_key(program, init)}
    queue = deque([init])
    states, edges = 1, 0
    while queue:
        cfg = queue.popleft()
        for tr in successors(program, cfg):
            edges += 1
            key = canonical_key(program, tr.target)
            if key not in seen:
                seen.add(key)
                states += 1
                queue.append(tr.target)
    return states, edges


def _measure(program: Program):
    t0 = time.perf_counter()
    states_i, edges_i = _bfs_indexed(program)
    indexed_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    states_n, edges_n, _terminals = explore_naive(program)
    naive_s = time.perf_counter() - t0
    assert (states_i, edges_i) == (states_n, edges_n), (
        f"representation parity broken: indexed {(states_i, edges_i)} "
        f"vs naive {(states_n, edges_n)}"
    )
    return states_i, indexed_s, naive_s


def test_state_index_smoke(record_row):
    states, indexed_s, naive_s = _measure(peterson_program())
    speedup = naive_s / indexed_s if indexed_s > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "program": "peterson",
                    "states": states,
                    "indexed_s": round(indexed_s, 4),
                    "naive_s": round(naive_s, 4),
                    "speedup": round(speedup, 2),
                },
                indent=2,
            )
            + "\n"
        )

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["speedup"] / REGRESSION_FACTOR
    enforce = os.environ.get("REPRO_PERF_SMOKE", "") == "1"
    ok = speedup >= floor or not enforce
    record_row(
        "S1 state index smoke",
        f"indexed ≥ {floor:.2f}x naive (½ of committed {baseline['speedup']}x)"
        + ("" if enforce else " [informational]"),
        f"{states} states, {speedup:.2f}x "
        f"({indexed_s:.2f}s vs {naive_s:.2f}s)",
        ok and speedup >= floor,
    )
    assert states == baseline["states"], (
        "smoke program changed: regenerate BENCH_state_index.json with "
        "REPRO_BENCH_WRITE_BASELINE=1"
    )
    if enforce:
        assert speedup >= floor, (
            f"state-index perf regression: {speedup:.2f}x < {floor:.2f}x "
            f"(committed baseline {baseline['speedup']}x, allowed "
            f"regression {REGRESSION_FACTOR}x)"
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="≥50k-state space (minutes of naive exploration); "
    "set REPRO_BENCH_LARGE=1",
)
def test_state_index_large_space(record_row):
    """The ≥2x sequential-speedup claim on a ≥50k-state space."""
    states, indexed_s, naive_s = _measure(wide_program(4, reads=3))
    speedup = naive_s / indexed_s if indexed_s > 0 else float("inf")
    ok = states >= 50_000 and speedup >= 2.0
    record_row(
        "S1 state index large",
        "≥50k states, indexed ≥2x naive sequentially",
        f"{states} states, {speedup:.2f}x "
        f"({indexed_s:.1f}s vs {naive_s:.1f}s)",
        ok,
    )
    assert states >= 50_000
    assert speedup >= 2.0
