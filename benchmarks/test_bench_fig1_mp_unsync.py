"""F1 — Figure 1: unsynchronised message passing via a relaxed stack.

Paper claim: with relaxed push/pop the client can only establish
``r2 = 0 ∨ r2 = 5`` — the stale read ``r2 = 0`` is a real behaviour.
The bench regenerates the exhaustive outcome set and times the
verification run.
"""

from repro.figures.fig1 import EXPECTED_OUTCOMES, fig1_program
from repro.semantics.explore import explore


def run_fig1():
    result = explore(fig1_program())
    return result, result.terminal_locals(("2", "r2"))


def test_fig1_outcomes(benchmark, record_row):
    result, outcomes = benchmark(run_fig1)
    ok = outcomes == EXPECTED_OUTCOMES and not result.stuck
    record_row(
        "F1 (Fig 1, MP via relaxed stack)",
        "r2 ∈ {0, 5}; stale r2 = 0 reachable",
        f"outcomes {sorted(v for (v,) in outcomes)}, "
        f"{result.state_count} states",
        ok,
    )
    assert ok


def test_fig1_stale_read_witness(benchmark, record_row):
    """The weak behaviour is exhibited, not merely allowed: a terminal
    state with r2 = 0 exists."""
    _result, outcomes = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    ok = (0,) in outcomes
    record_row(
        "F1 witness",
        "stale read realised",
        "r2 = 0 reached" if ok else "r2 = 0 unreachable",
        ok,
    )
    assert ok
