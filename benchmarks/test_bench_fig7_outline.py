"""F7/L4 — Figure 7's proof outline and Lemma 4.

Paper claim (Lemma 4): the proof outline for the lock-synchronisation
client — with the paper's ``Inv``, ``P1–P4``, ``Q1–Q4`` verbatim — is
valid, establishing the postcondition
``(r1 = 0 ∧ r2 = 0) ∨ (r1 = 5 ∧ r2 = 5)``.
"""

from repro.figures.fig7 import EXPECTED_OUTCOMES, fig7_outline, fig7_program
from repro.logic.owicki import check_proof_outline
from repro.semantics.explore import explore


def run_lemma4():
    return check_proof_outline(fig7_outline())


def test_lemma4_outline_valid(benchmark, record_row):
    result = benchmark(run_lemma4)
    record_row(
        "F7/L4 (Fig 7 outline, Lemma 4)",
        "outline valid with the paper's Inv, P1-P4, Q1-Q4",
        f"valid={result.valid}, {result.obligations} obligations, "
        f"{result.states} states",
        result.valid,
    )
    assert result.valid


def test_fig7_postcondition(benchmark, record_row):
    result = benchmark.pedantic(
        lambda: explore(fig7_program()), rounds=1, iterations=1
    )
    outcomes = result.terminal_locals(("2", "rl"), ("2", "r1"), ("2", "r2"))
    ok = outcomes == EXPECTED_OUTCOMES
    record_row(
        "F7 post",
        "(rl=1 ∧ r1=r2=0) ∨ (rl=3 ∧ r1=r2=5)",
        f"outcomes {sorted(outcomes)}",
        ok,
    )
    assert ok


def test_mutated_outline_rejected(benchmark, record_row):
    """Soundness control: strengthening the invariant falsely must be
    caught (a checker that accepts everything reproduces nothing)."""
    from repro.assertions.core import LocalEq
    from repro.logic.outline import ProofOutline

    outline = fig7_outline()
    bad = ProofOutline(
        program=outline.program,
        threads=outline.threads,
        invariant=outline.invariant & LocalEq("2", "rl", 1),
        postcondition=outline.postcondition,
    )
    result = benchmark.pedantic(
        lambda: check_proof_outline(bad), rounds=1, iterations=1
    )
    ok = not result.valid
    record_row(
        "F7 control",
        "falsified invariant rejected",
        f"{len(result.failures)} obligations fail",
        ok,
    )
    assert ok
