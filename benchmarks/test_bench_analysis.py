"""R3 — analysis layer: phase-sensitive vs whole-continuation footprints.

Both legs drive the same DPOR exploration (``reduction="dpor"``) over a
family of *modal* composed programs — disjoint-variable thread products
where every thread ends in a branch on a mode register preset by
``init_locals``, whose statically-dead arm touches one variable ``z``
shared by all threads.  Whole-continuation footprints
(:func:`repro.semantics.dpor.thread_footprint`) union both branch arms,
so ``z`` connects every thread in the conflict graph and the persistent
sets degenerate to full expansion while the threads are mid-work.  The
phase-sensitive summaries (:func:`repro.analysis.phase_footprint`)
constant-fold the branch under the thread's concrete locals, drop the
dead arm, and split the threads into singleton components — the
disjoint product the programs actually are.

The legs are toggled with
:func:`repro.semantics.dpor.set_footprint_mode` so the *only* variable
is the footprint feeding DPOR's conflict partitioning; terminal-
valuation parity is asserted on every member, and the headline
**≥1.2x aggregate stored-state reduction** is asserted
deterministically on every run (the measured ratio is far larger).

Per-member counts are committed to ``benchmarks/BENCH_analysis.json``
(regenerate with ``REPRO_BENCH_WRITE_BASELINE=1``); with
``REPRO_PERF_SMOKE=1`` (the CI perf job) a >2x regression of the
recorded whole-vs-phase wall-clock ratio fails the run.
"""

import json
import os
import time
from pathlib import Path

from repro.engine.core import explore_sequential
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.semantics.dpor import set_footprint_mode

BASELINE_PATH = Path(__file__).parent / "BENCH_analysis.json"

#: Fail the perf-smoke gate when the measured phase-vs-whole wall-clock
#: speedup drops below half the committed baseline speedup.
REGRESSION_FACTOR = 2.0

#: The headline aggregate state-reduction gate (the issue's floor; the
#: family measures far above it).
STATE_RATIO_FLOOR = 1.2


def _modal_member(k: int) -> Program:
    """``k`` independent writer threads, each two visible writes to its
    own variable followed by a mode branch whose dead arm writes the
    shared ``z``.  The dead arm sits *after* the visible work on
    purpose: a head-position constant branch would be folded by the
    ε-closure itself, hiding the refinement being measured."""
    threads = {}
    client_vars = {"z": 0}
    for i in range(k):
        var = f"a{i}"
        client_vars[var] = 0
        threads[str(i + 1)] = Thread(
            A.seq(
                A.Write(var, Lit(1)),
                A.seq(
                    A.Write(var, Lit(2)),
                    A.If(
                        Reg("m").eq(0),
                        A.Write(var, Lit(3)),
                        A.Write("z", Lit(1)),
                    ),
                ),
            )
        )
    return Program(
        threads=threads,
        client_vars=client_vars,
        init_locals={tid: {"m": 0} for tid in threads},
    )


def _family():
    return {
        "modal-2": _modal_member(2),
        "modal-3": _modal_member(3),
        "modal-4": _modal_member(4),
    }


def _terminal_valuations(result):
    return {
        tuple(
            sorted((tid, ls.items_sorted()) for tid, ls in cfg.locals.items())
        )
        for cfg in result.terminals
    }


def _explore_with_mode(program, mode):
    previous = set_footprint_mode(mode)
    try:
        return explore_sequential(program, reduction="dpor")
    finally:
        set_footprint_mode(previous)


def _measure_family():
    per_member = {}
    tot_whole = tot_phase = 0
    t_whole = t_phase = 0.0
    for name, program in _family().items():
        t0 = time.perf_counter()
        whole = _explore_with_mode(program, "whole")
        t_whole += time.perf_counter() - t0
        t0 = time.perf_counter()
        phase = _explore_with_mode(program, "phase")
        t_phase += time.perf_counter() - t0
        assert _terminal_valuations(whole) == _terminal_valuations(
            phase
        ), f"terminal parity broken on {name}"
        assert bool(whole.stuck) == bool(phase.stuck), name
        per_member[name] = {
            "whole": whole.state_count,
            "phase": phase.state_count,
        }
        tot_whole += whole.state_count
        tot_phase += phase.state_count
    return per_member, tot_whole, tot_phase, t_whole, t_phase


def test_analysis_footprint_family_smoke(record_row):
    per_member, tot_whole, tot_phase, t_whole, t_phase = _measure_family()
    state_ratio = tot_whole / tot_phase
    time_ratio = t_whole / t_phase if t_phase > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "family": per_member,
                    "totals": {
                        "whole": tot_whole,
                        "phase": tot_phase,
                        "state_ratio": round(state_ratio, 2),
                        "time_ratio": round(time_ratio, 2),
                    },
                },
                indent=2,
            )
            + "\n"
        )

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["totals"]["time_ratio"] / REGRESSION_FACTOR
    enforce = os.environ.get("REPRO_PERF_SMOKE", "") == "1"
    ok = state_ratio >= STATE_RATIO_FLOOR and (
        time_ratio >= floor or not enforce
    )
    record_row(
        "R3 analysis footprints",
        f"≥{STATE_RATIO_FLOOR}x fewer stored states under dpor with "
        "phase-sensitive footprints vs whole-continuation, terminals "
        "identical",
        f"{tot_whole} -> {tot_phase} states ({state_ratio:.2f}x), "
        f"wall-clock {time_ratio:.2f}x",
        ok,
    )
    # Counts are deterministic: both the committed baseline and the
    # headline gate hold on every run, on any hardware.
    assert per_member == baseline["family"], (
        "family or footprint analysis changed: regenerate "
        "BENCH_analysis.json with REPRO_BENCH_WRITE_BASELINE=1"
    )
    assert state_ratio >= STATE_RATIO_FLOOR, (
        f"phase footprints regressed: {state_ratio:.2f}x < "
        f"{STATE_RATIO_FLOOR}x aggregate stored-state reduction vs "
        "whole-continuation footprints over the modal family"
    )
    if enforce:
        assert time_ratio >= floor, (
            f"analysis perf regression: {time_ratio:.2f}x < {floor:.2f}x "
            f"(committed baseline {baseline['totals']['time_ratio']}x, "
            f"allowed regression {REGRESSION_FACTOR}x)"
        )
