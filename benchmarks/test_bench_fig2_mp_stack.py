"""F2 — Figure 2: publication via a synchronising stack.

Paper claim: with ``push_R``/``pop_A`` the release-acquire
synchronisation induced by the stack guarantees ``r2 = 5`` — the stale
initial write of ``d`` is unobservable once the pop returns 1.
"""

from repro.figures.fig2 import EXPECTED_OUTCOMES, fig2_program
from repro.semantics.explore import explore


def run_fig2():
    result = explore(fig2_program())
    return result, result.terminal_locals(("2", "r2"))


def test_fig2_outcomes(benchmark, record_row):
    result, outcomes = benchmark(run_fig2)
    ok = outcomes == EXPECTED_OUTCOMES and not result.stuck
    record_row(
        "F2 (Fig 2, MP via sync stack)",
        "r2 = 5 in every terminal state",
        f"outcomes {sorted(v for (v,) in outcomes)}, "
        f"{result.state_count} states",
        ok,
    )
    assert ok


def test_fig2_contrast_with_fig1(benchmark, record_row):
    """The synchronising stack removes exactly the stale-read behaviour
    that Figure 1 exhibits."""
    from repro.figures.fig1 import fig1_program

    def work():
        weak = explore(fig1_program()).terminal_locals(("2", "r2"))
        strong = explore(fig2_program()).terminal_locals(("2", "r2"))
        return weak, strong

    weak, strong = benchmark.pedantic(work, rounds=1, iterations=1)
    ok = weak - strong == {(0,)}
    record_row(
        "F1 vs F2",
        "annotations remove exactly the stale read",
        f"difference {sorted(v for (v,) in (weak - strong))}",
        ok,
    )
    assert ok
