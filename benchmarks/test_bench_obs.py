"""O1 — Telemetry overhead: instrumentation must not tax the engine.

Both legs drive the *same* engine loop (`explore_sequential`) over the
same ``wide(4, reads=2)`` relaxed-access grid (~3k states), once with
``metrics=None`` (telemetry off — the shipping default) and once with a
live :class:`repro.obs.metrics.Metrics` sink.  Legs are interleaved
with alternating order across ``REPEATS`` repetitions and the ratio of
the per-leg minima is gated: the minimum is the least-noise estimate of
each leg's true cost, and alternation ensures neither leg always sits
in the slower second slot of a pair.

* **smoke** (always on): the on/off wall-clock ratio is recorded next
  to the committed baseline ``benchmarks/BENCH_obs.json`` and asserted
  against a lenient unconditional bound; with ``REPRO_PERF_SMOKE=1``
  (the CI perf job) the ratio must stay within **5%** — the headline
  "metrics on costs ≤5% states/sec" gate.  Counter/state parity between
  the legs is asserted unconditionally.  Regenerate the baseline with
  ``REPRO_BENCH_WRITE_BASELINE=1``.
* **off is inert**: with no sink attached the engine must install no
  active collector and allocate no snapshot, and the per-site guard
  (one module-attribute load + ``is None`` test) must cost nanoseconds
  — the "unmeasurable with metrics off" claim, enforced structurally
  plus a micro-timing of the guard itself.
"""

import gc
import json
import os
import time
from pathlib import Path

from benchmarks.spaces import wide_program
from repro.engine.core import explore_sequential
from repro.obs import metrics as _metrics
from repro.obs.metrics import Metrics, active

BASELINE_PATH = Path(__file__).parent / "BENCH_obs.json"

#: Interleaved off/on repetition pairs; min-of-N per leg defeats
#: scheduler noise, alternation defeats within-pair position bias.
REPEATS = 7

#: The headline perf-smoke gate: metrics on may cost at most 5%.
OVERHEAD_CEILING = 1.05

#: Unconditional bound — loose enough for loaded laptops, tight enough
#: to catch an accidentally quadratic collection point.
LENIENT_CEILING = 1.30


def _leg(metrics):
    """One timed exploration; returns only scalars.  The full
    ``ExploreResult`` (thousands of configs) must NOT survive the leg:
    a large live heap left over from a previous leg skews the next
    leg's GC time, which measurably biases the comparison."""
    program = wide_program(4, reads=2)
    gc.collect()  # every leg starts from the same heap state
    t0 = time.perf_counter()
    result = explore_sequential(program, metrics=metrics)
    elapsed = time.perf_counter() - t0
    return elapsed, (result.state_count, result.edge_count)


def _measure():
    _leg(None)  # warm caches and the first-import cost
    off_times, on_times = [], []
    counts = on_metrics = None
    for rep in range(REPEATS):
        # Alternate which leg goes first so the slower second slot of
        # each pair is shared evenly between the legs.
        m = Metrics()
        if rep % 2 == 0:
            off_t, off_counts = _leg(None)
            on_t, on_counts = _leg(m)
        else:
            on_t, on_counts = _leg(m)
            off_t, off_counts = _leg(None)
        off_times.append(off_t)
        on_times.append(on_t)
        on_metrics = m
        assert on_counts == off_counts
        counts = off_counts
    return min(off_times), min(on_times), counts, on_metrics


def test_obs_overhead_smoke(record_row):
    off_s, on_s, (states, edges), metrics = _measure()
    ratio = on_s / off_s if off_s > 0 else float("inf")

    # The sink must have seen the exploration it was attached to.
    assert metrics.counters["explore.states"] == states
    assert metrics.counters["explore.edges"] == edges

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "workload": "wide(4, reads=2)",
                    "states": states,
                    "off_s": round(off_s, 4),
                    "on_s": round(on_s, 4),
                    "overhead_ratio": round(ratio, 3),
                },
                indent=2,
            )
            + "\n"
        )

    baseline = json.loads(BASELINE_PATH.read_text())
    enforce = os.environ.get("REPRO_PERF_SMOKE", "") == "1"
    ok = ratio <= (OVERHEAD_CEILING if enforce else LENIENT_CEILING)
    record_row(
        "O1 telemetry overhead",
        f"metrics on costs <={(OVERHEAD_CEILING - 1) * 100:.0f}% "
        "wall-clock vs telemetry off",
        f"{states} states, off {off_s * 1000:.0f}ms / "
        f"on {on_s * 1000:.0f}ms ({(ratio - 1) * 100:+.1f}%)",
        ok,
    )
    # The workload is deterministic: the committed state count holds on
    # any hardware.
    assert states == baseline["states"], (
        "workload changed: regenerate BENCH_obs.json with "
        "REPRO_BENCH_WRITE_BASELINE=1"
    )
    assert ratio <= LENIENT_CEILING, (
        f"telemetry overhead blew up: {(ratio - 1) * 100:.1f}% > "
        f"{(LENIENT_CEILING - 1) * 100:.0f}% — a collection point has "
        "left the guarded slow path"
    )
    if enforce:
        assert ratio <= OVERHEAD_CEILING, (
            f"telemetry perf regression: metrics on costs "
            f"{(ratio - 1) * 100:.1f}% > "
            f"{(OVERHEAD_CEILING - 1) * 100:.0f}% "
            f"(committed baseline {baseline['overhead_ratio']}x)"
        )


def test_obs_disabled_is_inert(record_row):
    """Telemetry off must be free: no collector installed, no snapshot
    allocated, and the per-site guard costing nanoseconds."""
    result = explore_sequential(wide_program(3, reads=1))
    assert result.metrics is None
    assert active() is None

    # The entire off-path cost at a reduction-layer collection point is
    # this guard; time it directly so the claim carries a number.
    n = 1_000_000
    t0 = time.perf_counter()
    hits = 0
    for _ in range(n):
        if _metrics._ACTIVE is not None:  # the exact hot-path idiom
            hits += 1
    per_site_ns = (time.perf_counter() - t0) / n * 1e9
    assert hits == 0
    ok = per_site_ns < 1000  # interpreter-loop bound; real cost is ~ns
    record_row(
        "O1 telemetry off",
        "disabled instrumentation is unmeasurable "
        "(guard = attr load + is-None test)",
        f"guard costs {per_site_ns:.0f}ns/site, no collector installed",
        ok,
    )
    assert ok
