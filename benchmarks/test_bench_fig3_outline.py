"""F3 — Figure 3: the Owicki–Gries proof outline for message passing.

Paper claim: the outline (assertions over definite/possible/conditional
observations of the stack and of ``d``) is valid — initial assertions
hold, every statement is locally correct, no statement interferes with
another thread's assertions, and the postcondition ``r2 = 5`` follows.
"""

from repro.figures.fig3 import fig3_initial_assertion, fig3_outline
from repro.assertions.core import make_env
from repro.logic.owicki import check_proof_outline
from repro.semantics.config import initial_config


def run_fig3():
    return check_proof_outline(fig3_outline())


def test_fig3_outline_valid(benchmark, record_row):
    result = benchmark(run_fig3)
    record_row(
        "F3 (Fig 3, MP proof outline)",
        "outline OG-valid",
        f"valid={result.valid}, {result.obligations} obligations over "
        f"{result.states} states",
        result.valid,
    )
    assert result.valid


def test_fig3_initial_assertion(benchmark, record_row):
    def work():
        outline = fig3_outline()
        env = make_env(outline.program, initial_config(outline.program))
        return fig3_initial_assertion().holds(env)

    ok = benchmark.pedantic(work, rounds=1, iterations=1)
    record_row(
        "F3 init",
        "[d=0]1 ∧ [d=0]2 ∧ [s.pop emp]",
        "holds" if ok else "fails",
        ok,
    )
    assert ok
