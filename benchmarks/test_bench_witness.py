"""W1 — Witness machinery: parent-tracking overhead and memory shape.

Two claims are gated:

* **throughput** — recording predecessor edges (``track_parents=True``)
  costs the sequential engine at most **15% states/sec** vs tracking
  off (the cost is one extra dict insert per discovered state, re-
  hashing its canonical key).  Both legs drive the identical
  ``explore_sequential`` loop over Peterson's algorithm, interleaved
  and best-of-N; the ratio is enforced under ``REPRO_PERF_SMOKE=1``
  (CI) and recorded always.
* **memory** — the engine's predecessor graph is *digest-based*: per
  state a 16-byte digest key plus a ``(parent digest, tid, component,
  action)`` label, never a configuration.  Its deep bytes/state must
  beat the config-storing :func:`find_path` reference (which retains a
  full ``Config`` per state inside its parent map) by a wide margin —
  enforced unconditionally, the ordering is platform-independent.

The committed ``BENCH_witness.json`` records the measured numbers
(regenerate with ``REPRO_BENCH_WRITE_BASELINE=1``).
"""

import json
import os
import sys
import time
from collections import deque
from pathlib import Path

from repro.engine import ExplorationEngine
from repro.engine.core import explore_sequential
from repro.litmus.peterson import peterson_program
from repro.semantics.canon import canonical_key
from repro.semantics.config import initial_config
from repro.semantics.step import successors
from repro.semantics.witness import WitnessStep

BASELINE_PATH = Path(__file__).parent / "BENCH_witness.json"

#: Parent tracking may cost at most this fraction of states/sec.
OVERHEAD_FLOOR = 0.85

#: Digest-based tracking must be at least this many times leaner than
#: config-storing parent maps (measured ~100x; 5x is a loose floor).
MEMORY_RATIO_FLOOR = 5.0


def _deep_bytes(obj, seen=None) -> int:
    """Recursive ``sys.getsizeof`` with sharing awareness: each object
    is counted once, so structurally shared substates are not double
    billed — the fair way to compare the two parent representations."""
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for k, v in obj.items():
            size += _deep_bytes(k, seen) + _deep_bytes(v, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for e in obj:
            size += _deep_bytes(e, seen)
    elif hasattr(obj, "__dict__"):
        size += _deep_bytes(vars(obj), seen)
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            if hasattr(obj, slot):
                size += _deep_bytes(getattr(obj, slot), seen)
    return size


def _states_per_sec(track: bool, repeats: int) -> float:
    best = 0.0
    for _ in range(repeats):
        program = peterson_program()
        t0 = time.perf_counter()
        result = explore_sequential(program, track_parents=track)
        elapsed = time.perf_counter() - t0
        best = max(best, result.state_count / elapsed)
    return best


def test_parent_tracking_overhead(record_row):
    # Interleave the legs so clock drift hits both equally.
    off = on = 0.0
    for _ in range(3):
        off = max(off, _states_per_sec(False, 1))
        on = max(on, _states_per_sec(True, 1))
    ratio = on / off
    enforce = os.environ.get("REPRO_PERF_SMOKE", "") == "1"
    ok = ratio >= OVERHEAD_FLOOR or not enforce
    record_row(
        "W1 witness tracking overhead",
        f"parent tracking costs ≤{(1 - OVERHEAD_FLOOR):.0%} states/sec",
        f"{off:.0f} -> {on:.0f} states/sec ({ratio:.3f}x)",
        ratio >= OVERHEAD_FLOOR,
    )
    _update_baseline("states_per_sec_ratio", round(ratio, 3))
    if enforce:
        assert ratio >= OVERHEAD_FLOOR, (
            f"parent tracking regressed throughput to {ratio:.3f}x of the "
            f"untracked loop (floor {OVERHEAD_FLOOR}x)"
        )


def _find_path_storage(program, max_states: int):
    """Replicate exactly what the config-storing ``find_path`` retains
    per state: the parent map whose entries hold a full configuration
    (inside :class:`WitnessStep`).  Run with an unsatisfiable predicate
    so the whole space is materialised."""
    init = initial_config(program)
    init_key = canonical_key(program, init)
    parents = {init_key: (None, None)}
    queue = deque([(init_key, init)])
    while queue:
        key, cfg = queue.popleft()
        for tr in successors(program, cfg):
            tkey = canonical_key(program, tr.target)
            if tkey in parents or len(parents) >= max_states:
                continue
            parents[tkey] = (
                key,
                WitnessStep(tr.tid, tr.component, tr.action, tr.target),
            )
            queue.append((tkey, tr.target))
    return parents


def test_digest_tracking_beats_config_storage(record_row):
    program = peterson_program()
    engine = ExplorationEngine(workers=2)
    result = engine.explore(
        program, track_parents=True, keep_configs=False
    )
    assert result.parents is not None
    engine_bytes = _deep_bytes(result.parents) / len(result.parents)

    naive_parents = _find_path_storage(
        peterson_program(), max_states=result.state_count
    )
    naive_bytes = _deep_bytes(naive_parents) / len(naive_parents)

    ratio = naive_bytes / engine_bytes
    ok = ratio >= MEMORY_RATIO_FLOOR
    record_row(
        "W1 witness tracking memory",
        f"digest-based parents ≥{MEMORY_RATIO_FLOOR:.0f}x leaner than "
        "config-storing find_path",
        f"{engine_bytes:.0f} vs {naive_bytes:.0f} tracked bytes/state "
        f"({ratio:.1f}x)",
        ok,
    )
    _update_baseline("engine_bytes_per_state", round(engine_bytes))
    _update_baseline("naive_bytes_per_state", round(naive_bytes))
    # Platform-independent ordering: enforced unconditionally.
    assert ok, (
        f"digest-based parent tracking ({engine_bytes:.0f} B/state) no "
        f"longer beats config-storing find_path ({naive_bytes:.0f} "
        f"B/state) by {MEMORY_RATIO_FLOOR}x"
    )


def _update_baseline(key: str, value) -> None:
    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") != "1":
        return
    data = {}
    if BASELINE_PATH.exists():
        data = json.loads(BASELINE_PATH.read_text())
    data[key] = value
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
