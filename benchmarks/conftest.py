"""Benchmark-session reporting: paper claim vs measured verdict.

Every benchmark records one or more rows via the ``record_row`` fixture;
at the end of the session the rows are printed as the reproduction
table — the analogue of the paper's per-figure/lemma results.
"""

from __future__ import annotations

from typing import List, Tuple

_ROWS: List[Tuple[str, str, str, str]] = []


import pytest


@pytest.fixture()
def record_row():
    """record_row(experiment_id, paper_claim, measured, verdict)."""

    def _record(experiment: str, claim: str, measured: str, ok: bool) -> None:
        _ROWS.append((experiment, claim, measured, "OK" if ok else "MISMATCH"))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    tr = terminalreporter
    tr.section("paper reproduction report")
    widths = [
        max(len(row[i]) for row in _ROWS + [_HEADER]) for i in range(4)
    ]
    for row in [_HEADER, tuple("-" * w for w in widths)] + sorted(set(_ROWS)):
        tr.write_line(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )


_HEADER = ("experiment", "paper claim", "measured", "verdict")
