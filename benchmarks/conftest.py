"""Benchmark-session reporting: paper claim vs measured verdict.

Every benchmark records one or more rows via the ``record_row`` fixture;
at the end of the session the rows are printed as the reproduction
table — the analogue of the paper's per-figure/lemma results.

``pytest --bench-update`` regenerates the committed ``BENCH_*.json``
baselines: it sets ``REPRO_BENCH_WRITE_BASELINE=1`` (the env flag every
benchmark's write path keys on) for the session, and refuses to run on
a dirty git tree so a regenerated baseline is always attributable to
one clean commit.
"""

from __future__ import annotations

import os
import subprocess
from typing import List, Tuple

_ROWS: List[Tuple[str, str, str, str]] = []


import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-update",
        action="store_true",
        default=False,
        help=(
            "regenerate the committed BENCH_*.json baselines (sets "
            "REPRO_BENCH_WRITE_BASELINE=1; refuses on a dirty git tree)"
        ),
    )


def pytest_configure(config):
    if not config.getoption("--bench-update"):
        return
    try:
        dirty = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout.strip()
    except Exception as exc:
        raise pytest.UsageError(
            f"--bench-update could not check the git tree: {exc}"
        )
    if dirty:
        raise pytest.UsageError(
            "--bench-update refuses to regenerate baselines on a dirty "
            "git tree (a baseline must be attributable to one commit); "
            "commit or stash first:\n" + dirty
        )
    os.environ["REPRO_BENCH_WRITE_BASELINE"] = "1"


@pytest.fixture()
def record_row():
    """record_row(experiment_id, paper_claim, measured, verdict)."""

    def _record(experiment: str, claim: str, measured: str, ok: bool) -> None:
        _ROWS.append((experiment, claim, measured, "OK" if ok else "MISMATCH"))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    tr = terminalreporter
    tr.section("paper reproduction report")
    widths = [
        max(len(row[i]) for row in _ROWS + [_HEADER]) for i in range(4)
    ]
    for row in [_HEADER, tuple("-" * w for w in widths)] + sorted(set(_ROWS)):
        tr.write_line(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )


_HEADER = ("experiment", "paper claim", "measured", "verdict")
