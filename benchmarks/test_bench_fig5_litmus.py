"""F5 — Figure 5: the memory semantics, validated by the litmus battery.

The paper's Read/Write/Update rules define RC11 RAR; the battery checks
the exact allowed-outcome sets of the standard litmus shapes (MP, SB,
LB, coherence, IRIW, 2+2W, RMW atomicity) in both relaxed and
release/acquire variants.
"""

import pytest

from repro.litmus.catalog import LITMUS_TESTS, run_litmus


@pytest.mark.parametrize(
    "test", LITMUS_TESTS, ids=[t.name for t in LITMUS_TESTS]
)
def test_litmus(benchmark, record_row, test):
    result = benchmark.pedantic(
        run_litmus, args=(test,), iterations=1, rounds=3
    )
    record_row(
        f"F5 litmus {test.name}",
        ("weak allowed" if test.weak_allowed else "weak forbidden"),
        (
            f"weak {'observed' if result['weak_observed'] else 'absent'}, "
            f"{result['states']} states"
        ),
        result["verdict_ok"],
    )
    assert result["verdict_ok"]


def test_battery_summary(benchmark, record_row):
    results = benchmark.pedantic(
        lambda: [run_litmus(t) for t in LITMUS_TESTS], rounds=1, iterations=1
    )
    ok = all(r["verdict_ok"] for r in results)
    record_row(
        "F5 battery",
        f"{len(LITMUS_TESTS)} litmus verdicts match RC11 RAR",
        f"{sum(r['verdict_ok'] for r in results)}/{len(results)} exact",
        ok,
    )
    assert ok
