"""L5.2 — The read/write/update proof rules of §5.2 (prior-work set).

The paper builds on the rule collection of Dalvandi et al. [5, 6] for
plain memory accesses; this bench checks those rules over the litmus
universes, including the weak-memory subtlety controls (the unguarded
write rule is unsound; the MP-read rule needs the acquire annotation).
"""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.logic.memrules import (
    check_fai_self,
    check_mp_read,
    check_possible_read,
    check_read_self,
    check_read_stable,
    check_write_self,
    check_write_self_unsound_variant,
    check_write_stable,
)
from repro.logic.triples import collect_universe
from tests.conftest import mp_ra, mp_relaxed


@pytest.fixture(scope="module")
def groups():
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1)))
    t2 = A.seq(A.Write("d", Lit(3)), A.Read("r", "f"))
    racy = Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )
    return collect_universe([mp_relaxed(), mp_ra(), racy])


def sweep(groups):
    verdicts = {}
    for program, universe in groups:
        for t in program.tids:
            verdicts.setdefault("W-self", []).append(
                check_write_self(program, universe, t, "d", 0, 9).valid
            )
            verdicts.setdefault("R-self", []).append(
                check_read_self(program, universe, t, "d", 0).valid
            )
            verdicts.setdefault("MP-read", []).append(
                check_mp_read(program, universe, t, "f", 1, "d", 5).valid
            )
            verdicts.setdefault("U-self", []).append(
                check_fai_self(program, universe, t, "d", 0).valid
            )
            verdicts.setdefault("R-poss", []).append(
                check_possible_read(program, universe, t, "d", 0)["ok"]
            )
        verdicts.setdefault("W-stable", []).append(
            check_write_stable(program, universe, "1", "2", "d", 0, "f", 7).valid
        )
        verdicts.setdefault("R-stable", []).append(
            check_read_stable(program, universe, "1", "2", "d", 0, "f").valid
        )
    return verdicts


def test_memory_rules(benchmark, record_row, groups):
    verdicts = benchmark.pedantic(sweep, args=(groups,), iterations=1, rounds=3)
    for rule, results in sorted(verdicts.items()):
        ok = all(results)
        record_row(
            f"§5.2 {rule}",
            "valid (prior-work rule set)",
            f"{sum(results)}/{len(results)} instances valid",
            ok,
        )
        assert ok


def test_unsound_write_rule_control(benchmark, record_row, groups):
    program, universe = groups[2]
    result = benchmark.pedantic(
        lambda: check_write_self_unsound_variant(program, universe, "2", "d", 9),
        rounds=1,
        iterations=1,
    )
    ok = not result.valid
    record_row(
        "§5.2 W-self control",
        "{true} x:=v {[x=v]} unsound under weak memory",
        f"counterexamples found: {len(result.failures)}",
        ok,
    )
    assert ok
