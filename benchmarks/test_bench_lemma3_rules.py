"""L3 — Lemma 3: the six proof rules for the abstract lock.

Each rule schema is instantiated (version indices, values, variables,
thread pairs) and checked over every canonical configuration reachable
from a family of lock clients.  Paper claim: all six rules are valid.
The ``u = 0`` sharpening (see EXPERIMENTS.md) is reported separately.
"""

import pytest

from repro.litmus.clients import (
    abstract_fill,
    lock_client,
    lock_client_one_sided,
    lock_client_three_threads,
)
from repro.logic.lockrules import check_all_rules, check_rule5
from repro.logic.triples import collect_universe
from repro.objects.lock import AbstractLock


def _mk(builder, **kw):
    fill, objs = abstract_fill(lambda: AbstractLock("l"))
    return builder(fill, objects=objs, **kw)


@pytest.fixture(scope="module")
def groups():
    return collect_universe(
        [
            _mk(lock_client),
            _mk(lock_client, readers=False),
            _mk(lock_client_one_sided),
            _mk(lock_client_three_threads),
        ]
    )


def test_all_rules(benchmark, record_row, groups):
    reports = benchmark.pedantic(
        check_all_rules,
        args=(groups,),
        kwargs={"indices": (2, 4), "values": (0, 5)},
        iterations=1,
        rounds=3,
    )
    for name, report in sorted(reports.items()):
        record_row(
            f"L3 {name}",
            "valid (Lemma 3)",
            f"valid={report.valid}, {report.instances} instances, "
            f"{report.checked} pre-states, {report.applied} steps",
            report.valid,
        )
    assert all(r.valid for r in reports.values())


def test_rule5_side_condition(benchmark, record_row, groups):
    """u must be a feasible release index: the degenerate u = 0 makes the
    conditional precondition vacuous while v = 1 stays attainable via
    init_0 — the harness correctly reports that instance invalid."""
    program, universe = groups[0]
    degenerate = benchmark.pedantic(
        lambda: check_rule5(program, universe, "l", "1", 0, "x", 5),
        rounds=1,
        iterations=1,
    )
    ok = not degenerate.valid
    record_row(
        "L3 rule5 u=0",
        "side condition: u ranges over release indices",
        "degenerate instance rejected" if ok else "unexpectedly valid",
        ok,
    )
    assert ok
