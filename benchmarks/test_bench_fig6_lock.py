"""F6 — Figure 6 / Example 1: the abstract lock semantics.

Paper claims: the abstract lock provides (a) mutual exclusion — an
acquire is only enabled when the latest operation is ``init`` or a
release; (b) release-acquire synchronisation — writes made while holding
the lock are definitely visible to the next holder; (c) sequential
version numbering of lock operations.
"""

from repro.figures.fig7 import fig7_program
from repro.semantics.explore import explore
from tests.conftest import abstract_lock_client


def run_lock_exploration():
    return explore(fig7_program())


def test_mutual_exclusion(benchmark, record_row):
    result = benchmark(run_lock_exploration)
    p = result.program

    def both_in_cs(cfg):
        return cfg.pc("1", p) in (2, 3, 4) and cfg.pc("2", p) in (2, 3, 4)

    violations = [c for c in result.configs.values() if both_in_cs(c)]
    ok = not violations and not result.stuck
    record_row(
        "F6 mutex",
        "no state with both threads in CS",
        f"{len(violations)} violations / {result.state_count} states",
        ok,
    )
    assert ok


def test_publication(benchmark, record_row):
    result = benchmark.pedantic(
        lambda: explore(abstract_lock_client()), rounds=1, iterations=1
    )
    outcomes = result.terminal_locals(("2", "a"), ("2", "b"))
    ok = outcomes == {(0, 0), (5, 5)}
    record_row(
        "F6 publication",
        "reader sees all-or-nothing of the CS writes",
        f"outcomes {sorted(outcomes)}",
        ok,
    )
    assert ok


def test_version_numbering(benchmark, record_row):
    result = benchmark.pedantic(
        lambda: explore(fig7_program()), rounds=1, iterations=1
    )
    ok = all(
        sorted(op.act.index for op in cfg.beta.ops_on("l")) == [0, 1, 2, 3, 4]
        for cfg in result.terminals
    )
    record_row(
        "F6 versions",
        "lock ops indexed init_0 … release_4",
        "sequential in every terminal state" if ok else "gap found",
        ok,
    )
    assert ok


def test_acquire_blocking(benchmark, record_row):
    """A double acquire deadlocks (the acquire transition is disabled
    while the lock is held) — blocking is real, not busy-waiting."""
    from repro.lang import ast as A
    from repro.lang.program import Program, Thread
    from repro.objects.lock import AbstractLock

    p = Program(
        threads={
            "1": Thread(
                A.seq(A.MethodCall("l", "acquire"), A.MethodCall("l", "acquire"))
            )
        },
        objects=(AbstractLock("l"),),
    )
    result = benchmark.pedantic(lambda: explore(p), rounds=1, iterations=1)
    ok = len(result.stuck) == 1 and not result.terminals
    record_row(
        "F6 blocking",
        "acquire disabled while held",
        "double-acquire deadlocks" if ok else "double-acquire proceeded",
        ok,
    )
    assert ok
