"""A1 — Ablation: canonical timestamp hashing.

Canonicalisation identifies configurations up to order-isomorphic
timestamp relabelling.  The ablation explores the same programs with and
without it: the canonical space must be no larger, and on loop-heavy
implementations dramatically smaller — it is what makes the refinement
checks tractable.
"""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.semantics.explore import explore
from tests.conftest import (
    abstract_lock_client,
    mp_relaxed,
    seqlock_client,
    spinlock_client,
)


def sb_program():
    t1 = A.seq(A.Write("x", Lit(1)), A.Read("r1", "y"))
    t2 = A.seq(A.Write("y", Lit(1)), A.Read("r2", "x"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"x": 0, "y": 0},
    )


def iriw_program():
    t1 = A.Write("x", Lit(1), release=True)
    t2 = A.Write("y", Lit(1), release=True)
    t3 = A.seq(A.Read("a", "x", acquire=True), A.Read("b", "y", acquire=True))
    t4 = A.seq(A.Read("c", "y", acquire=True), A.Read("d", "x", acquire=True))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2), "3": Thread(t3), "4": Thread(t4)},
        client_vars={"x": 0, "y": 0},
    )


WORKLOADS = [
    ("mp-relaxed", mp_relaxed),
    ("sb", sb_program),
    ("iriw", iriw_program),
    ("abstract-lock", abstract_lock_client),
    ("seqlock", seqlock_client),
    ("spinlock", spinlock_client),
]


@pytest.mark.parametrize("name,build", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_canonical_exploration(benchmark, record_row, name, build):
    program = build()
    result = benchmark.pedantic(
        explore, args=(program,), kwargs={"canonicalise": True},
        iterations=1, rounds=3,
    )
    raw = explore(program, canonicalise=False, max_states=100_000)
    reduction = raw.state_count / result.state_count
    ok = result.state_count <= raw.state_count and not raw.truncated
    record_row(
        f"A1 canon {name}",
        "canonical ≤ raw; shrinks multi-variable spaces",
        f"{result.state_count} canonical vs {raw.state_count} raw "
        f"({reduction:.2f}x)",
        ok,
    )
    assert ok


def test_reduction_materialises_on_multivar_workloads(benchmark, record_row):
    """The quotient is strict where cross-variable write interleavings
    diverge (SB, IRIW)."""
    def work():
        out = {}
        for name, build in (("sb", sb_program), ("iriw", iriw_program)):
            program = build()
            out[name] = (
                explore(program).state_count,
                explore(program, canonicalise=False).state_count,
            )
        return out

    measured = benchmark.pedantic(work, rounds=1, iterations=1)
    for name, (canon, raw) in measured.items():
        ok = canon < raw
        record_row(
            f"A1 strict {name}",
            "strictly fewer canonical states",
            f"{canon} < {raw}",
            ok,
        )
        assert ok


@pytest.mark.parametrize(
    "name,build", WORKLOADS[2:], ids=[w[0] for w in WORKLOADS[2:]]
)
def test_raw_exploration_baseline(benchmark, name, build):
    """Timing baseline for the ablation table: raw hashing."""
    program = build()
    result = benchmark.pedantic(
        explore, args=(program,), kwargs={"canonicalise": False},
        iterations=1, rounds=3,
    )
    assert not result.truncated
