"""P10 — Proposition 10: the ticket lock refines the abstract lock.

Paper claim: for synchronisation-free clients there is a forward
simulation between the abstract lock and the ticket lock (the FAI and
unsuccessful serving reads stutter; the successful serving read is the
refining step).
"""

from repro.refinement.simulation import find_forward_simulation
from tests.conftest import abstract_lock_client, ticketlock_client


def run_prop10():
    return find_forward_simulation(ticketlock_client(), abstract_lock_client())


def test_prop10_simulation(benchmark, record_row):
    result = benchmark(run_prop10)
    record_row(
        "P10 (ticketlock ⊑ abstract lock)",
        "forward simulation exists",
        f"found={result.found}, |R|={result.relation_size}, "
        f"{result.concrete_states} conc / {result.abstract_states} abs states",
        result.found,
    )
    assert result.found


def test_prop10_writer_client(benchmark, record_row):
    result = benchmark.pedantic(
        lambda: find_forward_simulation(
            ticketlock_client(readers=False), abstract_lock_client(readers=False)
        ),
        rounds=1,
        iterations=1,
    )
    record_row(
        "P10 writer client",
        "simulation across client battery",
        f"found={result.found}, |R|={result.relation_size}",
        result.found,
    )
    assert result.found


def test_prop10_trace_confirmation(benchmark, record_row):
    from repro.refinement.tracecheck import check_program_refinement

    result = benchmark.pedantic(
        lambda: check_program_refinement(
            ticketlock_client(), abstract_lock_client()
        ),
        rounds=1,
        iterations=1,
    )
    record_row(
        "P10 traces",
        "C[ticketlock] ⊑ C[abstract]",
        f"refines={result.refines} "
        f"({result.concrete_traces} conc / {result.abstract_traces} abs traces)",
        result.refines,
    )
    assert result.refines


def test_prop10_supplied_relation(benchmark, record_row):
    """The paper's workflow: a hand-built relation (client alignment +
    serving-count correspondence) discharged against Definition 8."""
    from repro.refinement.checkrel import check_simulation_relation
    from tests.test_refinement_checkrel import TestTicketlockRelation

    result = benchmark.pedantic(
        lambda: check_simulation_relation(
            ticketlock_client(),
            abstract_lock_client(),
            TestTicketlockRelation.relation,
        ),
        rounds=1,
        iterations=1,
    )
    record_row(
        "P10 hand-built R",
        "supplied relation satisfies Definition 8",
        f"valid={result.valid}, {result.related_pairs} related pairs",
        result.valid,
    )
    assert result.valid
