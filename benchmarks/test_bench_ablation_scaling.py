"""A2 — Ablation: explorer scaling with threads and implementation depth.

State-space sizes and exploration times across (a) thread count for the
abstract lock and (b) the three lock implementations for the same
client, quantifying what the abstract specification buys a verifier —
the paper's modularity argument, measured.
"""

import pytest

from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.litmus.clients import (
    abstract_fill,
    lock_client,
    lock_client_three_threads,
)
from repro.objects.lock import AbstractLock
from repro.semantics.explore import explore


def _abstract(builder, **kw):
    fill, objs = abstract_fill(lambda: AbstractLock("l"))
    return builder(fill, objects=objs, **kw)


class TestThreadScaling:
    def test_two_threads(self, benchmark, record_row):
        result = benchmark(lambda: explore(_abstract(lock_client)))
        record_row(
            "A2 abstract 2T",
            "abstract spec keeps space small",
            f"{result.state_count} states, {result.edge_count} edges",
            True,
        )

    def test_three_threads(self, benchmark, record_row):
        result = benchmark(
            lambda: explore(_abstract(lock_client_three_threads))
        )
        record_row(
            "A2 abstract 3T",
            "graceful growth with thread count",
            f"{result.state_count} states, {result.edge_count} edges",
            True,
        )


class TestImplementationBlowup:
    """Same client, four lock realisations: the abstraction factor."""

    CASES = [
        ("abstract", None, None),
        ("spinlock", spinlock_fill, SPINLOCK_VARS),
        ("ticketlock", ticketlock_fill, TICKETLOCK_VARS),
        ("seqlock", seqlock_fill, SEQLOCK_VARS),
    ]

    @pytest.mark.parametrize("name,fill,lib_vars", CASES, ids=[c[0] for c in CASES])
    def test_state_space(self, benchmark, record_row, name, fill, lib_vars):
        if fill is None:
            program = _abstract(lock_client)
        else:
            program = lock_client(fill, lib_vars=dict(lib_vars))
        result = benchmark.pedantic(
            explore, args=(program,), iterations=1, rounds=3
        )
        baseline = explore(_abstract(lock_client)).state_count
        factor = result.state_count / baseline
        record_row(
            f"A2 impl {name}",
            "implementations cost more states than the spec",
            f"{result.state_count} states ({factor:.1f}x abstract)",
            True,
        )
        assert not result.truncated


class TestThreeThreadImplementations:
    """The abstraction factor grows with contention: three contending
    threads over the implementations vs the abstract specification."""

    CASES = [
        ("spinlock-3T", spinlock_fill, SPINLOCK_VARS),
        ("ticketlock-3T", ticketlock_fill, TICKETLOCK_VARS),
        ("seqlock-3T", seqlock_fill, SEQLOCK_VARS),
    ]

    @pytest.mark.parametrize("name,fill,lib_vars", CASES, ids=[c[0] for c in CASES])
    def test_state_space(self, benchmark, record_row, name, fill, lib_vars):
        program = lock_client_three_threads(fill, lib_vars=dict(lib_vars))
        result = benchmark.pedantic(
            explore, args=(program,), iterations=1, rounds=3
        )
        baseline = explore(_abstract(lock_client_three_threads)).state_count
        factor = result.state_count / baseline
        record_row(
            f"A2 {name}",
            "abstraction factor grows with contention",
            f"{result.state_count} states ({factor:.1f}x abstract 3T)",
            not result.truncated and not result.stuck,
        )
        assert not result.truncated and not result.stuck

    def test_three_thread_simulation(self, benchmark, record_row):
        """Refinement scales to the three-thread client too."""
        from repro.refinement.simulation import find_forward_simulation

        conc = lock_client_three_threads(
            spinlock_fill, lib_vars=dict(SPINLOCK_VARS)
        )
        abst = _abstract(lock_client_three_threads)
        result = benchmark.pedantic(
            lambda: find_forward_simulation(conc, abst), rounds=1, iterations=1
        )
        record_row(
            "A2 sim 3T",
            "simulation with three contending threads",
            f"found={result.found}, |R|={result.relation_size}",
            result.found,
        )
        assert result.found
