"""R1 — Reduction layer: ε-closure + covering-read prune vs unreduced.

Both legs drive the *same* engine loop (`explore_sequential`) over the
same programs, once with ``reduction="off"`` and once with
``reduction="closure"`` (:mod:`repro.semantics.reduce`), asserting
terminal-outcome parity on every run, so the measured ratios isolate
the reduction.

* **smoke** (always on): the full litmus catalog.  Stored-state counts
  are deterministic, so the headline **≥2x aggregate state reduction**
  is asserted unconditionally; per-test counts are committed to
  ``benchmarks/BENCH_reduction.json``, which doubles as the baseline
  the CLI reads to report "states explored vs. states a full
  exploration would store" without re-running the full exploration.
  The wall-clock ratio is recorded next to the committed baseline and,
  with ``REPRO_PERF_SMOKE=1`` (the CI perf job), a >2x regression of
  that *ratio* fails the run.  Regenerate the baseline with
  ``REPRO_BENCH_WRITE_BASELINE=1``.
* **large** (``REPRO_BENCH_LARGE=1``): a ≥50k-state polling-ring space,
  where the reduction must deliver **≥1.5x wall-clock** end to end.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine.core import explore_sequential
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.litmus.catalog import LITMUS_TESTS

BASELINE_PATH = Path(__file__).parent / "BENCH_reduction.json"

#: Fail the perf-smoke gate when the measured closure-vs-off wall-clock
#: speedup drops below half the committed baseline speedup.
REGRESSION_FACTOR = 2.0

#: The headline aggregate state-reduction gate over the catalog.
STATE_RATIO_FLOOR = 2.0


def _measure_catalog():
    per_test = {}
    tot_off = tot_red = 0
    t_off = t_red = 0.0
    for test in LITMUS_TESTS:
        program = test.build()
        t0 = time.perf_counter()
        off = explore_sequential(program)
        t_off += time.perf_counter() - t0
        program = test.build()
        t0 = time.perf_counter()
        red = explore_sequential(program, reduction="closure")
        t_red += time.perf_counter() - t0
        assert off.terminal_locals(*test.regs) == red.terminal_locals(
            *test.regs
        ), f"outcome parity broken on {test.name}"
        per_test[test.name] = {
            "off": off.state_count,
            "closure": red.state_count,
        }
        tot_off += off.state_count
        tot_red += red.state_count
    return per_test, tot_off, tot_red, t_off, t_red


def test_reduction_catalog_smoke(record_row):
    per_test, tot_off, tot_red, t_off, t_red = _measure_catalog()
    state_ratio = tot_off / tot_red
    time_ratio = t_off / t_red if t_red > 0 else float("inf")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE", "") == "1":
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "catalog": per_test,
                    "totals": {
                        "off": tot_off,
                        "closure": tot_red,
                        "state_ratio": round(state_ratio, 2),
                        "time_ratio": round(time_ratio, 2),
                    },
                },
                indent=2,
            )
            + "\n"
        )

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["totals"]["time_ratio"] / REGRESSION_FACTOR
    enforce = os.environ.get("REPRO_PERF_SMOKE", "") == "1"
    ok = state_ratio >= STATE_RATIO_FLOOR and (
        time_ratio >= floor or not enforce
    )
    record_row(
        "R1 reduction catalog",
        f"≥{STATE_RATIO_FLOOR}x fewer stored states over the litmus "
        "catalog, outcomes identical",
        f"{tot_off} -> {tot_red} states ({state_ratio:.2f}x), "
        f"wall-clock {time_ratio:.2f}x",
        ok,
    )
    # Counts are deterministic: both the committed baseline and the
    # headline gate hold on every run, on any hardware.
    assert per_test == baseline["catalog"], (
        "catalog or reduction changed: regenerate BENCH_reduction.json "
        "with REPRO_BENCH_WRITE_BASELINE=1"
    )
    assert state_ratio >= STATE_RATIO_FLOOR, (
        f"reduction regressed: {state_ratio:.2f}x < {STATE_RATIO_FLOOR}x "
        "aggregate stored-state reduction over the litmus catalog"
    )
    if enforce:
        assert time_ratio >= floor, (
            f"reduction perf regression: {time_ratio:.2f}x < {floor:.2f}x "
            f"(committed baseline {baseline['totals']['time_ratio']}x, "
            f"allowed regression {REGRESSION_FACTOR}x)"
        )


def _polling_ring(n: int, extra_reads: int) -> Program:
    """n threads: publish (d_i, f_i), poll f_{i+1}, then read
    ``1 + extra_reads`` neighbouring data variables — the ≥50k-state
    relaxed polling workload of the large leg."""
    threads = {}
    client_vars = {}
    for i in range(n):
        j = (i + 1) % n
        stmts = [
            A.Write(f"d{i}", Lit(5)),
            A.Write(f"f{i}", Lit(1)),
            A.LocalAssign(f"a{i}", Lit(0)),
            A.While(Reg(f"a{i}").eq(0), A.Read(f"a{i}", f"f{j}")),
            A.Read(f"r{i}", f"d{j}"),
        ]
        for k in range(extra_reads):
            stmts.append(A.Read(f"s{i}_{k}", f"d{(i + 2 + k) % n}"))
        threads[str(i + 1)] = Thread(A.seq(*stmts))
        client_vars[f"d{i}"] = 0
        client_vars[f"f{i}"] = 0
    return Program(threads=threads, client_vars=client_vars)


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="≥50k-state space (minutes of unreduced exploration); "
    "set REPRO_BENCH_LARGE=1",
)
def test_reduction_large_space(record_row):
    """The ≥1.5x wall-clock claim on a ≥50k-state space."""
    cap = 2_000_000
    program = _polling_ring(4, extra_reads=2)
    t0 = time.perf_counter()
    red = explore_sequential(program, max_states=cap, reduction="closure")
    red_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    off = explore_sequential(program, max_states=cap)
    off_s = time.perf_counter() - t0
    regs = tuple((str(i + 1), f"r{i}") for i in range(4))
    assert off.terminal_locals(*regs) == red.terminal_locals(*regs)
    speedup = off_s / red_s if red_s > 0 else float("inf")
    ok = off.state_count >= 50_000 and speedup >= 1.5
    record_row(
        "R1 reduction large",
        "≥50k unreduced states, closure ≥1.5x wall-clock",
        f"{off.state_count} -> {red.state_count} states "
        f"({off.state_count / red.state_count:.2f}x), "
        f"{off_s:.1f}s -> {red_s:.1f}s ({speedup:.2f}x)",
        ok,
    )
    assert off.state_count >= 50_000
    assert speedup >= 1.5
