"""Smoke tests: every example script runs to completion successfully."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[s.stem for s in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {s.stem for s in EXAMPLES}
    assert {
        "quickstart",
        "message_passing_stack",
        "lock_refinement",
        "litmus_explorer",
        "custom_object",
        "bug_hunting",
        "work_queue",
    } <= names
