"""Tests for the batch job runner and its JSON report."""

import json

import pytest

from repro.engine import ResultCache
from repro.engine.batch import JOB_NAMES, BatchReport, JobResult, run_batch, run_job


class TestRunJob:
    def test_litmus_job(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        result = run_job("litmus")
        assert result.ok
        assert result.name == "litmus"
        assert len(result.detail) > 0
        assert all("verdict_ok" in row for row in result.detail)

    def test_figures_job(self):
        result = run_job("figures", use_cache=False)
        assert result.ok
        names = {row["check"] for row in result.detail}
        assert {"figure-1", "figure-7", "lemma-4-outline"} <= names

    def test_unknown_job_rejected(self):
        with pytest.raises(ValueError, match="unknown job"):
            run_job("frobnicate")

    def test_job_detail_is_json_safe(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        result = run_job("litmus")
        json.dumps(result.to_dict())


class TestRunBatch:
    def test_sequential_subset(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        report = run_batch(jobs=["litmus", "figures"], workers=1)
        assert report.ok
        assert [j.name for j in report.jobs] == ["litmus", "figures"]

    def test_parallel_jobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        report = run_batch(jobs=["litmus", "figures"], workers=2)
        assert report.ok
        assert report.workers == 2
        assert {j.name for j in report.jobs} == {"litmus", "figures"}

    def test_json_report_written(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "report.json"
        report = run_batch(jobs=["litmus"], json_path=str(out))
        data = json.loads(out.read_text())
        assert data["ok"] is report.ok
        assert data["jobs"][0]["name"] == "litmus"
        assert isinstance(data["jobs"][0]["elapsed"], float)

    def test_meta_records_per_job_reduction(self, tmp_path, monkeypatch):
        """The meta block states each job's *effective*
        reduction policy: the batch-level policy applies to the litmus
        battery only — figures/refinements always explore unreduced."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = tmp_path / "report.json"
        report = run_batch(
            jobs=["litmus", "figures"],
            json_path=str(out),
            reduction="dpor",
        )
        assert report.ok
        meta = json.loads(out.read_text())["meta"]
        assert meta["schema"] == 3
        assert meta["reduction"] == "dpor"
        assert meta["jobs"] == {
            "litmus": {"reduction": "dpor"},
            "figures": {"reduction": "off"},
        }
        # Default job list: every registered job gets an entry.
        from repro.engine.batch import batch_meta

        full = batch_meta(1, True, "closure")
        assert set(full["jobs"]) == set(JOB_NAMES)
        assert full["jobs"]["refine-spinlock"] == {"reduction": "off"}

    def test_unknown_job_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown job"):
            run_batch(jobs=["litmus", "nope"])

    def test_default_runs_all_jobs_names(self):
        assert set(JOB_NAMES) == {
            "litmus",
            "figures",
            "refine-seqlock",
            "refine-ticketlock",
            "refine-spinlock",
        }

    def test_batch_uses_shared_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_batch(jobs=["litmus"], workers=1)
        report = run_batch(jobs=["litmus"], workers=1)
        assert report.ok
        assert all(row["cached"] for row in report.jobs[0].detail)
        assert len(ResultCache(tmp_path)) > 0


class TestReportShapes:
    def test_describe_mentions_all_jobs(self):
        report = BatchReport(
            jobs=[
                JobResult(name="litmus", ok=True, elapsed=0.5),
                JobResult(name="figures", ok=False, elapsed=1.0, error="Boom: x"),
            ],
            workers=2,
            elapsed=1.5,
        )
        text = report.describe()
        assert "litmus" in text and "figures" in text
        assert "FAIL" in text and "ERROR" in text
        assert not report.ok

    def test_to_json_round_trips(self):
        report = BatchReport(
            jobs=[JobResult(name="litmus", ok=True, elapsed=0.1, detail=[])],
            workers=1,
            elapsed=0.1,
        )
        assert json.loads(report.to_json())["jobs"][0]["ok"] is True


class TestDiagnosticsBlock:
    def test_litmus_job_carries_diagnostics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.litmus.catalog import LITMUS_TESTS

        result = run_job("litmus")
        diag = result.diagnostics
        assert diag is not None
        assert diag["analysed"] == len(LITMUS_TESTS)
        assert diag["errors"] == 0  # corpus contract: warnings only
        assert diag["warnings"] > 0
        # by_test maps annotated entries to their sorted finding codes.
        assert diag["by_test"]["MP-relaxed"] == ["race"]
        assert "MP-await-RA" not in diag["by_test"]

    def test_by_test_matches_catalog_annotations(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.litmus.catalog import LITMUS_TESTS

        diag = run_job("litmus").diagnostics
        expected = {
            t.name: sorted(t.expect_lint)
            for t in LITMUS_TESTS
            if t.expect_lint
        }
        assert diag["by_test"] == expected

    def test_other_jobs_have_none(self):
        result = run_job("figures", use_cache=False)
        assert result.diagnostics is None
        assert "diagnostics" not in result.to_dict() or result.to_dict()[
            "diagnostics"
        ] is None

    def test_diagnostics_survive_json_round_trip(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        result = run_job("litmus")
        encoded = json.loads(json.dumps(result.to_dict()))
        assert encoded["diagnostics"]["analysed"] > 0
