"""Tests for the lint pass (:mod:`repro.analysis.lint`).

Each code gets a positive (finding fires) and a negative (clean
program) case; severity and thread attribution are pinned where the
engine's ``strict`` policy depends on them.
"""

from repro.analysis import ERROR, WARNING, lint_program
from repro.analysis.lint import (
    DEAD_WRITE,
    DUPLICATE_LABEL,
    REGISTER_SHADOW,
    SILENT_LOOP,
    UNBOUND_REGISTER,
    UNREACHABLE_BRANCH,
)
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program


def _program(threads, **kwargs):
    return Program(threads=threads, **kwargs)


def _codes(program):
    return lint_program(program).codes()


def _diags(program, code):
    return [d for d in lint_program(program) if d.code == code]


class TestUnboundRegister:
    def test_fires_on_unseeded_read(self):
        p = _program(
            {"1": A.Write("x", Reg("r"))},
            client_vars={"x": 0},
        )
        (d,) = _diags(p, UNBOUND_REGISTER)
        assert d.severity == ERROR
        assert d.tid == "1"
        assert "'r'" in d.message

    def test_quiet_when_assigned_anywhere_in_thread(self):
        # The check is flow-insensitive on purpose: assignment anywhere
        # in the thread (even later in source order) silences it.
        p = _program(
            {
                "1": A.seq(
                    A.Write("x", Reg("r")),
                    A.LocalAssign("r", Lit(1)),
                )
            },
            client_vars={"x": 0},
        )
        assert UNBOUND_REGISTER not in _codes(p)

    def test_quiet_when_seeded_by_init_locals(self):
        p = _program(
            {"1": A.Write("x", Reg("m"))},
            client_vars={"x": 0},
            init_locals={"1": {"m": 7}},
        )
        assert UNBOUND_REGISTER not in _codes(p)

    def test_reported_once_per_register(self):
        p = _program(
            {"1": A.seq(A.Write("x", Reg("r")), A.Write("x", Reg("r")))},
            client_vars={"x": 0},
        )
        assert len(_diags(p, UNBOUND_REGISTER)) == 1


class TestSilentLoop:
    def test_fires_on_pure_spin(self):
        p = _program(
            {
                "1": A.seq(
                    A.Read("r", "f"),
                    A.While(Reg("r").eq(0), A.LocalAssign("t", Lit(1))),
                )
            },
            client_vars={"f": 0},
        )
        (d,) = _diags(p, SILENT_LOOP)
        assert d.severity == ERROR

    def test_quiet_when_body_rereads_condition(self):
        p = _program(
            {
                "1": A.seq(
                    A.Read("r", "f"),
                    A.While(Reg("r").eq(0), A.Read("r", "f", acquire=True)),
                ),
                "2": A.Write("f", Lit(1), release=True),
            },
            client_vars={"f": 0},
        )
        assert SILENT_LOOP not in _codes(p)

    def test_quiet_when_body_has_visible_access(self):
        # A body that touches a global is a fair (if odd) busy loop.
        p = _program(
            {
                "1": A.While(Reg("m").eq(0), A.Write("x", Lit(1))),
                "2": A.Read("r", "x"),
            },
            client_vars={"x": 0},
            init_locals={"1": {"m": 1}},
        )
        assert SILENT_LOOP not in _codes(p)


class TestDeadWrite:
    def test_fires_on_never_read_global(self):
        p = _program(
            {"1": A.Write("x", Lit(1))},
            client_vars={"x": 0},
        )
        (d,) = _diags(p, DEAD_WRITE)
        assert d.severity == WARNING
        assert "'x'" in d.message

    def test_quiet_when_read_by_another_thread(self):
        p = _program(
            {"1": A.Write("x", Lit(1)), "2": A.Read("r", "x")},
            client_vars={"x": 0},
        )
        assert DEAD_WRITE not in _codes(p)

    def test_updates_count_as_reads(self):
        p = _program(
            {"1": A.Fai("r", "c")},
            client_vars={"c": 0},
        )
        assert DEAD_WRITE not in _codes(p)

    def test_component_distinguished(self):
        # A client write to 'x' is not kept alive by a read of the same
        # name occurring in *library* code — the census keys on
        # (component, variable), not the bare name.
        p = _program(
            {
                "1": A.seq(
                    A.Write("x", Lit(1)),
                    A.LibBlock(
                        A.Read("r", "x"), public_regs=frozenset({"r"})
                    ),
                )
            },
            client_vars={"x": 0},
        )
        codes = [d.code for d in lint_program(p)]
        assert DEAD_WRITE in codes


class TestUnreachableBranch:
    def test_constant_if(self):
        p = _program(
            {
                "1": A.seq(
                    A.LocalAssign("m", Lit(1)),
                    A.If(
                        Reg("m").eq(0),
                        A.Write("x", Lit(1)),
                        A.Write("y", Lit(1)),
                    ),
                ),
                "2": A.seq(A.Read("a", "x"), A.Read("b", "y")),
            },
            client_vars={"x": 0, "y": 0},
        )
        (d,) = _diags(p, UNREACHABLE_BRANCH)
        assert "then" in d.message

    def test_init_locals_feed_the_flow(self):
        p = _program(
            {
                "1": A.If(Reg("m").eq(0), A.Write("x", Lit(1)), None),
                "2": A.Read("r", "x"),
            },
            client_vars={"x": 0},
            init_locals={"1": {"m": 0}},
        )
        # Condition is constant-True but the dead arm is None: nothing
        # to report.
        assert UNREACHABLE_BRANCH not in _codes(p)

    def test_always_false_while(self):
        p = _program(
            {
                "1": A.While(Reg("m").eq(0), A.Write("x", Lit(1))),
                "2": A.Read("r", "x"),
            },
            client_vars={"x": 0},
            init_locals={"1": {"m": 1}},
        )
        (d,) = _diags(p, UNREACHABLE_BRANCH)
        assert "always False" in d.message

    def test_unknown_condition_is_quiet(self):
        p = _program(
            {
                "1": A.seq(
                    A.Read("m", "x"),
                    A.If(
                        Reg("m").eq(0),
                        A.Write("y", Lit(1)),
                        A.Write("y", Lit(2)),
                    ),
                ),
                "2": A.Read("r", "y"),
            },
            client_vars={"x": 0, "y": 0},
        )
        assert UNREACHABLE_BRANCH not in _codes(p)

    def test_read_kills_knowledge(self):
        # A Read into the mode register makes the branch non-constant.
        p = _program(
            {
                "1": A.seq(
                    A.Read("m", "x"),
                    A.If(
                        Reg("m").eq(0),
                        A.Write("y", Lit(1)),
                        A.Write("y", Lit(2)),
                    ),
                ),
                "2": A.Read("r", "y"),
            },
            client_vars={"x": 0, "y": 0},
            init_locals={"1": {"m": 0}},
        )
        assert UNREACHABLE_BRANCH not in _codes(p)


class TestDuplicateLabel:
    def test_fires_within_thread(self):
        p = _program(
            {
                "1": A.seq(
                    A.Labeled(1, A.Write("x", Lit(1))),
                    A.Labeled(1, A.Write("x", Lit(2))),
                ),
                "2": A.Read("r", "x"),
            },
            client_vars={"x": 0},
        )
        (d,) = _diags(p, DUPLICATE_LABEL)
        assert d.severity == WARNING

    def test_same_label_across_threads_is_fine(self):
        p = _program(
            {
                "1": A.Labeled(1, A.Write("x", Lit(1))),
                "2": A.Labeled(1, A.Read("r", "x")),
            },
            client_vars={"x": 0},
        )
        assert DUPLICATE_LABEL not in _codes(p)

    def test_reported_once_per_label(self):
        p = _program(
            {
                "1": A.seq(
                    A.Labeled(1, A.Write("x", Lit(1))),
                    A.seq(
                        A.Labeled(1, A.Write("x", Lit(2))),
                        A.Labeled(1, A.Write("x", Lit(3))),
                    ),
                ),
                "2": A.Read("r", "x"),
            },
            client_vars={"x": 0},
        )
        assert len(_diags(p, DUPLICATE_LABEL)) == 1


class TestRegisterShadow:
    def test_fires_on_private_overlap(self):
        p = _program(
            {
                "1": A.seq(
                    A.LocalAssign("t", Lit(9)),
                    A.LibBlock(
                        A.Read("t", "l", acquire=True),
                        public_regs=frozenset(),
                    ),
                ),
                "2": A.LibBlock(
                    A.Write("l", Lit(1), release=True),
                    public_regs=frozenset(),
                ),
            },
            lib_vars={"l": 0},
        )
        (d,) = _diags(p, REGISTER_SHADOW)
        assert "'t'" in d.message

    def test_public_registers_are_not_shadowing(self):
        p = _program(
            {
                "1": A.seq(
                    A.LocalAssign("t", Lit(9)),
                    A.LibBlock(
                        A.Read("t", "l", acquire=True),
                        public_regs=frozenset({"t"}),
                    ),
                ),
                "2": A.LibBlock(
                    A.Write("l", Lit(1), release=True),
                    public_regs=frozenset(),
                ),
            },
            lib_vars={"l": 0},
        )
        assert REGISTER_SHADOW not in _codes(p)


class TestReportShape:
    def test_clean_program_is_clean(self):
        p = _program(
            {
                "1": A.Write("x", Lit(1), release=True),
                "2": A.Read("r", "x", acquire=True),
            },
            client_vars={"x": 0},
        )
        report = lint_program(p)
        assert report.clean()
        assert report.codes() == frozenset()

    def test_errors_sort_before_warnings(self):
        p = _program(
            {
                "1": A.seq(
                    A.Write("x", Reg("nope")),
                    A.Write("dead", Lit(1)),
                )
            },
            client_vars={"x": 0, "dead": 0},
        )
        report = lint_program(p)
        assert [d.severity for d in report][:1] == [ERROR]
        assert {d.code for d in report} == {UNBOUND_REGISTER, DEAD_WRITE}
