"""Parity suite for the pipelined sharded backend.

The pipeline backend (:mod:`repro.engine.pipeline`) must be
bit-identical to sequential BFS in every representation-independent
observable on non-truncated runs — state and edge counts, terminal
valuations, stuck-existence — across the full litmus catalog and the
five abstract-object/lock client programs, at 2 and 4 workers,
under both reduction policies, on both the full-map and the summary
(``keep_configs=False``) paths, over *both* cross-shard transports —
``"shm"`` (shared-memory rings, the zero-copy default) and ``"queue"``
(master-routed blobs) — and over *both* batch wire codecs — ``"flat"``
(the pickle-free struct-packed v2 format) and ``"pickle"`` (the v1
reference): neither transport nor codec choice must ever change
results.
Where ``SharedMemory`` is unavailable the shm leg degrades to the
documented auto-fallback (still queue semantics), so the suite stays
green everywhere.  ``reachable``/``assert_invariant``-
shaped verdicts (worker-side pure predicates with a stop broadcast)
must agree with the sequential wrappers, witnesses reconstructed from
pipeline-tracked parents must replay, and truncation must respect the
global cap through the per-shard budgets.
"""

import pytest

from repro.engine import ExplorationEngine
from repro.engine.core import explore_sequential
from repro.engine.fingerprint import stable_digest
from repro.litmus.catalog import LITMUS_TESTS
from repro.semantics.canon import canonical_key
from repro.semantics.explore import reachable
from repro.semantics.witness import reconstruct_witness, replay_witness
from tests.conftest import (
    abstract_lock_client,
    seqlock_client,
    spinlock_client,
    stack_program,
    ticketlock_client,
)

WORKER_COUNTS = (2, 4)
#: Both pipeline transports; "shm" resolves to the queue fallback on
#: hosts without working SharedMemory (the parity obligations are
#: identical either way).
TRANSPORTS = ("shm", "queue")
#: Both batch wire codecs (repro.memory.flatcodec.CODECS).
CODECS = ("flat", "pickle")
# The pipeline backend runs every pipeline-safe registered policy; the
# registry is the single source of truth for which those are (dpor is
# rejected — see TestPipelineBehaviour.test_rejects_non_pipeline_safe).
from repro.semantics.reduce import REDUCTIONS as _ALL_REDUCTIONS
from repro.semantics.reduce import get_strategy

REDUCTIONS = tuple(
    r for r in _ALL_REDUCTIONS if get_strategy(r).pipeline_safe
)

OBJECT_CLIENTS = (
    ("abstract-lock", abstract_lock_client),
    ("seqlock", seqlock_client),
    ("ticketlock", ticketlock_client),
    ("spinlock", spinlock_client),
    ("stack-mp", lambda: stack_program(sync=True)),
)

#: Sequential references, computed once per (builder id, reduction).
_REFS: dict = {}


def _reference(name, build, reduction):
    key = (name, reduction)
    if key not in _REFS:
        _REFS[key] = explore_sequential(build(), reduction=reduction)
    return _REFS[key]


def _terminal_valuations(result):
    return {
        tuple(
            sorted((tid, ls.items_sorted()) for tid, ls in cfg.locals.items())
        )
        for cfg in result.terminals
    }


def _assert_parity(ref, par):
    assert not par.truncated and not par.stopped
    assert par.state_count == ref.state_count
    assert par.edge_count == ref.edge_count
    assert len(par.terminals) == len(ref.terminals)
    assert len(par.stuck) == len(ref.stuck)
    assert _terminal_valuations(par) == _terminal_valuations(ref)
    assert bool(par.stuck) == bool(ref.stuck)


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("reduction", REDUCTIONS)
class TestCatalogParity:
    def test_full_litmus_catalog(self, workers, reduction, transport, codec):
        engine = ExplorationEngine(
            workers=workers, reduction=reduction, transport=transport,
            codec=codec,
        )
        assert engine.backend == "pipeline"
        for test in LITMUS_TESTS:
            ref = _reference(test.name, test.build, reduction)
            for keep_configs in (True, False):
                par = engine.explore(
                    test.build(), keep_configs=keep_configs
                )
                _assert_parity(ref, par)
                assert par.terminal_locals(*test.regs) == ref.terminal_locals(
                    *test.regs
                ), test.name


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("reduction", REDUCTIONS)
@pytest.mark.parametrize(
    "name,build", OBJECT_CLIENTS, ids=[n for n, _ in OBJECT_CLIENTS]
)
class TestObjectClientParity:
    def test_client(self, workers, reduction, name, build, transport, codec):
        engine = ExplorationEngine(
            workers=workers, reduction=reduction, transport=transport,
            codec=codec,
        )
        ref = _reference(name, build, reduction)
        for keep_configs in (True, False):
            par = engine.explore(build(), keep_configs=keep_configs)
            _assert_parity(ref, par)


class TestVerdictParity:
    """``reachable``/``assert_invariant``-shaped verdicts — a pure
    predicate passed as ``on_config``, evaluated worker-side — agree
    with the sequential wrappers under both reduction policies."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_weak_outcome_reachability(self, reduction, transport):
        engine = ExplorationEngine(
            workers=2, reduction=reduction, transport=transport
        )
        by_name = {t.name: t for t in LITMUS_TESTS}
        for name in ("MP-relaxed", "MP-RA", "MP-await-RA", "SB-relaxed"):
            test = by_name[name]

            def weak(cfg, test=test):
                return cfg.is_terminal() and test.outcome_of(cfg) in test.weak

            seq_hit = reachable(
                test.build(), weak, reduction=reduction
            ) is not None
            par = engine.explore(test.build(), on_config=weak)
            assert par.stopped == seq_hit == test.weak_allowed, name
            if not seq_hit:  # exhaustive no-hit run must stay complete
                assert not par.truncated

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_invariant_verdicts(self, reduction, transport):
        engine = ExplorationEngine(
            workers=2, reduction=reduction, transport=transport
        )
        by_name = {t.name: t for t in LITMUS_TESTS}
        program = by_name["MP-ring-2-RA"].build()

        def violates_published(cfg):  # never true: the invariant holds
            if not cfg.is_terminal():
                return False
            return not (
                cfg.local("1", "r0") == 5 and cfg.local("2", "r1") == 5
            )

        held = engine.explore(program, on_config=violates_published)
        assert not held.stopped and not held.truncated

        def violates_impossible(cfg):  # any non-terminal state violates
            return not cfg.is_terminal()

        broken = engine.explore(program, on_config=violates_impossible)
        assert broken.stopped


class TestPipelineBehaviour:
    def test_rejects_non_pipeline_safe(self):
        """Policies flagged ``pipeline_safe=False`` (dpor) are rejected
        with a clear error, not silently degraded."""
        from repro.engine.pipeline import explore_pipeline

        assert not get_strategy("dpor").pipeline_safe
        program = LITMUS_TESTS[0].build()
        with pytest.raises(ValueError, match="pipeline backend"):
            ExplorationEngine(workers=2, reduction="dpor").explore(program)
        with pytest.raises(ValueError, match="pipeline backend"):
            explore_pipeline(program, 2, 100_000, reduction="dpor")
        # workers=1 falls back to the sequential engine before backend
        # dispatch, so the default (pipeline) backend still works there.
        result = ExplorationEngine(workers=1, reduction="dpor").explore(
            program
        )
        assert result.state_count > 0

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_truncation_respects_global_cap(self, transport):
        engine = ExplorationEngine(workers=2, transport=transport)
        result = engine.explore(LITMUS_TESTS[0].build(), max_states=3)
        assert result.truncated
        assert result.state_count <= 3

    def test_find_witness_is_shortest_via_rounds(self):
        """find_witness on a pipeline engine pins the rounds backend:
        the witness length matches the sequential (BFS) one."""
        by_name = {t.name: t for t in LITMUS_TESTS}
        test = by_name["MP-relaxed"]

        def weak(cfg):
            return test.outcome_of(cfg) in test.weak

        seq_wit = ExplorationEngine().find_witness(
            test.build(), weak, terminal_only=True
        )
        par_wit = ExplorationEngine(workers=2).find_witness(
            test.build(), weak, terminal_only=True
        )
        assert par_wit is not None and len(par_wit) == len(seq_wit)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_witness_replay_from_pipeline_parents(self, reduction, transport):
        """Parents recorded by the pipeline backend reconstruct into
        witnesses that replay through the raw semantics — valid
        discovery paths, even though not necessarily shortest."""
        by_name = {t.name: t for t in LITMUS_TESTS}
        test = by_name["MP-relaxed"]
        program = test.build()
        engine = ExplorationEngine(
            workers=2, reduction=reduction, transport=transport
        )
        result = engine.explore(program, track_parents=True)

        def key_of(cfg):
            return stable_digest(canonical_key(program, cfg))

        target = next(
            cfg
            for cfg in result.terminals
            if test.outcome_of(cfg) in test.weak
        )
        witness = reconstruct_witness(
            program, result.parents, key_of(target), key_of,
            reduction=reduction,
        )
        final = replay_witness(program, witness)
        assert test.outcome_of(final) in test.weak

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_worker_failure_surfaces(self, transport):
        """An exception inside a worker must fail the exploration (not
        hang it) and re-raise with its original type master-side, as
        the rounds and sequential backends do — on both transports."""
        engine = ExplorationEngine(workers=2, transport=transport)

        def boom(cfg):
            raise KeyError("probe exploded")

        with pytest.raises(KeyError, match="probe exploded"):
            engine.explore(LITMUS_TESTS[0].build(), on_config=boom)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_summary_path_keeps_sinks_only(self, transport):
        engine = ExplorationEngine(workers=2, transport=transport)
        test = LITMUS_TESTS[0]
        full = engine.explore(test.build())
        summary = engine.explore(test.build(), keep_configs=False)
        assert summary.state_total == full.state_count
        assert len(summary.configs) == len(summary.terminals) + len(
            summary.stuck
        )
        assert summary.terminal_locals(*test.regs) == full.terminal_locals(
            *test.regs
        )
