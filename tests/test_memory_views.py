"""Unit and property tests for views and the merge operator ⊗."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.actions import Op, mk_write
from repro.memory.views import last_op, max_ts, merge_views, view_union
from repro.util.fmap import FMap


def op(var: str, val: int, ts) -> Op:
    return Op(mk_write(var, val, "t"), Fraction(ts))


def view(**entries) -> FMap:
    return FMap(entries)


class TestMergeViews:
    def test_takes_later_per_variable(self):
        v1 = view(x=op("x", 0, 0), y=op("y", 5, 3))
        v2 = view(x=op("x", 1, 2), y=op("y", 4, 1))
        merged = merge_views(v1, v2)
        assert merged["x"] == op("x", 1, 2)  # v2 later
        assert merged["y"] == op("y", 5, 3)  # v1 later

    def test_domain_is_v1(self):
        # ⊗ is λx ∈ dom(V1): variables only in V2 are dropped.
        v1 = view(x=op("x", 0, 0))
        v2 = view(x=op("x", 1, 1), z=op("z", 9, 9))
        merged = merge_views(v1, v2)
        assert set(merged) == {"x"}

    def test_tie_prefers_v1(self):
        # Equal timestamps on the same variable denote the same op.
        shared = op("x", 1, 1)
        assert merge_views(view(x=shared), view(x=shared))["x"] == shared

    def test_identity_when_v2_older(self):
        v1 = view(x=op("x", 1, 5))
        assert merge_views(v1, view(x=op("x", 0, 0))) is v1


# Strategy: views over a fixed variable set with integer timestamps.
VARS = ("x", "y", "z")


@st.composite
def views(draw):
    entries = {}
    for var in VARS:
        if draw(st.booleans()):
            ts = draw(st.integers(min_value=0, max_value=20))
            entries[var] = op(var, ts, ts)  # value mirrors ts; irrelevant
    return FMap(entries)


@st.composite
def full_views(draw):
    """Views over the full variable set — the shape thread views have in
    the semantics (every component variable is always mapped)."""
    entries = {}
    for var in VARS:
        ts = draw(st.integers(min_value=0, max_value=20))
        entries[var] = op(var, ts, ts)
    return FMap(entries)


class TestMergeProperties:
    @given(v=views())
    def test_idempotent(self, v):
        assert merge_views(v, v) == v

    @given(v1=views(), v2=views())
    def test_upper_bound_of_v1(self, v1, v2):
        merged = merge_views(v1, v2)
        for var in v1:
            assert merged[var].ts >= v1[var].ts

    @given(v1=views(), v2=views())
    def test_pointwise_max_on_common_domain(self, v1, v2):
        merged = merge_views(v1, v2)
        for var in v1:
            if var in v2:
                assert merged[var].ts == max(v1[var].ts, v2[var].ts)

    @given(v1=full_views(), v2=full_views(), v3=full_views())
    def test_associative_on_full_domain(self, v1, v2, v3):
        # ⊗ on equal domains (the shape thread views always have) is the
        # pointwise-lattice join, hence associative.
        left = merge_views(merge_views(v1, v2), v3)
        right = merge_views(v1, merge_views(v2, v3))
        assert left == right

    @given(v1=full_views(), v2=full_views())
    def test_commutative_on_full_domain(self, v1, v2):
        assert merge_views(v1, v2) == merge_views(v2, v1)

    def test_not_associative_across_domains(self):
        # Documented counterexample: ⊗ restricts to dom(V1), so mixing
        # domains breaks associativity — the semantics never does this.
        v1 = view(z=op("z", 0, 0))
        v2 = FMap({})
        v3 = view(z=op("z", 1, 1))
        left = merge_views(merge_views(v1, v2), v3)
        right = merge_views(v1, merge_views(v2, v3))
        assert left != right


class TestViewUnion:
    def test_disjoint_domains(self):
        u = view_union(view(x=op("x", 1, 1)), view(y=op("y", 2, 2)))
        assert set(u) == {"x", "y"}

    def test_overlap_takes_later(self):
        u = view_union(view(x=op("x", 0, 0)), view(x=op("x", 1, 3)))
        assert u["x"].ts == Fraction(3)


class TestMaxTsLastOp:
    def test_max_ts(self):
        ops = [op("x", 0, 0), op("x", 1, 4), op("y", 9, 9)]
        assert max_ts("x", ops) == Fraction(4)
        assert max_ts("z", ops) is None

    def test_last_op(self):
        ops = [op("x", 0, 0), op("x", 1, 4)]
        assert last_op("x", ops) == op("x", 1, 4)
        assert last_op("z", ops) is None

    def test_last_op_with_filter(self):
        from repro.memory.actions import mk_method

        meth = Op(mk_method("x", "init", index=0), Fraction(9))
        ops = [op("x", 1, 4), meth]
        from repro.memory.actions import is_write

        assert last_op("x", ops, only=is_write) == op("x", 1, 4)
        assert last_op("x", ops) == meth
