"""Tests for configurations of the combined semantics."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.semantics.config import Config, initial_config
from repro.semantics.explore import explore
from repro.semantics.step import successors


@pytest.fixture()
def program():
    return Program(
        threads={
            "1": Thread(
                A.seq(
                    A.Labeled(1, A.Write("x", Lit(5))),
                    A.Labeled(2, A.Read("r", "x")),
                ),
                done_label=3,
            ),
            "2": Thread(A.Labeled(1, A.Read("s", "x")), done_label=2),
        },
        client_vars={"x": 0},
    )


class TestInitialConfig:
    def test_continuations_installed(self, program):
        cfg = initial_config(program)
        assert cfg.cmd("1") is program.body_of("1")
        assert not cfg.is_terminal()

    def test_pcs(self, program):
        cfg = initial_config(program)
        assert cfg.pc("1", program) == 1
        assert cfg.pc("2", program) == 1

    def test_local_default(self, program):
        cfg = initial_config(program)
        assert cfg.local("1", "unset") is None
        assert cfg.local("1", "unset", default=0) == 0


class TestProgress:
    def test_pc_advances(self, program):
        cfg = initial_config(program)
        tr1 = next(
            t for t in successors(program, cfg) if t.tid == "1"
        )
        assert tr1.target.pc("1", program) == 2
        assert tr1.target.pc("2", program) == 1

    def test_terminal_pcs_use_done_labels(self, program):
        result = explore(program)
        for cfg in result.terminals:
            assert cfg.pc("1", program) == 3
            assert cfg.pc("2", program) == 2
            assert cfg.is_terminal()

    def test_with_thread_replaces_only_target(self, program):
        cfg = initial_config(program)
        cfg2 = cfg.with_thread(
            "1", None, cfg.locals["1"].set("r", 9), cfg.gamma, cfg.beta
        )
        assert cfg2.cmd("1") is None
        assert cfg2.cmd("2") is cfg.cmd("2")
        assert cfg2.local("1", "r") == 9
        assert cfg.local("1", "r") is None  # original untouched


class TestIdentity:
    def test_configs_hashable_and_equal(self, program):
        assert initial_config(program) == initial_config(program)
        assert hash(initial_config(program)) == hash(initial_config(program))

    def test_distinct_after_step(self, program):
        cfg = initial_config(program)
        for tr in successors(program, cfg):
            assert tr.target != cfg
