"""The compact config codec: round-trip exactness, interning, size.

The codec (:mod:`repro.memory.codec`) changes how configurations are
written, never what they mean: a pickle round-trip must be
value-identical — bit-identical canonical keys, equal raw fields — on
hypothesis-random configurations and across the litmus catalog; the
decode side must intern repeated actions and timestamps; and the
compact format must actually be smaller than the pre-codec reference
format it replaced (the ≥1.3x wire-ratio claim lives in
``benchmarks/test_bench_parallel_pipeline.py``).
"""

import pickle
from fractions import Fraction

from hypothesis import given, settings

from repro.litmus.catalog import LITMUS_TESTS
from repro.memory import codec
from repro.memory.actions import Action, Op, mk_method, mk_update, mk_write
from repro.memory.naive import NaiveComponentState
from repro.semantics.canon import canonical_key
from repro.semantics.explore import explore
from tests.test_property_semantics import programs


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


class TestRoundTrip:
    def test_litmus_configs_bit_identical(self):
        for test in LITMUS_TESTS[:8]:
            program = test.build()
            result = explore(program)
            for cfg in result.configs.values():
                back = _roundtrip(cfg)
                assert back == cfg
                assert canonical_key(program, back) == canonical_key(
                    program, cfg
                )

    @settings(max_examples=30, deadline=None)
    @given(p=programs())
    def test_random_configs_bit_identical(self, p):
        result = explore(p, max_states=300)
        for cfg in result.configs.values():
            back = _roundtrip(cfg)
            assert back == cfg
            assert canonical_key(p, back) == canonical_key(p, cfg)

    def test_legacy_format_still_loads(self):
        """Blobs in the pre-codec wire format decode to equal values."""
        program = LITMUS_TESTS[0].build()
        result = explore(program)
        for cfg in list(result.configs.values())[:20]:
            assert pickle.loads(codec.legacy_dumps(cfg)) == cfg

    def test_naive_state_decodes_as_itself(self):
        """Subclasses of ComponentState survive the codec as their own
        class (the naive reference state stays naive)."""
        from repro.memory.naive import naive_initial_config

        cfg = naive_initial_config(LITMUS_TESTS[0].build())
        back = _roundtrip(cfg)
        assert type(back.gamma) is NaiveComponentState
        assert back == cfg


class TestActionEncoding:
    def test_trailing_defaults_truncated(self):
        plain = mk_write("x", 1, "1")
        _fn, args = codec.reduce_action(plain)
        assert args == ("wr", "x", "1", 1)  # rdval/method/index/sync gone
        assert Action(*args) == plain

    def test_all_fields_preserved(self):
        for act in (
            mk_write("x", 0, "2", release=True),
            mk_update("y", 1, 2, "1"),
            mk_method("lock", "acquire", tid="1", index=3, sync=True),
            Action(kind="wr", var="x", tid=None, val=None),
        ):
            assert _roundtrip(act) == act

    def test_op_timestamp_numeric_pair(self):
        op = Op(mk_write("x", 1, "1"), Fraction(3, 2))
        _fn, args = codec.reduce_op(op)
        assert args[1:] == (3, 2)
        back = _roundtrip(op)
        assert back == op and back.ts == Fraction(3, 2)


class TestInterning:
    def test_actions_and_timestamps_interned_on_decode(self):
        codec.clear_intern_tables()
        op = Op(mk_write("x", 1, "1"), Fraction(5, 4))
        a = _roundtrip(op)
        b = _roundtrip(op)
        assert a.act is b.act  # one Action object per distinct value
        assert a.ts is b.ts  # one Fraction object per distinct rational

    def test_intern_tables_bounded(self, monkeypatch):
        codec.clear_intern_tables()
        monkeypatch.setattr(codec, "_INTERN_MAX", 8)
        ops = [
            Op(mk_write("x", v, "1"), Fraction(v + 1, 1)) for v in range(50)
        ]
        for op in ops:
            back = _roundtrip(op)
            assert back == op  # overflow flushes, never corrupts
        assert len(codec._TIMESTAMPS) <= 8

    def test_eviction_keeps_the_newest_half(self, monkeypatch):
        """Overflow evicts the *oldest* half: entries interned recently
        must still be shared after the table hits its bound (a clear()
        would drop them all and cost every hot op its sharing)."""
        codec.clear_intern_tables()
        monkeypatch.setattr(codec, "_INTERN_MAX", 8)
        for v in range(8):  # fill to the bound
            _roundtrip(Op(mk_write("x", v, "1"), Fraction(v + 1, 1)))
        recent = _roundtrip(Op(mk_write("x", 7, "1"), Fraction(8, 1)))
        # Trigger eviction with one fresh value...
        _roundtrip(Op(mk_write("x", 99, "1"), Fraction(100, 1)))
        assert len(codec._TIMESTAMPS) <= 8
        # ...and the newest pre-eviction entries survive as the same
        # objects, while the oldest were dropped.
        again = _roundtrip(Op(mk_write("x", 7, "1"), Fraction(8, 1)))
        assert again.act is recent.act
        assert again.ts is recent.ts
        assert ("wr", "x", "1", 7) in codec._ACTIONS
        assert ("wr", "x", "1", 0) not in codec._ACTIONS
        assert (8, 1) in codec._TIMESTAMPS
        assert (1, 1) not in codec._TIMESTAMPS


class TestEncodeInto:
    """The buffer-direct entry points used by the shm ring transport."""

    def test_round_trip_matches_dumps_format(self):
        program = LITMUS_TESTS[0].build()
        result = explore(program)
        batch = [
            (bytes(8), cfg) for cfg in list(result.configs.values())[:6]
        ]
        buf = memoryview(bytearray(1 << 20))
        n = codec.encode_batch_into(batch, buf)
        blob = pickle.dumps(batch, pickle.HIGHEST_PROTOCOL)
        assert n == len(blob)  # same pickler, same wire format
        assert bytes(buf[:n]) == blob
        assert codec.decode_batch_from(buf[:n]) == batch

    def test_buffer_full_when_encoding_overruns(self):
        import pytest

        batch = [("digest" * 10, "payload" * 10)]
        with pytest.raises(codec.BufferFull):
            codec.encode_batch_into(batch, memoryview(bytearray(32)))

    def test_partial_write_does_not_escape_buffer(self):
        """An overrun must stop at the buffer boundary, never write
        past it."""
        import pytest

        backing = bytearray(64 + 16)
        canary = b"\xAA" * 16
        backing[64:] = canary
        batch = [("x" * 200, "y" * 200)]
        with pytest.raises(codec.BufferFull):
            codec.encode_batch_into(batch, memoryview(backing)[:64])
        assert bytes(backing[64:]) == canary


class TestCompactness:
    def test_codec_beats_legacy_format(self):
        """The compact format is strictly smaller than the pre-codec
        reference on every explored litmus configuration set."""
        for test in LITMUS_TESTS[:4]:
            result = explore(test.build())
            new = sum(
                len(pickle.dumps(c, pickle.HIGHEST_PROTOCOL))
                for c in result.configs.values()
            )
            old = sum(
                len(codec.legacy_dumps(c)) for c in result.configs.values()
            )
            assert new < old, test.name
