"""Property tests for the trace-refinement pipeline on random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.refinement.tracecheck import (
    check_program_refinement,
    client_traces,
    prefix_closure,
)

VARS = ("x", "y")


@st.composite
def simple_programs(draw):
    """Small two-thread programs over client variables only."""
    def body():
        n = draw(st.integers(min_value=1, max_value=2))
        cmds = []
        for _ in range(n):
            var = draw(st.sampled_from(VARS))
            if draw(st.booleans()):
                cmds.append(
                    A.Write(var, Lit(draw(st.integers(1, 2))),
                            release=draw(st.booleans()))
                )
            else:
                cmds.append(
                    A.Read(draw(st.sampled_from(("r1", "r2"))), var,
                           acquire=draw(st.booleans()))
                )
        return A.seq(*cmds)

    return Program(
        threads={"1": Thread(body()), "2": Thread(body())},
        client_vars={v: 0 for v in VARS},
    )


@settings(max_examples=20, deadline=None)
@given(p=simple_programs())
def test_refinement_reflexive(p):
    """Every program trace-refines itself (Definition 6 reflexivity)."""
    result = check_program_refinement(p, p)
    assert result.refines


@settings(max_examples=20, deadline=None)
@given(p=simple_programs())
def test_traces_start_at_initial_projection(p):
    from repro.refinement.traces import client_projection
    from repro.semantics.config import initial_config

    traces, cyclic = client_traces(p)
    assert not cyclic
    init_proj = client_projection(p, initial_config(p))
    for trace in traces:
        assert trace[0] == init_proj


@settings(max_examples=20, deadline=None)
@given(p=simple_programs())
def test_traces_are_stutter_free(p):
    traces, _ = client_traces(p)
    for trace in traces:
        assert all(a != b for a, b in zip(trace, trace[1:]))


@settings(max_examples=20, deadline=None)
@given(p=simple_programs())
def test_prefix_closure_contains_originals(p):
    traces, _ = client_traces(p)
    closure = prefix_closure(traces)
    assert traces <= closure
    for t in closure:
        assert any(t == full[: len(t)] for full in traces)
