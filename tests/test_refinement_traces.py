"""Tests for client trace projection and Definition 5 state refinement."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.refinement.traces import (
    client_projection,
    remove_stutter,
    trace_refines,
)
from repro.semantics.config import initial_config
from repro.semantics.explore import explore
from repro.semantics.step import successors
from tests.conftest import (
    abstract_lock_client,
    mp_relaxed,
    seqlock_client,
)


class TestProjection:
    def test_library_steps_stutter(self):
        p = seqlock_client()
        cfg = initial_config(p)
        proj0 = client_projection(p, cfg)
        # Take a library step (thread 1's acquire read of glb).
        lib_steps = [t for t in successors(p, cfg) if t.component == "L"]
        assert lib_steps
        proj1 = client_projection(p, lib_steps[0].target)
        assert proj0 == proj1

    def test_client_writes_change_projection(self):
        p = mp_relaxed()
        cfg = initial_config(p)
        proj0 = client_projection(p, cfg)
        client_steps = [t for t in successors(p, cfg) if t.component == "C"]
        for tr in client_steps:
            assert client_projection(p, tr.target) != proj0

    def test_library_registers_excluded(self):
        p = seqlock_client()
        result = explore(p)
        for cfg in list(result.configs.values())[:50]:
            proj = client_projection(p, cfg)
            for _tid, regs in proj.locals:
                for reg, _val in regs:
                    assert not reg.startswith("_sl_")

    def test_canonical_across_equivalent_configs(self):
        # Projections use rank-normalised timestamps: equal client
        # histories project equally regardless of library timestamps.
        p = seqlock_client()
        result = explore(p)
        projs = {client_projection(p, c) for c in result.configs.values()}
        assert len(projs) < result.state_count


class TestStateRefinement:
    def test_reflexive(self):
        p = mp_relaxed()
        proj = client_projection(p, initial_config(p))
        assert proj.refines(proj)

    def test_locals_must_match(self):
        p = mp_relaxed()
        result = explore(p)
        t1, t2 = result.terminals[0], None
        for cand in result.terminals[1:]:
            if cand.locals != t1.locals:
                t2 = cand
                break
        assert t2 is not None
        p1, p2 = client_projection(p, t1), client_projection(p, t2)
        assert not p1.refines(p2)
        assert not p2.refines(p1)

    def test_obs_subset_direction(self):
        # A state where thread 2 advanced its view refines one where it
        # has not (fewer observable writes), but not vice versa.
        from repro.semantics.config import Config

        p = mp_relaxed()
        # Reach the state where thread 1 wrote d (thread 2's view stale).
        result = explore(p)
        stale = next(
            cfg
            for cfg in result.configs.values()
            if len(cfg.gamma.ops_on("d")) == 2
            and cfg.gamma.thread_view("2", "d").ts == 0
        )
        # Manually advance thread 2's viewfront of d — same locals, same
        # ops, strictly fewer observable writes.
        new_write = stale.gamma.last_op("d")
        advanced_gamma = stale.gamma.with_thread_view(
            "2", stale.gamma.thread_view_map("2").set("d", new_write)
        )
        advanced = Config(
            cmds=stale.cmds,
            locals=stale.locals,
            gamma=advanced_gamma,
            beta=stale.beta,
        )
        p_stale = client_projection(p, stale)
        p_adv = client_projection(p, advanced)
        assert p_adv.refines(p_stale)  # fewer observations: refines
        assert not p_stale.refines(p_adv)  # more observations: does not


class TestRemoveStutter:
    def test_collapses_runs(self):
        assert remove_stutter([1, 1, 2, 2, 2, 1]) == (1, 2, 1)

    def test_empty(self):
        assert remove_stutter([]) == ()

    @given(st.lists(st.integers(0, 3), max_size=20))
    def test_property_no_adjacent_duplicates(self, xs):
        out = remove_stutter(xs)
        assert all(a != b for a, b in zip(out, out[1:]))

    @given(st.lists(st.integers(0, 3), max_size=20))
    def test_property_idempotent(self, xs):
        once = remove_stutter(xs)
        assert remove_stutter(once) == once

    @given(st.lists(st.integers(0, 3), max_size=20))
    def test_property_preserves_first_last(self, xs):
        out = remove_stutter(xs)
        if xs:
            assert out[0] == xs[0]
            assert out[-1] == xs[-1]


class TestTraceRefines:
    def test_equal_traces(self):
        p = mp_relaxed()
        proj = client_projection(p, initial_config(p))
        assert trace_refines([proj], [proj])

    def test_length_mismatch(self):
        p = mp_relaxed()
        proj = client_projection(p, initial_config(p))
        assert not trace_refines([proj], [proj, proj])
