"""Parity tests for the ``rounds`` sharded backend.

On non-truncated runs the parallel engine must be bit-identical to
sequential BFS: same configuration set, ``state_count``, ``edge_count``,
terminal outcomes and litmus verdicts.  The full litmus catalog is the
parity corpus; a couple of targeted tests cover edge collection,
early-stop (including the master-loop bail-out once it flips) and the
``workers=1`` deterministic fallback.

This file pins ``backend="rounds"`` — the level-synchronous backend
whose master-side ``on_config`` supports the stateful probes used below.
The pipeline backend has its own parity suite
(``tests/test_engine_pipeline.py``) with worker-side-safe predicates.
"""

import pytest

from repro.engine import ExplorationEngine
from repro.engine.parallel import explore_parallel
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.litmus.catalog import LITMUS_TESTS, run_litmus
from repro.semantics.explore import explore

WORKERS = 2


@pytest.fixture(scope="module")
def parallel_engine():
    return ExplorationEngine(workers=WORKERS, backend="rounds")


class TestCatalogParity:
    @pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
    def test_identical_state_space(self, test, parallel_engine):
        # Keys differ by representation (the parallel backend uses
        # stable digests), so parity is asserted on every
        # representation-independent observable.
        seq = explore(test.build())
        par = parallel_engine.explore(test.build())
        assert not par.truncated and not par.stopped
        assert par.state_count == seq.state_count
        assert par.edge_count == seq.edge_count
        assert len(par.terminals) == len(seq.terminals)
        assert len(par.stuck) == len(seq.stuck)
        assert par.terminal_locals(*test.regs) == seq.terminal_locals(
            *test.regs
        )

    def test_litmus_verdicts_match(self, parallel_engine):
        for test in LITMUS_TESTS:
            seq = run_litmus(test)
            par = run_litmus(test, engine=parallel_engine)
            assert par["verdict_ok"] and seq["verdict_ok"], test.name
            assert par["outcomes"] == seq["outcomes"], test.name
            assert par["states"] == seq["states"], test.name


class TestParallelBehaviour:
    def test_collect_edges_parity(self, parallel_engine):
        test = LITMUS_TESTS[0]
        seq = explore(test.build(), collect_edges=True)
        par = parallel_engine.explore(test.build(), collect_edges=True)
        # Same graph shape modulo key representation: every node has an
        # edge list, targets resolve, and the labelled out-edge
        # multisets coincide node-for-node.
        assert set(par.edges) == set(par.configs)
        for key, out in par.edges.items():
            for _tid, _comp, _act, tkey in out:
                assert tkey in par.configs

        def shape(result):
            return sorted(
                sorted(
                    (tid, comp, repr(act)) for tid, comp, act, _ in out
                )
                for out in result.edges.values()
            )

        assert shape(par) == shape(seq)

    def test_truncation(self, parallel_engine):
        test = LITMUS_TESTS[0]
        result = parallel_engine.explore(test.build(), max_states=3)
        assert result.truncated
        assert result.state_count <= 3

    def test_early_stop(self, parallel_engine):
        test = LITMUS_TESTS[0]
        full = explore(test.build())
        seen = []

        def probe(cfg):
            seen.append(cfg)
            return len(seen) >= 2

        result = parallel_engine.explore(test.build(), on_config=probe)
        assert result.stopped
        assert result.state_count < full.state_count

    def test_workers_one_falls_back_to_sequential(self):
        test = LITMUS_TESTS[0]
        seq = explore(test.build())
        fallback = explore_parallel(
            test.build(), workers=1, max_states=500_000
        )
        # Identical including insertion order: same code path.
        assert list(fallback.configs) == list(seq.configs)
        assert fallback.edge_count == seq.edge_count

    def test_unknown_backend_rejected(self):
        test = LITMUS_TESTS[0]
        with pytest.raises(ValueError, match="unknown parallel backend"):
            explore_parallel(
                test.build(), workers=2, max_states=100, backend="nope"
            )

    def test_early_stop_bails_out_of_the_round(self):
        """Once ``stopped`` flips mid-round, the master must stop
        admitting the rest of the round's targets: the result covers
        the states visited *before* the stop, not the whole round."""
        program = Program(
            threads={
                str(i): Thread(A.Write(f"x{i}", Lit(1))) for i in (1, 2, 3)
            },
            client_vars={f"x{i}": 0 for i in (1, 2, 3)},
        )

        def probe(cfg):  # false on the initial configuration only
            # (γ_Init already holds the value-0 initialisation writes)
            return any(op.act.val == 1 for op in cfg.gamma.ops)

        result = explore_parallel(
            program,
            workers=WORKERS,
            max_states=500_000,
            on_config=probe,
            backend="rounds",
        )
        assert result.stopped
        # The initial configuration has three successors; pre-fix the
        # master admitted all of them after the first one matched.
        assert result.state_count == 2

    def test_invariant_checking_in_workers(self, parallel_engine):
        # Diagnostic mode must survive the worker boundary.
        test = LITMUS_TESTS[0]
        result = parallel_engine.explore(test.build(), check_invariants=True)
        assert result.state_count > 1
