"""Behavioural tests for the concrete implementations themselves."""

import pytest

from repro.impls.counter_fai import FAICOUNTER_VARS, counter_fill
from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.semantics.explore import explore
from tests.conftest import (
    seqlock_client,
    spinlock_client,
    ticketlock_client,
)

LOCKS = [
    ("seqlock", seqlock_fill, SEQLOCK_VARS),
    ("ticketlock", ticketlock_fill, TICKETLOCK_VARS),
    ("spinlock", spinlock_fill, SPINLOCK_VARS),
]


@pytest.mark.parametrize("name,fill,lib_vars", LOCKS, ids=[l[0] for l in LOCKS])
class TestLockBehaviour:
    def test_mutual_exclusion_on_writes(self, name, fill, lib_vars):
        """Two writers under the lock: the final value is whichever wrote
        last; intermediate states never interleave mid-critical-section.
        With values 5 and 7, readers of x at the end see 5 or 7, never a
        torn mix (trivially true here) — and crucially, the two writes
        are never both 'live': the mo-maximal write is the second CS."""
        body1 = A.seq(
            fill("l", "acquire"),
            A.Write("x", Lit(5)),
            A.Write("x", Lit(6)),
            fill("l", "release"),
        )
        body2 = A.seq(
            fill("l", "acquire"),
            A.Read("a", "x"),
            A.Read("b", "x"),
            fill("l", "release"),
        )
        p = Program(
            threads={"1": Thread(body1), "2": Thread(body2)},
            client_vars={"x": 0},
            lib_vars=dict(lib_vars),
        )
        result = explore(p)
        assert not result.stuck and not result.truncated
        outcomes = result.terminal_locals(("2", "a"), ("2", "b"))
        # Reader runs before (0,0) or after (6,6) — never between the
        # writes (no (5, …) observations): the lock publishes both.
        assert outcomes == {(0, 0), (6, 6)}

    def test_no_deadlock(self, name, fill, lib_vars):
        result = explore(
            Program(
                threads={
                    "1": Thread(
                        A.seq(fill("l", "acquire"), fill("l", "release"))
                    ),
                    "2": Thread(
                        A.seq(fill("l", "acquire"), fill("l", "release"))
                    ),
                },
                lib_vars=dict(lib_vars),
            )
        )
        assert not result.stuck
        assert result.terminals

    def test_publication(self, name, fill, lib_vars):
        """Figure-7-style publication through the implementation."""
        body1 = A.seq(
            fill("l", "acquire"),
            A.Write("d", Lit(5)),
            fill("l", "release"),
        )
        body2 = A.seq(
            fill("l", "acquire"),
            A.Read("r", "d"),
            fill("l", "release"),
        )
        p = Program(
            threads={"1": Thread(body1), "2": Thread(body2)},
            client_vars={"d": 0},
            lib_vars=dict(lib_vars),
        )
        outcomes = explore(p).terminal_locals(("2", "r"))
        assert outcomes == {(0,), (5,)}


class TestSeqlockSpecifics:
    def test_glb_parity_protocol(self):
        """glb is odd exactly while held; ends even."""
        p = seqlock_client()
        result = explore(p)
        for cfg in result.terminals:
            final = cfg.beta.last_op("glb")
            assert final.act.val % 2 == 0

    def test_acquire_returns_true_when_bound(self):
        body = A.seq(
            seqlock_fill("l", "acquire", dest="ok"),
            seqlock_fill("l", "release"),
        )
        p = Program(
            threads={"1": Thread(body)},
            lib_vars=dict(SEQLOCK_VARS),
        )
        result = explore(p)
        assert result.terminal_locals(("1", "ok")) == {(True,)}


class TestTicketlockSpecifics:
    def test_tickets_dispensed_in_order(self):
        p = ticketlock_client()
        result = explore(p)
        for cfg in result.terminals:
            # nt ends at 2 (two tickets taken), sn at 2 (both served).
            assert cfg.beta.last_op("nt").act.val == 2
            assert cfg.beta.last_op("sn").act.val == 2

    def test_fifo_fairness(self):
        """The ticket lock serves in ticket order: whichever thread takes
        ticket 0 enters first.  (The spinlock has no such guarantee.)"""
        body1 = A.seq(
            ticketlock_fill("l", "acquire"),
            A.Write("x", Lit(1)),
            ticketlock_fill("l", "release"),
        )
        body2 = A.seq(
            ticketlock_fill("l", "acquire"),
            A.Read("r", "x"),
            ticketlock_fill("l", "release"),
        )
        p = Program(
            threads={"1": Thread(body1), "2": Thread(body2)},
            client_vars={"x": 0},
            lib_vars=dict(TICKETLOCK_VARS),
        )
        result = explore(p)
        for cfg in result.terminals:
            t1_ticket = cfg.local("1", "_tl_m")
            t2_ticket = cfg.local("2", "_tl_m")
            assert {t1_ticket, t2_ticket} == {0, 1}
            # Ticket 0 enters first: if thread 2 held ticket 0 it read
            # x = 0; with ticket 1 it must have read 1.
            if t2_ticket == 0:
                assert cfg.local("2", "r") == 0
            else:
                assert cfg.local("2", "r") == 1


class TestFaiCounter:
    def test_two_incs_distinct(self):
        p = Program(
            threads={
                "1": Thread(counter_fill("c", "inc", dest="a")),
                "2": Thread(counter_fill("c", "inc", dest="b")),
            },
            lib_vars=dict(FAICOUNTER_VARS),
        )
        outcomes = explore(p).terminal_locals(("1", "a"), ("2", "b"))
        assert outcomes == {(0, 1), (1, 0)}

    def test_read_modes(self):
        p = Program(
            threads={
                "1": Thread(counter_fill("c", "inc", dest="a")),
                "2": Thread(counter_fill("c", "read", dest="b")),
            },
            lib_vars=dict(FAICOUNTER_VARS),
        )
        outcomes = explore(p).terminal_locals(("2", "b"))
        assert outcomes == {(0,), (1,)}

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            counter_fill("c", "reset")


class TestFillValidation:
    @pytest.mark.parametrize("fill", [seqlock_fill, ticketlock_fill, spinlock_fill])
    def test_unknown_method_raises(self, fill):
        with pytest.raises(ValueError):
            fill("l", "downgrade")
