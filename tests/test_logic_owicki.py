"""Tests for the Owicki–Gries proof-outline checker.

The positive cases are the paper's outlines (Figures 3 and 7); the
negative cases mutate assertions and must be rejected with the right
obligation kind — a checker that accepts everything proves nothing.
"""

import pytest

from repro.assertions.core import TRUE, FALSE, LocalEq
from repro.assertions.observability import DefiniteValue
from repro.figures.fig3 import fig3_outline
from repro.figures.fig7 import fig7_outline, fig7_program
from repro.logic.outline import ProofOutline, ThreadOutline
from repro.logic.owicki import check_proof_outline


class TestFig3Outline:
    def test_valid(self):
        result = check_proof_outline(fig3_outline())
        assert result.valid
        assert result.obligations > 0

    def test_mutated_postcondition_rejected(self):
        outline = fig3_outline()
        bad = ProofOutline(
            program=outline.program,
            threads=outline.threads,
            invariant=outline.invariant,
            postcondition=LocalEq("2", "r2", 0),
        )
        result = check_proof_outline(bad)
        assert not result.valid
        assert any(f.kind == "post" for f in result.failures)

    def test_mutated_mid_assertion_rejected(self):
        outline = fig3_outline()
        threads = dict(outline.threads)
        # Claim thread 2 definitely sees d = 0 at its final read: false
        # once it popped 1.
        threads["2"] = ThreadOutline(
            {**dict(threads["2"].assertions), 4: DefiniteValue("d", 0, "2")}
        )
        result = check_proof_outline(
            ProofOutline(
                program=outline.program,
                threads=threads,
                postcondition=outline.postcondition,
            )
        )
        assert not result.valid


class TestFig7Outline:
    def test_valid_lemma4(self):
        result = check_proof_outline(fig7_outline())
        assert result.valid
        assert not result.truncated

    def test_strengthened_invariant_rejected(self):
        outline = fig7_outline()
        # Claim rl is always 1 — false when thread 2 acquires second.
        bad_inv = outline.invariant & LocalEq("2", "rl", 1)
        result = check_proof_outline(
            ProofOutline(
                program=outline.program,
                threads=outline.threads,
                invariant=bad_inv,
                postcondition=outline.postcondition,
            )
        )
        assert not result.valid

    def test_interference_detected_without_lock_protection(self):
        """An outline that would be valid sequentially but is interfered
        with: thread 1 claims [x = 0]1 across thread 2's write."""
        from repro.lang import ast as A
        from repro.lang.expr import Lit
        from repro.lang.program import Program, Thread

        p = Program(
            threads={
                "1": Thread(
                    A.seq(
                        A.Labeled(1, A.LocalAssign("t", Lit(0))),
                        A.Labeled(2, A.LocalAssign("t", Lit(1))),
                    ),
                    done_label=3,
                ),
                "2": Thread(
                    A.Labeled(1, A.Write("x", Lit(9))), done_label=2
                ),
            },
            client_vars={"x": 0},
        )
        outline = ProofOutline(
            program=p,
            threads={
                "1": ThreadOutline(
                    {
                        1: DefiniteValue("x", 0, "1"),
                        2: DefiniteValue("x", 0, "1"),
                        3: TRUE,
                    }
                ),
                "2": ThreadOutline({1: TRUE, 2: TRUE}),
            },
        )
        result = check_proof_outline(outline)
        assert not result.valid
        kinds = {f.kind for f in result.failures}
        # Thread 2's write interferes with thread 1's definite value —
        # caught as interference and/or annotation failure.
        assert "interference" in kinds or "annotation" in kinds

    def test_stop_on_first(self):
        outline = fig7_outline()
        bad = ProofOutline(
            program=outline.program,
            threads=outline.threads,
            invariant=FALSE,
            postcondition=outline.postcondition,
        )
        result = check_proof_outline(bad, stop_on_first=True)
        assert not result.valid
        assert len(result.failures) == 1


class TestReporting:
    def test_failure_description(self):
        outline = fig7_outline()
        bad = ProofOutline(
            program=outline.program,
            threads=outline.threads,
            invariant=outline.invariant,
            postcondition=FALSE,
        )
        result = check_proof_outline(bad)
        descs = [f.describe() for f in result.failures]
        assert any("post" in d for d in descs)

    def test_unannotated_labels_tolerated(self):
        # An outline annotating only some labels checks the ones it has.
        program = fig7_program()
        outline = ProofOutline(
            program=program,
            threads={"1": ThreadOutline({1: TRUE})},
            postcondition=TRUE,
        )
        result = check_proof_outline(outline)
        assert result.valid

    def test_counts_reported(self):
        result = check_proof_outline(fig7_outline())
        assert result.states > 0
        assert result.transitions > 0
        assert result.obligations > result.states
