"""End-to-end tests for the paper's figure programs."""

import pytest

from repro.figures.fig1 import EXPECTED_OUTCOMES as FIG1_EXPECTED
from repro.figures.fig1 import fig1_program
from repro.figures.fig2 import EXPECTED_OUTCOMES as FIG2_EXPECTED
from repro.figures.fig2 import fig2_program
from repro.figures.fig7 import EXPECTED_OUTCOMES as FIG7_EXPECTED
from repro.figures.fig7 import fig7_program
from repro.semantics.explore import explore


class TestFig1:
    def test_weak_postcondition(self):
        """The stale read r2 = 0 is reachable with a relaxed stack."""
        result = explore(fig1_program())
        assert not result.truncated and not result.stuck
        outcomes = result.terminal_locals(("2", "r2"))
        assert outcomes == FIG1_EXPECTED

    def test_pop_always_returns_pushed_value(self):
        result = explore(fig1_program())
        assert result.terminal_locals(("2", "r1")) == {(1,)}


class TestFig2:
    def test_publication(self):
        """Release/acquire stack operations guarantee r2 = 5."""
        result = explore(fig2_program())
        assert not result.truncated and not result.stuck
        outcomes = result.terminal_locals(("2", "r2"))
        assert outcomes == FIG2_EXPECTED

    def test_stale_read_unreachable(self):
        result = explore(fig2_program())
        assert (0,) not in result.terminal_locals(("2", "r2"))


class TestFig7:
    def test_postcondition_with_versions(self):
        """(r1 = r2 = 0 ∧ rl = 1) ∨ (r1 = r2 = 5 ∧ rl = 3)."""
        result = explore(fig7_program())
        assert not result.truncated and not result.stuck
        outcomes = result.terminal_locals(("2", "rl"), ("2", "r1"), ("2", "r2"))
        assert outcomes == FIG7_EXPECTED

    def test_mutual_exclusion_invariant(self):
        """No reachable configuration has both threads in their critical
        sections (the first conjunct of the paper's Inv)."""
        p = fig7_program()

        def both_in_cs(cfg):
            return cfg.pc("1", p) in (2, 3, 4) and cfg.pc("2", p) in (2, 3, 4)

        result = explore(p)
        assert not any(both_in_cs(c) for c in result.configs.values())

    def test_lock_versions_alternate(self):
        """Lock operation indices are consecutive: init_0, acquire_1,
        release_2, acquire_3, release_4."""
        result = explore(fig7_program())
        for cfg in result.terminals:
            indices = sorted(op.act.index for op in cfg.beta.ops_on("l"))
            assert indices == [0, 1, 2, 3, 4]
