"""Tests for the generic AST walker (:mod:`repro.lang.walk`)."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.walk import (
    NodeVisit,
    assigned_register,
    children,
    fold,
    format_path,
    iter_nodes,
    node_exprs,
)


def _mp_body():
    return A.seq(
        A.Write("d", Lit(5)),
        A.Write("f", Lit(1), release=True),
    )


class TestChildren:
    def test_leaves_have_no_children(self):
        for leaf in (
            A.LocalAssign("r", Lit(1)),
            A.Write("x", Lit(1)),
            A.Read("r", "x"),
            A.Cas("r", "x", Lit(0), Lit(1)),
            A.Fai("r", "x"),
            A.MethodCall("s", "push", Lit(1), dest="r"),
        ):
            assert children(leaf) == ()

    def test_seq_children_in_order(self):
        s = _mp_body()
        assert [f for f, _ in children(s)] == ["first", "second"]
        assert children(s)[0][1] is s.first

    def test_if_includes_none_else(self):
        node = A.If(Reg("r").eq(0), A.Write("x", Lit(1)))
        fields = dict(children(node))
        assert fields["else_branch"] is None
        assert isinstance(fields["then_branch"], A.Write)

    def test_unknown_node_raises(self):
        with pytest.raises(TypeError):
            children(object())


class TestNodeExprs:
    def test_expr_carriers(self):
        assert node_exprs(A.LocalAssign("r", Lit(1))) == (Lit(1),)
        assert node_exprs(A.Write("x", Lit(2))) == (Lit(2),)
        cas = A.Cas("r", "x", Lit(0), Lit(1))
        assert node_exprs(cas) == (Lit(0), Lit(1))
        cond = Reg("r").eq(0)
        assert node_exprs(A.While(cond, None)) == (cond,)

    def test_no_expr_nodes(self):
        assert node_exprs(A.Read("r", "x")) == ()
        assert node_exprs(A.Fai("r", "x")) == ()

    def test_method_call_skips_none_arg(self):
        assert node_exprs(A.MethodCall("s", "pop", None, dest="r")) == ()
        assert node_exprs(A.MethodCall("s", "push", Lit(1))) == (Lit(1),)


class TestAssignedRegister:
    def test_assigners(self):
        assert assigned_register(A.LocalAssign("r", Lit(1))) == "r"
        assert assigned_register(A.Read("r", "x")) == "r"
        assert assigned_register(A.Cas("r", "x", Lit(0), Lit(1))) == "r"
        assert assigned_register(A.Fai("r", "x")) == "r"
        assert (
            assigned_register(A.MethodCall("s", "pop", None, dest="r")) == "r"
        )

    def test_non_assigners(self):
        assert assigned_register(A.Write("x", Lit(1))) is None
        assert assigned_register(A.MethodCall("s", "push", Lit(1))) is None
        assert assigned_register(_mp_body()) is None


class TestIterNodes:
    def test_preorder_with_paths(self):
        body = _mp_body()
        visits = list(iter_nodes(body))
        assert [type(v.node).__name__ for v in visits] == [
            "Seq", "Write", "Write",
        ]
        assert visits[0].path == ()
        assert visits[1].path == ("first",)
        assert visits[2].path == ("second",)

    def test_none_yields_nothing(self):
        assert list(iter_nodes(None)) == []

    def test_lib_block_flips_in_lib(self):
        body = A.seq(
            A.Write("c", Lit(1)),
            A.LibBlock(A.Write("l", Lit(1)), public_regs=frozenset()),
        )
        flags = {
            v.node.var: v.in_lib
            for v in iter_nodes(body)
            if isinstance(v.node, A.Write)
        }
        assert flags == {"c": False, "l": True}
        # The LibBlock node itself is visited with the *outer* flag.
        lib_visit = next(
            v for v in iter_nodes(body) if isinstance(v.node, A.LibBlock)
        )
        assert lib_visit.in_lib is False

    def test_visit_is_named_tuple(self):
        (visit,) = iter_nodes(A.Write("x", Lit(1)))
        assert isinstance(visit, NodeVisit)
        assert visit.node == A.Write("x", Lit(1))


class TestFormatPath:
    def test_root(self):
        assert format_path(()) == "<body>"

    def test_joined(self):
        assert format_path(("second", "body")) == "second.body"


class TestFold:
    def test_counts_nodes(self):
        def count(node, in_lib, child_values):
            if node is None:
                return 0
            return 1 + sum(child_values)

        body = A.seq(
            A.Write("x", Lit(1)),
            A.If(Reg("r").eq(0), A.Write("y", Lit(1))),
        )
        # Seq + Write + If + Write (None else contributes 0).
        assert fold(body, count) == 4

    def test_none_command(self):
        assert fold(None, lambda n, lib, cs: "none" if n is None else "x") == (
            "none"
        )

    def test_cache_hits_and_bound(self):
        cache = {}
        calls = []

        def count(node, in_lib, child_values):
            if node is None:
                return 0
            calls.append(node)
            return 1 + sum(child_values)

        body = _mp_body()
        assert fold(body, count, cache=cache) == 3
        first_calls = len(calls)
        # Second fold over a structurally-equal tree: all cache hits.
        assert fold(_mp_body(), count, cache=cache) == 3
        assert len(calls) == first_calls
        assert cache  # keyed (node, in_lib)

    def test_cache_eviction_keeps_newest(self):
        cache = {}

        def one(node, in_lib, child_values):
            return 0 if node is None else 1 + sum(child_values)

        writes = [A.Write(f"v{i}", Lit(i)) for i in range(8)]
        for w in writes[:4]:
            fold(w, one, cache=cache, cache_max=4)
        assert len(cache) == 4
        # The 5th insert evicts the oldest half, keeping the newest.
        fold(writes[4], one, cache=cache, cache_max=4)
        kept = {node.var for (node, _lib) in cache}
        assert "v4" in kept and "v3" in kept
        assert "v0" not in kept and "v1" not in kept

    def test_lib_block_fn_sees_outer_flag(self):
        seen = {}

        def record(node, in_lib, child_values):
            if node is not None:
                seen[type(node).__name__] = in_lib
            return None

        fold(
            A.LibBlock(A.Write("l", Lit(1)), public_regs=frozenset()),
            record,
        )
        assert seen["LibBlock"] is False
        assert seen["Write"] is True
