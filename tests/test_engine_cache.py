"""Tests for program fingerprints and the persistent result cache."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.engine import (
    ExplorationEngine,
    ResultCache,
    cache_key,
    program_fingerprint,
)
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.litmus.catalog import LITMUS_TESTS, run_litmus
from repro.semantics.explore import explore


def _mp(flag_value: int = 1) -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(flag_value), release=True))
    t2 = A.seq(A.Read("r1", "f", acquire=True), A.Read("r2", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )


class TestFingerprint:
    def test_deterministic_within_process(self):
        assert program_fingerprint(_mp()) == program_fingerprint(_mp())

    def test_content_sensitive(self):
        assert program_fingerprint(_mp(1)) != program_fingerprint(_mp(2))
        for a, b in zip(LITMUS_TESTS, LITMUS_TESTS[1:]):
            assert program_fingerprint(a.build()) != program_fingerprint(
                b.build()
            )

    def test_parameters_enter_cache_key(self):
        p = _mp()
        base = cache_key(p, max_states=1000)
        assert cache_key(p, max_states=2000) != base
        assert cache_key(p, max_states=1000, canonicalise=False) != base
        assert cache_key(p, max_states=1000) == base

    def test_stable_across_hash_seeds(self):
        """PYTHONHASHSEED-independence: the property builtin hash lacks."""
        code = (
            "from repro.lang import ast as A\n"
            "from repro.lang.expr import Lit\n"
            "from repro.lang.program import Program, Thread\n"
            "from repro.engine import program_fingerprint\n"
            "t1 = A.seq(A.Write('d', Lit(5)), A.Write('f', Lit(1), release=True))\n"
            "t2 = A.seq(A.Read('r1', 'f', acquire=True), A.Read('r2', 'd'))\n"
            "p = Program(threads={'1': Thread(t1), '2': Thread(t2)},\n"
            "            client_vars={'d': 0, 'f': 0})\n"
            "print(program_fingerprint(p))\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        prints = []
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.abspath(src)]
                + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
            )
            prints.append(
                subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True,
                    text=True,
                    env=env,
                    check=True,
                ).stdout.strip()
            )
        assert prints[0] == prints[1] == program_fingerprint(_mp())

    def test_stable_digest_hash_seed_independent(self):
        """Canonical keys contain frozensets, whose iteration order is
        seed-dependent — the digest must not be (cross-process dedup in
        the sharded explorer relies on it)."""
        code = (
            "from repro.lang import ast as A\n"
            "from repro.lang.expr import Lit\n"
            "from repro.lang.program import Program, Thread\n"
            "from repro.semantics.canon import canonical_key\n"
            "from repro.semantics.explore import explore\n"
            "from repro.engine.fingerprint import stable_digest\n"
            "t1 = A.seq(A.Write('d', Lit(5)), A.Write('f', Lit(1), release=True))\n"
            "t2 = A.seq(A.Read('r1', 'f', acquire=True), A.Read('r2', 'd'))\n"
            "p = Program(threads={'1': Thread(t1), '2': Thread(t2)},\n"
            "            client_vars={'d': 0, 'f': 0})\n"
            "r = explore(p)\n"
            "digests = sorted(stable_digest(k).hex() for k in r.configs)\n"
            "print(','.join(digests))\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        prints = []
        for seed in ("1", "990099"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.path.abspath(src)
            prints.append(
                subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True,
                    text=True,
                    env=env,
                    check=True,
                ).stdout.strip()
            )
        assert prints[0] == prints[1]
        assert len(set(prints[0].split(","))) == len(prints[0].split(","))


class TestSubDigestEviction:
    def test_half_eviction_keeps_newest_and_stays_correct(self, monkeypatch):
        """The substructure memo evicts its oldest-inserted half at the
        cap — it must never grow past the cap, must retain the recent
        half (the live working set), and eviction must not change any
        digest."""
        from repro.engine import fingerprint as fp

        monkeypatch.setattr(fp, "_SUB_DIGESTS", {})
        monkeypatch.setattr(fp, "_SUB_DIGESTS_MAX", 10)
        keys = [("sub", i, str(i)) for i in range(25)]
        digests = [fp.stable_digest((k, k)) for k in keys]
        assert len(fp._SUB_DIGESTS) <= 10
        # The most recently inserted substructures survived...
        remembered = {k for (_size, k) in fp._SUB_DIGESTS}
        assert keys[-1] in remembered and keys[0] not in remembered
        # ...and re-digesting from a cold memo reproduces every digest.
        monkeypatch.setattr(fp, "_SUB_DIGESTS", {})
        assert [fp.stable_digest((k, k)) for k in keys] == digests


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExplorationEngine(cache=cache)
        p = _mp()
        cold = engine.run(p)
        assert not cold.cached and cache.misses == 1 and len(cache) == 1
        warm = engine.run(p)
        assert warm.cached and cache.hits == 1
        assert warm.state_count == cold.state_count
        assert warm.terminal_locals(("2", "r1"), ("2", "r2")) == (
            cold.terminal_locals(("2", "r1"), ("2", "r2"))
        )

    def test_warm_cache_means_zero_explorations(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExplorationEngine(cache=cache).run(_mp())
        rerun = ExplorationEngine(cache=cache)
        rerun.run(_mp())
        assert rerun.explorations == 0

    def test_program_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExplorationEngine(cache=cache)
        engine.run(_mp(1))
        fresh = engine.run(_mp(2))
        assert not fresh.cached
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExplorationEngine(cache=cache)
        engine.run(_mp())
        (entry,) = list(cache.root.glob("*/*.pkl"))
        entry.write_bytes(b"not a pickle")
        recovered = ExplorationEngine(cache=cache).run(_mp())
        assert not recovered.cached
        assert recovered.state_count == explore(_mp()).state_count

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(_mp(), max_states=500_000)
        path = cache.root / key[:2] / f"{key}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a summary"}))
        assert cache.get(key) is None
        assert not path.exists()

    def test_truncated_results_not_cached(self, tmp_path):
        # Truncated summaries depend on visit order (strategy/workers),
        # which the cache key deliberately omits — they must never be
        # persisted or served.
        cache = ResultCache(tmp_path)
        capped = ExplorationEngine(cache=cache, max_states=3)
        summary = capped.run(_mp())
        assert summary.truncated
        assert len(cache) == 0
        rerun = capped.run(_mp())
        assert not rerun.cached

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExplorationEngine(cache=cache)
        engine.run(_mp(1))
        engine.run(_mp(2))
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCachedLitmus:
    def test_run_litmus_served_from_cache(self, tmp_path):
        engine = ExplorationEngine(cache=ResultCache(tmp_path))
        test = LITMUS_TESTS[0]
        cold = run_litmus(test, engine=engine, use_cache=True)
        warm = run_litmus(test, engine=engine, use_cache=True)
        assert not cold["cached"] and warm["cached"]
        assert warm["outcomes"] == cold["outcomes"]
        assert warm["verdict_ok"] and cold["verdict_ok"]
        assert warm["states"] == cold["states"]

    def test_catalog_warm_pass_explores_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = ExplorationEngine(cache=cache)
        for test in LITMUS_TESTS:
            run_litmus(test, engine=first, use_cache=True)
        assert first.explorations == len(LITMUS_TESTS)
        second = ExplorationEngine(cache=cache)
        for test in LITMUS_TESTS:
            verdict = run_litmus(test, engine=second, use_cache=True)
            assert verdict["verdict_ok"] and verdict["cached"]
        assert second.explorations == 0
