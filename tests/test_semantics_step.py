"""Tests for successor generation (the =⇒ relation)."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import EMPTY, Lit, Reg
from repro.lang.program import Program, Thread
from repro.objects.lock import AbstractLock
from repro.objects.stack import AbstractStack
from repro.semantics.config import initial_config
from repro.semantics.step import successors, thread_successors
from repro.util.errors import SemanticsError


def prog(body, tid="1", **kw):
    return Program(threads={tid: Thread(body)}, **kw)


def all_steps(program):
    return successors(program, initial_config(program))


class TestLocalSteps:
    def test_local_assign_is_silent(self):
        p = prog(A.LocalAssign("r", Lit(5)))
        (tr,) = all_steps(p)
        assert tr.action is None
        assert tr.component == "C"
        assert tr.target.local("1", "r") == 5
        assert tr.target.cmd("1") is None

    def test_if_true_branch(self):
        p = prog(
            A.If(Lit(True), A.LocalAssign("r", Lit(1)), A.LocalAssign("r", Lit(2)))
        )
        (tr,) = all_steps(p)
        assert isinstance(tr.target.cmd("1"), A.LocalAssign)
        assert tr.target.cmd("1").expr == Lit(1)

    def test_if_false_branch_missing_terminates(self):
        p = prog(A.If(Lit(False), A.LocalAssign("r", Lit(1))))
        (tr,) = all_steps(p)
        assert tr.target.cmd("1") is None

    def test_while_unrolls(self):
        body = A.LocalAssign("r", Reg("r") + 1)
        p = prog(
            A.seq(A.LocalAssign("r", Lit(0)), A.While(Reg("r").lt(2), body))
        )
        # Run to completion deterministically.
        from repro.semantics.explore import explore

        result = explore(p)
        (terminal,) = result.terminals
        assert terminal.local("1", "r") == 2

    def test_while_false_terminates(self):
        p = prog(A.While(Lit(False), A.LocalAssign("r", Lit(1))))
        (tr,) = all_steps(p)
        assert tr.target.cmd("1") is None


class TestMemorySteps:
    def test_write_enumerated(self):
        p = prog(A.Write("x", Lit(1)), client_vars={"x": 0})
        (tr,) = all_steps(p)
        assert tr.action.kind == "wr"
        assert tr.component == "C"

    def test_read_binds_register(self):
        p = prog(A.Read("r", "x"), client_vars={"x": 7})
        (tr,) = all_steps(p)
        assert tr.target.local("1", "r") == 7
        assert tr.action.kind == "rd"

    def test_cas_success_and_failure_both_offered(self):
        p = prog(
            A.seq(A.Write("x", Lit(1)), A.Cas("ok", "x", Lit(0), Lit(9))),
            client_vars={"x": 0},
        )
        from repro.semantics.explore import explore

        result = explore(p)
        outcomes = {t.local("1", "ok") for t in result.terminals}
        # After x := 1, thread 1 observes only x = 1: CAS(0 → 9) fails.
        assert outcomes == {False}

    def test_cas_success_branch(self):
        p = prog(A.Cas("ok", "x", Lit(0), Lit(9)), client_vars={"x": 0})
        (tr,) = all_steps(p)
        assert tr.action.kind == "updRA"
        assert tr.target.local("1", "ok") is True

    def test_fai_returns_old_value(self):
        p = prog(A.Fai("r", "x"), client_vars={"x": 3})
        (tr,) = all_steps(p)
        assert tr.action.rdval == 3 and tr.action.val == 4
        assert tr.target.local("1", "r") == 3

    def test_fai_on_non_integer_raises(self):
        p = prog(A.Fai("r", "x"), client_vars={"x": EMPTY})
        with pytest.raises(SemanticsError):
            all_steps(p)


class TestLibrarySteps:
    def test_libblock_tagged_library(self):
        p = prog(
            A.LibBlock(A.Write("glb", Lit(1))),
            lib_vars={"glb": 0},
        )
        (tr,) = all_steps(p)
        assert tr.component == "L"
        # The write landed in β, not γ.
        assert len(tr.target.beta.ops_on("glb")) == 2
        assert tr.target.gamma.ops_on("glb") == ()

    def test_method_call_tagged_library(self):
        p = prog(
            A.MethodCall("l", "acquire", dest="v"),
            objects=(AbstractLock("l"),),
        )
        (tr,) = all_steps(p)
        assert tr.component == "L"
        assert tr.target.local("1", "v") == 1

    def test_method_call_unknown_object(self):
        p = prog(A.MethodCall("nope", "acquire"))
        with pytest.raises(SemanticsError):
            all_steps(p)

    def test_blocked_method_no_steps(self):
        lock = AbstractLock("l")
        t1 = A.MethodCall("l", "acquire")
        t2 = A.MethodCall("l", "acquire")
        p = Program(
            threads={"1": Thread(t1), "2": Thread(t2)},
            objects=(lock,),
        )
        cfg = initial_config(p)
        # Both can acquire initially.
        assert len(successors(p, cfg)) == 2
        # After thread 1 acquires, thread 2 is blocked.
        (tr1,) = list(thread_successors(p, cfg, "1"))
        assert list(thread_successors(p, tr1.target, "2")) == []

    def test_pop_empty_is_lib_step_without_action(self):
        p = prog(
            A.MethodCall("s", "pop", dest="r"),
            objects=(AbstractStack("s"),),
        )
        (tr,) = all_steps(p)
        assert tr.component == "L"
        assert tr.action is None
        assert tr.target.local("1", "r") == EMPTY


class TestStructural:
    def test_seq_collapses_completed_first(self):
        p = prog(A.seq(A.LocalAssign("a", Lit(1)), A.LocalAssign("b", Lit(2))))
        (tr,) = all_steps(p)
        assert isinstance(tr.target.cmd("1"), A.LocalAssign)

    def test_labeled_wrapper_retained_mid_region(self):
        p = prog(
            A.Labeled(
                1,
                A.seq(A.LocalAssign("a", Lit(1)), A.LocalAssign("b", Lit(2))),
            )
        )
        (tr,) = all_steps(p)
        assert isinstance(tr.target.cmd("1"), A.Labeled)
        assert tr.target.pc("1", p) == 1
        (tr2,) = successors(p, tr.target)
        assert tr2.target.cmd("1") is None

    def test_terminated_thread_offers_nothing(self):
        p = prog(A.LocalAssign("a", Lit(1)))
        (tr,) = all_steps(p)
        assert list(thread_successors(p, tr.target, "1")) == []

    def test_interleaving_of_two_threads(self):
        p = Program(
            threads={
                "1": Thread(A.LocalAssign("a", Lit(1))),
                "2": Thread(A.LocalAssign("b", Lit(2))),
            },
        )
        assert len(all_steps(p)) == 2
