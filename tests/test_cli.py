"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main, run_figures, run_litmus, run_refine


class TestJobs:
    def test_run_litmus(self, capsys):
        assert run_litmus() is True
        out = capsys.readouterr().out
        assert "MP-relaxed" in out and "OK" in out

    def test_run_figures(self, capsys):
        assert run_figures() is True
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Lemma 4" in out

    def test_run_refine(self, capsys):
        assert run_refine() is True
        out = capsys.readouterr().out
        assert "seqlock_fill" in out and "PASS" in out


class TestMain:
    def test_single_command(self, capsys):
        assert main(["repro", "figures"]) == 0
        assert "ALL CHECKS PASS" in capsys.readouterr().out

    def test_unknown_command_shows_help(self, capsys):
        assert main(["repro", "bogus"]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_default_is_all(self, capsys):
        assert main(["repro"]) == 0
        out = capsys.readouterr().out
        assert "litmus" in out or "MP-relaxed" in out
        assert "refinement report" in out


class TestReductionFlag:
    def test_litmus_reduction_off(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus", "--reduction", "off"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out
        # Unreduced exploration of MP-ring-3-RA stores the full space.
        assert "MP-ring-3-RA             368" in out

    def test_litmus_reduction_closure_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out
        assert "MP-ring-3-RA              65" in out
        # The committed benchmark baseline supplies the unreduced
        # per-test counts without re-running them.
        assert "368" in out

    def test_unknown_reduction_rejected(self, capsys):
        assert main(["repro", "litmus", "--reduction", "bogus"]) == 2
        assert "unknown reduction" in capsys.readouterr().out

    def test_figures_rejects_reduction(self, capsys):
        assert main(["repro", "figures", "--reduction", "off"]) == 2
        assert "not supported" in capsys.readouterr().out

    def test_batch_reduction_json(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.setenv("REPRO_CACHE", "0")
        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "repro", "batch", "--jobs", "litmus",
                    "--json", str(report),
                ]
            )
            == 0
        )
        data = json.loads(report.read_text())
        assert data["ok"]
        rows = data["jobs"][0]["detail"]
        assert all(r["reduction"] == "closure" for r in rows)
        by_name = {r["name"]: r for r in rows}
        ring = by_name["MP-ring-3-RA"]
        # states: explored (reduced); full_states: from the committed
        # baseline, not a re-run.
        assert ring["states"] == 65
        assert ring["full_states"] == 368
        # Passing rows embed no witness schedule.
        assert all("witness" not in r for r in rows)


class TestWitnessCommand:
    def test_allowed_weak_outcome_prints_schedule(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "witness", "MP-relaxed"]) == 0
        out = capsys.readouterr().out
        assert "witness execution" in out
        assert "schedule:" in out
        assert "verdict OK" in out

    def test_forbidden_weak_outcome_is_unreachable(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "witness", "LB"]) == 0
        out = capsys.readouterr().out
        assert "unreachable" in out
        assert "verdict OK" in out

    def test_closure_search_yields_concrete_silent_steps(
        self, capsys, monkeypatch
    ):
        # The polling loop's silent bookkeeping must reappear in the
        # schedule even though the (default) closure search fused it.
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert (
            main(
                [
                    "repro", "witness", "MP-await-relaxed",
                    "--reduction", "closure",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ε" in out and "verdict OK" in out

    def test_unknown_test_is_usage_error(self, capsys):
        assert main(["repro", "witness", "bogus"]) == 2
        assert "unknown litmus test" in capsys.readouterr().out

    def test_missing_test_is_usage_error(self, capsys):
        assert main(["repro", "witness"]) == 2
        assert "usage" in capsys.readouterr().out
