"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main, run_figures, run_litmus, run_refine


class TestJobs:
    def test_run_litmus(self, capsys):
        assert run_litmus() is True
        out = capsys.readouterr().out
        assert "MP-relaxed" in out and "OK" in out

    def test_run_figures(self, capsys):
        assert run_figures() is True
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Lemma 4" in out

    def test_run_refine(self, capsys):
        assert run_refine() is True
        out = capsys.readouterr().out
        assert "seqlock_fill" in out and "PASS" in out


class TestMain:
    def test_single_command(self, capsys):
        assert main(["repro", "figures"]) == 0
        assert "ALL CHECKS PASS" in capsys.readouterr().out

    def test_unknown_command_shows_help(self, capsys):
        assert main(["repro", "bogus"]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_default_is_all(self, capsys):
        assert main(["repro"]) == 0
        out = capsys.readouterr().out
        assert "litmus" in out or "MP-relaxed" in out
        assert "refinement report" in out


class TestReductionFlag:
    def test_litmus_reduction_off(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus", "--reduction", "off"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out
        # Unreduced exploration of MP-ring-3-RA stores the full space.
        assert "MP-ring-3-RA             368" in out

    def test_litmus_reduction_closure_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out
        assert "MP-ring-3-RA              65" in out
        # The committed benchmark baseline supplies the unreduced
        # per-test counts without re-running them.
        assert "368" in out

    def test_unknown_reduction_rejected(self, capsys):
        assert main(["repro", "litmus", "--reduction", "bogus"]) == 2
        assert "unknown reduction" in capsys.readouterr().out

    def test_figures_rejects_reduction(self, capsys):
        assert main(["repro", "figures", "--reduction", "off"]) == 2
        assert "not supported" in capsys.readouterr().out


class TestTransportFlag:
    def test_unknown_transport_rejected(self, capsys):
        assert main(["repro", "litmus", "--transport", "bogus"]) == 2
        assert "unknown transport" in capsys.readouterr().out

    def test_witness_rejects_transport(self, capsys):
        assert (
            main(["repro", "witness", "MP-relaxed", "--transport", "queue"])
            == 2
        )
        assert "not supported" in capsys.readouterr().out

    @pytest.mark.parametrize("transport", ["shm", "queue"])
    def test_litmus_runs_under_either_transport(
        self, capsys, monkeypatch, transport
    ):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert (
            main(
                [
                    "repro", "litmus", "--workers", "2",
                    "--transport", transport, "--quiet",
                ]
            )
            == 0
        )
        assert "ALL CHECKS PASS" in capsys.readouterr().out

    def test_env_transport_reaches_default_engine(self, monkeypatch):
        from repro.engine import default_engine

        monkeypatch.setenv("REPRO_TRANSPORT", "queue")
        assert default_engine().transport == "queue"
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert default_engine().transport is None

    def test_batch_reduction_json(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.setenv("REPRO_CACHE", "0")
        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "repro", "batch", "--jobs", "litmus",
                    "--json", str(report),
                ]
            )
            == 0
        )
        data = json.loads(report.read_text())
        assert data["ok"]
        rows = data["jobs"][0]["detail"]
        assert all(r["reduction"] == "closure" for r in rows)
        by_name = {r["name"]: r for r in rows}
        ring = by_name["MP-ring-3-RA"]
        # states: explored (reduced); full_states: from the committed
        # baseline, not a re-run.
        assert ring["states"] == 65
        assert ring["full_states"] == 368
        # Passing rows embed no witness schedule.
        assert all("witness" not in r for r in rows)


class TestWitnessCommand:
    def test_allowed_weak_outcome_prints_schedule(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "witness", "MP-relaxed"]) == 0
        out = capsys.readouterr().out
        assert "witness execution" in out
        assert "schedule:" in out
        assert "verdict OK" in out

    def test_forbidden_weak_outcome_is_unreachable(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "witness", "LB"]) == 0
        out = capsys.readouterr().out
        assert "unreachable" in out
        assert "verdict OK" in out

    def test_closure_search_yields_concrete_silent_steps(
        self, capsys, monkeypatch
    ):
        # The polling loop's silent bookkeeping must reappear in the
        # schedule even though the (default) closure search fused it.
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert (
            main(
                [
                    "repro", "witness", "MP-await-relaxed",
                    "--reduction", "closure",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ε" in out and "verdict OK" in out

    def test_unknown_test_is_usage_error(self, capsys):
        assert main(["repro", "witness", "bogus"]) == 2
        assert "unknown litmus test" in capsys.readouterr().out

    def test_missing_test_is_usage_error(self, capsys):
        assert main(["repro", "witness"]) == 2
        assert "usage" in capsys.readouterr().out


class TestTelemetryOutput:
    def test_litmus_prints_metrics_summary(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "states/sec" in out
        assert "ε-fused" in out and "covering-read pruned" in out

    def test_litmus_warm_run_prints_structured_cache_stats(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["repro", "litmus"]) == 0
        capsys.readouterr()
        assert main(["repro", "litmus"]) == 0  # warm: zero explorations
        out = capsys.readouterr().out
        assert "engine: 0 explorations" in out
        assert "cache 30 hits / 0 misses" in out  # on the telemetry line
        assert "30 hits, 0 misses" in out  # the structured cache line
        assert "entries on disk" in out

    def test_quiet_suppresses_telemetry(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" not in out
        assert "MP-relaxed" in out  # the verdict table stays

    def test_witness_prints_telemetry(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "witness", "MP-relaxed"]) == 0
        assert "telemetry:" in capsys.readouterr().out

    def test_verbose_flag_parses(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus", "-v"]) == 0
        assert "ALL CHECKS PASS" in capsys.readouterr().out

    def test_figures_rejects_quiet(self, capsys):
        assert main(["repro", "figures", "--quiet"]) == 2
        assert "not supported" in capsys.readouterr().out


class TestTraceFlag:
    def _validate(self, path):
        import json

        from repro.obs import validate_event

        events = [
            validate_event(json.loads(line))
            for line in path.read_text().splitlines()
        ]
        assert events
        return events

    def test_litmus_trace_stream_is_schema_valid(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE", "0")
        trace = tmp_path / "t.jsonl"
        assert main(["repro", "litmus", "--trace", str(trace)]) == 0
        events = self._validate(trace)
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "litmus.start"
        assert kinds[-1] == "litmus.finish"
        assert kinds.count("explore.start") == kinds.count("explore.finish")
        assert kinds.count("explore.start") == 30  # one span per test
        finishes = [e for e in events if e["ev"] == "explore.finish"]
        table = capsys.readouterr().out
        # Spans and the printed table report the same state counts.
        assert sum(e["states"] for e in finishes) > 0
        assert "telemetry:" in table

    def test_trace_via_environment(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["repro", "witness", "MP-relaxed"]) == 0
        kinds = [e["ev"] for e in self._validate(trace)]
        assert "explore.start" in kinds and "explore.finish" in kinds

    def test_batch_trace_and_report_blocks(
        self, capsys, monkeypatch, tmp_path
    ):
        import json

        monkeypatch.setenv("REPRO_CACHE", "0")
        trace = tmp_path / "b.jsonl"
        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "repro", "batch", "--jobs", "litmus,figures",
                    "--json", str(report), "--trace", str(trace),
                ]
            )
            == 0
        )
        kinds = [e["ev"] for e in self._validate(trace)]
        assert kinds[0] == "batch.start" and kinds[-1] == "batch.finish"
        assert kinds.count("batch.job.start") == 2
        assert kinds.count("batch.job.finish") == 2
        data = json.loads(report.read_text())
        # Satellite: the meta block makes archived reports
        # self-describing.
        meta = data["meta"]
        assert meta["schema"] == 3
        assert meta["python"] and meta["platform"]
        assert meta["cpu_count"] >= 1
        assert meta["workers"] == 1
        assert meta["reduction"] == "closure"
        # The litmus job carries telemetry; the aggregate mirrors it.
        litmus_job = next(j for j in data["jobs"] if j["name"] == "litmus")
        counters = litmus_job["metrics"]["counters"]
        assert counters["explore.states"] > 0
        assert data["metrics"]["counters"]["explore.states"] == (
            counters["explore.states"]
        )
        figures_job = next(j for j in data["jobs"] if j["name"] == "figures")
        assert figures_job["metrics"] is None


class TestLintCommand:
    def test_exit_zero_on_shipped_corpus(self, capsys):
        # Everything in the repo lints without error-severity findings.
        assert main(["repro", "lint"]) == 0
        out = capsys.readouterr().out
        assert "programs analysed" in out
        assert "0 error(s)" in out

    def test_lists_every_target(self, capsys):
        main(["repro", "lint"])
        out = capsys.readouterr().out
        assert "litmus/MP-relaxed" in out
        assert "figures/fig1" in out
        assert "examples/" in out

    def test_quiet_hides_clean_lines(self, capsys):
        main(["repro", "lint", "--quiet"])
        quiet = capsys.readouterr().out
        main(["repro", "lint"])
        full = capsys.readouterr().out
        assert len(quiet.splitlines()) < len(full.splitlines())
        assert "programs analysed" in quiet

    def test_findings_show_codes(self, capsys):
        main(["repro", "lint"])
        out = capsys.readouterr().out
        # The relaxed MP shape is annotated racy in the catalog and the
        # detector prints the code inline.
        assert "race" in out

    def test_rejects_foreign_flags(self, capsys):
        assert main(["repro", "lint", "--reduction", "off"]) == 2
        assert "not supported" in capsys.readouterr().out


class TestAnalysisFlag:
    def test_litmus_accepts_warn(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["repro", "litmus", "--analysis", "warn", "--quiet"]) == 0
        assert "ALL CHECKS PASS" in capsys.readouterr().out

    def test_unknown_policy_rejected(self, capsys):
        assert main(["repro", "litmus", "--analysis", "bogus"]) == 2
        out = capsys.readouterr().out
        assert "analysis" in out

    def test_figures_reject_analysis(self, capsys):
        assert main(["repro", "figures", "--analysis", "warn"]) == 2
        assert "not supported" in capsys.readouterr().out
