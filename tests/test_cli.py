"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main, run_figures, run_litmus, run_refine


class TestJobs:
    def test_run_litmus(self, capsys):
        assert run_litmus() is True
        out = capsys.readouterr().out
        assert "MP-relaxed" in out and "OK" in out

    def test_run_figures(self, capsys):
        assert run_figures() is True
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Lemma 4" in out

    def test_run_refine(self, capsys):
        assert run_refine() is True
        out = capsys.readouterr().out
        assert "seqlock_fill" in out and "PASS" in out


class TestMain:
    def test_single_command(self, capsys):
        assert main(["repro", "figures"]) == 0
        assert "ALL CHECKS PASS" in capsys.readouterr().out

    def test_unknown_command_shows_help(self, capsys):
        assert main(["repro", "bogus"]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_default_is_all(self, capsys):
        assert main(["repro"]) == 0
        out = capsys.readouterr().out
        assert "litmus" in out or "MP-relaxed" in out
        assert "refinement report" in out
