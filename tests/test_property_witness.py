"""Property suite: engine-reconstructed witnesses are real executions.

The engine's ``find_witness`` tracks predecessors by key + edge label
(no stored configurations) and re-derives the concrete schedule by
replay; under ``reduction="closure"`` it additionally re-expands fused
macro-steps.  These properties pin the contract over the litmus
catalog, for the sequential and the 2-worker sharded backend, with the
reduction off and on:

* **replayability** — every step of a reconstructed witness is an
  element of the raw (unreduced) ``successors`` relation at its point,
  and the replay ends in a terminal configuration exhibiting the weak
  valuation searched for;
* **minimality** — with the reduction off, the BFS witness length
  equals the naive config-storing :func:`find_path` reference; under
  closure the *visible*-step count never exceeds the reference's
  (macro-BFS minimises visible steps, and silent-chain lengths are
  path-dependent);
* **negative parity** — where the model forbids the weak outcome,
  every backend proves unreachability (returns None) rather than
  fabricating a witness.
"""

import pytest

from repro.engine import ExplorationEngine
from repro.litmus.catalog import LITMUS_TESTS
from repro.semantics.witness import find_path, replay_witness
from repro.util.errors import VerificationError

#: Tests whose weak outcome RC11 RAR allows — these have a witness.
WEAK_ALLOWED = [t for t in LITMUS_TESTS if t.weak_allowed]
#: Tests whose weak outcome is forbidden — exhaustively unreachable.
WEAK_FORBIDDEN = [t for t in LITMUS_TESTS if not t.weak_allowed]

#: Subset exercised through the (pool-spawning) 2-worker backend.
PARALLEL_SUBSET = [
    t
    for t in LITMUS_TESTS
    if t.name
    in {
        "MP-relaxed",
        "SB-relaxed",
        "IRIW-RA",
        "MP-await-relaxed",
        "MP-ring-2-relaxed",
        "SB-computed",
    }
]


def _weak_predicate(test):
    return lambda cfg: (
        tuple(cfg.local(t, r) for t, r in test.regs) in test.weak
    )


def _naive_reference(test):
    pred = _weak_predicate(test)
    return find_path(
        test.build(), lambda c: c.is_terminal() and pred(c)
    )


def _check_witness(test, witness, reference, check_minimal=True):
    program = test.build()
    # Step-exact replay through the raw unreduced successors relation:
    # replay_witness raises on the first step that is not a transition.
    final = replay_witness(program, witness)
    assert final.is_terminal()
    assert tuple(final.local(t, r) for t, r in test.regs) in test.weak
    if check_minimal:
        # Shortest: visible-step count never beats the macro-BFS minimum.
        assert witness.visible_steps() <= reference.visible_steps()


class TestSequentialWitnessParity:
    @pytest.mark.parametrize("test", WEAK_ALLOWED, ids=lambda t: t.name)
    def test_reduction_off_matches_naive_bfs(self, test):
        reference = _naive_reference(test)
        w = ExplorationEngine(reduction="off").find_witness(
            test.build(), _weak_predicate(test), terminal_only=True
        )
        assert w is not None
        _check_witness(test, w, reference)
        # Unreduced BFS both sides: total lengths agree exactly.
        assert len(w) == len(reference)

    @pytest.mark.parametrize("test", WEAK_ALLOWED, ids=lambda t: t.name)
    def test_reduction_closure_is_step_exact(self, test):
        reference = _naive_reference(test)
        w = ExplorationEngine(reduction="closure").find_witness(
            test.build(), _weak_predicate(test), terminal_only=True
        )
        assert w is not None
        _check_witness(test, w, reference)

    @pytest.mark.parametrize("test", WEAK_ALLOWED, ids=lambda t: t.name)
    def test_reduction_dpor_replays(self, test):
        """dpor witnesses replay through the raw semantics and exhibit
        the weak valuation.  No minimality bound: the persistent-set
        selection may route discovery around the macro-BFS-shortest
        path, so only soundness — it is a real execution — is pinned."""
        reference = _naive_reference(test)
        w = ExplorationEngine(reduction="dpor").find_witness(
            test.build(), _weak_predicate(test), terminal_only=True
        )
        assert w is not None
        _check_witness(test, w, reference, check_minimal=False)

    @pytest.mark.parametrize("test", WEAK_FORBIDDEN, ids=lambda t: t.name)
    @pytest.mark.parametrize("reduction", ["off", "closure", "dpor"])
    def test_forbidden_outcomes_have_no_witness(self, test, reduction):
        w = ExplorationEngine(reduction=reduction).find_witness(
            test.build(), _weak_predicate(test), terminal_only=True
        )
        assert w is None


class TestShardedWitnessParity:
    @pytest.mark.parametrize(
        "test", PARALLEL_SUBSET, ids=lambda t: t.name
    )
    @pytest.mark.parametrize("reduction", ["off", "closure", "dpor"])
    def test_two_worker_witness_replays(self, test, reduction):
        # find_witness pins the rounds backend, which supports dpor —
        # the pipeline rejection does not apply on this path.
        reference = _naive_reference(test)
        engine = ExplorationEngine(workers=2, reduction=reduction)
        w = engine.find_witness(
            test.build(), _weak_predicate(test), terminal_only=True
        )
        assert w is not None
        _check_witness(test, w, reference, check_minimal=reduction != "dpor")
        if reduction == "off":
            # Level-synchronous sharded BFS is still BFS: shortest.
            assert len(w) == len(reference)

    def test_two_worker_forbidden_is_none(self):
        test = next(t for t in WEAK_FORBIDDEN if t.name == "LB")
        engine = ExplorationEngine(workers=2, reduction="closure")
        assert (
            engine.find_witness(
                test.build(), _weak_predicate(test), terminal_only=True
            )
            is None
        )


class TestEngineWitnessContract:
    def test_truncated_search_raises(self):
        from tests.conftest import mp_relaxed

        engine = ExplorationEngine()
        with pytest.raises(VerificationError, match="truncated"):
            engine.find_witness(
                mp_relaxed(), lambda c: False, max_states=3
            )

    def test_parents_are_digests_not_configs_when_sharded(self):
        """The sharded predecessor graph stores 16-byte digests + edge
        labels — never configurations (the memory point of the
        redesign)."""
        from tests.conftest import mp_relaxed

        engine = ExplorationEngine(workers=2)
        result = engine.explore(
            mp_relaxed(), track_parents=True, keep_configs=False
        )
        assert result.parents
        roots = [k for k, v in result.parents.items() if v is None]
        assert roots == [result.initial_key]
        for key, entry in result.parents.items():
            assert isinstance(key, bytes) and len(key) == 16
            if entry is not None:
                parent, tid, component, _action = entry
                assert isinstance(parent, bytes) and len(parent) == 16
                assert tid in mp_relaxed().tids
                assert component in ("C", "L")

    def test_sequential_tracking_off_by_default(self):
        from tests.conftest import mp_relaxed

        assert ExplorationEngine().explore(mp_relaxed()).parents is None

    def test_dfs_witness_is_valid_but_not_necessarily_shortest(self):
        test = next(t for t in WEAK_ALLOWED if t.name == "MP-relaxed")
        w = ExplorationEngine(strategy="dfs").find_witness(
            test.build(), _weak_predicate(test), terminal_only=True
        )
        assert w is not None
        final = replay_witness(test.build(), w)
        assert tuple(final.local(t, r) for t, r in test.regs) in test.weak


class TestAssertInvariantWitness:
    def test_violation_carries_replayable_witness(self):
        from repro.semantics.explore import assert_invariant
        from tests.conftest import mp_relaxed

        bad = lambda c: not (  # noqa: E731
            c.is_terminal()
            and c.local("2", "r1") == 1
            and c.local("2", "r2") == 0
        )
        with pytest.raises(VerificationError) as exc:
            assert_invariant(mp_relaxed(), bad, witness=True)
        err = exc.value
        assert err.witness is not None
        assert replay_witness(mp_relaxed(), err.witness) == err.counterexample

    def test_witness_off_by_default(self):
        from repro.semantics.explore import assert_invariant
        from tests.conftest import mp_relaxed

        with pytest.raises(VerificationError) as exc:
            assert_invariant(mp_relaxed(), lambda c: False)
        assert exc.value.witness is None


class TestTracecheckWitness:
    def test_broken_lock_failure_carries_interleaving(self):
        from repro.lang import ast as A
        from repro.lang.expr import Lit, Reg
        from repro.litmus.clients import lock_client
        from repro.refinement.tracecheck import check_program_refinement
        from tests.conftest import abstract_lock_client

        def broken_fill(obj, method, dest=None):
            if method == "acquire":
                return A.LibBlock(
                    A.do_until(
                        A.Cas("_b", "lk", Lit(0), Lit(1)), Reg("_b")
                    )
                )
            return A.LibBlock(A.Write("lk", Lit(0)))  # relaxed: broken

        concrete = lock_client(broken_fill, lib_vars={"lk": 0})
        result = check_program_refinement(concrete, abstract_lock_client())
        assert not result.refines
        assert result.witness is not None and result.witness.steps
        # The interleaving is a real execution of the concrete program.
        replay_witness(concrete, result.witness)

    def test_passing_check_has_no_witness(self):
        from repro.refinement.tracecheck import check_program_refinement
        from tests.conftest import abstract_lock_client

        p = abstract_lock_client()
        result = check_program_refinement(p, p)
        assert result.refines and result.witness is None


class TestRandomRunSchedule:
    def test_random_run_exposes_replayable_schedule(self):
        from repro.semantics.random_exec import random_run, replay_run
        from tests.conftest import mp_relaxed

        import random

        r = random_run(mp_relaxed(), rng=random.Random(5))
        assert r.terminated
        assert len(r.schedule) == r.steps == len(r.choices)
        replayed = replay_run(mp_relaxed(), r.choices)
        assert replayed.final == r.final
        assert replayed.schedule == r.schedule

    def test_deadlock_error_is_replayable(self):
        from repro.lang import ast as A
        from repro.lang.program import Program, Thread
        from repro.objects.lock import AbstractLock
        from repro.semantics.random_exec import replay_run, sample_outcomes

        body = A.seq(
            A.MethodCall("l", "acquire"), A.MethodCall("l", "acquire")
        )
        p = Program(
            threads={"1": Thread(body)}, objects=(AbstractLock("l"),)
        )
        with pytest.raises(VerificationError) as exc:
            sample_outcomes(p, (), runs=2, seed=7)
        err = exc.value
        assert err.details["seed"] == 7
        assert len(err.details["schedule"]) == len(err.details["choices"])
        replayed = replay_run(p, err.details["choices"])
        assert replayed.deadlocked
        assert replayed.final == err.counterexample

    def test_replay_rejects_foreign_schedule(self):
        from repro.semantics.random_exec import replay_run
        from tests.conftest import mp_relaxed

        with pytest.raises(VerificationError, match="does not belong"):
            replay_run(mp_relaxed(), (99,))
