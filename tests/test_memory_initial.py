"""Tests for Γ_Init construction (paper §3.3 Initialisation)."""

from fractions import Fraction

import pytest

from repro.lang import ast as A
from repro.lang.program import Program, Thread
from repro.memory.initial import initial_states
from repro.objects.lock import AbstractLock
from repro.objects.stack import AbstractStack


@pytest.fixture()
def program():
    return Program(
        threads={"1": A.skip(), "2": A.skip()},
        client_vars={"x": 1, "y": 2},
        lib_vars={"glb": 0},
        objects=(AbstractLock("l"),),
    )


class TestInitialStates:
    def test_one_op_per_variable_at_ts_zero(self, program):
        gamma, beta = initial_states(program)
        assert {op.act.var for op in gamma.ops} == {"x", "y"}
        assert {op.act.var for op in beta.ops} == {"glb", "l"}
        for op in gamma.ops | beta.ops:
            assert op.ts == Fraction(0)

    def test_initial_values_recorded(self, program):
        gamma, _ = initial_states(program)
        vals = {op.act.var: op.act.val for op in gamma.ops if op.act.kind == "wr"}
        assert vals == {"x": 1, "y": 2}

    def test_every_thread_views_every_variable(self, program):
        gamma, beta = initial_states(program)
        for t in ("1", "2"):
            for x in ("x", "y"):
                assert gamma.thread_view(t, x) is not None
            for y in ("glb", "l"):
                assert beta.thread_view(t, y) is not None

    def test_mview_spans_both_components(self, program):
        # γInit.mview_xi = βInit.mview_yi = γInit.tview ∪ βInit.tview.
        gamma, beta = initial_states(program)
        for state in (gamma, beta):
            for op, view in state.mview.items():
                assert set(view) == {"x", "y", "glb", "l"}

    def test_nothing_covered(self, program):
        gamma, beta = initial_states(program)
        assert gamma.cvd == frozenset() and beta.cvd == frozenset()

    def test_object_init_ops_included(self, program):
        _, beta = initial_states(program)
        (lock_op,) = beta.ops_on("l")
        assert lock_op.act.method == "init" and lock_op.act.index == 0

    def test_multiple_objects(self):
        p = Program(
            threads={"1": A.skip()},
            objects=(AbstractLock("l"), AbstractStack("s")),
        )
        _, beta = initial_states(p)
        assert {op.act.var for op in beta.ops} == {"l", "s"}

    def test_empty_components(self):
        p = Program(threads={"1": A.skip()})
        gamma, beta = initial_states(p)
        assert gamma.ops == frozenset() and beta.ops == frozenset()

    def test_initial_locals_via_config(self):
        from repro.semantics.config import initial_config

        p = Program(
            threads={"1": A.skip()},
            init_locals={"1": {"r": 7}},
        )
        cfg = initial_config(p)
        assert cfg.local("1", "r") == 7
