"""Engine wiring of the reduction policy: strategies, cache, parallel
summary path."""

import pytest

from repro.engine import (
    REDUCTIONS,
    ExplorationEngine,
    ResultCache,
    cache_key,
    explore_sequential,
)
from repro.litmus.catalog import LITMUS_TESTS

_BY_NAME = {t.name: t for t in LITMUS_TESTS}


def _program():
    return _BY_NAME["MP-await-RA"].build()


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["bfs", "dfs", "swarm:7"])
    def test_every_strategy_honours_reduction(self, strategy):
        """Visit order never changes the reduced state space."""
        program = _program()
        reference = explore_sequential(program, reduction="closure")
        result = explore_sequential(
            program, strategy=strategy, reduction="closure"
        )
        assert result.state_count == reference.state_count
        assert result.edge_count == reference.edge_count
        assert result.terminal_locals(("2", "r2")) == {(5,)}

    @pytest.mark.parametrize("strategy", ["bfs", "dfs", "swarm:7"])
    def test_reduction_shrinks_under_every_strategy(self, strategy):
        program = _program()
        off = explore_sequential(program, strategy=strategy)
        red = explore_sequential(
            program, strategy=strategy, reduction="closure"
        )
        assert red.state_count < off.state_count


class TestEngineConfiguration:
    def test_default_is_off(self):
        assert ExplorationEngine().reduction == "off"

    def test_repr_mentions_reduction(self):
        assert "closure" in repr(ExplorationEngine(reduction="closure"))

    def test_per_call_override(self):
        engine = ExplorationEngine(reduction="closure")
        program = _program()
        red = engine.explore(program)
        off = engine.explore(program, reduction="off")
        assert red.state_count < off.state_count

    def test_default_engine_reads_env(self, monkeypatch):
        from repro.engine import default_engine

        monkeypatch.setenv("REPRO_REDUCTION", "closure")
        assert default_engine().reduction == "closure"
        monkeypatch.delenv("REPRO_REDUCTION")
        assert default_engine().reduction == "off"


class TestCacheKeying:
    def test_reduction_in_cache_key(self):
        program = _program()
        base = cache_key(program, max_states=1000)
        assert base == cache_key(program, max_states=1000, reduction="off")
        assert base != cache_key(
            program, max_states=1000, reduction="closure"
        )

    def test_policies_cached_separately(self, tmp_path):
        program_build = _BY_NAME["MP-await-RA"].build
        off_engine = ExplorationEngine(
            cache=ResultCache(tmp_path), reduction="off"
        )
        red_engine = ExplorationEngine(
            cache=ResultCache(tmp_path), reduction="closure"
        )
        off = off_engine.run(program_build())
        red = red_engine.run(program_build())
        assert not off.cached and not red.cached
        assert red.state_count < off.state_count
        # Warm hits resolve to the matching policy's summary.
        off2 = off_engine.run(program_build())
        red2 = red_engine.run(program_build())
        assert off2.cached and red2.cached
        assert off2.state_count == off.state_count
        assert red2.state_count == red.state_count


class TestParallelSummaryPath:
    def test_keep_configs_false_drops_map_keeps_verdict(self):
        from repro.engine.parallel import explore_parallel

        test = _BY_NAME["MP-2-producers"]
        program = test.build()
        full = explore_parallel(program, workers=2, max_states=500_000)
        slim = explore_parallel(
            program, workers=2, max_states=500_000, keep_configs=False
        )
        assert slim.state_count == full.state_count
        assert slim.edge_count == full.edge_count
        assert slim.terminal_locals(*test.regs) == set(test.allowed)
        assert len(slim.configs) < slim.state_count
        assert len(full.configs) == full.state_count

    def test_collect_edges_forces_full_map(self):
        from repro.engine.parallel import explore_parallel

        program = _program()
        result = explore_parallel(
            program,
            workers=2,
            max_states=500_000,
            collect_edges=True,
            keep_configs=False,
        )
        assert len(result.configs) == result.state_count
        assert set(result.edges) == set(result.configs)

    def test_engine_run_uses_summary_path(self):
        test = _BY_NAME["MP-ring-2-RA"]
        summary = ExplorationEngine(workers=2).run(test.build())
        assert summary.terminal_locals(*test.regs) == set(test.allowed)
        assert summary.state_count == 52  # unreduced ring-2 space


class TestPolicyNames:
    def test_reductions_export(self):
        assert REDUCTIONS == ("off", "closure", "dpor")

    def test_engine_and_semantics_tuples_agree(self):
        from repro.semantics.reduce import REDUCTIONS as SEMANTICS_REDUCTIONS

        assert REDUCTIONS == SEMANTICS_REDUCTIONS

    def test_batch_litmus_honours_env_engine(self, monkeypatch):
        """The batch litmus job builds its engine from the environment
        (REPRO_WORKERS / REPRO_STRATEGY), with reduction layered on."""
        from repro.engine.batch import run_job

        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_STRATEGY", "dfs")
        result = run_job("litmus", use_cache=False, reduction="closure")
        assert result.ok
        rows = {r["name"]: r for r in result.detail}
        assert rows["MP-await-RA"]["states"] == 5  # reduced, via dfs
