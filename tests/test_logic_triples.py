"""Tests for Hoare triples by enumeration (Definition 2)."""

import pytest

from repro.assertions.core import TRUE, FALSE, LocalEq, Pred
from repro.assertions.observability import DefiniteValue
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.logic.triples import (
    check_atomic_triple,
    check_program_triple,
    collect_universe,
)
from tests.conftest import abstract_lock_client, mp_ra, mp_relaxed


class TestProgramTriples:
    def test_valid_postcondition(self):
        p = mp_ra()
        post = (
            (LocalEq("2", "r1", 1) >> LocalEq("2", "r2", 5))
        )
        assert check_program_triple(p, TRUE, post)

    def test_invalid_postcondition_reports_counterexample(self):
        p = mp_relaxed()
        post = LocalEq("2", "r1", 1) >> LocalEq("2", "r2", 5)
        result = check_program_triple(p, TRUE, post)
        assert not result
        assert result.failures
        cfg, _ = result.failures[0]
        assert cfg.local("2", "r1") == 1 and cfg.local("2", "r2") == 0

    def test_failed_precondition(self):
        p = mp_relaxed()
        result = check_program_triple(p, FALSE, TRUE)
        assert not result.valid

    def test_truncation_rejects(self):
        p = mp_relaxed()
        result = check_program_triple(p, TRUE, TRUE, max_states=2)
        assert not result.valid


class TestAtomicTriples:
    def test_write_establishes_definite_value(self):
        p = Program(
            threads={"1": Thread(A.skip())},
            client_vars={"x": 0},
        )
        from repro.semantics.config import initial_config

        universe = [initial_config(p)]
        result = check_atomic_triple(
            p,
            universe,
            TRUE,
            A.Write("x", Lit(5)),
            "1",
            DefiniteValue("x", 5, "1"),
        )
        assert result.valid
        assert result.checked == 1 and result.applied == 1

    def test_invalid_atomic_triple(self):
        p = Program(threads={"1": Thread(A.skip())}, client_vars={"x": 0})
        from repro.semantics.config import initial_config

        result = check_atomic_triple(
            p,
            [initial_config(p)],
            TRUE,
            A.Write("x", Lit(5)),
            "1",
            DefiniteValue("x", 0, "1"),
        )
        assert not result.valid
        assert result.failures

    def test_vacuous_when_pre_unsatisfied(self):
        p = Program(threads={"1": Thread(A.skip())}, client_vars={"x": 0})
        from repro.semantics.config import initial_config

        result = check_atomic_triple(
            p,
            [initial_config(p)],
            FALSE,
            A.Write("x", Lit(5)),
            "1",
            FALSE,
        )
        assert result.valid
        assert result.checked == 0

    def test_disabled_command_vacuous(self):
        # Acquiring a held lock offers no transitions: post unconstrained.
        from repro.semantics.explore import reachable

        p = abstract_lock_client()
        held = reachable(
            p,
            lambda c: any(
                op.act.method == "acquire" for op in c.beta.ops_on("l")
            )
            and c.beta.last_op("l").act.method == "acquire"
            and c.beta.last_op("l").act.tid == "1",
        )
        result = check_atomic_triple(
            p,
            [held],
            TRUE,
            A.MethodCall("l", "acquire"),
            "2",
            FALSE,  # would fail if any step existed
        )
        assert result.valid
        assert result.applied == 0


class TestCollectUniverse:
    def test_groups_per_program(self):
        p1, p2 = mp_relaxed(), mp_ra()
        groups = collect_universe([p1, p2])
        assert len(groups) == 2
        assert groups[0][0] is p1
        assert len(groups[0][1]) > 0

    def test_universe_contains_initial(self):
        from repro.semantics.canon import canonical_key
        from repro.semantics.config import initial_config

        p = mp_relaxed()
        ((_, universe),) = collect_universe([p])
        keys = {canonical_key(p, cfg) for cfg in universe}
        assert canonical_key(p, initial_config(p)) in keys
