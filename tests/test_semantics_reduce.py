"""Unit tests for the reduction layer (:mod:`repro.semantics.reduce`)."""

from collections import deque

import pytest

from repro.engine.core import explore_sequential
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.semantics.canon import canonical_key
from repro.semantics.config import initial_config
from repro.semantics.reduce import (
    REDUCTIONS,
    close_config,
    close_thread,
    reduced_successors,
    validate_reduction,
)
from repro.semantics.step import (
    Transition,
    _node_summary,
    silent_step,
    successors,
    thread_successors,
)


def _mp_await(ra: bool = True) -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=ra))
    t2 = A.seq(
        A.LocalAssign("r1", Lit(0)),
        A.While(Reg("r1").eq(0), A.Read("r1", "f", acquire=ra)),
        A.Read("r2", "d"),
    )
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )


class TestPolicy:
    def test_known_policies(self):
        assert set(REDUCTIONS) == {"off", "closure", "dpor"}
        for r in REDUCTIONS:
            assert validate_reduction(r) == r

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            validate_reduction("bogus")

    def test_engine_checks_policy(self):
        from repro.engine.core import ExplorationEngine

        with pytest.raises(ValueError, match="unknown reduction"):
            ExplorationEngine(reduction="bogus")
        with pytest.raises(ValueError, match="unknown reduction"):
            explore_sequential(_mp_await(), reduction="bogus")


class TestSilentStep:
    """silent_step is the single source of ε-truth shared with _steps."""

    def test_local_assign(self):
        program = Program(
            threads={"1": Thread(A.LocalAssign("r", Lit(7)))},
            client_vars={"x": 0},
        )
        cfg = initial_config(program)
        step = silent_step(cfg.cmds["1"], cfg.locals["1"])
        assert step is not None
        comp, cmd2, ls2 = step
        assert comp == "C" and cmd2 is None and ls2["r"] == 7

    def test_visible_heads_have_no_silent_step(self):
        ls = initial_config(
            Program(threads={"1": Thread(A.Write("x", Lit(1)))},
                    client_vars={"x": 0})
        ).locals["1"]
        for cmd in (
            A.Write("x", Lit(1)),
            A.Read("r", "x"),
            A.Cas("r", "x", Lit(0), Lit(1)),
            A.Fai("r", "x"),
            A.seq(A.Read("r", "x"), A.LocalAssign("s", Lit(1))),
        ):
            assert silent_step(cmd, ls) is None

    def test_lib_block_silent_steps_are_library_steps(self):
        cmd = A.LibBlock(
            A.seq(A.LocalAssign("t", Lit(1)), A.Write("l", Reg("t"))),
            frozenset(),
        )
        program = Program(
            threads={"1": Thread(cmd)}, client_vars={"x": 0},
            lib_vars={"l": 0},
        )
        cfg = initial_config(program)
        step = silent_step(cfg.cmds["1"], cfg.locals["1"])
        assert step is not None and step[0] == "L"

    @pytest.mark.parametrize("ra", [True, False])
    def test_agrees_with_steps_over_reachable_states(self, ra):
        """Wherever silent_step fires, _steps yields exactly that one
        silent step; wherever it does not, no step is silent."""
        program = _mp_await(ra)
        init = initial_config(program)
        seen = {canonical_key(program, init)}
        queue = deque([init])
        checked = 0
        while queue:
            cfg = queue.popleft()
            for tid in program.tids:
                cmd = cfg.cmds[tid]
                if cmd is None:
                    continue
                expected = silent_step(cmd, cfg.locals[tid])
                trs = list(thread_successors(program, cfg, tid))
                if expected is None:
                    assert all(tr.action is not None for tr in trs)
                else:
                    checked += 1
                    comp, cmd2, ls2 = expected
                    assert len(trs) == 1
                    (tr,) = trs
                    assert tr.action is None and tr.component == comp
                    assert tr.target.cmds[tid] == cmd2
                    assert tr.target.locals[tid] == ls2
                    assert tr.target.gamma is cfg.gamma
                    assert tr.target.beta is cfg.beta
            for tr in successors(program, cfg):
                key = canonical_key(program, tr.target)
                if key not in seen:
                    seen.add(key)
                    queue.append(tr.target)
        assert checked > 0


class TestClosure:
    def test_close_config_runs_silent_prefixes(self):
        program = _mp_await()
        init = initial_config(program)
        closed = close_config(program, init)
        # Thread 2's LocalAssign + While unfold are fused: its head is
        # now the visible read inside the loop body.
        assert closed.locals["2"]["r1"] == 0
        assert silent_step(closed.cmds["2"], closed.locals["2"]) is None
        # Thread 1 had no silent prefix; components untouched.
        assert closed.cmds["1"] == init.cmds["1"]
        assert closed.gamma is init.gamma and closed.beta is init.beta

    def test_close_config_idempotent(self):
        program = _mp_await()
        closed = close_config(program, initial_config(program))
        assert close_config(program, closed) is closed

    def test_close_terminated_thread_is_noop(self):
        program = _mp_await()
        cfg = initial_config(program)
        done = cfg.with_thread("1", None, cfg.locals["1"], cfg.gamma, cfg.beta)
        assert close_thread(done, "1") is done

    def test_reduced_successors_are_closed_and_visible(self):
        program = _mp_await()
        init = close_config(program, initial_config(program))
        frontier = [init]
        seen = {canonical_key(program, init)}
        while frontier:
            cfg = frontier.pop()
            for tr in reduced_successors(program, cfg):
                assert tr.action is not None, "silent macro-edge"
                closed_again = close_thread(tr.target, tr.tid)
                assert closed_again is tr.target, "unclosed macro-target"
                key = canonical_key(program, tr.target)
                if key not in seen:
                    seen.add(key)
                    frontier.append(tr.target)

    def test_divergent_silent_loop_cut_off(self):
        """A purely-local infinite loop must not hang the closure; the
        configuration keeps its silent edge and exploration terminates."""
        spin = A.seq(
            A.LocalAssign("r", Lit(0)),
            A.While(Lit(True), A.LocalAssign("r", Reg("r"))),
        )
        program = Program(
            threads={"1": Thread(spin), "2": Thread(A.Write("x", Lit(1)))},
            client_vars={"x": 0},
        )
        init = close_config(program, initial_config(program))
        silent_edges = [
            tr for tr in reduced_successors(program, init) if tr.action is None
        ]
        assert silent_edges, "cut-off must fall back to the plain ε-edge"
        result = explore_sequential(program, reduction="closure")
        assert not result.truncated
        assert result.terminals == []  # thread 1 never terminates

    def test_divergent_counter_loop_bounded_by_max_states(self):
        """A silent loop whose locals change every iteration never
        revisits a (cmd, locals) pair: the chain-length cut-off must
        kick in, handing control back to the explorer so ``max_states``
        truncates the run instead of one successor call spinning
        forever."""
        counter = A.seq(
            A.LocalAssign("r", Lit(0)),
            A.While(Lit(True), A.LocalAssign("r", Reg("r") + 1)),
        )
        program = Program(
            threads={"1": Thread(counter), "2": Thread(A.Write("x", Lit(1)))},
            client_vars={"x": 0},
        )
        result = explore_sequential(
            program, max_states=50, reduction="closure"
        )
        assert result.truncated
        assert result.state_count <= 50


class TestCoveringReadPrune:
    def _two_writer_program(self, tail) -> Program:
        """Two threads publish the same value; thread 3 reads it into
        ``r`` and then runs ``tail``."""
        return Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Write("x", Lit(1))),
                "3": Thread(tail),
            },
            client_vars={"x": 0, "y": 0},
        )

    def _read_transitions(self, program, prune):
        """Thread 3's read transitions from a state where both writes
        of 1 are observable."""
        cfg = initial_config(program)
        # Execute both writers first (any order — writes by different
        # threads on the same variable; take the first placement each).
        for tid in ("1", "2"):
            tr = next(iter(thread_successors(program, cfg, tid)))
            cfg = tr.target
        return [
            tr
            for tr in successors(program, cfg, prune=prune)
            if tr.tid == "3" and tr.action is not None
        ]

    def test_prune_collapses_dead_same_value_reads(self):
        program = self._two_writer_program(A.Read("r", "x"))
        unpruned = self._read_transitions(program, prune=False)
        pruned = self._read_transitions(program, prune=True)
        # Unpruned: init 0 + two writes of 1 = 3 read choices; pruned
        # keeps the mo-earliest per value = 2.
        assert len(unpruned) == 3
        assert len(pruned) == 2
        assert {tr.action.val for tr in pruned} == {0, 1}

    def test_no_prune_when_variable_read_again(self):
        tail = A.seq(A.Read("r", "x"), A.Read("s", "x"))
        program = self._two_writer_program(tail)
        assert len(self._read_transitions(program, prune=True)) == 3

    def test_no_prune_when_continuation_publishes(self):
        tail = A.seq(A.Read("r", "x"), A.Write("y", Lit(1)))
        program = self._two_writer_program(tail)
        assert len(self._read_transitions(program, prune=True)) == 3

    def test_trailing_local_computation_keeps_prune(self):
        tail = A.seq(A.Read("r", "x"), A.LocalAssign("s", Reg("r") + 1))
        program = self._two_writer_program(tail)
        assert len(self._read_transitions(program, prune=True)) == 2

    def test_sync_candidates_never_collapsed(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1), release=True)),
                "2": Thread(A.Write("x", Lit(1), release=True)),
                "3": Thread(A.Read("r", "x", acquire=True)),
            },
            client_vars={"x": 0, "y": 0},
        )
        cfg = initial_config(program)
        for tid in ("1", "2"):
            tr = next(iter(thread_successors(program, cfg, tid)))
            cfg = tr.target
        pruned = [
            tr for tr in successors(program, cfg, prune=True) if tr.tid == "3"
        ]
        # Both releasing writes synchronise with the acquiring read:
        # their modification views differ, so both choices survive.
        assert len(pruned) == 3

    def test_node_summary(self):
        read = A.Read("r", "x")
        write = A.Write("y", Lit(1))
        assert _node_summary(read) == (frozenset({"x"}), False)
        assert _node_summary(write) == (frozenset({"y"}), True)
        assert _node_summary(A.seq(read, write)) == (frozenset({"x", "y"}), True)
        assert _node_summary(A.LocalAssign("r", Lit(1))) == (frozenset(), False)
        assert _node_summary(A.MethodCall("o", "m")) == (frozenset(), True)
        assert _node_summary(None) == (frozenset(), False)


class TestTransitionClass:
    def test_slotted(self):
        program = _mp_await()
        tr = successors(program, initial_config(program))[0]
        assert not hasattr(tr, "__dict__")
        assert tr.__slots__ == ("tid", "component", "action", "target")

    def test_value_semantics(self):
        program = _mp_await()
        cfg = initial_config(program)
        a = successors(program, cfg)
        b = successors(program, cfg)
        assert a == b
        assert len({hash(Transition(t.tid, t.component, t.action, t.target))
                    for t in a}) == len({hash(t) for t in a})


class TestOutcomePreservation:
    def test_await_mp_outcomes_and_counts(self):
        program = _mp_await()
        off = explore_sequential(program)
        red = explore_sequential(program, reduction="closure")
        assert off.terminal_locals(("2", "r2")) == {(5,)}
        assert red.terminal_locals(("2", "r2")) == {(5,)}
        assert red.state_count < off.state_count
        assert red.edge_count < off.edge_count
