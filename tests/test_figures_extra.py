"""Additional figure-level verifications: the variable-level MP outline,
three-thread lock clients, and further broken-implementation controls."""

import pytest

from repro.figures.mp_outline import mp_outline, mp_ra_labelled
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.litmus.clients import abstract_fill, lock_client_three_threads
from repro.logic.owicki import check_proof_outline
from repro.objects.lock import AbstractLock
from repro.semantics.explore import explore


class TestMpOutline:
    def test_valid(self):
        result = check_proof_outline(mp_outline())
        assert result.valid
        assert result.obligations > 0

    def test_program_outcomes(self):
        result = explore(mp_ra_labelled())
        assert result.terminal_locals(("2", "r2")) == {(5,)}

    def test_mutated_rejected(self):
        from repro.assertions.core import LocalEq
        from repro.logic.outline import ProofOutline

        outline = mp_outline()
        bad = ProofOutline(
            program=outline.program,
            threads=outline.threads,
            postcondition=LocalEq("2", "r2", 0),
        )
        assert not check_proof_outline(bad).valid

    def test_relaxed_variant_fails_outline(self):
        """The same outline over the *relaxed* MP program must fail: the
        conditional observation is falsified once f = 1 is written
        without release."""
        from repro.logic.outline import ProofOutline

        t1 = A.seq(
            A.Labeled(1, A.Write("d", Lit(5))),
            A.Labeled(2, A.Write("f", Lit(1))),  # relaxed!
        )
        t2 = A.seq(
            A.Labeled(
                3, A.do_until(A.Read("r1", "f", acquire=True), Reg("r1").eq(1))
            ),
            A.Labeled(4, A.Read("r2", "d")),
        )
        program = Program(
            threads={
                "1": Thread(t1, done_label=3),
                "2": Thread(t2, done_label=5),
            },
            client_vars={"d": 0, "f": 0},
        )
        outline = mp_outline()
        bad = ProofOutline(
            program=program,
            threads=outline.threads,
            postcondition=outline.postcondition,
        )
        assert not check_proof_outline(bad).valid


class TestThreeThreadLock:
    @pytest.fixture(scope="class")
    def result(self):
        fill, objs = abstract_fill(lambda: AbstractLock("l"))
        return explore(lock_client_three_threads(fill, objects=objs))

    def test_no_deadlock(self, result):
        assert not result.stuck and result.terminals

    def test_versions_sequential(self, result):
        for cfg in result.terminals:
            indices = sorted(op.act.index for op in cfg.beta.ops_on("l"))
            assert indices == list(range(7))  # init + 3×(acquire, release)

    def test_mutual_exclusion(self, result):
        p = result.program
        for cfg in result.configs.values():
            in_cs = [t for t in p.tids if cfg.pc(t, p) == 2]
            assert len(in_cs) <= 1

    def test_final_value_is_some_thread_write(self, result):
        for cfg in result.terminals:
            final = cfg.gamma.last_op("x")
            assert final.act.val in (1, 2, 3)


class TestBrokenTicketVariant:
    def test_relaxed_serving_read_breaks_refinement(self):
        """A ticket lock whose serving read is *relaxed* provides mutual
        exclusion (the FAI still orders tickets) but not publication."""
        from repro.litmus.clients import lock_client
        from repro.refinement.simulation import find_forward_simulation
        from tests.conftest import abstract_lock_client

        def broken(obj, method, dest=None):
            if method == "acquire":
                return A.LibBlock(
                    A.seq(
                        A.Fai("_m", "nt"),
                        A.do_until(
                            A.Read("_s", "sn", acquire=False),  # BUG
                            Reg("_m").eq(Reg("_s")),
                        ),
                    )
                )
            return A.LibBlock(A.Write("sn", Reg("_s") + 1, release=True))

        concrete = lock_client(broken, lib_vars={"nt": 0, "sn": 0})
        # The stale read is observable by the client…
        outcomes = explore(concrete).terminal_locals(("2", "a"), ("2", "b"))
        assert outcomes != {(0, 0), (5, 5)}
        # …and refinement fails.
        result = find_forward_simulation(concrete, abstract_lock_client())
        assert not result.found
