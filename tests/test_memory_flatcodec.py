"""Wire format v2 (:mod:`repro.memory.flatcodec`): round-trip parity,
fuzz-hardened decode, codec registry.

The flat codec changes how cross-shard batches are written, never what
they mean: a flat round-trip must be value-identical — equal configs,
bit-identical canonical keys — across the litmus catalog, the five
abstract-object/lock client programs and hypothesis-random programs,
and must agree entry-for-entry with the v1 pickle codec it can fall
back to.  The decode side is fuzz-hardened: truncations, bit flips,
corrupted counts and wrong version bytes must surface as the typed
:exc:`~repro.memory.flatcodec.CodecError` (a ``ValueError``), never a
bare ``struct.error``/``IndexError``/``MemoryError`` from the guts of
the decoder.
"""

import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.fingerprint import stable_digest
from repro.litmus.catalog import LITMUS_TESTS
from repro.memory import flatcodec
from repro.memory.codec import BufferFull
from repro.memory.flatcodec import (
    CODECS,
    MAGIC,
    VERSION,
    BatchCodec,
    CodecError,
    decode_batch,
    encode_batch,
    encode_batch_into,
    get_codec,
)
from repro.semantics.canon import canonical_key
from repro.semantics.explore import explore
from tests.conftest import (
    abstract_lock_client,
    seqlock_client,
    spinlock_client,
    stack_program,
    ticketlock_client,
)
from tests.test_property_semantics import programs

OBJECT_CLIENTS = (
    ("abstract-lock", abstract_lock_client),
    ("seqlock", seqlock_client),
    ("ticketlock", ticketlock_client),
    ("spinlock", spinlock_client),
    ("stack-mp", lambda: stack_program(sync=True)),
)


def _batch_of(result, limit=None, parents=False):
    """A cross-shard-shaped batch from an exploration's configs."""
    cfgs = list(result.configs.values())
    if limit is not None:
        cfgs = cfgs[:limit]
    out = []
    for i, cfg in enumerate(cfgs):
        digest = stable_digest(repr(i).encode())
        if parents:
            out.append((digest, cfg, None))
        else:
            out.append((digest, cfg))
    return out


def _assert_equal_batches(program, got, want):
    assert len(got) == len(want)
    for ge, we in zip(got, want):
        assert len(ge) == len(we)
        assert ge[0] == we[0]
        assert ge[1] == we[1]
        assert canonical_key(program, ge[1]) == canonical_key(
            program, we[1]
        )
        assert ge[2:] == we[2:]


class TestRoundTripParity:
    def test_litmus_catalog_bit_identical(self):
        for test in LITMUS_TESTS:
            program = test.build()
            result = explore(program)
            batch = _batch_of(result)
            blob = encode_batch(batch)
            assert blob[0] == MAGIC and blob[1] == VERSION
            _assert_equal_batches(program, decode_batch(blob), batch)

    @pytest.mark.parametrize(
        "name,build", OBJECT_CLIENTS, ids=[n for n, _ in OBJECT_CLIENTS]
    )
    def test_object_clients_bit_identical(self, name, build):
        program = build()
        result = explore(program)
        batch = _batch_of(result)
        _assert_equal_batches(
            program, decode_batch(encode_batch(batch)), batch
        )

    @settings(max_examples=30, deadline=None)
    @given(p=programs())
    def test_random_programs_bit_identical(self, p):
        result = explore(p, max_states=300)
        batch = _batch_of(result)
        _assert_equal_batches(p, decode_batch(encode_batch(batch)), batch)

    def test_parent_edge_extras_round_trip(self):
        program = LITMUS_TESTS[0].build()
        result = explore(program)
        batch = _batch_of(result, parents=True)
        _assert_equal_batches(
            program, decode_batch(encode_batch(batch)), batch
        )

    def test_agrees_with_pickle_codec(self):
        """Both registered codecs decode to the same values (the parity
        the transports rely on when mixing codec generations)."""
        program = LITMUS_TESTS[0].build()
        batch = _batch_of(explore(program))
        flat = decode_batch(get_codec("flat").encode_bytes(batch))
        pick = decode_batch(get_codec("pickle").encode_bytes(batch))
        _assert_equal_batches(program, flat, pick)

    def test_non_config_batch_falls_back_to_pickle(self):
        """Control payloads and ad-hoc ring traffic are not flat
        encodable; they ride the embedded v1 pickle format, which
        decode_batch transparently accepts."""
        blob = encode_batch([(b"digest", {"k": [1, 2, 3]})])
        assert blob[0] != MAGIC  # pickle protocol 2+ opcode 0x80
        assert decode_batch(blob) == [(b"digest", {"k": [1, 2, 3]})]

    def test_decoded_ops_share_interned_objects(self):
        """Decode-side interning spans batches: repeated actions and
        timestamps come back as the same objects (cached hashes)."""
        program = LITMUS_TESTS[0].build()
        batch = _batch_of(explore(program), limit=4)
        a = decode_batch(encode_batch(batch))
        b = decode_batch(encode_batch(batch))
        ga, gb = a[1][1].gamma, b[1][1].gamma
        for op_a, op_b in zip(
            sorted(ga.ops, key=lambda o: (repr(o.act), o.ts)),
            sorted(gb.ops, key=lambda o: (repr(o.act), o.ts)),
        ):
            assert op_a.act is op_b.act


class TestEncodeInto:
    def test_matches_bytes_encoder(self):
        program = LITMUS_TESTS[0].build()
        batch = _batch_of(explore(program), limit=8)
        blob = encode_batch(batch)
        buf = memoryview(bytearray(len(blob) + 64))
        n = encode_batch_into(batch, buf)
        assert n == len(blob)
        assert bytes(buf[:n]) == blob

    def test_buffer_full_when_too_small(self):
        program = LITMUS_TESTS[0].build()
        batch = _batch_of(explore(program), limit=8)
        with pytest.raises(BufferFull):
            encode_batch_into(batch, memoryview(bytearray(16)))

    def test_partial_write_stays_inside_buffer(self):
        program = LITMUS_TESTS[0].build()
        batch = _batch_of(explore(program), limit=8)
        need = len(encode_batch(batch))
        backing = bytearray(need // 2 + 16)
        canary = b"\xAA" * 16
        backing[-16:] = canary
        with pytest.raises(BufferFull):
            encode_batch_into(batch, memoryview(backing)[:-16])
        assert bytes(backing[-16:]) == canary


def _valid_blob():
    program = LITMUS_TESTS[0].build()
    result = explore(program)
    return encode_batch(_batch_of(result, limit=10))


class TestFuzzedDecode:
    """Adversarial inputs: every failure is the typed CodecError."""

    @pytest.fixture(scope="class")
    def blob(self):
        return _valid_blob()

    def _decode_expecting_codec_error(self, data):
        try:
            decode_batch(data)
        except CodecError:
            pass  # the typed contract
        except (struct.error, IndexError, KeyError, MemoryError) as exc:
            pytest.fail(
                f"bare {type(exc).__name__} escaped decode_batch: {exc}"
            )
        # A lucky mutation may still decode (e.g. a flipped bit inside
        # an embedded digest): silence is acceptable, bare internal
        # exceptions are not.

    def test_empty_and_garbage_rejected(self):
        with pytest.raises(CodecError):
            decode_batch(b"")
        with pytest.raises(CodecError):
            decode_batch(b"\x00")
        with pytest.raises(CodecError):
            decode_batch(b"not a frame at all")

    def test_wrong_version_rejected(self, blob):
        bad = bytes([blob[0], VERSION + 1]) + blob[2:]
        with pytest.raises(CodecError, match="version"):
            decode_batch(bad)

    def test_every_truncation_point(self, blob):
        for cut in range(len(blob)):
            self._decode_expecting_codec_error(blob[:cut])

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_random_bit_flips(self, blob, data):
        pos = data.draw(st.integers(2, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        mutated = bytearray(blob)
        mutated[pos] ^= 1 << bit
        self._decode_expecting_codec_error(bytes(mutated))

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_random_splices(self, blob, data):
        """Chop a slice out / double a slice: structural corruption of
        counts and back-references must stay typed."""
        a = data.draw(st.integers(2, len(blob) - 1))
        b = data.draw(st.integers(a, len(blob)))
        if data.draw(st.booleans()):
            mutated = blob[:a] + blob[b:]  # delete [a, b)
        else:
            mutated = blob[:a] + blob[a:b] + blob[a:]  # duplicate
        self._decode_expecting_codec_error(mutated)

    @settings(max_examples=100, deadline=None)
    @given(junk=st.binary(min_size=1, max_size=64))
    def test_random_junk_after_magic(self, junk):
        self._decode_expecting_codec_error(
            bytes([MAGIC, VERSION, 0]) + junk
        )

    def test_huge_claimed_count_rejected_before_allocation(self):
        # count() must reject a count larger than the remaining bytes
        # instead of trying to allocate/iterate it.
        frame = bytes([MAGIC, VERSION, 0]) + b"\xff\xff\xff\xff\x7f"
        with pytest.raises(CodecError):
            decode_batch(frame)

    def test_pickle_fallback_corruption_is_typed(self):
        blob = pickle.dumps([(b"d", 1)], pickle.HIGHEST_PROTOCOL)
        self._decode_expecting_codec_error(blob[: len(blob) // 2])


class TestCodecRegistry:
    def test_registry_names(self):
        assert CODECS == ("flat", "pickle")

    def test_get_codec_shapes(self):
        for name in CODECS:
            codec = get_codec(name)
            assert isinstance(codec, BatchCodec)
            assert codec.name == name
            batch = [(b"d", ("payload", 1))]
            blob = codec.encode_bytes(batch)
            assert decode_batch(blob) == batch
            buf = memoryview(bytearray(len(blob) + 32))
            n = codec.encode_into(batch, buf)
            assert codec.decode(buf[:n]) == batch

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="flat"):
            get_codec("bogus")

    def test_engine_validates_codec(self):
        from repro.engine import ExplorationEngine

        with pytest.raises(ValueError, match="codec"):
            ExplorationEngine(workers=2, codec="bogus")


class TestMetrics:
    def test_encode_decode_counters_recorded(self):
        from repro.obs.metrics import Metrics, collecting

        program = LITMUS_TESTS[0].build()
        batch = _batch_of(explore(program), limit=8)
        m = Metrics()
        with collecting(m):
            decode_batch(encode_batch(batch))
        snap = m.snapshot()["counters"]
        assert snap.get("codec.encode_ns", 0) > 0
        assert snap.get("codec.decode_ns", 0) > 0
        assert snap.get("codec.table_entries", 0) > 0

    def test_pickle_codec_counters_recorded(self):
        from repro.obs.metrics import Metrics, collecting

        m = Metrics()
        with collecting(m):
            decode_batch(get_codec("pickle").encode_bytes([(b"d", 1)]))
        snap = m.snapshot()["counters"]
        assert snap.get("codec.encode_ns", 0) > 0
        assert snap.get("codec.decode_ns", 0) > 0
