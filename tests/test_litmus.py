"""The litmus battery: validates Figure 5 against RC11 RAR verdicts."""

import pytest

from repro.litmus.catalog import LITMUS_TESTS, run_litmus


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=[t.name for t in LITMUS_TESTS])
class TestLitmus:
    def test_exact_outcome_set(self, test):
        result = run_litmus(test)
        assert result["outcomes"] == set(test.allowed), (
            f"{test.name}: got {sorted(result['outcomes'], key=repr)}, "
            f"expected {sorted(test.allowed, key=repr)}"
        )

    def test_weak_behaviour_verdict(self, test):
        result = run_litmus(test)
        assert result["weak_observed"] == test.weak_allowed


class TestCatalogueShape:
    def test_names_unique(self):
        names = [t.name for t in LITMUS_TESTS]
        assert len(names) == len(set(names))

    def test_covers_key_shapes(self):
        names = {t.name for t in LITMUS_TESTS}
        for required in ("MP-relaxed", "MP-RA", "SB-relaxed", "LB", "CoRR",
                         "IRIW-RA", "CAS-atomicity", "FAI-atomicity"):
            assert required in names

    def test_weak_outcomes_disjoint_from_allowed_when_forbidden(self):
        for t in LITMUS_TESTS:
            if not t.weak_allowed:
                assert not (t.weak & t.allowed), t.name
            else:
                assert t.weak <= t.allowed, t.name
