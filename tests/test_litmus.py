"""The litmus battery: validates Figure 5 against RC11 RAR verdicts."""

import pytest

from repro.litmus.catalog import LITMUS_TESTS, run_litmus


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=[t.name for t in LITMUS_TESTS])
class TestLitmus:
    def test_exact_outcome_set(self, test):
        result = run_litmus(test)
        assert result["outcomes"] == set(test.allowed), (
            f"{test.name}: got {sorted(result['outcomes'], key=repr)}, "
            f"expected {sorted(test.allowed, key=repr)}"
        )

    def test_weak_behaviour_verdict(self, test):
        result = run_litmus(test)
        assert result["weak_observed"] == test.weak_allowed


class TestCatalogueShape:
    def test_names_unique(self):
        names = [t.name for t in LITMUS_TESTS]
        assert len(names) == len(set(names))

    def test_covers_key_shapes(self):
        names = {t.name for t in LITMUS_TESTS}
        for required in ("MP-relaxed", "MP-RA", "SB-relaxed", "LB", "CoRR",
                         "IRIW-RA", "CAS-atomicity", "FAI-atomicity"):
            assert required in names

    def test_weak_outcomes_disjoint_from_allowed_when_forbidden(self):
        for t in LITMUS_TESTS:
            if not t.weak_allowed:
                assert not (t.weak & t.allowed), t.name
            else:
                assert t.weak <= t.allowed, t.name


class TestViolationWitness:
    """Failing verdicts embed the violating schedule in the report."""

    def _misjudged(self, name="MP-relaxed"):
        # The same program with a deliberately wrong catalog entry: the
        # weak outcome is real, so judging it forbidden is a "presence"
        # violation — the kind a witness can exhibit.
        from dataclasses import replace

        base = next(t for t in LITMUS_TESTS if t.name == name)
        return replace(
            base,
            weak_allowed=False,
            allowed=frozenset(base.allowed - base.weak),
        )

    def test_passing_verdict_has_no_witness_key(self):
        result = run_litmus(LITMUS_TESTS[0])
        assert result["verdict_ok"]
        assert "witness" not in result

    def test_failing_verdict_embeds_schedule(self):
        result = run_litmus(self._misjudged())
        assert not result["verdict_ok"]
        schedule = result["witness"]
        assert schedule and all(isinstance(s, str) for s in schedule)
        # The schedule is the rendered witness: a JSON-safe line per
        # step, containing the stale read the weak outcome needs.
        assert any("rd(d,0)" in line for line in schedule)

    def test_failing_verdict_witness_through_closure_engine(self):
        from repro.engine import ExplorationEngine

        result = run_litmus(
            self._misjudged("MP-await-relaxed"),
            engine=ExplorationEngine(reduction="closure"),
        )
        assert not result["verdict_ok"]
        # Macro-steps re-expanded: the polling loop's silent steps are
        # present in the concrete schedule.
        assert any("ε" in line for line in result["witness"])
