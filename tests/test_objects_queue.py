"""Tests for the abstract FIFO queue (extension object)."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import EMPTY, Lit, Reg
from repro.lang.program import Program, Thread
from repro.memory.initial import initial_states
from repro.objects.queue import AbstractQueue
from repro.semantics.explore import explore


@pytest.fixture()
def setup():
    queue = AbstractQueue("q")
    program = Program(
        threads={"1": A.skip(), "2": A.skip()},
        client_vars={"d": 0},
        objects=(queue,),
    )
    gamma, beta = initial_states(program)
    return queue, gamma, beta


def the(steps):
    out = list(steps)
    assert len(out) == 1
    return out[0]


class TestFifoOrder:
    def test_initially_empty(self, setup):
        queue, _g, beta = setup
        assert queue.content(beta) == ()
        assert queue.front(beta) is None

    def test_fifo_removal(self, setup):
        queue, gamma, beta = setup
        s = the(queue.method_steps(beta, gamma, "1", "enq", 1))
        s = the(queue.method_steps(s.lib, s.cli, "1", "enq", 2))
        assert [v for v, _ in queue.content(s.lib)] == [1, 2]
        d = the(queue.method_steps(s.lib, s.cli, "2", "deq"))
        assert d.retval == 1  # FIFO: oldest first (stack would give 2)
        d2 = the(queue.method_steps(d.lib, d.cli, "2", "deq"))
        assert d2.retval == 2

    def test_empty_deq_is_pure(self, setup):
        queue, gamma, beta = setup
        d = the(queue.method_steps(beta, gamma, "1", "deq"))
        assert d.retval == EMPTY
        assert d.lib is beta and d.cli is gamma

    def test_enq_requires_argument(self, setup):
        queue, gamma, beta = setup
        with pytest.raises(ValueError):
            list(queue.method_steps(beta, gamma, "1", "enq"))

    def test_unknown_method(self, setup):
        queue, gamma, beta = setup
        with pytest.raises(ValueError):
            list(queue.method_steps(beta, gamma, "1", "peek"))


class TestSynchronisation:
    def _publish(self, setup, enq_method, deq_method):
        from repro.memory.transitions import write_steps

        queue, gamma, beta = setup
        _a, _w, gamma1, _ = the(
            write_steps(gamma, beta, "1", "d", 5, release=False)
        )
        dnew = gamma1.thread_view("1", "d")
        s = the(queue.method_steps(beta, gamma1, "1", enq_method, 1))
        d = the(queue.method_steps(s.lib, s.cli, "2", deq_method))
        assert d.retval == 1
        return dnew, d

    def test_release_acquire_pair_transfers_view(self, setup):
        dnew, d = self._publish(setup, "enqR", "deqA")
        assert d.cli.thread_view("2", "d") == dnew

    def test_relaxed_enq_does_not_transfer(self, setup):
        dnew, d = self._publish(setup, "enq", "deqA")
        assert d.cli.thread_view("2", "d") != dnew

    def test_relaxed_deq_does_not_transfer(self, setup):
        dnew, d = self._publish(setup, "enqR", "deq")
        assert d.cli.thread_view("2", "d") != dnew


class TestWorkQueueClient:
    """End-to-end: message passing over a work queue."""

    def _program(self, sync: bool) -> Program:
        enq = "enqR" if sync else "enq"
        deq = "deqA" if sync else "deq"
        producer = A.seq(
            A.Write("d", Lit(5)),
            A.MethodCall("q", enq, arg=Lit(1)),
        )
        consumer = A.seq(
            A.do_until(A.MethodCall("q", deq, dest="r1"), Reg("r1").eq(1)),
            A.Read("r2", "d"),
        )
        return Program(
            threads={"1": Thread(producer), "2": Thread(consumer)},
            client_vars={"d": 0},
            objects=(AbstractQueue("q"),),
        )

    def test_synchronising_queue_publishes(self):
        outcomes = explore(self._program(True)).terminal_locals(("2", "r2"))
        assert outcomes == {(5,)}

    def test_relaxed_queue_leaks_stale_reads(self):
        outcomes = explore(self._program(False)).terminal_locals(("2", "r2"))
        assert outcomes == {(0,), (5,)}

    def test_two_consumers_disjoint_items(self):
        """Each enqueued item is dequeued at most once."""
        producer = A.seq(
            A.MethodCall("q", "enqR", arg=Lit(1)),
            A.MethodCall("q", "enqR", arg=Lit(2)),
        )
        c1 = A.MethodCall("q", "deqA", dest="a")
        c2 = A.MethodCall("q", "deqA", dest="b")
        p = Program(
            threads={"1": Thread(producer), "2": Thread(c1), "3": Thread(c2)},
            objects=(AbstractQueue("q"),),
        )
        outcomes = explore(p).terminal_locals(("2", "a"), ("3", "b"))
        for a, b in outcomes:
            if a != EMPTY and b != EMPTY:
                assert a != b
        # FIFO: 2 is only dequeued after 1.
        assert (2, 2) not in outcomes
        assert any(a == 1 or b == 1 for a, b in outcomes)
