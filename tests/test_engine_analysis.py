"""Engine static-analysis policy tests (``analysis="strict"|"warn"|"off"``)."""

import io
import json
import logging

import pytest

from repro.engine.core import ExplorationEngine
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program
from repro.obs.metrics import Metrics
from repro.obs.trace import TraceWriter
from repro.util.errors import VerificationError


def _clean_program():
    return Program(
        threads={
            "1": A.Write("x", Lit(1), release=True),
            "2": A.Read("r", "x", acquire=True),
        },
        client_vars={"x": 0},
    )


def _warning_program():
    # Racy relaxed conflict plus a dead write: warnings only.
    return Program(
        threads={
            "1": A.seq(A.Write("x", Lit(1)), A.Write("dead", Lit(1))),
            "2": A.Read("r", "x"),
        },
        client_vars={"x": 0, "dead": 0},
    )


def _error_program():
    # A silent ε-divergent loop: error severity, yet still explorable
    # (the unfolded loop state-cycles, so exploration stays finite).
    return Program(
        threads={
            "1": A.seq(
                A.LocalAssign("m", Lit(0)),
                A.While(Reg("m").eq(0), A.LocalAssign("t", Lit(1))),
            )
        },
    )


class TestPolicyValidation:
    def test_bad_policy_at_init(self):
        with pytest.raises(ValueError):
            ExplorationEngine(analysis="bogus")

    def test_bad_policy_per_call(self):
        engine = ExplorationEngine()
        with pytest.raises(ValueError):
            engine.explore(_clean_program(), analysis="bogus")

    def test_default_is_off(self):
        assert ExplorationEngine().analysis == "off"


class TestOffPolicy:
    def test_no_analysis_runs(self):
        metrics = Metrics()
        engine = ExplorationEngine(metrics=metrics)
        result = engine.explore(_error_program())
        assert result.state_count > 0 or result.stuck is not None
        assert "analysis.runs" not in metrics.counters


class TestWarnPolicy:
    @pytest.fixture(autouse=True)
    def _propagate_repro_logs(self, monkeypatch):
        # The CLI installs its own handler on the "repro" logger and
        # stops propagation; caplog listens on the root logger, so
        # restore propagation for these assertions.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)

    def test_findings_logged_but_exploration_proceeds(self, caplog):
        engine = ExplorationEngine(analysis="warn")
        with caplog.at_level(logging.WARNING, logger="repro.analysis"):
            result = engine.explore(_warning_program())
        assert result.terminals
        messages = [r.message for r in caplog.records]
        assert any("race" in m for m in messages)
        assert any("dead-write" in m for m in messages)

    def test_errors_do_not_block_under_warn(self, caplog):
        engine = ExplorationEngine(analysis="warn")
        with caplog.at_level(logging.ERROR, logger="repro.analysis"):
            engine.explore(_error_program())
        assert any("silent-loop" in r.message for r in caplog.records)

    def test_metrics_counters(self):
        metrics = Metrics()
        engine = ExplorationEngine(analysis="warn", metrics=metrics)
        engine.explore(_warning_program())
        assert metrics.counters["analysis.runs"] == 1
        assert metrics.counters["analysis.warnings"] >= 2
        assert "analysis.errors" not in metrics.counters

    def test_trace_event_emitted(self):
        sink = io.StringIO()
        engine = ExplorationEngine(
            analysis="warn", trace=TraceWriter(sink)
        )
        engine.explore(_warning_program())
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        (report,) = [e for e in events if e["ev"] == "analysis.report"]
        assert report["policy"] == "warn"
        assert report["errors"] == 0
        assert report["warnings"] >= 2
        # The analysis runs before exploration starts.
        kinds = [e["ev"] for e in events]
        assert kinds.index("analysis.report") < kinds.index("explore.start")


class TestStrictPolicy:
    def test_clean_program_explores(self):
        engine = ExplorationEngine(analysis="strict")
        result = engine.explore(_clean_program())
        assert result.terminals

    def test_warnings_alone_do_not_block(self):
        engine = ExplorationEngine(analysis="strict")
        result = engine.explore(_warning_program())
        assert result.terminals

    def test_errors_refuse_exploration(self):
        engine = ExplorationEngine(analysis="strict")
        with pytest.raises(VerificationError) as exc:
            engine.explore(_error_program())
        assert "silent-loop" in str(exc.value)
        assert "analysis='strict'" in str(exc.value)

    def test_error_metrics_still_counted(self):
        metrics = Metrics()
        engine = ExplorationEngine(analysis="strict", metrics=metrics)
        with pytest.raises(VerificationError):
            engine.explore(_error_program())
        assert metrics.counters["analysis.errors"] >= 1


class TestPerCallOverride:
    def test_call_tightens_engine_default(self):
        engine = ExplorationEngine()  # off
        with pytest.raises(VerificationError):
            engine.explore(_error_program(), analysis="strict")

    def test_call_relaxes_engine_default(self):
        engine = ExplorationEngine(analysis="strict")
        result = engine.explore(_error_program(), analysis="off")
        assert result is not None

    def test_override_does_not_stick(self):
        engine = ExplorationEngine(analysis="strict")
        engine.explore(_error_program(), analysis="off")
        assert engine.analysis == "strict"
        with pytest.raises(VerificationError):
            engine.explore(_error_program())
