"""Tests for the forward-simulation game solver (Definition 8)."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.litmus.clients import lock_client
from repro.refinement.simulation import find_forward_simulation
from repro.util.errors import VerificationError
from tests.conftest import (
    abstract_lock_client,
    seqlock_client,
    spinlock_client,
    ticketlock_client,
)


class TestPropositions:
    def test_prop9_seqlock(self):
        """Proposition 9: forward simulation between the abstract lock
        and the sequence lock."""
        result = find_forward_simulation(seqlock_client(), abstract_lock_client())
        assert result.found
        assert result.relation_size > 0

    def test_prop10_ticketlock(self):
        """Proposition 10: forward simulation between the abstract lock
        and the ticket lock."""
        result = find_forward_simulation(
            ticketlock_client(), abstract_lock_client()
        )
        assert result.found

    def test_extension_spinlock(self):
        result = find_forward_simulation(
            spinlock_client(), abstract_lock_client()
        )
        assert result.found

    def test_relation_covers_concrete_reachability(self):
        result = find_forward_simulation(seqlock_client(), abstract_lock_client())
        # Every concrete state appears in some related pair (the game
        # explored all of them and none was dropped).
        assert result.relation_size >= result.concrete_states

    def test_writer_writer_client(self):
        result = find_forward_simulation(
            seqlock_client(readers=False), abstract_lock_client(readers=False)
        )
        assert result.found


class TestNegativeCases:
    def _broken_relaxed_release(self):
        def fill(obj, method, dest=None):
            if method == "acquire":
                return A.LibBlock(
                    A.do_until(A.Cas("_b", "lk", Lit(0), Lit(1)), Reg("_b"))
                )
            return A.LibBlock(A.Write("lk", Lit(0)))  # BUG: relaxed write

        return lock_client(fill, lib_vars={"lk": 0})

    def _broken_no_mutex(self):
        def fill(obj, method, dest=None):
            if method == "acquire":
                # BUG: reads the lock instead of CASing it — no exclusion.
                return A.LibBlock(A.Read("_b", "lk", acquire=True))
            return A.LibBlock(A.Write("lk", Lit(0), release=True))

        return lock_client(fill, lib_vars={"lk": 0})

    def test_relaxed_release_rejected(self):
        result = find_forward_simulation(
            self._broken_relaxed_release(), abstract_lock_client()
        )
        assert not result.found
        assert result.relation_size == 0

    def test_missing_mutex_rejected(self):
        result = find_forward_simulation(
            self._broken_no_mutex(), abstract_lock_client()
        )
        assert not result.found

    def test_truncation_raises(self):
        with pytest.raises(VerificationError):
            find_forward_simulation(
                seqlock_client(), abstract_lock_client(), max_states=5
            )


class TestGameMechanics:
    def test_statistics_populated(self):
        result = find_forward_simulation(
            ticketlock_client(), abstract_lock_client()
        )
        assert result.abstract_states > 0
        assert result.concrete_states > result.abstract_states
        assert result.product_pairs >= result.relation_size
        assert result.iterations >= 1

    def test_self_simulation(self):
        p = abstract_lock_client()
        result = find_forward_simulation(p, p)
        assert result.found
