"""The JSONL trace stream: writer mechanics, schema validation, and the
events the engine layers actually emit."""

import io
import json

import pytest

from repro.engine import ExplorationEngine
from repro.engine.cache import ResultCache
from repro.litmus.catalog import LITMUS_TESTS
from repro.obs.trace import (
    EVENTS,
    SCHEMA_VERSION,
    TraceWriter,
    trace_from_env,
    validate_event,
)


def _lines(buf: io.StringIO):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestTraceWriter:
    def test_stream_target_one_json_object_per_line(self):
        buf = io.StringIO()
        tw = TraceWriter(buf)
        tw.emit("litmus.start", tests=3)
        tw.emit("litmus.finish", ok=True)
        events = _lines(buf)
        assert [e["ev"] for e in events] == ["litmus.start", "litmus.finish"]
        for e in events:
            assert e["v"] == SCHEMA_VERSION
            assert isinstance(e["ts"], float)
            validate_event(e)

    def test_path_target_appends_across_writers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(str(path)) as tw:
            tw.emit("litmus.start", tests=1)
        with TraceWriter(str(path)) as tw:
            tw.emit("litmus.finish", ok=False)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["ev"] for e in events] == ["litmus.start", "litmus.finish"]

    def test_emit_after_close_is_a_noop(self):
        buf = io.StringIO()
        tw = TraceWriter(buf)
        tw.close()
        tw.emit("litmus.start", tests=1)
        assert buf.getvalue() == ""

    def test_non_json_fields_are_stringified(self):
        buf = io.StringIO()
        TraceWriter(buf).emit("explore.cached", key=b"\x01\x02")
        assert isinstance(_lines(buf)[0]["key"], str)

    def test_trace_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_from_env() is None
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        tw = trace_from_env()
        assert tw is not None
        tw.emit("litmus.start", tests=1)
        tw.close()
        validate_event(json.loads(path.read_text()))


class TestValidateEvent:
    def _ok(self, **overrides):
        base = {"v": 1, "ts": 1.0, "ev": "explore.round",
                "round": 1, "frontier": 2, "states": 3}
        base.update(overrides)
        return base

    def test_accepts_valid_and_extra_fields(self):
        validate_event(self._ok())
        validate_event(self._ok(extra="fine"))  # forward compatible

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            validate_event([1, 2])

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            validate_event(self._ok(v=99))

    def test_rejects_bad_timestamp(self):
        with pytest.raises(ValueError, match="ts"):
            validate_event(self._ok(ts="now"))
        with pytest.raises(ValueError, match="ts"):
            validate_event(self._ok(ts=True))

    def test_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown event"):
            validate_event(self._ok(ev="explore.bogus"))

    def test_rejects_missing_field(self):
        bad = self._ok()
        del bad["frontier"]
        with pytest.raises(ValueError, match="frontier"):
            validate_event(bad)

    def test_bool_is_not_an_int(self):
        # isinstance(True, int) holds in Python; the schema must not
        # let a boolean masquerade as a count.
        with pytest.raises(ValueError, match="round"):
            validate_event(self._ok(round=True))

    def test_int_is_a_float(self):
        # JSON has one number type: integral elapsed values are fine.
        ev = {"v": 1, "ts": 1, "ev": "batch.finish", "ok": True, "elapsed": 2}
        validate_event(ev)
        with pytest.raises(ValueError, match="elapsed"):
            validate_event({**ev, "elapsed": False})

    def test_every_documented_event_has_a_spec(self):
        assert set(EVENTS) == {
            "explore.start", "explore.finish", "explore.cached",
            "explore.round", "explore.drain", "explore.transport",
            "explore.codec",
            "metrics.sample", "analysis.report",
            "litmus.start", "litmus.finish",
            "batch.start", "batch.finish",
            "batch.job.start", "batch.job.finish",
        }


class TestEngineEmission:
    def _explore(self, **engine_kwargs):
        buf = io.StringIO()
        engine = ExplorationEngine(trace=TraceWriter(buf), **engine_kwargs)
        result = engine.explore(LITMUS_TESTS[0].build())
        events = _lines(buf)
        for e in events:
            validate_event(e)
        return result, events

    def test_sequential_span_events(self):
        result, events = self._explore()
        kinds = [e["ev"] for e in events]
        assert kinds == ["explore.start", "explore.finish", "metrics.sample"]
        start, finish, sample = events
        assert start["backend"] == "sequential"
        assert start["workers"] == 1
        assert finish["states"] == result.state_count
        assert finish["edges"] == result.edge_count
        assert finish["states_per_sec"] > 0
        counters = sample["metrics"]["counters"]
        assert counters["explore.states"] == result.state_count

    def test_rounds_emits_round_events(self):
        result, events = self._explore(workers=2, backend="rounds")
        rounds = [e for e in events if e["ev"] == "explore.round"]
        assert rounds, "level-synchronous backend must trace its rounds"
        assert [e["round"] for e in rounds] == list(
            range(1, len(rounds) + 1)
        )
        assert rounds[0]["states"] == 1  # only the initial state admitted
        finish = next(e for e in events if e["ev"] == "explore.finish")
        assert finish["states"] == result.state_count

    def test_pipeline_emits_drain_events(self):
        _result, events = self._explore(workers=2, backend="pipeline")
        drains = [e for e in events if e["ev"] == "explore.drain"]
        assert drains, "pipeline workers must trace their idle reports"
        assert {e["worker"] for e in drains} <= {0, 1}

    def test_cached_run_emits_cached_event(self, tmp_path):
        buf = io.StringIO()
        engine = ExplorationEngine(
            cache=ResultCache(tmp_path), trace=TraceWriter(buf)
        )
        program = LITMUS_TESTS[0].build()
        engine.run(program)
        engine.run(program)
        events = _lines(buf)
        for e in events:
            validate_event(e)
        kinds = [e["ev"] for e in events]
        # Cold: a full exploration span.  Warm: one cached event, no
        # exploration at all.
        assert kinds == [
            "explore.start", "explore.finish", "metrics.sample",
            "explore.cached",
        ]

    def test_trace_without_metrics_sink_still_samples(self):
        # A trace-only engine must still collect per-run metrics to
        # fill its samples (the engine-level sink is simply absent).
        _result, events = self._explore()
        sample = next(e for e in events if e["ev"] == "metrics.sample")
        assert sample["metrics"]["counters"]["explore.states"] > 0


class TestBatchEmission:
    def test_batch_lifecycle_events(self, monkeypatch, tmp_path):
        from repro.engine.batch import run_batch

        monkeypatch.setenv("REPRO_CACHE", "0")
        buf = io.StringIO()
        report = run_batch(jobs=["figures"], trace=TraceWriter(buf))
        events = _lines(buf)
        for e in events:
            validate_event(e)
        assert [e["ev"] for e in events] == [
            "batch.start", "batch.job.start", "batch.job.finish",
            "batch.finish",
        ]
        assert events[0]["jobs"] == ["figures"]
        assert events[2]["job"] == "figures"
        assert events[2]["ok"] is report.ok is True
        assert events[3]["elapsed"] >= events[2]["elapsed"]
