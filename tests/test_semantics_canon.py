"""Tests for canonical configuration keys."""

from fractions import Fraction

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.memory.actions import Op, mk_write
from repro.semantics.canon import canonical_key, client_state_key
from repro.semantics.config import Config, initial_config
from repro.semantics.explore import explore
from repro.semantics.step import successors
from tests.conftest import mp_relaxed, seqlock_client


def rescale_gamma(cfg: Config, scale: int, shift: int) -> Config:
    """Order-isomorphically relabel all client timestamps."""
    from dataclasses import replace

    from repro.memory.state import ComponentState
    from repro.util.fmap import FMap

    def f(op: Op) -> Op:
        return Op(op.act, op.ts * scale + shift)

    gamma = cfg.gamma
    new = ComponentState(
        ops=frozenset(f(op) for op in gamma.ops),
        tview=FMap({k: f(op) for k, op in gamma.tview.items()}),
        mview=FMap(
            {
                f(op): FMap(
                    {
                        x: (f(o) if _is_client(o) else o)
                        for x, o in view.items()
                    }
                )
                for op, view in gamma.mview.items()
            }
        ),
        cvd=frozenset(f(op) for op in gamma.cvd),
    )
    return Config(cmds=cfg.cmds, locals=cfg.locals, gamma=new, beta=cfg.beta)


def _is_client(op: Op) -> bool:
    return op.act.var in ("d", "f", "x")


class TestCanonicalKey:
    def test_deterministic(self):
        p = mp_relaxed()
        cfg = initial_config(p)
        assert canonical_key(p, cfg) == canonical_key(p, cfg)

    def test_differs_for_different_configs(self):
        p = mp_relaxed()
        cfg = initial_config(p)
        keys = {canonical_key(p, tr.target) for tr in successors(p, cfg)}
        assert canonical_key(p, cfg) not in keys
        assert len(keys) == len(successors(p, cfg))

    def test_invariant_under_timestamp_rescaling(self):
        p = mp_relaxed()
        cfg = initial_config(p)
        # Take a few steps to accumulate non-trivial timestamps.
        for _ in range(3):
            cfg = successors(p, cfg)[0].target
        rescaled = rescale_gamma(cfg, scale=7, shift=3)
        assert canonical_key(p, cfg) == canonical_key(p, rescaled)

    def test_distinguishes_values(self):
        p1 = Program(
            threads={"1": Thread(A.Write("x", Lit(1)))}, client_vars={"x": 0}
        )
        cfg1 = successors(p1, initial_config(p1))[0].target
        p2 = Program(
            threads={"1": Thread(A.Write("x", Lit(2)))}, client_vars={"x": 0}
        )
        cfg2 = successors(p2, initial_config(p2))[0].target
        assert canonical_key(p1, cfg1) != canonical_key(p2, cfg2)

    def test_reduces_state_count_vs_raw(self):
        # The ablation: canonicalisation must merge at least as many
        # states as raw hashing on a lock client with loops.
        p = seqlock_client()
        canon = explore(p, canonicalise=True)
        raw = explore(p, canonicalise=False, max_states=20000)
        assert canon.state_count <= raw.state_count


class TestClientStateKey:
    def test_ignores_library_registers(self):
        p = seqlock_client()
        result = explore(p)
        # Find two configs differing only in library-internal registers.
        keys = {}
        for cfg in result.configs.values():
            k = client_state_key(p, cfg)
            keys.setdefault(k, []).append(cfg)
        # Strictly fewer client keys than configs: library states collapse.
        assert len(keys) < result.state_count

    def test_sensitive_to_client_locals(self):
        p = mp_relaxed()
        result = explore(p)
        terminal_keys = {client_state_key(p, t) for t in result.terminals}
        # Four distinct terminal outcomes for (r1, r2).
        assert len(terminal_keys) == 4
