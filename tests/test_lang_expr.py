"""Tests for the local-expression language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang.expr import (
    EMPTY,
    BinOp,
    Lit,
    Reg,
    UnOp,
    eval_bool,
    eval_expr,
    lit,
    reg,
    registers_of,
)
from repro.util.errors import SemanticsError


class TestLiterals:
    def test_int(self):
        assert eval_expr(Lit(42), {}) == 42

    def test_bool(self):
        assert eval_expr(Lit(True), {}) is True

    def test_empty_value(self):
        assert eval_expr(Lit(EMPTY), {}) == EMPTY

    def test_constructors(self):
        assert lit(3) == Lit(3)
        assert reg("r") == Reg("r")


class TestRegisters:
    def test_lookup(self):
        assert eval_expr(Reg("r"), {"r": 7}) == 7

    def test_unbound_raises(self):
        with pytest.raises(SemanticsError):
            eval_expr(Reg("r"), {})


class TestOperators:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 4, 3, 12),
            ("%", 7, 2, 1),
            ("==", 2, 2, True),
            ("!=", 2, 3, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
            ("and", True, False, False),
            ("or", True, False, True),
        ],
    )
    def test_binary(self, op, a, b, expected):
        assert eval_expr(BinOp(op, Lit(a), Lit(b)), {}) == expected

    @pytest.mark.parametrize(
        "op,a,expected",
        [
            ("not", True, False),
            ("-", 5, -5),
            ("even", 4, True),
            ("even", 3, False),
            ("odd", 3, True),
            ("odd", 4, False),
        ],
    )
    def test_unary(self, op, a, expected):
        assert eval_expr(UnOp(op, Lit(a)), {}) == expected

    def test_even_of_empty_is_false(self):
        assert eval_expr(UnOp("even", Lit(EMPTY)), {}) is False

    def test_unknown_operator_raises(self):
        with pytest.raises(SemanticsError):
            eval_expr(BinOp("xor", Lit(1), Lit(2)), {})
        with pytest.raises(SemanticsError):
            eval_expr(UnOp("sqrt", Lit(4)), {})


class TestFluentApi:
    def test_arithmetic_sugar(self):
        e = Reg("r") + 1
        assert eval_expr(e, {"r": 2}) == 3

    def test_comparison_sugar(self):
        assert eval_expr(Reg("r").eq(5), {"r": 5}) is True
        assert eval_expr(Reg("r").ne(5), {"r": 5}) is False
        assert eval_expr(Reg("r").lt(5), {"r": 4}) is True
        assert eval_expr(Reg("r").ge(5), {"r": 5}) is True

    def test_logical_sugar(self):
        e = Reg("a").eq(1).and_(Reg("b").eq(2))
        assert eval_bool(e, {"a": 1, "b": 2})
        assert not eval_bool(e, {"a": 1, "b": 3})
        assert eval_bool(Reg("a").eq(9).or_(Reg("b").eq(2)), {"a": 1, "b": 2})
        assert eval_bool(Reg("a").eq(9).not_(), {"a": 1})

    def test_even_odd_sugar(self):
        assert eval_bool(Reg("r").even(), {"r": 2})
        assert eval_bool(Reg("r").odd(), {"r": 3})

    def test_coercion_of_plain_values(self):
        e = Reg("r").eq(EMPTY)
        assert eval_bool(e, {"r": EMPTY})

    @given(a=st.integers(-50, 50), b=st.integers(-50, 50))
    def test_property_addition_matches_python(self, a, b):
        assert eval_expr(Reg("x") + Reg("y"), {"x": a, "y": b}) == a + b


class TestRegistersOf:
    def test_literal_has_none(self):
        assert registers_of(Lit(1)) == frozenset()

    def test_collects_nested(self):
        e = (Reg("a") + Reg("b")).eq(Reg("c").not_())
        assert registers_of(e) == {"a", "b", "c"}


class TestEmptySingleton:
    def test_identity(self):
        from repro.lang.expr import _Empty

        assert _Empty() is EMPTY

    def test_equality_and_hash(self):
        assert EMPTY == EMPTY
        assert EMPTY != 0
        assert EMPTY != False  # noqa: E712 — deliberate: Empty is not falsy-equal
        assert hash(EMPTY) == hash(EMPTY)

    def test_repr(self):
        assert repr(EMPTY) == "Empty"
