"""Tests for the exhaustive explorer and random executor."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.objects.lock import AbstractLock
from repro.semantics.explore import (
    assert_invariant,
    explore,
    final_outcomes,
    reachable,
)
from repro.semantics.random_exec import random_run, sample_outcomes
from repro.util.errors import VerificationError
from tests.conftest import mp_ra, mp_relaxed


class TestExplore:
    def test_terminals_and_outcomes(self, mp_relaxed_result):
        r = mp_relaxed_result
        assert not r.truncated
        assert not r.stuck
        outcomes = r.terminal_locals(("2", "r1"), ("2", "r2"))
        assert outcomes == {(0, 0), (0, 5), (1, 0), (1, 5)}

    def test_state_count_reported(self, mp_relaxed_result):
        assert mp_relaxed_result.state_count > 1
        assert mp_relaxed_result.edge_count >= mp_relaxed_result.state_count - 1

    def test_collect_edges(self):
        p = mp_relaxed()
        r = explore(p, collect_edges=True)
        assert r.edges is not None
        assert set(r.edges) == set(r.configs)
        # Every edge target is a known config.
        for edges in r.edges.values():
            for _tid, _comp, _act, tkey in edges:
                assert tkey in r.configs

    def test_truncation_flag(self):
        p = mp_relaxed()
        r = explore(p, max_states=3)
        assert r.truncated

    def test_invariant_checking_mode(self):
        # Diagnostic mode: component coherence at every configuration.
        explore(mp_ra(), check_invariants=True)

    def test_on_config_callback(self):
        seen = []
        explore(mp_relaxed(), on_config=seen.append)
        assert len(seen) == explore(mp_relaxed()).state_count

    def test_on_config_early_stop(self):
        # Returning True from the callback halts exploration promptly.
        full = explore(mp_relaxed())
        seen = []

        def probe(cfg):
            seen.append(cfg)
            return len(seen) >= 3

        r = explore(mp_relaxed(), on_config=probe)
        assert r.stopped
        assert len(seen) == 3
        assert r.state_count < full.state_count

    def test_truncation_bails_promptly(self):
        # Once the cap is hit, the queue must not be drained: the edge
        # count of a truncated run stays a (strict) lower bound of the
        # full run's.
        full = explore(mp_relaxed())
        r = explore(mp_relaxed(), max_states=3)
        assert r.truncated
        assert r.state_count <= 3
        assert r.edge_count < full.edge_count


class TestDeadlockDetection:
    def test_double_acquire_deadlocks(self):
        # A thread acquiring twice blocks forever: stuck, not terminal.
        lock = AbstractLock("l")
        body = A.seq(A.MethodCall("l", "acquire"), A.MethodCall("l", "acquire"))
        p = Program(threads={"1": Thread(body)}, objects=(lock,))
        r = explore(p)
        assert len(r.stuck) == 1
        assert not r.terminals

    def test_final_outcomes_raises_on_deadlock(self):
        lock = AbstractLock("l")
        body = A.seq(A.MethodCall("l", "acquire"), A.MethodCall("l", "acquire"))
        p = Program(threads={"1": Thread(body)}, objects=(lock,))
        with pytest.raises(VerificationError):
            final_outcomes(p, ())

    def test_final_outcomes_raises_on_truncation(self):
        with pytest.raises(VerificationError):
            final_outcomes(mp_relaxed(), (), max_states=2)


class TestReachable:
    def test_finds_witness(self):
        p = mp_relaxed()
        cfg = reachable(p, lambda c: c.local("2", "r1") == 1)
        assert cfg is not None
        assert cfg.local("2", "r1") == 1

    def test_returns_none_when_unreachable(self):
        p = mp_ra()
        # The forbidden weak outcome: r1 = 1 ∧ r2 = 0 at termination.
        cfg = reachable(
            p,
            lambda c: c.is_terminal()
            and c.local("2", "r1") == 1
            and c.local("2", "r2") == 0,
        )
        assert cfg is None


class TestAssertInvariant:
    def test_holds(self):
        assert_invariant(mp_relaxed(), lambda c: True)

    def test_violation_raises_with_counterexample(self):
        with pytest.raises(VerificationError) as exc:
            assert_invariant(
                mp_relaxed(), lambda c: c.local("2", "r1") != 1
            )
        assert exc.value.counterexample is not None


class TestRandomExecution:
    def test_run_terminates(self):
        r = random_run(mp_relaxed())
        assert r.terminated
        assert r.final.is_terminal()

    def test_outcomes_subset_of_exhaustive(self, mp_relaxed_result):
        exhaustive = mp_relaxed_result.terminal_locals(("2", "r1"), ("2", "r2"))
        hist = sample_outcomes(
            mp_relaxed(), (("2", "r1"), ("2", "r2")), runs=50, seed=42
        )
        assert set(hist) <= exhaustive

    def test_seeded_reproducibility(self):
        h1 = sample_outcomes(mp_relaxed(), (("2", "r1"),), runs=20, seed=7)
        h2 = sample_outcomes(mp_relaxed(), (("2", "r1"),), runs=20, seed=7)
        assert h1 == h2

    def test_step_cap_reported(self):
        # An infinite spin: pop-empty loop that can never succeed.
        from repro.objects.stack import AbstractStack

        body = A.do_until(
            A.MethodCall("s", "pop", dest="r"), Reg("r").eq(1)
        )
        p = Program(
            threads={"1": Thread(body)}, objects=(AbstractStack("s"),)
        )
        r = random_run(p, max_steps=50)
        assert not r.terminated and not r.deadlocked
        assert r.steps == 50
