"""Cross-cutting integration tests.

The centrepiece is the Theorem 8.1 cross-validation: whenever the
simulation game finds a forward simulation, direct trace checking must
confirm contextual refinement — and when the game fails, on our broken
implementations, trace checking must fail too (the converse is not
implied by the theorem but holds on these examples).
"""

import pytest

from repro.impls.counter_fai import FAICOUNTER_VARS, counter_fill
from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.litmus.clients import abstract_fill, lock_client
from repro.objects.counter import AbstractCounter
from repro.objects.lock import AbstractLock
from repro.refinement.simulation import find_forward_simulation
from repro.refinement.tracecheck import check_program_refinement


def abstract(client_builder, **kw):
    fill, objs = abstract_fill(lambda: AbstractLock("l"))
    return client_builder(fill, objects=objs, **kw)


LOCK_IMPLS = [
    ("seqlock", seqlock_fill, SEQLOCK_VARS),
    ("ticketlock", ticketlock_fill, TICKETLOCK_VARS),
    ("spinlock", spinlock_fill, SPINLOCK_VARS),
]


class TestTheorem81:
    """Simulation found ⇒ trace refinement holds (soundness)."""

    @pytest.mark.parametrize(
        "name,fill,lib_vars", LOCK_IMPLS, ids=[i[0] for i in LOCK_IMPLS]
    )
    @pytest.mark.parametrize("readers", [True, False], ids=["rw", "ww"])
    def test_simulation_implies_trace_refinement(
        self, name, fill, lib_vars, readers
    ):
        conc = lock_client(fill, lib_vars=dict(lib_vars), readers=readers)
        abst = abstract(lock_client, readers=readers)
        sim = find_forward_simulation(conc, abst)
        ref = check_program_refinement(conc, abst)
        assert sim.found
        assert ref.refines  # Theorem 8.1's conclusion, checked directly

    def test_broken_lock_fails_both(self):
        def fill(obj, method, dest=None):
            if method == "acquire":
                return A.LibBlock(
                    A.do_until(A.Cas("_b", "lk", Lit(0), Lit(1)), Reg("_b"))
                )
            return A.LibBlock(A.Write("lk", Lit(0)))  # relaxed: broken

        conc = lock_client(fill, lib_vars={"lk": 0})
        abst = abstract(lock_client)
        assert not find_forward_simulation(conc, abst).found
        assert not check_program_refinement(conc, abst).refines


class TestCounterRefinement:
    """Extension: the FAI counter refines the abstract counter."""

    def _clients(self):
        def client(fill, objects=(), lib_vars=None):
            t1 = A.seq(
                A.Labeled(1, A.Write("x", Lit(5))),
                A.Labeled(2, fill("c", "inc", "a")),
            )
            t2 = A.seq(
                A.Labeled(1, fill("c", "inc", "b")),
                A.Labeled(2, A.Read("r", "x")),
            )
            return Program(
                threads={"1": Thread(t1, done_label=3), "2": Thread(t2, done_label=3)},
                client_vars={"x": 0},
                lib_vars=dict(lib_vars or {}),
                objects=tuple(objects),
            )

        def abstract_counter_fill(obj, method, dest=None):
            return A.MethodCall(obj, method, dest=dest)

        conc = client(counter_fill, lib_vars=FAICOUNTER_VARS)
        abst = client(abstract_counter_fill, objects=(AbstractCounter("c"),))
        return conc, abst

    def test_simulation(self):
        conc, abst = self._clients()
        assert find_forward_simulation(conc, abst).found

    def test_trace_refinement(self):
        conc, abst = self._clients()
        assert check_program_refinement(conc, abst).refines

    def test_same_outcomes(self):
        from repro.semantics.explore import explore

        conc, abst = self._clients()
        regs = (("1", "a"), ("2", "b"), ("2", "r"))
        assert explore(conc).terminal_locals(*regs) == explore(
            abst
        ).terminal_locals(*regs)


class TestClientBattery:
    """Refinement must hold across a diverse client battery, not just the
    Figure 7 shape (Definition 7 quantifies over all clients)."""

    def _battery(self, fill, lib_vars, afill, aobjs):
        def three(fill_fn, **kw):
            from repro.litmus.clients import lock_client_three_threads

            return lock_client_three_threads(fill_fn, **kw)

        def one_sided(fill_fn, **kw):
            from repro.litmus.clients import lock_client_one_sided

            return lock_client_one_sided(fill_fn, **kw)

        return [
            (
                lock_client(fill, lib_vars=dict(lib_vars)),
                lock_client(afill, objects=aobjs),
            ),
            (
                lock_client(fill, lib_vars=dict(lib_vars), readers=False),
                lock_client(afill, objects=aobjs, readers=False),
            ),
            (
                one_sided(fill, lib_vars=dict(lib_vars)),
                one_sided(afill, objects=aobjs),
            ),
        ]

    @pytest.mark.parametrize(
        "name,fill,lib_vars", LOCK_IMPLS, ids=[i[0] for i in LOCK_IMPLS]
    )
    def test_battery(self, name, fill, lib_vars):
        afill, aobjs = abstract_fill(lambda: AbstractLock("l"))
        for conc, abst in self._battery(fill, lib_vars, afill, aobjs):
            sim = find_forward_simulation(conc, abst)
            assert sim.found, f"{name} failed on a battery client"


class TestExhaustiveVsRandom:
    def test_random_sampling_agrees_with_exhaustive(self):
        from repro.semantics.explore import explore
        from repro.semantics.random_exec import sample_outcomes
        from tests.conftest import mp_relaxed

        p = mp_relaxed()
        exhaustive = explore(p).terminal_locals(("2", "r1"), ("2", "r2"))
        sampled = sample_outcomes(
            p, (("2", "r1"), ("2", "r2")), runs=300, seed=1
        )
        assert set(sampled) <= exhaustive
        # With 300 runs the common outcomes should all appear.
        assert len(sampled) >= 3
