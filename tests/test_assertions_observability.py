"""Tests for the observability assertion atoms (paper §5.1).

Each atom is checked against executions of small programs where the
expected truth value is known from the semantics.
"""

import pytest

from repro.assertions.core import make_env
from repro.assertions.observability import (
    ConditionalMethod,
    ConditionalPop,
    ConditionalValue,
    Covered,
    DefiniteMethod,
    DefiniteValue,
    Hidden,
    MethodMatch,
    PossibleMethod,
    PossibleValue,
    StackEmpty,
    StackTopIs,
)
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.objects.lock import AbstractLock
from repro.objects.stack import AbstractStack
from repro.semantics.config import initial_config
from repro.semantics.explore import explore, reachable
from repro.semantics.step import successors
from tests.conftest import mp_ra, mp_relaxed


def env_after(program, *step_indices):
    """Walk a deterministic path: at each config take the i-th successor."""
    cfg = initial_config(program)
    for i in step_indices:
        cfg = successors(program, cfg)[i].target
    return make_env(program, cfg)


class TestPossibleDefiniteValue:
    def test_initial_state(self):
        p = mp_relaxed()
        env = make_env(p, initial_config(p))
        for t in ("1", "2"):
            assert DefiniteValue("d", 0, t).holds(env)
            assert PossibleValue("d", 0, t).holds(env)
            assert not PossibleValue("d", 5, t).holds(env)

    def test_after_write_both_values_possible_for_other_thread(self):
        p = mp_relaxed()
        result = explore(p)
        # Find a config where thread 1 wrote d but thread 2 hasn't read.
        for cfg in result.configs.values():
            if len(cfg.gamma.ops_on("d")) == 2 and cfg.cmds["2"] is not None:
                env = make_env(p, cfg)
                if cfg.gamma.thread_view("2", "d").ts == 0:
                    assert PossibleValue("d", 0, "2").holds(env)
                    assert PossibleValue("d", 5, "2").holds(env)
                    assert not DefiniteValue("d", 0, "2").holds(env)
                    assert not DefiniteValue("d", 5, "2").holds(env)
                    # The writer sees its own write definitely.
                    assert DefiniteValue("d", 5, "1").holds(env)
                    return
        pytest.fail("expected configuration not found")

    def test_definite_after_sync(self):
        p = mp_ra()
        # Any terminal state with r1 = 1 must satisfy [d = 5]2 *before*
        # the read of d — check at the read instead: r2 must be 5.
        witness = reachable(
            p,
            lambda c: c.is_terminal() and c.local("2", "r1") == 1,
        )
        env = make_env(p, witness)
        assert DefiniteValue("d", 5, "2").holds(env)


class TestConditionalValue:
    def test_mp_conditional_holds_after_release(self):
        # ⟨f = 1⟩[d = 5]2 after thread 1 ran both writes (release).
        p = mp_ra()
        witness = reachable(
            p,
            lambda c: c.cmds["1"] is None
            and c.gamma.thread_view("2", "f").ts == 0,
        )
        env = make_env(p, witness)
        assert ConditionalValue("f", 1, "d", 5, "2").holds(env)

    def test_fails_for_relaxed_write(self):
        p = mp_relaxed()
        witness = reachable(p, lambda c: c.cmds["1"] is None)
        env = make_env(p, witness)
        assert not ConditionalValue("f", 1, "d", 5, "2").holds(env)

    def test_vacuous_when_value_unobservable(self):
        p = mp_ra()
        env = make_env(p, initial_config(p))
        assert ConditionalValue("f", 9, "d", 5, "2").holds(env)


@pytest.fixture()
def lock_program():
    lock = AbstractLock("l")
    body1 = A.seq(
        A.MethodCall("l", "acquire"),
        A.Write("x", Lit(5)),
        A.MethodCall("l", "release"),
    )
    body2 = A.seq(A.MethodCall("l", "acquire"), A.MethodCall("l", "release"))
    return Program(
        threads={"1": Thread(body1), "2": Thread(body2)},
        client_vars={"x": 0},
        objects=(lock,),
    )


class TestMethodAtoms:
    def test_definite_init_initially(self, lock_program):
        env = make_env(lock_program, initial_config(lock_program))
        init0 = MethodMatch("l", "init", index=0)
        assert DefiniteMethod(init0, "1").holds(env)
        assert PossibleMethod(init0, "1").holds(env)
        assert not Hidden(init0).holds(env)
        assert Covered(init0).holds(env)  # the only uncovered op is init

    def test_after_acquire(self, lock_program):
        p = lock_program
        witness = reachable(
            p, lambda c: len(c.beta.ops_on("l")) == 2
        )
        env = make_env(p, witness)
        init0 = MethodMatch("l", "init", index=0)
        acq1 = MethodMatch("l", "acquire", index=1)
        assert Hidden(init0).holds(env)  # init covered by the acquire
        assert Covered(acq1).holds(env)  # acquire is the only uncovered op
        assert not DefiniteMethod(init0, "1").holds(env)

    def test_possible_method_respects_viewfront(self, lock_program):
        p = lock_program
        # After thread 1's release, thread 2 (still at initial view of l)
        # can observe the release.
        witness = reachable(
            p,
            lambda c: any(
                op.act.method == "release" for op in c.beta.ops_on("l")
            )
            and c.cmds["2"] is not None,
        )
        env = make_env(p, witness)
        rel2 = MethodMatch("l", "release", index=2)
        assert PossibleMethod(rel2, "2").holds(env)

    def test_conditional_method_publication(self, lock_program):
        p = lock_program
        # Thread 1 entered first, wrote x := 5 and released: release_2 is
        # thread 1's, so synchronising with it guarantees [x = 5].
        witness = reachable(
            p,
            lambda c: any(
                op.act.method == "release" and op.act.tid == "1"
                and op.act.index == 2
                for op in c.beta.ops_on("l")
            ),
        )
        env = make_env(p, witness)
        rel2 = MethodMatch("l", "release", index=2)
        assert ConditionalMethod(rel2, "x", 5, "2").holds(env)
        assert not ConditionalMethod(rel2, "x", 0, "2").holds(env)

    def test_conditional_method_with_thread2_first(self, lock_program):
        p = lock_program
        # Thread 2 entered first without writing: its release_2 publishes
        # the *initial* x = 0, not 5.
        witness = reachable(
            p,
            lambda c: any(
                op.act.method == "release" and op.act.tid == "2"
                and op.act.index == 2
                for op in c.beta.ops_on("l")
            ),
        )
        env = make_env(p, witness)
        rel2 = MethodMatch("l", "release", index=2)
        assert ConditionalMethod(rel2, "x", 0, "2").holds(env)
        assert not ConditionalMethod(rel2, "x", 5, "2").holds(env)

    def test_conditional_method_vacuous_without_matches(self, lock_program):
        env = make_env(lock_program, initial_config(lock_program))
        rel2 = MethodMatch("l", "release", index=2)
        assert ConditionalMethod(rel2, "x", 5, "2").holds(env)

    def test_method_match_constraints(self):
        from repro.memory.actions import mk_method, mk_write

        rel = mk_method("l", "release", tid="1", index=2, sync=True)
        assert MethodMatch("l", "release").matches(rel)
        assert MethodMatch("l", "release", index=2).matches(rel)
        assert not MethodMatch("l", "release", index=4).matches(rel)
        assert not MethodMatch("l", "acquire").matches(rel)
        assert not MethodMatch("m", "release").matches(rel)
        assert MethodMatch("l", "release", tid="1").matches(rel)
        assert not MethodMatch("l", "release", tid="2").matches(rel)
        assert not MethodMatch("l", "release").matches(mk_write("l", 1, "t"))


class TestStackAtoms:
    @pytest.fixture()
    def stack_env(self):
        stack = AbstractStack("s")
        p = Program(
            threads={
                "1": Thread(
                    A.seq(
                        A.Write("d", Lit(5)),
                        A.MethodCall("s", "pushR", arg=Lit(1)),
                    )
                )
            },
            client_vars={"d": 0},
            objects=(stack,),
        )
        return p

    def test_stack_empty_initially(self, stack_env):
        env = make_env(stack_env, initial_config(stack_env))
        assert StackEmpty("s").holds(env)
        assert not StackTopIs("s", 1).holds(env)
        # Conditional pop is vacuous on an empty stack.
        assert ConditionalPop("s", 1, "d", 5, "2").holds(env)

    def test_after_push(self, stack_env):
        p = stack_env
        witness = reachable(p, lambda c: c.is_terminal())
        env = make_env(p, witness)
        assert not StackEmpty("s").holds(env)
        assert StackTopIs("s", 1).holds(env)
        assert not StackTopIs("s", 2).holds(env)
        # Publication: popping 1 (pushed with release) establishes d = 5.
        assert ConditionalPop("s", 1, "d", 5, "2").holds(env)
        assert not ConditionalPop("s", 1, "d", 0, "2").holds(env)

    def test_conditional_pop_fails_for_relaxed_push(self):
        stack = AbstractStack("s")
        p = Program(
            threads={
                "1": Thread(
                    A.seq(
                        A.Write("d", Lit(5)),
                        A.MethodCall("s", "push", arg=Lit(1)),
                    )
                )
            },
            client_vars={"d": 0},
            objects=(stack,),
        )
        witness = reachable(p, lambda c: c.is_terminal())
        env = make_env(p, witness)
        assert not ConditionalPop("s", 1, "d", 5, "2").holds(env)


class TestDescriptions:
    def test_atoms_have_readable_descriptions(self):
        assert "d" in DefiniteValue("d", 5, "2").describe()
        assert "⟨" in PossibleValue("d", 5, "2").describe()
        assert "release" in PossibleMethod(
            MethodMatch("l", "release", index=2), "2"
        ).describe()
        assert "H[" in Hidden(MethodMatch("l", "init", index=0)).describe()
        assert "C[" in Covered(MethodMatch("l", "init", index=0)).describe()
        assert "pop" in StackEmpty("s").describe()
