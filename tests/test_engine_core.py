"""Tests for the exploration engine: strategies and the engine API.

The visited-set exploration is order-insensitive, so every frontier
strategy must reconstruct *exactly* the same state space — same
``state_count``, ``edge_count``, terminal outcomes and litmus verdicts
— as the reference breadth-first order.  These parity tests run the
full litmus catalog through each strategy.
"""

import pytest

from repro.engine import (
    BFSFrontier,
    DFSFrontier,
    ExplorationEngine,
    SwarmFrontier,
    make_frontier,
)
from repro.litmus.catalog import LITMUS_TESTS, run_litmus
from repro.semantics.explore import explore

STRATEGIES = ["dfs", "swarm:7", "swarm:1234"]


def _signature(result, test):
    return (
        result.state_count,
        result.edge_count,
        len(result.terminals),
        len(result.stuck),
        result.terminal_locals(*test.regs),
    )


class TestStrategyParity:
    @pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_full_catalog(self, test, strategy):
        reference = explore(test.build())
        other = ExplorationEngine(strategy=strategy).explore(test.build())
        assert _signature(other, test) == _signature(reference, test)
        assert set(other.configs) == set(reference.configs)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_litmus_verdicts(self, strategy):
        engine = ExplorationEngine(strategy=strategy)
        for test in LITMUS_TESTS:
            verdict = run_litmus(test, engine=engine)
            assert verdict["verdict_ok"], (strategy, test.name)

    def test_swarm_is_deterministic_per_seed(self):
        test = LITMUS_TESTS[0]
        a = ExplorationEngine(strategy="swarm:42").explore(test.build())
        b = ExplorationEngine(strategy="swarm:42").explore(test.build())
        assert list(a.configs) == list(b.configs)


class TestFrontiers:
    def test_bfs_fifo(self):
        f = BFSFrontier()
        f.push(("a",), "A")
        f.push(("b",), "B")
        assert f.pop() == (("a",), "A")
        assert len(f) == 1

    def test_dfs_lifo(self):
        f = DFSFrontier()
        f.push(("a",), "A")
        f.push(("b",), "B")
        assert f.pop() == (("b",), "B")

    def test_swarm_pops_everything(self):
        f = SwarmFrontier(seed=3)
        items = {(i,): str(i) for i in range(10)}
        for k, v in items.items():
            f.push(k, v)
        popped = dict(f.pop() for _ in range(len(items)))
        assert popped == items
        assert not f

    def test_make_frontier_specs(self):
        assert isinstance(make_frontier("bfs"), BFSFrontier)
        assert isinstance(make_frontier("dfs"), DFSFrontier)
        assert isinstance(make_frontier("swarm:9"), SwarmFrontier)
        assert isinstance(make_frontier(DFSFrontier), DFSFrontier)
        assert isinstance(make_frontier(lambda: BFSFrontier()), BFSFrontier)
        with pytest.raises(ValueError):
            make_frontier("bogosort")


class TestEngineAPI:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ExplorationEngine(workers=0)

    def test_rejects_non_bfs_parallel(self):
        with pytest.raises(ValueError):
            ExplorationEngine(strategy="dfs", workers=2)

    def test_engine_counts_explorations(self):
        engine = ExplorationEngine()
        test = LITMUS_TESTS[0]
        engine.explore(test.build())
        engine.explore(test.build())
        assert engine.explorations == 2

    def test_max_states_default_and_override(self):
        engine = ExplorationEngine(max_states=3)
        test = LITMUS_TESTS[0]
        assert engine.explore(test.build()).truncated
        assert not engine.explore(test.build(), max_states=500_000).truncated

    def test_run_returns_summary_without_cache(self):
        engine = ExplorationEngine()
        test = LITMUS_TESTS[0]
        summary = engine.run(test.build())
        full = explore(test.build())
        assert summary.state_count == full.state_count
        assert summary.terminal_locals(*test.regs) == full.terminal_locals(
            *test.regs
        )
        assert not summary.cached
