"""Truncation semantics: what a capped search may and may not claim.

A search that hits ``max_states`` has inspected only part of the state
space; the only sound readings of its result are *lower bounds* and
*found witnesses*.  These tests pin the contract at the boundary:

* ``explore`` distinguishes early-stop (``stopped``) from cap-hit
  (``truncated``);
* ``reachable`` may return a witness found inside a truncated prefix,
  but never converts "no witness yet" into "unreachable" — that raises;
* ``assert_invariant`` refuses to bless an invariant it only checked on
  a prefix;
* ``final_outcomes`` keeps refusing truncated spaces (pre-existing
  behaviour, re-pinned here).
"""

import pytest

from repro.semantics.explore import (
    assert_invariant,
    explore,
    final_outcomes,
    reachable,
)
from repro.util.errors import VerificationError
from tests.conftest import mp_ra, mp_relaxed


class TestExploreFlags:
    def test_exact_cap_is_not_truncated(self):
        full = explore(mp_relaxed())
        r = explore(mp_relaxed(), max_states=full.state_count)
        assert not r.truncated
        assert r.state_count == full.state_count

    def test_one_below_cap_truncates(self):
        full = explore(mp_relaxed())
        r = explore(mp_relaxed(), max_states=full.state_count - 1)
        assert r.truncated
        assert r.state_count == full.state_count - 1

    def test_early_stop_is_not_truncation(self):
        r = explore(mp_relaxed(), on_config=lambda cfg: True)
        assert r.stopped and not r.truncated

    def test_truncated_counts_are_lower_bounds(self):
        full = explore(mp_relaxed())
        r = explore(mp_relaxed(), max_states=3)
        assert r.truncated
        assert r.state_count <= full.state_count
        assert r.edge_count <= full.edge_count


class TestReachableTruncation:
    def test_witness_inside_truncated_prefix_is_returned(self):
        # The initial configuration satisfies the predicate, so even a
        # 1-state budget finds it: a witness is a witness.
        cfg = reachable(mp_relaxed(), lambda c: True, max_states=1)
        assert cfg is not None

    def test_no_witness_plus_truncation_raises(self):
        # Unsatisfiable predicate, truncated search: "not found" would
        # be unsound, so the call must refuse.
        with pytest.raises(VerificationError, match="truncated"):
            reachable(mp_relaxed(), lambda c: False, max_states=3)

    def test_no_witness_complete_search_returns_none(self):
        p = mp_ra()
        cfg = reachable(
            p,
            lambda c: c.is_terminal()
            and c.local("2", "r1") == 1
            and c.local("2", "r2") == 0,
        )
        assert cfg is None


class TestAssertInvariantTruncation:
    def test_truncated_pass_raises(self):
        with pytest.raises(VerificationError, match="truncated"):
            assert_invariant(mp_relaxed(), lambda c: True, max_states=3)

    def test_violation_beats_truncation_reporting(self):
        # A violation found within the prefix is still reported as a
        # violation (with its counterexample), not as a truncation.
        with pytest.raises(VerificationError, match="invariant violated") as exc:
            assert_invariant(mp_relaxed(), lambda c: False, max_states=3)
        assert exc.value.counterexample is not None

    def test_complete_pass_returns_result(self):
        result = assert_invariant(mp_relaxed(), lambda c: True)
        assert not result.truncated


class TestFinalOutcomesTruncation:
    def test_truncated_raises(self):
        with pytest.raises(VerificationError, match="truncated"):
            final_outcomes(mp_relaxed(), (("2", "r1"),), max_states=3)

    def test_exact_budget_succeeds(self):
        full = explore(mp_relaxed())
        outcomes = final_outcomes(
            mp_relaxed(),
            (("2", "r1"), ("2", "r2")),
            max_states=full.state_count,
        )
        assert outcomes == {(0, 0), (0, 5), (1, 0), (1, 5)}
