"""Tests for the command AST and its helpers."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg


class TestSeq:
    def test_seq_two(self):
        s = A.seq(A.LocalAssign("a", Lit(1)), A.LocalAssign("b", Lit(2)))
        assert isinstance(s, A.Seq)
        assert isinstance(s.first, A.LocalAssign)

    def test_seq_right_nested(self):
        s = A.seq(
            A.LocalAssign("a", Lit(1)),
            A.LocalAssign("b", Lit(2)),
            A.LocalAssign("c", Lit(3)),
        )
        assert isinstance(s, A.Seq)
        assert isinstance(s.second, A.Seq)

    def test_seq_skips_none(self):
        s = A.seq(None, A.LocalAssign("a", Lit(1)), None)
        assert isinstance(s, A.LocalAssign)

    def test_seq_empty_is_none(self):
        assert A.seq() is None

    def test_seq_single(self):
        stmt = A.LocalAssign("a", Lit(1))
        assert A.seq(stmt) is stmt


class TestSeqCons:
    def test_finished_first_collapses(self):
        rest = A.LocalAssign("b", Lit(2))
        assert A.seq_cons(None, rest) is rest

    def test_unfinished_first_rebuilds(self):
        first = A.LocalAssign("a", Lit(1))
        rest = A.LocalAssign("b", Lit(2))
        out = A.seq_cons(first, rest)
        assert isinstance(out, A.Seq)
        assert out.first is first


class TestDoUntil:
    def test_desugars_to_seq_while(self):
        body = A.LocalAssign("a", Lit(1))
        loop = A.do_until(body, Reg("a").eq(1))
        assert isinstance(loop, A.Seq)
        assert loop.first is body
        assert isinstance(loop.second, A.While)
        # Guard is the negation of the until-condition.
        assert loop.second.cond.op == "not"


class TestNodeImmutability:
    def test_frozen(self):
        w = A.Write("x", Lit(1))
        with pytest.raises(Exception):
            w.var = "y"

    def test_hashable(self):
        s = A.seq(A.Write("x", Lit(1)), A.Read("r", "x"))
        assert hash(s) == hash(
            A.seq(A.Write("x", Lit(1)), A.Read("r", "x"))
        )

    def test_equality_structural(self):
        assert A.Write("x", Lit(1)) == A.Write("x", Lit(1))
        assert A.Write("x", Lit(1)) != A.Write("x", Lit(1), release=True)


class TestLibraryRegisters:
    def test_client_code_has_none(self):
        cmd = A.seq(A.Read("r", "x"), A.LocalAssign("a", Lit(1)))
        assert A.library_registers(cmd) == frozenset()

    def test_libblock_registers_collected(self):
        cmd = A.LibBlock(
            A.seq(
                A.Read("_r", "glb"),
                A.Cas("_loc", "glb", Reg("_r"), Reg("_r") + 1),
            )
        )
        assert A.library_registers(cmd) == {"_r", "_loc"}

    def test_mixed_nesting(self):
        cmd = A.seq(
            A.Read("client_r", "x"),
            A.Labeled(1, A.LibBlock(A.Fai("_m", "nt"))),
            A.If(Reg("client_r").eq(0), A.LibBlock(A.LocalAssign("_t", Lit(0)))),
        )
        assert A.library_registers(cmd) == {"_m", "_t"}

    def test_while_bodies_scanned(self):
        cmd = A.While(Reg("r").eq(0), A.LibBlock(A.Read("_s", "sn")))
        assert A.library_registers(cmd) == {"_s"}

    def test_writes_and_method_calls_bind_nothing(self):
        cmd = A.LibBlock(
            A.seq(A.Write("glb", Lit(0)), A.MethodCall("l", "acquire"))
        )
        assert A.library_registers(cmd) == frozenset()


class TestSkip:
    def test_skip_is_local_assign(self):
        s = A.skip()
        assert isinstance(s, A.LocalAssign)
