"""Tests for the abstract lock (Figure 6 / Example 1)."""

from fractions import Fraction

import pytest

from repro.lang.program import Program
from repro.lang import ast as A
from repro.memory.initial import initial_states
from repro.objects.lock import AbstractLock


@pytest.fixture()
def setup():
    lock = AbstractLock("l")
    program = Program(
        threads={"1": A.skip(), "2": A.skip()},
        client_vars={"x": 0},
        objects=(lock,),
    )
    gamma, beta = initial_states(program)
    return lock, gamma, beta


def the(steps):
    out = list(steps)
    assert len(out) == 1
    return out[0]


class TestInit:
    def test_init_op(self, setup):
        lock, _gamma, beta = setup
        ops = beta.ops_on("l")
        assert len(ops) == 1
        assert ops[0].act.method == "init"
        assert ops[0].act.index == 0
        assert ops[0].ts == Fraction(0)

    def test_initially_free(self, setup):
        lock, _gamma, beta = setup
        assert lock.is_free(beta)
        assert lock.holder(beta) is None


class TestAcquire:
    def test_first_acquire_gets_version_1(self, setup):
        lock, gamma, beta = setup
        step = the(lock.method_steps(beta, gamma, "1", "acquire"))
        assert step.retval == 1
        assert step.action.method == "acquire"
        assert step.action.index == 1
        assert step.action.tid == "1"

    def test_acquire_covers_predecessor(self, setup):
        lock, gamma, beta = setup
        init_op = beta.last_op("l")
        step = the(lock.method_steps(beta, gamma, "1", "acquire"))
        assert init_op in step.lib.cvd

    def test_acquire_takes_maximal_timestamp(self, setup):
        lock, gamma, beta = setup
        step = the(lock.method_steps(beta, gamma, "1", "acquire"))
        assert step.lib.last_op("l").act.method == "acquire"

    def test_held_lock_disables_acquire(self, setup):
        lock, gamma, beta = setup
        step = the(lock.method_steps(beta, gamma, "1", "acquire"))
        assert lock.holder(step.lib) == "1"
        assert list(lock.method_steps(step.lib, step.cli, "2", "acquire")) == []

    def test_acquire_after_release_gets_version_3(self, setup):
        lock, gamma, beta = setup
        s1 = the(lock.method_steps(beta, gamma, "1", "acquire"))
        s2 = the(lock.method_steps(s1.lib, s1.cli, "1", "release"))
        s3 = the(lock.method_steps(s2.lib, s2.cli, "2", "acquire"))
        assert s3.retval == 3


class TestRelease:
    def test_release_requires_holding(self, setup):
        lock, gamma, beta = setup
        # Lock free: release disabled.
        assert list(lock.method_steps(beta, gamma, "1", "release")) == []
        # Held by 1: release by 2 disabled.
        s1 = the(lock.method_steps(beta, gamma, "1", "acquire"))
        assert list(lock.method_steps(s1.lib, s1.cli, "2", "release")) == []

    def test_release_index_follows_acquire(self, setup):
        lock, gamma, beta = setup
        s1 = the(lock.method_steps(beta, gamma, "1", "acquire"))
        s2 = the(lock.method_steps(s1.lib, s1.cli, "1", "release"))
        assert s2.action.method == "release"
        assert s2.action.index == 2
        assert s2.action.sync  # releases are synchronising

    def test_release_frees(self, setup):
        lock, gamma, beta = setup
        s1 = the(lock.method_steps(beta, gamma, "1", "acquire"))
        s2 = the(lock.method_steps(s1.lib, s1.cli, "1", "release"))
        assert lock.is_free(s2.lib)

    def test_release_does_not_cover(self, setup):
        lock, gamma, beta = setup
        s1 = the(lock.method_steps(beta, gamma, "1", "acquire"))
        acq_op = s1.lib.last_op("l")
        s2 = the(lock.method_steps(s1.lib, s1.cli, "1", "release"))
        assert acq_op not in s2.lib.cvd


class TestSynchronisation:
    def test_acquire_transfers_releasers_client_view(self, setup):
        """The core publication property: acquiring after a release makes
        the releaser's client writes definitely visible."""
        from repro.memory.transitions import write_steps

        lock, gamma, beta = setup
        # Thread 1: acquire; x := 5 (relaxed client write); release.
        s1 = the(lock.method_steps(beta, gamma, "1", "acquire"))
        _a, _w, gamma2, beta2 = the(
            write_steps(s1.cli, s1.lib, "1", "x", 5, release=False)
        )
        xnew = gamma2.thread_view("1", "x")
        s2 = the(lock.method_steps(beta2, gamma2, "1", "release"))
        # Thread 2 acquires: its *client* view of x must advance.
        s3 = the(lock.method_steps(s2.lib, s2.cli, "2", "acquire"))
        assert s3.cli.thread_view("2", "x") == xnew

    def test_mview_of_release_spans_client_vars(self, setup):
        lock, gamma, beta = setup
        s1 = the(lock.method_steps(beta, gamma, "1", "acquire"))
        s2 = the(lock.method_steps(s1.lib, s1.cli, "1", "release"))
        rel_op = s2.lib.last_op("l")
        assert "x" in s2.lib.mview[rel_op]

    def test_unknown_method_raises(self, setup):
        lock, gamma, beta = setup
        with pytest.raises(ValueError):
            list(lock.method_steps(beta, gamma, "1", "steal"))
