"""Shared fixtures and program builders for the test suite."""

from __future__ import annotations

import pytest

from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.litmus.clients import abstract_fill, lock_client
from repro.objects.lock import AbstractLock
from repro.objects.stack import AbstractStack
from repro.semantics.config import initial_config
from repro.semantics.explore import explore


def mp_relaxed() -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1)))
    t2 = A.seq(A.Read("r1", "f"), A.Read("r2", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )


def mp_ra() -> Program:
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1), release=True))
    t2 = A.seq(A.Read("r1", "f", acquire=True), A.Read("r2", "d"))
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )


def single_writer(var: str = "x", value: int = 1, release: bool = False) -> Program:
    return Program(
        threads={"1": Thread(A.Write(var, Lit(value), release=release))},
        client_vars={var: 0},
    )


def abstract_lock_client(**kw) -> Program:
    fill, objs = abstract_fill(lambda: AbstractLock("l"))
    return lock_client(fill, objects=objs, **kw)


def seqlock_client(**kw) -> Program:
    return lock_client(seqlock_fill, lib_vars=SEQLOCK_VARS, **kw)


def ticketlock_client(**kw) -> Program:
    return lock_client(ticketlock_fill, lib_vars=TICKETLOCK_VARS, **kw)


def spinlock_client(**kw) -> Program:
    return lock_client(spinlock_fill, lib_vars=SPINLOCK_VARS, **kw)


@pytest.fixture(scope="session")
def mp_relaxed_result():
    return explore(mp_relaxed())


@pytest.fixture(scope="session")
def mp_ra_result():
    return explore(mp_ra())


@pytest.fixture(scope="session")
def abstract_lock_result():
    return explore(abstract_lock_client())


@pytest.fixture(scope="session")
def seqlock_result():
    return explore(seqlock_client())


@pytest.fixture(scope="session")
def ticketlock_result():
    return explore(ticketlock_client())


@pytest.fixture(scope="session")
def spinlock_result():
    return explore(spinlock_client())


def stack_program(sync: bool = True) -> Program:
    push = "pushR" if sync else "push"
    pop = "popA" if sync else "pop"
    t1 = A.seq(A.Write("d", Lit(5)), A.MethodCall("s", push, arg=Lit(1)))
    t2 = A.seq(
        A.do_until(A.MethodCall("s", pop, dest="r1"), Reg("r1").eq(1)),
        A.Read("r2", "d"),
    )
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0},
        objects=(AbstractStack("s"),),
    )
