"""Rule-level tests for Figure 5's Read/Write/Update transitions.

These exercise the memory semantics directly (not through programs),
checking the exact view updates each rule prescribes.
"""

from fractions import Fraction

import pytest

from repro.lang.program import Program, Thread
from repro.lang import ast as A
from repro.memory.initial import initial_states
from repro.memory.transitions import read_steps, update_steps, write_steps
from tests.conftest import mp_relaxed


@pytest.fixture()
def states():
    return initial_states(mp_relaxed())


def the(steps):
    out = list(steps)
    assert len(out) == 1, f"expected exactly one step, got {len(out)}"
    return out[0]


class TestWriteRule:
    def test_write_appends_and_advances_view(self, states):
        gamma, beta = states
        action, after, gamma2, beta2 = the(
            write_steps(gamma, beta, "1", "d", 5, release=False)
        )
        assert action.kind == "wr" and action.val == 5
        assert after.ts == Fraction(0)
        new = gamma2.thread_view("1", "d")
        assert new.act == action and new.ts > Fraction(0)
        # Writer can no longer see the initial write.
        assert gamma2.obs("1", "d") == (new,)
        # Other thread unaffected.
        assert len(gamma2.obs("2", "d")) == 2
        # Context untouched by a plain write.
        assert beta2 is beta

    def test_write_mview_spans_both_components(self, states):
        gamma, beta = states
        _a, _w, gamma2, _b = the(
            write_steps(gamma, beta, "1", "d", 5, release=False)
        )
        new = gamma2.thread_view("1", "d")
        mview = gamma2.mview[new]
        # Client vars from tview' plus (nothing here) library vars from β.
        assert mview["d"] == new
        assert "f" in mview

    def test_release_annotation_recorded(self, states):
        gamma, beta = states
        action, _w, _g, _b = the(
            write_steps(gamma, beta, "1", "d", 5, release=True)
        )
        assert action.kind == "wrR"

    def test_placement_choices_enumerated(self, states):
        gamma, beta = states
        # After two writes by thread 1, thread 2 (viewfront at init) has
        # three placement choices for its own write.
        _, _, gamma, _ = the(write_steps(gamma, beta, "1", "d", 1, False))
        _, _, gamma, _ = the(write_steps(gamma, beta, "1", "d", 2, False))
        placements = list(write_steps(gamma, beta, "2", "d", 9, False))
        assert len(placements) == 3
        # Each choice inserts directly after its anchor.
        for _a, anchor, g2, _b2 in placements:
            new = g2.thread_view("2", "d")
            between = [
                op
                for op in g2.ops_on("d")
                if anchor.ts < op.ts < new.ts
            ]
            assert between == []

    def test_covered_anchor_excluded(self, states):
        gamma, beta = states
        init_op = gamma.last_op("d")
        _a, _w, gamma2, beta2 = the(
            update_steps(gamma, beta, "1", "d", 0, lambda m: m + 1)
        )
        # Thread 2 cannot place a write directly after the covered init.
        anchors = [w for _a, w, _g, _b in write_steps(gamma2, beta2, "2", "d", 9, False)]
        assert init_op not in anchors


class TestReadRule:
    def test_relaxed_read_moves_only_that_variable(self, states):
        gamma, beta = states
        _a, _w, gamma1, _ = the(write_steps(gamma, beta, "1", "d", 5, False))
        new = gamma1.thread_view("1", "d")
        steps = {
            w.ts: (a, g2) for a, w, g2, _b in read_steps(gamma1, beta, "2", "d", False)
        }
        assert len(steps) == 2  # init and the new write
        a, g2 = steps[new.ts]
        assert a.val == 5
        assert g2.thread_view("2", "d") == new
        # f's view unchanged by reading d.
        assert g2.thread_view("2", "f") == gamma1.thread_view("2", "f")

    def test_acquiring_read_of_relaxed_write_does_not_sync(self, states):
        gamma, beta = states
        _a, _w, gamma1, _ = the(write_steps(gamma, beta, "1", "d", 5, False))
        _a2, _w2, gamma2, _ = the(write_steps(gamma1, beta, "1", "f", 1, False))
        fnew = gamma2.thread_view("1", "f")
        # Thread 2 acquiring-reads f = 1 (a relaxed write): no transfer of
        # thread 1's view of d.
        for a, w, g2, _b in read_steps(gamma2, beta, "2", "f", True):
            if w == fnew:
                assert g2.thread_view("2", "d").ts == Fraction(0)

    def test_acquiring_read_of_releasing_write_syncs(self, states):
        gamma, beta = states
        _a, _w, gamma1, _ = the(write_steps(gamma, beta, "1", "d", 5, False))
        dnew = gamma1.thread_view("1", "d")
        _a2, _w2, gamma2, _ = the(write_steps(gamma1, beta, "1", "f", 1, True))
        fnew = gamma2.thread_view("1", "f")
        for a, w, g2, _b in read_steps(gamma2, beta, "2", "f", True):
            if w == fnew:
                # Thread 2's view of d jumps to thread 1's write.
                assert g2.thread_view("2", "d") == dnew

    def test_relaxed_read_of_releasing_write_does_not_sync(self, states):
        gamma, beta = states
        _a, _w, gamma1, _ = the(write_steps(gamma, beta, "1", "d", 5, False))
        _a2, _w2, gamma2, _ = the(write_steps(gamma1, beta, "1", "f", 1, True))
        fnew = gamma2.thread_view("1", "f")
        for a, w, g2, _b in read_steps(gamma2, beta, "2", "f", False):
            if w == fnew:
                assert g2.thread_view("2", "d").ts == Fraction(0)

    def test_forbid_filter(self, states):
        # CAS failure: a relaxed read of any observable value ≠ u.
        gamma, beta = states
        _a, _w, gamma1, _ = the(write_steps(gamma, beta, "1", "d", 5, False))
        vals = [
            a.val
            for a, _w, _g, _b in read_steps(
                gamma1, beta, "2", "d", False, forbid=5
            )
        ]
        assert vals == [0]

    def test_forbid_none_is_a_real_value(self, states):
        # The sentinel default means "no filter": forbidding the value
        # ``None`` must filter reads of None, not disable filtering.
        gamma, beta = states
        _a, _w, gamma1, _ = the(write_steps(gamma, beta, "1", "d", None, False))
        vals = [
            a.val
            for a, _w, _g, _b in read_steps(
                gamma1, beta, "2", "d", False, forbid=None
            )
        ]
        assert vals == [0]


class TestUpdateRule:
    def test_update_covers_and_reads_and_writes(self, states):
        gamma, beta = states
        init_op = gamma.last_op("d")
        action, w, gamma2, _b = the(
            update_steps(gamma, beta, "1", "d", 0, lambda m: m + 1)
        )
        assert action.kind == "updRA"
        assert action.rdval == 0 and action.val == 1
        assert w == init_op
        assert init_op in gamma2.cvd
        new = gamma2.thread_view("1", "d")
        assert new.act == action

    def test_expect_filter_blocks(self, states):
        gamma, beta = states
        assert list(update_steps(gamma, beta, "1", "d", 7, lambda m: m)) == []

    def test_two_updates_chain(self, states):
        gamma, beta = states
        _a, _w, gamma1, _ = the(
            update_steps(gamma, beta, "1", "d", None, lambda m: m + 1)
        )
        # Second update (by thread 2) must read the first update, not init.
        action, w, gamma2, _b = the(
            update_steps(gamma1, beta, "2", "d", None, lambda m: m + 1)
        )
        assert action.rdval == 1 and action.val == 2
        assert w.act.kind == "updRA"

    def test_update_of_releasing_write_syncs_context_view(self, states):
        gamma, beta = states
        # Thread 1 writes d := 5 then releases f := 1; thread 2's CAS on f
        # acquires thread 1's view of d.
        _a, _w, gamma1, _ = the(write_steps(gamma, beta, "1", "d", 5, False))
        dnew = gamma1.thread_view("1", "d")
        _a2, _w2, gamma2, _ = the(write_steps(gamma1, beta, "1", "f", 1, True))
        steps = [
            (a, g2)
            for a, w, g2, _b in update_steps(gamma2, beta, "2", "f", 1, lambda m: 9)
        ]
        assert len(steps) == 1
        _a3, g3 = steps[0]
        assert g3.thread_view("2", "d") == dnew

    def test_update_mview_includes_itself(self, states):
        gamma, beta = states
        _a, _w, gamma2, _b = the(
            update_steps(gamma, beta, "1", "d", 0, lambda m: m + 1)
        )
        new = gamma2.thread_view("1", "d")
        assert gamma2.mview[new]["d"] == new
