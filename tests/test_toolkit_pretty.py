"""Tests for the high-level toolkit and the pretty printers."""

import pytest

from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.semantics.config import initial_config
from repro.semantics.explore import explore
from repro.toolkit import (
    default_lock_battery,
    verify_lock_implementation,
)
from repro.util.pretty import (
    format_component,
    format_config,
    format_locals,
    format_outcomes,
)
from tests.conftest import mp_relaxed, seqlock_client


class TestVerifyLockImplementation:
    @pytest.mark.parametrize(
        "fill,lib_vars",
        [
            (seqlock_fill, SEQLOCK_VARS),
            (ticketlock_fill, TICKETLOCK_VARS),
            (spinlock_fill, SPINLOCK_VARS),
        ],
        ids=["seqlock", "ticketlock", "spinlock"],
    )
    def test_correct_locks_pass(self, fill, lib_vars):
        report = verify_lock_implementation(
            fill, lib_vars, check_traces=False
        )
        assert report.ok
        assert len(report.verdicts) == len(default_lock_battery())
        assert "PASS" in report.describe()

    def test_broken_lock_fails_with_report(self):
        def broken(obj, method, dest=None):
            if method == "acquire":
                return A.LibBlock(
                    A.do_until(A.Cas("_b", "lk", Lit(0), Lit(1)), Reg("_b"))
                )
            return A.LibBlock(A.Write("lk", Lit(0)))

        report = verify_lock_implementation(broken, {"lk": 0})
        assert not report.ok
        assert "FAIL" in report.describe()
        assert any(not v.simulation.found for v in report.verdicts)

    def test_trace_confirmation_included(self):
        report = verify_lock_implementation(
            spinlock_fill, SPINLOCK_VARS, check_traces=True
        )
        assert report.ok
        assert all(v.traces is not None and v.traces.refines for v in report.verdicts)

    def test_custom_battery(self):
        from repro.litmus.clients import lock_client

        report = verify_lock_implementation(
            spinlock_fill,
            SPINLOCK_VARS,
            battery=[("only-readers", lock_client, {})],
            check_traces=False,
        )
        assert report.ok
        assert len(report.verdicts) == 1
        assert report.verdicts[0].client == "only-readers"


class TestPrettyPrinting:
    def test_format_component_shows_mo_chains(self):
        p = mp_relaxed()
        result = explore(p)
        cfg = result.terminals[0]
        text = format_component(cfg.gamma, "client")
        assert "client:" in text
        assert "d:" in text and "f:" in text
        assert "view[1]" in text and "view[2]" in text

    def test_format_component_marks_covered(self):
        from repro.lang.program import Program, Thread

        p = Program(
            threads={"1": Thread(A.Fai("r", "x"))}, client_vars={"x": 0}
        )
        result = explore(p)
        (terminal,) = result.terminals
        text = format_component(terminal.gamma)
        assert "†" in text

    def test_format_config(self):
        p = seqlock_client()
        cfg = initial_config(p)
        text = format_config(p, cfg)
        assert "pc1 = 1" in text
        assert "client γ" in text and "library β" in text
        assert "glb" in text

    def test_format_config_terminal_flag(self):
        p = mp_relaxed()
        result = explore(p)
        text = format_config(p, result.terminals[0])
        assert "[terminal]" in text

    def test_format_locals_empty(self):
        p = mp_relaxed()
        text = format_locals(initial_config(p))
        assert "(empty)" in text

    def test_format_outcomes(self):
        p = mp_relaxed()
        outcomes = explore(p).terminal_locals(("2", "r1"), ("2", "r2"))
        text = format_outcomes(outcomes, (("2", "r1"), ("2", "r2")))
        assert "2.r1" in text
        assert len(text.splitlines()) == 2 + len(outcomes)
