"""Catalog-wide static-analysis contracts (issue satellite: the whole
litmus catalog and examples corpus is lint-clean or explicitly
annotated).

Three contracts:

* every catalog entry's analyser verdict equals its committed
  ``expect_lint`` annotation — a behaviour pin, so detector changes
  must consciously re-annotate;
* the differential soundness direction: whenever the static detector
  reports no race, exhaustive exploration finds no reachable
  unsynchronised conflict either (the opposite direction may disagree —
  that conservatism is why races are warnings, never errors);
* no program anywhere in the shipped corpus (catalog, figures,
  examples) carries an error-severity finding.
"""

import pytest

from repro.__main__ import lint_targets
from repro.analysis import analyse_program, operational_races
from repro.analysis.races import RACE
from repro.litmus.catalog import LITMUS_TESTS

_BY_NAME = {t.name: t for t in LITMUS_TESTS}


class TestCatalogAnnotations:
    @pytest.mark.parametrize("name", sorted(_BY_NAME))
    def test_expect_lint_matches_analyser(self, name):
        test = _BY_NAME[name]
        report = analyse_program(test.build())
        assert report.codes() == test.expect_lint, (
            f"{name}: analyser found {sorted(report.codes())}, catalog "
            f"pins {sorted(test.expect_lint)} — re-annotate expect_lint "
            "if the detector change is intentional"
        )

    def test_some_entries_are_clean(self):
        # Guard against an annotation sweep that blankets everything.
        clean = [t.name for t in LITMUS_TESTS if not t.expect_lint]
        assert len(clean) >= 10

    def test_awaiting_mp_is_clean_and_relaxed_mp_is_racy(self):
        # MP-await-RA spins on the flag, so the data read is ordered;
        # MP-RA reads the flag once — if it misses, the data read runs
        # concurrently with the producer's write, a genuine race.
        assert _BY_NAME["MP-await-RA"].expect_lint == frozenset()
        assert RACE in _BY_NAME["MP-RA"].expect_lint
        assert RACE in _BY_NAME["MP-relaxed"].expect_lint


class TestDifferentialAgreement:
    @pytest.mark.parametrize("name", sorted(_BY_NAME))
    def test_static_race_free_implies_operational_race_free(self, name):
        test = _BY_NAME[name]
        if RACE in test.expect_lint:
            pytest.skip("statically racy: conservatism allowed")
        program = test.build()
        report = analyse_program(program)
        assert RACE not in report.codes()
        assert operational_races(program) == [], (
            f"{name}: static detector says race-free but exploration "
            "reaches an unsynchronised conflict — the detector is "
            "unsound on this shape"
        )


class TestCorpusSeverity:
    def test_no_error_findings_anywhere(self):
        offenders = {}
        for label, program in lint_targets():
            report = analyse_program(program)
            if report.errors:
                offenders[label] = [d.format() for d in report.errors]
        assert not offenders, offenders

    def test_corpus_includes_examples_and_figures(self):
        labels = [label for label, _ in lint_targets()]
        assert any(label.startswith("examples/") for label in labels)
        assert any(label.startswith("figures/") for label in labels)
        assert len(labels) >= 35
