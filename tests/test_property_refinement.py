"""Property-based differential testing of the lock implementations.

Hypothesis generates random client critical sections; instantiating the
same client with the abstract lock and with each implementation must
produce identical terminal client outcomes (a consequence of contextual
refinement in both directions for these total, deadlock-free clients —
stronger than refinement alone, and exactly what a user swapping a lock
implementation expects to observe).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.litmus.clients import abstract_fill
from repro.objects.lock import AbstractLock
from repro.semantics.explore import explore

VARS = ("x", "y")
IMPLS = [
    (seqlock_fill, SEQLOCK_VARS),
    (ticketlock_fill, TICKETLOCK_VARS),
    (spinlock_fill, SPINLOCK_VARS),
]


@st.composite
def critical_sections(draw, regs):
    """A short critical-section body: reads and writes over client vars."""
    n = draw(st.integers(min_value=1, max_value=2))
    cmds = []
    for _ in range(n):
        var = draw(st.sampled_from(VARS))
        if draw(st.booleans()):
            cmds.append(A.Write(var, Lit(draw(st.integers(1, 3)))))
        else:
            cmds.append(A.Read(draw(st.sampled_from(regs)), var))
    return A.seq(*cmds)


@st.composite
def lock_clients(draw):
    """Two threads, each: acquire; <random CS>; release.

    Returns a builder parameterised by the fill, so the same random
    client is instantiated for every lock.
    """
    cs1 = draw(critical_sections(regs=("a", "b")))
    cs2 = draw(critical_sections(regs=("c", "e")))

    def build(fill, objects=(), lib_vars=None):
        t1 = A.seq(fill("l", "acquire", None), cs1, fill("l", "release", None))
        t2 = A.seq(fill("l", "acquire", None), cs2, fill("l", "release", None))
        return Program(
            threads={"1": Thread(t1), "2": Thread(t2)},
            client_vars={v: 0 for v in VARS},
            lib_vars=dict(lib_vars or {}),
            objects=tuple(objects),
            init_locals={
                "1": {"a": -1, "b": -1},
                "2": {"c": -1, "e": -1},
            },
        )

    return build


REGS = (("1", "a"), ("1", "b"), ("2", "c"), ("2", "e"))


@settings(max_examples=15, deadline=None)
@given(build=lock_clients())
def test_implementations_preserve_client_outcomes(build):
    afill, objs = abstract_fill(lambda: AbstractLock("l"))
    abstract = build(afill, objects=objs)
    expected = explore(abstract).terminal_locals(*REGS)
    for fill, lib_vars in IMPLS:
        concrete = build(fill, lib_vars=lib_vars)
        result = explore(concrete)
        assert not result.stuck, "implementation introduced a deadlock"
        got = result.terminal_locals(*REGS)
        assert got == expected, (
            f"{fill.__name__} changed client outcomes: "
            f"{sorted(got, key=repr)} vs {sorted(expected, key=repr)}"
        )


@settings(max_examples=8, deadline=None)
@given(build=lock_clients())
def test_simulation_across_random_clients(build):
    """The simulation game succeeds on randomly generated clients, not
    just the hand-picked battery (Definition 7 quantifies over all
    clients; this samples the space)."""
    from repro.refinement.simulation import find_forward_simulation

    afill, objs = abstract_fill(lambda: AbstractLock("l"))
    abstract = build(afill, objects=objs)
    concrete = build(spinlock_fill, lib_vars=SPINLOCK_VARS)
    assert find_forward_simulation(concrete, abstract).found
