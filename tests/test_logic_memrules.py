"""Tests for the read/write/update proof rules (paper §5.2 prior work)."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.logic.memrules import (
    check_fai_self,
    check_mp_read,
    check_possible_read,
    check_read_self,
    check_read_stable,
    check_write_self,
    check_write_stable,
)
from repro.logic.triples import collect_universe
from tests.conftest import mp_ra, mp_relaxed


@pytest.fixture(scope="module")
def groups():
    # Universes from both MP variants plus a write-racing program.
    t1 = A.seq(A.Write("d", Lit(5)), A.Write("f", Lit(1)))
    t2 = A.seq(A.Write("d", Lit(3)), A.Read("r", "f"))
    racy = Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"d": 0, "f": 0},
    )
    return collect_universe([mp_relaxed(), mp_ra(), racy])


def all_valid(check, groups, *args_fn):
    """Run a rule over every group; return aggregated validity."""
    results = []
    for program, universe in groups:
        results.append(check(program, universe))
    return results


class TestSelfRules:
    def test_write_self(self, groups):
        for program, universe in groups:
            for t in program.tids:
                for old in (0, 5):
                    for release in (False, True):
                        result = check_write_self(
                            program, universe, t, "d", old, 9, release=release
                        )
                        assert result.valid

    def test_write_self_non_vacuous(self, groups):
        program, universe = groups[0]
        assert check_write_self(program, universe, "1", "d", 0, 9).checked > 0

    def test_unsound_variant_caught(self, groups):
        """{true} x := v {[x = v]_t} is falsified: stale-view writers can
        place their write mid-modification-order."""
        from repro.logic.memrules import check_write_self_unsound_variant

        # The racy universe (two writers to d) exhibits stale views.
        program, universe = groups[2]
        result = check_write_self_unsound_variant(
            program, universe, "2", "d", 9
        )
        assert not result.valid

    def test_read_self(self, groups):
        for program, universe in groups:
            for t in program.tids:
                for v in (0, 5):
                    result = check_read_self(program, universe, t, "d", v)
                    assert result.valid

    def test_read_self_non_vacuous(self, groups):
        program, universe = groups[0]
        assert check_read_self(program, universe, "1", "d", 5).checked > 0

    def test_fai_self(self, groups):
        for program, universe in groups:
            result = check_fai_self(program, universe, "1", "d", 0)
            assert result.valid and result.checked > 0


class TestMpRead:
    def test_valid_everywhere(self, groups):
        for program, universe in groups:
            for t in program.tids:
                result = check_mp_read(program, universe, t, "f", 1, "d", 5)
                assert result.valid

    def test_non_vacuous_on_ra_program(self, groups):
        # On the RA message-passing program, the conditional pre is
        # genuinely satisfied in reachable states.
        program, universe = groups[1]
        result = check_mp_read(program, universe, "2", "f", 1, "d", 5)
        assert result.checked > 0 and result.applied > 0

    def test_rule_fails_for_relaxed_read(self, groups):
        """Control: replacing the acquiring read with a relaxed one
        breaks the rule — synchronisation is what makes it sound."""
        from repro.assertions.observability import ConditionalValue, DefiniteValue
        from repro.lang import ast as AA
        from repro.logic.memrules import RREG, _local_eq
        from repro.logic.triples import check_atomic_triple

        program, universe = groups[1]
        pre = ConditionalValue("f", 1, "d", 5, "2")
        post = _local_eq("2", 1) >> DefiniteValue("d", 5, "2")
        result = check_atomic_triple(
            program, universe, pre, AA.Read(RREG, "f", acquire=False), "2", post
        )
        assert not result.valid


class TestStability:
    def test_write_stable_other_variable(self, groups):
        for program, universe in groups:
            result = check_write_stable(
                program, universe, "1", "2", "d", 0, "f", 7
            )
            assert result.valid and result.checked > 0

    def test_read_stable(self, groups):
        for program, universe in groups:
            for read_var in ("d", "f"):
                result = check_read_stable(
                    program, universe, "1", "2", "d", 0, read_var
                )
                assert result.valid

    def test_write_same_variable_not_stable(self, groups):
        """Control: a write to the *same* variable by another thread
        does invalidate a definite observation."""
        program, universe = groups[0]
        from repro.assertions.observability import DefiniteValue
        from repro.logic.triples import check_atomic_triple

        stable = DefiniteValue("d", 0, "1")
        result = check_atomic_triple(
            program, universe, stable, A.Write("d", Lit(9)), "2", stable
        )
        assert not result.valid


class TestPossibleRead:
    def test_possible_observations_realisable(self, groups):
        for program, universe in groups:
            for v in (0, 5):
                report = check_possible_read(program, universe, "2", "d", v)
                assert report["ok"]

    def test_non_vacuous(self, groups):
        program, universe = groups[0]
        report = check_possible_read(program, universe, "2", "d", 5)
        assert report["checked"] > 0
