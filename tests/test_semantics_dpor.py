"""DPOR layer unit + property suite (:mod:`repro.semantics.dpor`).

The load-bearing property is the *independence oracle*: whenever
:func:`~repro.semantics.dpor.independence` classifies an enabled pair as
``strong``, executing the pair in either order must close a diamond of
**bit-identical** configurations; ``canonical`` pairs must close it up
to the canonical rank-encoding (equal :func:`canonical_key`).  The
hypothesis suite below checks this differentially over random programs,
comparing *label-grouped successor sets* rather than matching single
transitions — a write's action label does not pin its timestamp
placement, so the sound diamond statement is set-level: every
``a``-then-``b``-labelled outcome has an equal ``b``-then-``a``-labelled
counterpart and vice versa.

The unit tests pin the conservative footprint analysis, the conflict
partition, the persistent-set selection's fallbacks, and the registered
strategy's composability flags.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.semantics.canon import canonical_key
from repro.semantics.config import initial_config
from repro.semantics.dpor import (
    CANONICAL,
    DEPENDENT,
    STRONG,
    _partition,
    dpor_successors,
    footprints_conflict,
    independence,
    thread_footprint,
)
from repro.semantics.reduce import (
    close_config,
    get_strategy,
    reduced_successors,
)


# -- footprints --------------------------------------------------------------


class TestFootprints:
    def test_atomic_commands(self):
        reads, writes, top = thread_footprint(A.Read("r1", "x"))
        assert reads == {("C", "x")} and not writes and not top
        reads, writes, top = thread_footprint(A.Write("x", Lit(1)))
        assert writes == {("C", "x")} and not reads and not top
        for cmd in (A.Cas("r1", "x", Lit(0), Lit(1)), A.Fai("r1", "x")):
            reads, writes, top = thread_footprint(cmd)
            assert reads == writes == {("C", "x")} and not top

    def test_structural_union(self):
        cmd = A.seq(
            A.Write("x", Lit(1)),
            A.If(Reg("r1").eq(0), A.Read("r1", "y"), A.Read("r1", "z")),
            A.While(Reg("r1").eq(0), A.Read("r1", "f")),
        )
        reads, writes, top = thread_footprint(cmd)
        assert writes == {("C", "x")}
        assert reads == {("C", "y"), ("C", "z"), ("C", "f")}
        assert not top

    def test_lib_block_components(self):
        cmd = A.LibBlock(A.Write("l", Lit(1)), public_regs=frozenset())
        _reads, writes, top = thread_footprint(cmd)
        assert writes == {("L", "l")} and not top

    def test_method_call_is_top(self):
        fp = thread_footprint(A.MethodCall("r1", "s", "push", Lit(1)))
        assert fp[2]  # ⊤
        assert footprints_conflict(fp, thread_footprint(A.Read("r1", "x")))

    def test_local_assign_is_empty(self):
        fp = thread_footprint(A.LocalAssign("r1", Lit(0)))
        assert fp == (frozenset(), frozenset(), False)
        assert not footprints_conflict(fp, fp)

    def test_conflict_requires_a_write(self):
        rx = thread_footprint(A.Read("r1", "x"))
        wx = thread_footprint(A.Write("x", Lit(1)))
        wy = thread_footprint(A.Write("y", Lit(1)))
        assert not footprints_conflict(rx, rx)  # read/read never conflicts
        assert footprints_conflict(rx, wx)
        assert footprints_conflict(wx, wx)
        assert not footprints_conflict(rx, wy)
        assert not footprints_conflict(wx, wy)


# -- conflict partition and persistent selection -----------------------------


def _two_disjoint_pairs():
    """Four threads, two independent message-passing pairs (x/f vs y/g)."""
    ra = dict(release=True)

    def producer(var, flag):
        return A.seq(
            A.Write(var, Lit(5)), A.Write(flag, Lit(1), release=True)
        )

    def consumer(var, flag):
        return A.seq(
            A.LocalAssign("r1", Lit(0)),
            A.While(Reg("r1").eq(0), A.Read("r1", flag, acquire=True)),
            A.Read("r2", var),
        )

    del ra
    return Program(
        threads={
            "1": Thread(producer("x", "f")),
            "2": Thread(consumer("x", "f")),
            "3": Thread(producer("y", "g")),
            "4": Thread(consumer("y", "g")),
        },
        client_vars={"x": 0, "f": 0, "y": 0, "g": 0},
    )


class TestPartition:
    def test_disjoint_pairs_split(self):
        program = _two_disjoint_pairs()
        cfg = close_config(program, initial_config(program))
        groups = sorted(sorted(g) for g in _partition(program, cfg))
        assert groups == [["1", "2"], ["3", "4"]]

    def test_shared_variable_joins(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Read("r1", "x")),
            },
            client_vars={"x": 0},
        )
        cfg = close_config(program, initial_config(program))
        assert len(_partition(program, cfg)) == 1

    def test_dpor_restricts_to_one_component(self):
        """On the split program the expansion stays inside one pair."""
        program = _two_disjoint_pairs()
        cfg = close_config(program, initial_config(program))
        pairs = dpor_successors(program, cfg, frozenset())
        tids = {tr.tid for tr, _sleep in pairs}
        assert tids <= {"1", "2"} or tids <= {"3", "4"}
        full = reduced_successors(program, cfg)
        assert len(pairs) < len(full)

    def test_single_component_full_expansion(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Fai("r1", "x")),
            },
            client_vars={"x": 0},
        )
        cfg = close_config(program, initial_config(program))
        pairs = dpor_successors(program, cfg, frozenset())
        assert len(pairs) == len(reduced_successors(program, cfg))
        # Conflicting siblings never put each other to sleep.
        assert all(sleep == frozenset() for _tr, sleep in pairs)


# -- the registered strategy -------------------------------------------------


class TestStrategy:
    def test_flags(self):
        strat = get_strategy("dpor")
        assert strat.name == "dpor"
        assert strat.fingerprint_token == "dpor-1"
        assert strat.closure_expansion
        assert strat.requires_canonical
        assert not strat.pipeline_safe
        assert strat.worker_safe
        assert strat.supports_witness_reexpansion
        assert strat.sleep_expand is dpor_successors
        assert "reduce.dpor.sleep_blocked" in strat.metric_names
        assert "reduce.dpor.persistent_expanded" in strat.metric_names

    def test_requires_canonical_enforced(self):
        from repro.engine.core import explore_sequential

        with pytest.raises(ValueError, match="canonical"):
            explore_sequential(
                _two_disjoint_pairs(), reduction="dpor", canonicalise=False
            )

    def test_counters_fire(self):
        from repro.engine.core import explore_sequential
        from repro.obs.metrics import Metrics

        m = Metrics()
        explore_sequential(
            _two_disjoint_pairs(), reduction="dpor", metrics=m
        )
        assert m.counters.get("reduce.dpor.persistent_expanded", 0) > 0


# -- independence oracle: differential diamond property ----------------------

VARS = ("x", "y", "z")


@st.composite
def atomic_commands(draw, regs=("r1", "r2")):
    kind = draw(
        st.sampled_from(["write", "writeR", "read", "readA", "cas", "fai"])
    )
    var = draw(st.sampled_from(VARS))
    reg = draw(st.sampled_from(regs))
    val = draw(st.integers(min_value=0, max_value=2))
    if kind == "write":
        return A.Write(var, Lit(val))
    if kind == "writeR":
        return A.Write(var, Lit(val), release=True)
    if kind == "read":
        return A.Read(reg, var)
    if kind == "readA":
        return A.Read(reg, var, acquire=True)
    if kind == "cas":
        return A.Cas(reg, var, Lit(val), Lit(val + 1))
    return A.Fai(reg, var)


@st.composite
def programs(draw):
    def thread():
        n = draw(st.integers(1, 3))
        return A.seq(*[draw(atomic_commands()) for _ in range(n)])

    threads = {
        str(i + 1): Thread(thread())
        for i in range(draw(st.integers(2, 3)))
    }
    return Program(
        threads=threads,
        client_vars={v: 0 for v in VARS},
        init_locals={
            tid: {"r1": 0, "r2": 0} for tid in threads
        },
    )


def _label(tr):
    return (tr.tid, tr.component, tr.action)


def _after(program, succs, first_label, second_label):
    """Targets reached by any ``first_label`` edge then any
    ``second_label`` edge.

    Both steps are grouped by label: an action label does not pin a
    write's timestamp placement, so the sound commutation statement —
    and the granularity sleep sets prune at, where a sleeping thread's
    *entire* enabled set was expanded from the sibling — is between the
    label-grouped outcome sets, not between single placements.
    """
    return [
        t2.target
        for t1 in succs
        if _label(t1) == first_label
        for t2 in reduced_successors(program, t1.target)
        if _label(t2) == second_label
    ]


def _check_diamond(program, succs, la, lb, verdict):
    ab = _after(program, succs, la, lb)
    ba = _after(program, succs, lb, la)
    if verdict == STRONG:
        # Bit-identical: every a-then-b outcome appears (dataclass
        # equality) among the b-then-a outcomes, and vice versa.
        assert all(any(x == y for y in ba) for x in ab), (la, lb)
        assert all(any(x == y for y in ab) for x in ba), (la, lb)
    else:
        ka = {canonical_key(program, x) for x in ab}
        kb = {canonical_key(program, x) for x in ba}
        assert ka == kb, (la, lb)


def _scan_diamonds(program, max_configs=150):
    """BFS the closed system, checking every independent enabled pair."""
    checked = 0
    init = close_config(program, initial_config(program))
    seen = {canonical_key(program, init)}
    frontier = [init]
    while frontier and len(seen) <= max_configs:
        cfg = frontier.pop()
        succs = reduced_successors(program, cfg)
        done = set()
        for i, a in enumerate(succs):
            for b in succs[i + 1:]:
                if a.tid == b.tid:
                    continue
                verdict = independence(a, b)
                assert verdict == independence(b, a)  # symmetric
                pair = frozenset((_label(a), _label(b)))
                if verdict != DEPENDENT and pair not in done:
                    done.add(pair)
                    _check_diamond(
                        program, succs, _label(a), _label(b), verdict
                    )
                    checked += 1
        for tr in succs:
            key = canonical_key(program, tr.target)
            if key not in seen:
                seen.add(key)
                frontier.append(tr.target)
    return checked


@settings(max_examples=40, deadline=None)
@given(p=programs())
def test_independent_pairs_commute(p):
    _scan_diamonds(p)


def test_mp_pair_diamonds_checked():
    """Sanity: the scan actually exercises independent pairs (a scan
    that never finds one would vacuously pass the property)."""
    assert _scan_diamonds(_two_disjoint_pairs()) > 0


class TestOracleTable:
    """Pin the classification table on hand-picked enabled pairs."""

    def _succs(self, program):
        cfg = close_config(program, initial_config(program))
        return cfg, reduced_successors(program, cfg)

    def test_same_location_write_write_dependent(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Write("x", Lit(2))),
            },
            client_vars={"x": 0},
        )
        _cfg, succs = self._succs(program)
        a = next(tr for tr in succs if tr.tid == "1")
        b = next(tr for tr in succs if tr.tid == "2")
        assert independence(a, b) == DEPENDENT

    def test_read_read_strong(self):
        program = Program(
            threads={
                "1": Thread(A.Read("r1", "x")),
                "2": Thread(A.Read("r1", "x")),
            },
            client_vars={"x": 0},
            init_locals={"1": {"r1": 0}, "2": {"r1": 0}},
        )
        _cfg, succs = self._succs(program)
        a = next(tr for tr in succs if tr.tid == "1")
        b = next(tr for tr in succs if tr.tid == "2")
        assert independence(a, b) == STRONG

    def test_disjoint_writes_same_component_canonical(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Write("y", Lit(2))),
            },
            client_vars={"x": 0, "y": 0},
        )
        _cfg, succs = self._succs(program)
        a = next(tr for tr in succs if tr.tid == "1")
        b = next(tr for tr in succs if tr.tid == "2")
        assert independence(a, b) == CANONICAL

    def test_write_and_disjoint_read_strong(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Read("r1", "y")),
            },
            client_vars={"x": 0, "y": 0},
            init_locals={"2": {"r1": 0}},
        )
        _cfg, succs = self._succs(program)
        a = next(tr for tr in succs if tr.tid == "1")
        b = next(tr for tr in succs if tr.tid == "2")
        assert independence(a, b) == STRONG

    def test_method_operations_dependent(self):
        from repro.objects.stack import AbstractStack

        program = Program(
            threads={
                "1": Thread(A.MethodCall("s", "pushR", arg=Lit(1))),
                "2": Thread(A.MethodCall("s", "pushR", arg=Lit(2))),
            },
            client_vars={},
            objects=(AbstractStack("s"),),
        )
        cfg = close_config(program, initial_config(program))
        succs = reduced_successors(program, cfg)
        meth = [
            tr
            for tr in succs
            if tr.action is not None and tr.action.kind == "meth"
        ]
        pairs = [
            (a, b)
            for i, a in enumerate(meth)
            for b in meth[i + 1:]
            if a.tid != b.tid
        ]
        assert pairs
        for a, b in pairs:
            assert independence(a, b) == DEPENDENT

# -- footprint modes, static disjointness, cache eviction --------------------

from repro.engine.core import explore_sequential  # noqa: E402
from repro.obs.metrics import Metrics, activate  # noqa: E402
from repro.semantics import dpor as dpor_mod  # noqa: E402
from repro.semantics.dpor import (  # noqa: E402
    FOOTPRINT_MODES,
    _static_disjoint_pairs,
    set_footprint_mode,
)


def _modal_pair():
    """Two threads on disjoint variables whose statically-dead branch
    arm (mode register preset by ``init_locals``) touches a shared
    ``z`` — whole-continuation footprints join them, phase-sensitive
    ones split them."""

    def body(var):
        return A.seq(
            A.Write(var, Lit(1)),
            A.If(Reg("m").eq(0), A.Write(var, Lit(2)), A.Write("z", Lit(1))),
        )

    return Program(
        threads={"1": Thread(body("x")), "2": Thread(body("y"))},
        client_vars={"x": 0, "y": 0, "z": 0},
        init_locals={"1": {"m": 0}, "2": {"m": 0}},
    )


class TestFootprintMode:
    def test_default_is_phase_and_previous_is_returned(self):
        previous = set_footprint_mode("whole")
        try:
            assert previous == "phase"
            assert set_footprint_mode("phase") == "whole"
        finally:
            set_footprint_mode("phase")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_footprint_mode("bogus")
        # A rejected call leaves the mode untouched.
        assert set_footprint_mode("phase") == "phase"
        assert set(FOOTPRINT_MODES) == {"phase", "whole"}

    def test_phase_refines_the_partition(self):
        program = _modal_pair()
        cfg = close_config(program, initial_config(program))
        previous = set_footprint_mode("whole")
        try:
            whole_groups = _partition(program, cfg)
            set_footprint_mode("phase")
            phase_groups = _partition(program, cfg)
        finally:
            set_footprint_mode(previous)
        assert len(whole_groups) == 1  # dead arm's z joins the threads
        assert sorted(sorted(g) for g in phase_groups) == [["1"], ["2"]]

    def test_modes_agree_on_terminals(self):
        program = _modal_pair()

        def run(mode):
            previous = set_footprint_mode(mode)
            try:
                return explore_sequential(program, reduction="dpor")
            finally:
                set_footprint_mode(previous)

        whole, phase = run("whole"), run("phase")

        def valuations(result):
            return {
                tuple(
                    sorted(
                        (tid, ls.items_sorted())
                        for tid, ls in cfg.locals.items()
                    )
                )
                for cfg in result.terminals
            }

        assert valuations(whole) == valuations(phase)
        assert phase.state_count <= whole.state_count


class TestStaticDisjoint:
    def test_detects_disjoint_pairs(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Write("y", Lit(1))),
                "3": Thread(A.Read("r1", "x")),
            },
            client_vars={"x": 0, "y": 0},
        )
        pairs = _static_disjoint_pairs(program)
        assert ("1", "2") in pairs and ("2", "3") in pairs
        assert ("1", "3") not in pairs

    def test_cached_per_program_object(self):
        program = _two_disjoint_pairs()
        first = _static_disjoint_pairs(program)
        assert _static_disjoint_pairs(program) is first

    def test_conflicting_program_has_no_fast_path(self):
        program = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Read("r1", "x")),
            },
            client_vars={"x": 0},
        )
        assert _static_disjoint_pairs(program) == frozenset()

    def test_skip_counter_reported_to_active_metrics(self):
        program = _two_disjoint_pairs()
        cfg = close_config(program, initial_config(program))
        collected = Metrics()
        previous = activate(collected)
        try:
            _partition(program, cfg)
        finally:
            activate(previous)
        assert collected.counters.get("reduce.dpor.static_disjoint", 0) >= 1

    def test_strategy_declares_the_metric(self):
        strat = get_strategy("dpor")
        assert "reduce.dpor.static_disjoint" in strat.metric_names


class TestFootprintCacheEviction:
    """Satellite regression: the memo table sheds its *oldest half* at
    the bound instead of clearing wholesale — the newest entries (the
    live exploration's working set) must survive an overflow."""

    def test_oldest_half_evicted_newest_survive(self, monkeypatch):
        monkeypatch.setattr(dpor_mod, "_FOOTPRINTS", {})
        monkeypatch.setattr(dpor_mod, "_FOOTPRINTS_MAX", 8)
        nodes = [A.Write(f"v{i}", Lit(i)) for i in range(9)]
        for node in nodes[:8]:
            thread_footprint(node)
        assert len(dpor_mod._FOOTPRINTS) == 8
        thread_footprint(nodes[8])  # overflow triggers eviction
        kept = {node.var for node, _lib in dpor_mod._FOOTPRINTS}
        assert kept == {"v4", "v5", "v6", "v7", "v8"}

    def test_survivors_still_hit(self, monkeypatch):
        monkeypatch.setattr(dpor_mod, "_FOOTPRINTS", {})
        monkeypatch.setattr(dpor_mod, "_FOOTPRINTS_MAX", 4)
        nodes = [A.Write(f"v{i}", Lit(i)) for i in range(5)]
        for node in nodes:
            thread_footprint(node)
        survivor_fp = dpor_mod._FOOTPRINTS[(nodes[4], False)]
        assert thread_footprint(nodes[4]) is survivor_fp
