"""Tests for the Lemma 3 rule harness.

All six rules must validate over the client universes for feasible
release indices; the degenerate ``u = 0`` instantiation of rule (5)
documents the implicit side condition (``release_0`` cannot exist — the
index-0 operation is ``init`` — so the conditional precondition is
vacuous while ``v = 1`` remains attainable by synchronising with
``init_0``).
"""

import pytest

from repro.litmus.clients import (
    abstract_fill,
    lock_client,
    lock_client_one_sided,
)
from repro.logic.lockrules import (
    check_all_rules,
    check_rule1,
    check_rule2,
    check_rule3,
    check_rule4,
    check_rule5,
    check_rule6,
)
from repro.logic.triples import collect_universe
from repro.objects.lock import AbstractLock


def _mk(builder, **kw):
    fill, objs = abstract_fill(lambda: AbstractLock("l"))
    return builder(fill, objects=objs, **kw)


@pytest.fixture(scope="module")
def groups():
    programs = [
        _mk(lock_client),
        _mk(lock_client, readers=False),
        _mk(lock_client_one_sided),
    ]
    return collect_universe(programs)


class TestIndividualRules:
    def test_rule1(self, groups):
        program, universe = groups[0]
        for t in ("1", "2"):
            assert check_rule1(program, universe, "l", t, 2).valid

    def test_rule2_both_methods(self, groups):
        program, universe = groups[0]
        for m in ("acquire", "release"):
            assert check_rule2(program, universe, "l", "1", 2, m).valid

    def test_rule3(self, groups):
        program, universe = groups[0]
        result = check_rule3(program, universe, "l", "2", 2)
        assert result.valid
        assert result.checked > 0  # non-vacuous: [l.release_2]_2 reachable

    def test_rule4_stability(self, groups):
        program, universe = groups[0]
        result = check_rule4(
            program, universe, "l", "1", "2", "x", 0, "acquire"
        )
        assert result.valid
        assert result.checked > 0

    def test_rule5(self, groups):
        program, universe = groups[0]
        result = check_rule5(program, universe, "l", "2", 2, "x", 5)
        assert result.valid

    def test_rule6(self, groups):
        program, universe = groups[0]
        result = check_rule6(program, universe, "l", "1", "2", 2, "x", 5)
        assert result.valid
        assert result.checked > 0

    def test_rule5_u0_caveat(self, groups):
        """u = 0 lies outside the rule schema: release_0 cannot exist, so
        the precondition is vacuous while v = 1 is attainable.  The
        harness (correctly) reports the instance invalid, documenting
        the side condition the paper leaves implicit."""
        program, universe = groups[0]
        result = check_rule5(program, universe, "l", "1", 0, "x", 5)
        assert not result.valid

    def test_rule5_odd_u_vacuous(self, groups):
        """Odd u: v = u + 1 would be an even acquire index, which never
        occurs (acquires take odd indices), so the rule holds vacuously."""
        program, universe = groups[0]
        assert check_rule5(program, universe, "l", "1", 1, "x", 5).valid


class TestAllRules:
    def test_everything_valid_on_feasible_indices(self, groups):
        reports = check_all_rules(groups, indices=(2, 4), values=(0, 5))
        for name, report in reports.items():
            assert report.valid, f"{name} failed: {report.failures[:1]}"

    def test_instance_counts(self, groups):
        reports = check_all_rules(groups, indices=(2,), values=(5,))
        assert all(r.instances > 0 for r in reports.values())

    def test_non_vacuity(self, groups):
        # The universes must actually exercise the preconditions.
        reports = check_all_rules(groups, indices=(2, 4), values=(0, 5))
        for name in ("rule1", "rule2", "rule4", "rule5", "rule6"):
            assert reports[name].checked > 0, f"{name} is vacuous"
