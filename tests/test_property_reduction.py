"""Differential properties: reduced vs unreduced exploration.

``reduction="closure"`` (ε-closure + covering-read prune,
:mod:`repro.semantics.reduce`) must be *verdict-invisible*: over the
full litmus catalog, the five abstract-object/lock client programs and
hypothesis-generated random programs (with the silent-step constructs —
local assignments, branches, polling loops — the reduction targets),
reduced and unreduced exploration must agree on

* the terminal-outcome set (all thread registers, compared exactly —
  the ε-closure keeps terminal configurations bit-for-bit, and the
  covering-read prune drops a terminal only when a kept one carries
  identical continuations and locals);
* deadlock existence (``stuck`` non-emptiness);
* ``reachable``/``assert_invariant`` verdicts for register-level
  properties of terminal configurations;
* refinement-check results — the checkers request ``reduction="off"``
  internally, so routing them through a closure-configured engine must
  change nothing;

sequentially and through the sharded parallel backend, whose closure
counts must match the sequential ones exactly.

``reduction="dpor"`` (sleep sets + persistent sets,
:mod:`repro.semantics.dpor`) is held to the same verdict bar — equal
terminal-valuation sets, stuck-existence and reachability verdicts —
while storing *at most* as many states as closure (it explores a
subset of the closed macro-step system).  Its parallel leg runs on the
rounds backend only, and asserts verdict parity without state-count
equality: sleep sets depend on discovery order, so worker counts may
legitimately store slightly different (always sound) state sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.engine.core import ExplorationEngine, explore_sequential
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.litmus.catalog import LITMUS_TESTS
from repro.semantics.explore import assert_invariant, reachable
from repro.util.errors import VerificationError
from tests.conftest import (
    abstract_lock_client,
    seqlock_client,
    spinlock_client,
    stack_program,
    ticketlock_client,
)

OBJECT_CLIENTS = (
    ("abstract-lock", abstract_lock_client),
    ("seqlock", seqlock_client),
    ("ticketlock", ticketlock_client),
    ("spinlock", spinlock_client),
    ("stack-mp", lambda: stack_program(sync=True)),
)


def _terminal_valuations(result):
    return {
        tuple(
            sorted((tid, ls.items_sorted()) for tid, ls in cfg.locals.items())
        )
        for cfg in result.terminals
    }


def assert_reduction_invisible(program: Program, max_states: int = 500_000):
    """All registered policies agree on everything a verdict consumes."""
    off = explore_sequential(program, max_states=max_states)
    red = explore_sequential(
        program, max_states=max_states, reduction="closure"
    )
    assert not off.truncated and not red.truncated
    assert _terminal_valuations(off) == _terminal_valuations(red)
    assert bool(off.stuck) == bool(red.stuck)
    # Closure only ever shrinks the stored set (every closed state is an
    # unreduced reachable state).
    assert red.state_count <= off.state_count
    assert red.edge_count <= off.edge_count
    dpor = explore_sequential(
        program, max_states=max_states, reduction="dpor"
    )
    assert not dpor.truncated
    assert _terminal_valuations(dpor) == _terminal_valuations(off)
    assert bool(dpor.stuck) == bool(off.stuck)
    # dpor explores a subset of the closed macro-step system (sleep and
    # persistent sets only ever remove expansions), so its stored set is
    # bounded by closure's.  Edge counts are *not* compared: sleep-set
    # shrink re-expansions may recount a state's outgoing transitions.
    assert dpor.state_count <= red.state_count
    return off, red


@pytest.mark.parametrize(
    "test", LITMUS_TESTS, ids=[t.name for t in LITMUS_TESTS]
)
def test_litmus_catalog_reduction_invisible(test):
    off, red = assert_reduction_invisible(test.build())
    # And the litmus verdict itself: identical projected outcome sets.
    assert off.terminal_locals(*test.regs) == red.terminal_locals(*test.regs)
    assert off.terminal_locals(*test.regs) == set(test.allowed)


@pytest.mark.parametrize(
    "build", [b for _, b in OBJECT_CLIENTS], ids=[n for n, _ in OBJECT_CLIENTS]
)
def test_object_clients_reduction_invisible(build):
    assert_reduction_invisible(build())


class TestVerdictParity:
    """reachable/assert_invariant verdicts for terminal-state
    properties are identical across policies."""

    def test_reachable_terminal_witness(self):
        program = LITMUS_TESTS[0].build()  # MP-relaxed: (1, 0) reachable

        def stale(cfg):
            return (
                cfg.is_terminal()
                and cfg.local("2", "r1") == 1
                and cfg.local("2", "r2") == 0
            )

        for reduction in ("off", "closure", "dpor"):
            witness = reachable(program, stale, reduction=reduction)
            assert witness is not None and stale(witness)

    def test_reachable_terminal_unreachable(self):
        by_name = {t.name: t for t in LITMUS_TESTS}
        program = by_name["MP-await-RA"].build()

        def stale(cfg):
            return cfg.is_terminal() and cfg.local("2", "r2") == 0

        for reduction in ("off", "closure", "dpor"):
            assert reachable(program, stale, reduction=reduction) is None

    def test_assert_invariant_parity(self):
        by_name = {t.name: t for t in LITMUS_TESTS}
        program = by_name["MP-ring-2-RA"].build()

        def published(cfg):
            if not cfg.is_terminal():
                return True
            return (
                cfg.local("1", "r0") == 5 and cfg.local("2", "r1") == 5
            )

        for reduction in ("off", "closure", "dpor"):
            assert_invariant(program, published, reduction=reduction)

        def impossible(cfg):
            return not cfg.is_terminal()

        for reduction in ("off", "closure", "dpor"):
            with pytest.raises(VerificationError):
                assert_invariant(program, impossible, reduction=reduction)


class TestParallelParity:
    @pytest.mark.parametrize(
        "name", ["MP-ring-2-RA", "MP-2-producers", "IRIW-await-RA"]
    )
    def test_parallel_closure_matches_sequential(self, name):
        test = {t.name: t for t in LITMUS_TESTS}[name]
        program = test.build()
        seq = explore_sequential(program, reduction="closure")
        par = ExplorationEngine(workers=2, reduction="closure").explore(
            program
        )
        assert par.state_count == seq.state_count
        assert par.edge_count == seq.edge_count
        assert _terminal_valuations(par) == _terminal_valuations(seq)
        assert par.terminal_locals(*test.regs) == set(test.allowed)

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize(
        "name", ["MP-ring-2-RA", "MP-2-producers", "IRIW-await-RA"]
    )
    def test_parallel_dpor_verdict_parity(self, name, workers):
        """dpor through the rounds backend: verdict parity with the
        sequential engine, state count bounded by sequential closure.
        State-count *equality* across worker counts is deliberately not
        asserted — sleep sets depend on discovery order."""
        test = {t.name: t for t in LITMUS_TESTS}[name]
        program = test.build()
        seq = explore_sequential(program, reduction="dpor")
        closure = explore_sequential(program, reduction="closure")
        par = ExplorationEngine(
            workers=workers, reduction="dpor", backend="rounds"
        ).explore(program)
        assert _terminal_valuations(par) == _terminal_valuations(seq)
        assert bool(par.stuck) == bool(seq.stuck)
        assert par.state_count <= closure.state_count
        assert par.terminal_locals(*test.regs) == set(test.allowed)


class TestRefinementParity:
    def test_checkers_force_reduction_off(self):
        """A closure-configured engine routed through the refinement
        checkers yields the exact same verdicts — the call sites
        override the policy."""
        from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
        from repro.litmus.clients import abstract_fill, lock_client
        from repro.objects.lock import AbstractLock
        from repro.refinement.simulation import find_forward_simulation
        from repro.refinement.tracecheck import check_program_refinement

        afill, objs = abstract_fill(lambda: AbstractLock("l"))
        abstract = lock_client(afill, objects=objs)
        concrete = lock_client(spinlock_fill, lib_vars=SPINLOCK_VARS)

        closure_engine = ExplorationEngine(reduction="closure")
        sim_default = find_forward_simulation(concrete, abstract)
        sim_closure = find_forward_simulation(
            concrete, abstract, engine=closure_engine
        )
        assert sim_default.found == sim_closure.found
        assert sim_default.relation_size == sim_closure.relation_size
        assert sim_default.concrete_states == sim_closure.concrete_states

        tr_default = check_program_refinement(concrete, abstract)
        tr_closure = check_program_refinement(
            concrete, abstract, engine=closure_engine
        )
        assert tr_default.refines == tr_closure.refines
        assert tr_default.concrete_traces == tr_closure.concrete_traces
        assert tr_default.abstract_traces == tr_closure.abstract_traces


# -- random programs --------------------------------------------------------

VARS = ("x", "y")


@st.composite
def atomic_commands(draw, regs=("r1", "r2")):
    kind = draw(
        st.sampled_from(["write", "writeR", "read", "readA", "cas", "fai"])
    )
    var = draw(st.sampled_from(VARS))
    reg = draw(st.sampled_from(regs))
    val = draw(st.integers(min_value=0, max_value=2))
    if kind == "write":
        return A.Write(var, Lit(val))
    if kind == "writeR":
        return A.Write(var, Lit(val), release=True)
    if kind == "read":
        return A.Read(reg, var)
    if kind == "readA":
        return A.Read(reg, var, acquire=True)
    if kind == "cas":
        return A.Cas(reg, var, Lit(val), Lit(val + 1))
    return A.Fai(reg, var)


@st.composite
def silent_heavy_commands(draw, regs=("r1", "r2")):
    """Commands exercising the ε-fragment: local computation, data
    branches and polling loops around the atomic commands."""
    kind = draw(st.sampled_from(["atomic", "assign", "if", "await"]))
    if kind == "atomic":
        return draw(atomic_commands(regs))
    reg = draw(st.sampled_from(regs))
    if kind == "assign":
        expr = draw(
            st.sampled_from(
                [Lit(0), Lit(1), Reg(regs[0]) + 1, Reg(regs[1]) + 1]
            )
        )
        return A.LocalAssign(reg, expr)
    if kind == "if":
        return A.If(
            Reg(reg).eq(draw(st.integers(0, 1))),
            draw(atomic_commands(regs)),
            draw(atomic_commands(regs)),
        )
    var = draw(st.sampled_from(VARS))
    # A polling await: the body is a visible read, so the loop is not a
    # divergent ε-cycle, and the flag value 9 is never written — the
    # loop exits as soon as any other value is read, which is always
    # enabled (obs is never empty).
    return A.seq(
        A.LocalAssign(reg, Lit(9)),
        A.While(Reg(reg).eq(9), A.Read(reg, var)),
    )


@st.composite
def programs(draw):
    def thread():
        n = draw(st.integers(1, 3))
        return A.seq(*[draw(silent_heavy_commands()) for _ in range(n)])

    return Program(
        threads={"1": Thread(thread()), "2": Thread(thread())},
        client_vars={v: 0 for v in VARS},
        # Registers start bound so generated expressions never trip the
        # unbound-register check mid-exploration.
        init_locals={
            "1": {"r1": 0, "r2": 0},
            "2": {"r1": 0, "r2": 0},
        },
    )


@settings(max_examples=25, deadline=None)
@given(p=programs())
def test_random_programs_reduction_invisible(p):
    assert_reduction_invisible(p, max_states=100_000)
