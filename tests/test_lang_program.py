"""Tests for Program construction and the variable partition."""

import pytest

from repro.impls.seqlock import seqlock_fill
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread, component_of
from repro.objects.lock import AbstractLock


class TestConstruction:
    def test_raw_commands_wrapped(self):
        p = Program(
            threads={"1": A.Write("x", Lit(1))},
            client_vars={"x": 0},
        )
        assert isinstance(p.threads["1"], Thread)

    def test_tids_sorted(self):
        p = Program(
            threads={"2": A.skip(), "1": A.skip(), "10": A.skip()},
            client_vars={},
        )
        assert p.tids == ("1", "10", "2")

    def test_variable_overlap_rejected(self):
        with pytest.raises(ValueError, match="both components"):
            Program(
                threads={"1": A.skip()},
                client_vars={"x": 0},
                lib_vars={"x": 0},
            )

    def test_duplicate_object_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Program(
                threads={"1": A.skip()},
                objects=(AbstractLock("l"), AbstractLock("l")),
            )

    def test_object_global_clash_rejected(self):
        with pytest.raises(ValueError, match="clash"):
            Program(
                threads={"1": A.skip()},
                client_vars={"l": 0},
                objects=(AbstractLock("l"),),
            )


class TestPartition:
    def test_component_of(self):
        p = Program(
            threads={"1": A.skip()},
            client_vars={"x": 0},
            lib_vars={"glb": 0},
            objects=(AbstractLock("l"),),
        )
        assert component_of(p, "x") == "C"
        assert component_of(p, "glb") == "L"
        assert component_of(p, "l") == "L"
        with pytest.raises(KeyError):
            component_of(p, "nope")

    def test_lib_var_names_include_objects(self):
        p = Program(
            threads={"1": A.skip()},
            lib_vars={"glb": 0},
            objects=(AbstractLock("l"),),
        )
        assert p.lib_var_names == {"glb", "l"}

    def test_lib_registers_from_fills(self):
        body = A.seq(
            seqlock_fill("l", "acquire"),
            A.Write("x", Lit(5)),
            seqlock_fill("l", "release"),
        )
        p = Program(
            threads={"1": body},
            client_vars={"x": 0},
            lib_vars={"glb": 0},
        )
        assert p.lib_registers() == {"_sl_r", "_sl_loc"}


class TestInitials:
    def test_initial_locals(self):
        p = Program(
            threads={"1": A.skip(), "2": A.skip()},
            init_locals={"2": {"rl": 1}},
        )
        assert p.initial_locals_of("2") == {"rl": 1}
        assert p.initial_locals_of("1") == {}

    def test_done_labels(self):
        p = Program(threads={"1": Thread(A.skip(), done_label=5)})
        assert p.done_label_of("1") == 5

    def test_object_map(self):
        lock = AbstractLock("l")
        p = Program(threads={"1": A.skip()}, objects=(lock,))
        assert p.object_map == {"l": lock}
