"""Tests for program-counter extraction from continuations."""

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.labels import DONE_PC, pc_of


class TestPcOf:
    def test_terminated_thread(self):
        assert pc_of(None) == DONE_PC

    def test_custom_done_label(self):
        assert pc_of(None, done_label=5) == 5

    def test_labeled_statement(self):
        cmd = A.Labeled(3, A.Write("x", Lit(1)))
        assert pc_of(cmd) == 3

    def test_leftmost_in_sequence(self):
        cmd = A.seq(
            A.Labeled(1, A.Write("x", Lit(1))),
            A.Labeled(2, A.Write("y", Lit(2))),
        )
        assert pc_of(cmd) == 1

    def test_label_persists_inside_region(self):
        # A label wrapping a loop denotes the whole region: stepping
        # inside must keep the same pc.
        loop = A.Labeled(
            3, A.do_until(A.MethodCall("s", "pop", dest="r"), Reg("r").eq(1))
        )
        assert pc_of(loop) == 3
        # Mid-execution shape: Labeled(3, While(...)).
        mid = A.Labeled(3, A.While(Reg("r").eq(0), A.MethodCall("s", "pop", dest="r")))
        assert pc_of(mid) == 3

    def test_label_wrapping_libblock(self):
        cmd = A.Labeled(1, A.LibBlock(A.Fai("_m", "nt")))
        assert pc_of(cmd) == 1

    def test_unlabelled_active_command(self):
        assert pc_of(A.Write("x", Lit(1))) is None

    def test_unlabelled_prefix_falls_through_to_label(self):
        # An unlabelled leading command belongs to the previous label's
        # region; the leftmost label after it is reported.
        cmd = A.seq(A.LocalAssign("t", Lit(0)), A.Labeled(7, A.Write("x", Lit(1))))
        assert pc_of(cmd) == 7

    def test_label_inside_while_body(self):
        cmd = A.While(Reg("r").eq(0), A.Labeled(2, A.Read("r", "x")))
        assert pc_of(cmd) == 2

    def test_if_branches_not_consulted(self):
        cmd = A.If(Reg("r").eq(0), A.Labeled(9, A.Write("x", Lit(1))))
        assert pc_of(cmd) is None

    def test_string_labels(self):
        cmd = A.Labeled("cs", A.Write("x", Lit(1)))
        assert pc_of(cmd) == "cs"
