"""Tests for assertion environments and combinators."""

import pytest

from repro.assertions.core import (
    FALSE,
    TRUE,
    AtPc,
    Env,
    LocalEq,
    LocalIn,
    Pred,
    all_of,
    make_env,
)
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.semantics.config import initial_config
from repro.semantics.step import successors


@pytest.fixture()
def env():
    p = Program(
        threads={
            "1": Thread(
                A.seq(
                    A.Labeled(1, A.LocalAssign("r", Lit(5))),
                    A.Labeled(2, A.LocalAssign("q", Lit(6))),
                ),
                done_label=3,
            )
        },
        client_vars={"x": 0},
        lib_vars={"glb": 0},
        init_locals={"1": {"r": 0}},
    )
    return make_env(p, initial_config(p))


class TestEnv:
    def test_components(self, env):
        assert env.component("C") is env.gamma
        assert env.component("L") is env.beta
        with pytest.raises(ValueError):
            env.component("X")

    def test_component_of_var(self, env):
        assert env.component_of_var("x") == "C"
        assert env.component_of_var("glb") == "L"
        with pytest.raises(KeyError):
            env.component_of_var("nope")

    def test_local_and_pc(self, env):
        assert env.local("1", "r") == 0
        assert env.local("1", "missing") is None
        assert env.pc("1") == 1


class TestCombinators:
    def test_constants(self, env):
        assert TRUE.holds(env)
        assert not FALSE.holds(env)

    def test_and_or_not(self, env):
        assert (TRUE & TRUE).holds(env)
        assert not (TRUE & FALSE).holds(env)
        assert (TRUE | FALSE).holds(env)
        assert not (FALSE | FALSE).holds(env)
        assert (~FALSE).holds(env)

    def test_implication(self, env):
        assert (FALSE >> FALSE).holds(env)
        assert (FALSE >> TRUE).holds(env)
        assert (TRUE >> TRUE).holds(env)
        assert not (TRUE >> FALSE).holds(env)

    def test_callable_protocol(self, env):
        assert TRUE(env) is True

    def test_describe_composition(self):
        d = ((TRUE & FALSE) | ~TRUE).describe()
        assert "∧" in d and "∨" in d and "¬" in d

    def test_all_of(self, env):
        assert all_of([]).holds(env)
        assert all_of([TRUE, TRUE]).holds(env)
        assert not all_of([TRUE, FALSE]).holds(env)


class TestAtoms:
    def test_local_eq(self, env):
        assert LocalEq("1", "r", 0).holds(env)
        assert not LocalEq("1", "r", 1).holds(env)

    def test_local_in(self, env):
        assert LocalIn("1", "r", (0, 1)).holds(env)
        assert not LocalIn("1", "r", (1, 3)).holds(env)

    def test_at_pc_tracks_execution(self, env):
        assert AtPc("1", (1,)).holds(env)
        p = env.program
        cfg2 = successors(p, env.config)[0].target
        env2 = make_env(p, cfg2)
        assert AtPc("1", (2,)).holds(env2)
        cfg3 = successors(p, cfg2)[0].target
        env3 = make_env(p, cfg3)
        assert AtPc("1", (3,)).holds(env3)  # done label

    def test_pred_escape_hatch(self, env):
        a = Pred(lambda e: e.local("1", "r") == 0, name="r is 0")
        assert a.holds(env)
        assert a.describe() == "r is 0"
