"""Tests for the extension objects: weak register and atomic counter."""

import pytest

from repro.lang import ast as A
from repro.lang.program import Program
from repro.memory.initial import initial_states
from repro.objects.counter import AbstractCounter
from repro.objects.register import AbstractRegister


def the(steps):
    out = list(steps)
    assert len(out) == 1
    return out[0]


@pytest.fixture()
def reg_setup():
    register = AbstractRegister("r", initial=0)
    program = Program(
        threads={"1": A.skip(), "2": A.skip()},
        client_vars={"d": 0},
        objects=(register,),
    )
    gamma, beta = initial_states(program)
    return register, gamma, beta


@pytest.fixture()
def ctr_setup():
    counter = AbstractCounter("c", initial=0)
    program = Program(
        threads={"1": A.skip(), "2": A.skip()},
        client_vars={"d": 0},
        objects=(counter,),
    )
    gamma, beta = initial_states(program)
    return counter, gamma, beta


class TestRegister:
    def test_initial_read(self, reg_setup):
        register, gamma, beta = reg_setup
        step = the(register.method_steps(beta, gamma, "1", "read"))
        assert step.retval == 0

    def test_weak_reads_see_stale_values(self, reg_setup):
        register, gamma, beta = reg_setup
        w = the(register.method_steps(beta, gamma, "1", "write", 5))
        # Thread 2 has not advanced: it may read 0 *or* 5.
        vals = {
            s.retval
            for s in register.method_steps(w.lib, w.cli, "2", "read")
        }
        assert vals == {0, 5}
        # The writer itself can only read its own write.
        vals1 = {
            s.retval
            for s in register.method_steps(w.lib, w.cli, "1", "read")
        }
        assert vals1 == {5}

    def test_acquiring_read_of_releasing_write_syncs(self, reg_setup):
        from repro.memory.transitions import write_steps

        register, gamma, beta = reg_setup
        _a, _w, gamma1, _ = the(
            write_steps(gamma, beta, "1", "d", 5, release=False)
        )
        dnew = gamma1.thread_view("1", "d")
        w = the(register.method_steps(beta, gamma1, "1", "writeR", 1))
        for s in register.method_steps(w.lib, w.cli, "2", "readA"):
            if s.retval == 1:
                assert s.cli.thread_view("2", "d") == dnew

    def test_reads_do_not_modify(self, reg_setup):
        register, gamma, beta = reg_setup
        step = the(register.method_steps(beta, gamma, "1", "read"))
        assert step.lib.ops == beta.ops

    def test_write_requires_argument(self, reg_setup):
        register, gamma, beta = reg_setup
        with pytest.raises(ValueError):
            list(register.method_steps(beta, gamma, "1", "write"))

    def test_unknown_method(self, reg_setup):
        register, gamma, beta = reg_setup
        with pytest.raises(ValueError):
            list(register.method_steps(beta, gamma, "1", "cas"))


class TestCounter:
    def test_inc_returns_old_value(self, ctr_setup):
        counter, gamma, beta = ctr_setup
        s1 = the(counter.method_steps(beta, gamma, "1", "inc"))
        assert s1.retval == 0
        s2 = the(counter.method_steps(s1.lib, s1.cli, "2", "inc"))
        assert s2.retval == 1
        assert counter.value(s2.lib) == 2

    def test_inc_covers_predecessor(self, ctr_setup):
        counter, gamma, beta = ctr_setup
        init_op = beta.last_op("c")
        s1 = the(counter.method_steps(beta, gamma, "1", "inc"))
        assert init_op in s1.lib.cvd

    def test_incs_totally_ordered(self, ctr_setup):
        counter, gamma, beta = ctr_setup
        s = the(counter.method_steps(beta, gamma, "1", "inc"))
        s = the(counter.method_steps(s.lib, s.cli, "2", "inc"))
        s = the(counter.method_steps(s.lib, s.cli, "1", "inc"))
        vals = [op.act.val for op in s.lib.ops_on("c") if op.act.method == "inc"]
        assert vals == [1, 2, 3]

    def test_inc_transfers_client_view(self, ctr_setup):
        from repro.memory.transitions import write_steps

        counter, gamma, beta = ctr_setup
        _a, _w, gamma1, _ = the(
            write_steps(gamma, beta, "1", "d", 5, release=False)
        )
        dnew = gamma1.thread_view("1", "d")
        s1 = the(counter.method_steps(beta, gamma1, "1", "inc"))
        # Thread 2's inc acquires thread 1's inc (sync): sees d = 5.
        s2 = the(counter.method_steps(s1.lib, s1.cli, "2", "inc"))
        assert s2.cli.thread_view("2", "d") == dnew

    def test_weak_read(self, ctr_setup):
        counter, gamma, beta = ctr_setup
        s1 = the(counter.method_steps(beta, gamma, "1", "inc"))
        vals = {
            s.retval for s in counter.method_steps(s1.lib, s1.cli, "2", "read")
        }
        assert vals == {0, 1}

    def test_unknown_method(self, ctr_setup):
        counter, gamma, beta = ctr_setup
        with pytest.raises(ValueError):
            list(counter.method_steps(beta, gamma, "1", "dec"))
