"""Unit and property tests for timestamp arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rationals import (
    TS_ZERO,
    between,
    fresh_after,
    is_fresh,
    next_after,
    rank_map,
)

fractions = st.fractions(
    min_value=-100, max_value=100, max_denominator=64
)


class TestBetween:
    def test_midpoint(self):
        assert between(Fraction(0), Fraction(1)) == Fraction(1, 2)

    def test_strictly_inside(self):
        lo, hi = Fraction(3, 7), Fraction(4, 7)
        mid = between(lo, hi)
        assert lo < mid < hi

    def test_empty_gap_rejected(self):
        with pytest.raises(ValueError):
            between(Fraction(1), Fraction(1))
        with pytest.raises(ValueError):
            between(Fraction(2), Fraction(1))

    @given(a=fractions, b=fractions)
    def test_property_strictly_between(self, a, b):
        if a == b:
            return
        lo, hi = min(a, b), max(a, b)
        mid = between(lo, hi)
        assert lo < mid < hi


class TestNextAfter:
    def test_increments(self):
        assert next_after(Fraction(3)) == Fraction(4)

    @given(a=fractions)
    def test_property_strictly_after(self, a):
        assert next_after(a) > a


class TestFreshAfter:
    def test_top_of_order(self):
        existing = [Fraction(0), Fraction(1)]
        q = fresh_after(Fraction(1), existing)
        assert q == Fraction(2)

    def test_inserts_in_gap(self):
        existing = [Fraction(0), Fraction(1), Fraction(2)]
        q = fresh_after(Fraction(0), existing)
        assert Fraction(0) < q < Fraction(1)

    def test_ignores_earlier_timestamps(self):
        existing = [Fraction(-5), Fraction(0), Fraction(10)]
        q = fresh_after(Fraction(0), existing)
        assert Fraction(0) < q < Fraction(10)

    @given(sts=st.lists(fractions, min_size=1, max_size=10))
    def test_property_fresh_predicate_holds(self, sts):
        # Inserting after any existing timestamp satisfies the paper's
        # fresh(q, q') predicate.
        for q in sts:
            q_new = fresh_after(q, sts)
            assert is_fresh(q, q_new, sts)

    @given(sts=st.lists(fractions, min_size=1, max_size=10))
    def test_property_never_collides(self, sts):
        for q in sts:
            assert fresh_after(q, sts) not in sts

    @given(sts=st.lists(fractions, min_size=2, max_size=10, unique=True))
    def test_property_preserves_relative_order(self, sts):
        # After inserting, every pre-existing pair keeps its order and
        # the new timestamp lands directly after its anchor.
        sts = sorted(sts)
        anchor = sts[0]
        q_new = fresh_after(anchor, sts)
        ordered = sorted(sts + [q_new])
        assert ordered.index(q_new) == ordered.index(anchor) + 1


class TestIsFresh:
    def test_rejects_non_increasing(self):
        assert not is_fresh(Fraction(1), Fraction(1), [])
        assert not is_fresh(Fraction(2), Fraction(1), [])

    def test_rejects_jumping_over(self):
        existing = [Fraction(0), Fraction(1), Fraction(2)]
        # 1.5 jumps over nothing; 2.5 jumps over 2.
        assert is_fresh(Fraction(1), Fraction(3, 2), existing)
        assert not is_fresh(Fraction(1), Fraction(5, 2), existing)


class TestRankMap:
    def test_empty(self):
        assert rank_map([]) == {}

    def test_ranks_sorted(self):
        m = rank_map([Fraction(5), Fraction(1), Fraction(3)])
        assert m == {
            Fraction(1): Fraction(0),
            Fraction(3): Fraction(1),
            Fraction(5): Fraction(2),
        }

    def test_duplicates_collapse(self):
        m = rank_map([Fraction(1), Fraction(1), Fraction(2)])
        assert m == {Fraction(1): Fraction(0), Fraction(2): Fraction(1)}

    @given(sts=st.lists(fractions, min_size=1, max_size=20))
    def test_property_order_isomorphic(self, sts):
        m = rank_map(sts)
        for a in sts:
            for b in sts:
                assert (a < b) == (m[a] < m[b])

    @given(
        sts=st.lists(fractions, min_size=1, max_size=20),
        scale=st.integers(min_value=1, max_value=9),
        shift=fractions,
    )
    def test_property_invariant_under_affine_rescaling(self, sts, scale, shift):
        # rank_map is invariant under order-preserving relabelling — the
        # core fact behind canonical state hashing.
        rescaled = [ts * scale + shift for ts in sts]
        m1 = rank_map(sts)
        m2 = rank_map(rescaled)
        for ts in sts:
            assert m1[ts] == m2[ts * scale + shift]

    def test_zero_is_rank_zero_when_minimal(self):
        m = rank_map([TS_ZERO, Fraction(7)])
        assert m[TS_ZERO] == Fraction(0)
