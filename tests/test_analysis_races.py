"""Tests for the static race detector (:mod:`repro.analysis.races`).

Covers the access-summary model (Cas/Fai kinds, forced awaits), the
release→acquire happens-before oracle, the unmatched-acquire check,
and static-vs-operational agreement on small hand programs.
"""

from repro.analysis import detect_races
from repro.analysis.races import (
    RACE,
    UNMATCHED_ACQUIRE,
    UPDATE,
    operational_races,
    summarise_program,
)
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program


def _program(threads, **kwargs):
    return Program(threads=threads, **kwargs)


def _codes(program):
    return detect_races(program).codes()


def _race_messages(program):
    return [d.message for d in detect_races(program) if d.code == RACE]


def _await_loop(reg, var, acquire=True):
    # The forced-await shape: entry condition certain (the register is
    # seeded 0), sole visible access an acquiring read of the flag.
    return A.seq(
        A.LocalAssign(reg, Lit(0)),
        A.While(Reg(reg).eq(0), A.Read(reg, var, acquire=acquire)),
    )


class TestSummaries:
    def test_cas_is_update_plus_failure_read(self):
        p = _program(
            {"1": A.Cas("r", "x", Lit(0), Lit(1))},
            client_vars={"x": 0},
        )
        summary = summarise_program(p)["1"]
        kinds = sorted(a.kind for a in summary.accesses)
        assert UPDATE in kinds
        assert "read" in kinds  # the relaxed failure read
        upd = next(a for a in summary.accesses if a.kind == UPDATE)
        assert upd.acquire and upd.release

    def test_fai_is_pure_update(self):
        p = _program(
            {"1": A.Fai("r", "x")},
            client_vars={"x": 0},
        )
        summary = summarise_program(p)["1"]
        assert [a.kind for a in summary.accesses] == [UPDATE]

    def test_forced_await_detected(self):
        p = _program(
            {
                "1": _await_loop("r", "f"),
                "2": A.Write("f", Lit(1), release=True),
            },
            client_vars={"f": 0},
        )
        summary = summarise_program(p)["1"]
        assert len(summary.awaits) == 1
        assert summary.awaits[0].var == "f"

    def test_dead_branch_accesses_dropped(self):
        p = _program(
            {
                "1": A.If(
                    Reg("m").eq(0),
                    A.Write("x", Lit(1)),
                    A.Write("z", Lit(1)),
                ),
                "2": A.Read("r", "z"),
            },
            client_vars={"x": 0, "z": 0},
            init_locals={"1": {"m": 0}},
        )
        summary = summarise_program(p)["1"]
        assert {a.var for a in summary.accesses} == {"x"}


class TestDetector:
    def test_relaxed_conflict_is_a_race(self):
        p = _program(
            {
                "1": A.Write("x", Lit(1)),
                "2": A.Read("r", "x"),
            },
            client_vars={"x": 0},
        )
        assert RACE in _codes(p)
        (msg,) = _race_messages(p)
        assert "'x'" in msg and "release" in msg

    def test_sync_pair_is_never_racy(self):
        p = _program(
            {
                "1": A.Write("x", Lit(1), release=True),
                "2": A.Read("r", "x", acquire=True),
            },
            client_vars={"x": 0},
        )
        assert RACE not in _codes(p)

    def test_read_read_is_not_a_conflict(self):
        p = _program(
            {
                "1": A.Read("a", "x"),
                "2": A.Read("b", "x"),
            },
            client_vars={"x": 0},
        )
        assert RACE not in _codes(p)

    def test_message_passing_protected_by_await(self):
        # The classic MP shape: data write ordered before the releasing
        # flag write; the consumer's forced await orders the data read
        # after it.  No race on 'd'.
        p = _program(
            {
                "1": A.seq(
                    A.Write("d", Lit(5)),
                    A.Write("f", Lit(1), release=True),
                ),
                "2": A.seq(_await_loop("r", "f"), A.Read("v", "d")),
            },
            client_vars={"d": 0, "f": 0},
        )
        assert _codes(p) == frozenset()

    def test_relaxed_flag_write_breaks_the_chain(self):
        p = _program(
            {
                "1": A.seq(
                    A.Write("d", Lit(5)),
                    A.Write("f", Lit(1)),
                ),
                "2": A.seq(
                    _await_loop("r", "f", acquire=True),
                    A.Read("v", "d"),
                ),
            },
            client_vars={"d": 0, "f": 0},
        )
        assert RACE in _codes(p)

    def test_loop_resident_write_not_ordered(self):
        # A write that can repeat inside a loop is not source-ordered
        # before the flag write even if it appears earlier — the
        # detector must not use it as an hb anchor.
        p = _program(
            {
                "1": A.seq(
                    A.seq(
                        A.LocalAssign("i", Lit(0)),
                        A.While(
                            Reg("i").lt(2),
                            A.seq(
                                A.Write("d", Reg("i")),
                                A.LocalAssign("i", Reg("i") + 1),
                            ),
                        ),
                    ),
                    A.Write("f", Lit(1), release=True),
                ),
                "2": A.seq(_await_loop("r", "f"), A.Write("d", Lit(9))),
            },
            client_vars={"d": 0, "f": 0},
        )
        # Conservative: the looped write is in_loop, so the consumer's
        # write to 'd' is flagged even though the await fences it.
        assert RACE in _codes(p)

    def test_transitive_chain_across_three_threads(self):
        # t1 -release-> t2 (awaits f1) -release-> t3 (awaits f2): t3's
        # read of 'd' is ordered after t1's write through two hops.
        p = _program(
            {
                "1": A.seq(
                    A.Write("d", Lit(5)),
                    A.Write("f1", Lit(1), release=True),
                ),
                "2": A.seq(
                    _await_loop("r", "f1"),
                    A.Write("f2", Lit(1), release=True),
                ),
                "3": A.seq(_await_loop("s", "f2"), A.Read("v", "d")),
            },
            client_vars={"d": 0, "f1": 0, "f2": 0},
        )
        assert _codes(p) == frozenset()

    def test_one_racy_pair_reported_once(self):
        p = _program(
            {
                "1": A.seq(A.Write("x", Lit(1)), A.Write("x", Lit(2))),
                "2": A.Read("r", "x"),
            },
            client_vars={"x": 0},
        )
        races = [d for d in detect_races(p) if d.code == RACE]
        assert len(races) == 1  # deduped per (loc, thread pair)


class TestUnmatchedAcquire:
    def test_fires_without_releasing_writer(self):
        p = _program(
            {
                "1": _await_loop("r", "f"),
                "2": A.Write("f", Lit(1)),
            },
            client_vars={"f": 0},
        )
        assert UNMATCHED_ACQUIRE in _codes(p)

    def test_quiet_with_releasing_writer(self):
        p = _program(
            {
                "1": _await_loop("r", "f"),
                "2": A.Write("f", Lit(1), release=True),
            },
            client_vars={"f": 0},
        )
        assert UNMATCHED_ACQUIRE not in _codes(p)

    def test_cas_counts_as_releasing_writer(self):
        # Cas is always acquiring-releasing on success (paper Fig. 4).
        p = _program(
            {
                "1": _await_loop("r", "f"),
                "2": A.Cas("ok", "f", Lit(0), Lit(1)),
            },
            client_vars={"f": 0},
        )
        assert UNMATCHED_ACQUIRE not in _codes(p)


class TestOperationalAgreement:
    """The differential contract on hand programs: static-race-free
    implies operationally race-free (soundness); the full-catalog sweep
    lives in test_analysis_catalog.py."""

    def _agree(self, program):
        static_racy = RACE in _codes(program)
        dynamic = operational_races(program)
        if not static_racy:
            assert dynamic == [], (
                "static detector missed an operational race: " f"{dynamic}"
            )
        return static_racy, dynamic

    def test_clean_mp_agrees(self):
        p = _program(
            {
                "1": A.seq(
                    A.Write("d", Lit(5)),
                    A.Write("f", Lit(1), release=True),
                ),
                "2": A.seq(_await_loop("r", "f"), A.Read("v", "d")),
            },
            client_vars={"d": 0, "f": 0},
        )
        static_racy, dynamic = self._agree(p)
        assert not static_racy and dynamic == []

    def test_racy_store_buffer_agrees(self):
        p = _program(
            {
                "1": A.seq(A.Write("x", Lit(1)), A.Read("a", "y")),
                "2": A.seq(A.Write("y", Lit(1)), A.Read("b", "x")),
            },
            client_vars={"x": 0, "y": 0},
        )
        static_racy, dynamic = self._agree(p)
        assert static_racy
        assert {var for var, _tids in dynamic} == {"x", "y"}

    def test_sync_pairs_invisible_dynamically_too(self):
        p = _program(
            {
                "1": A.Write("x", Lit(1), release=True),
                "2": A.Read("r", "x", acquire=True),
            },
            client_vars={"x": 0},
        )
        static_racy, dynamic = self._agree(p)
        assert not static_racy and dynamic == []
