"""Unit tests for the shared-memory ring transport
(:mod:`repro.engine.shm`).

The ring layer is exercised directly — frame round-trips, wraparound,
oversize-batch chunking, backpressure wait/wake, producer death — plus
the exchange lifecycle guarantees the pipeline backend builds on: no
leaked ``SharedMemory`` segments after clean *or* unclean runs, and the
documented transport resolution order.
"""

import glob
import multiprocessing
import os
import threading
import time

import pytest

from repro.engine.shm import (
    DEFAULT_RING_CAPACITY,
    FLAG_WRAP,
    HEADER_SIZE,
    ProducerStopped,
    Ring,
    ShmExchange,
    shm_available,
)
from repro.memory.codec import BufferFull, encode_batch_into

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="SharedMemory unavailable on this host"
)


def _ctx():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _local_ring(capacity=1024, codec=None):
    """A ring over plain process-local memory (the ring logic never
    cares where the buffer lives), with thread events.  ``codec`` is an
    optional :class:`repro.memory.flatcodec.BatchCodec` (None keeps the
    v1 pickle wire format)."""
    buf = memoryview(bytearray(HEADER_SIZE + capacity))
    return Ring(
        buf, capacity,
        space_event=threading.Event(), data_event=threading.Event(),
        codec=codec,
    )


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestRing:
    def test_publish_drain_round_trip(self):
        ring = _local_ring()
        batch = [(b"d1", ("cfg", 1)), (b"d2", ("cfg", 2))]
        wire, frames, copies, waits = ring.publish(batch)
        assert frames == 1 and copies == 0 and waits == 0
        assert ring.used() == wire
        got = []
        assert ring.drain(got.append) == 1
        assert got == [batch]
        assert ring.used() == 0

    def test_fifo_order_across_wraparound(self):
        # Capacity small enough that the sequence laps the buffer many
        # times; every batch must come out once, in order, intact.
        ring = _local_ring(capacity=256)
        got = []
        for i in range(200):
            ring.publish([(i, "x" * (i % 23))])
            ring.drain(got.append)
        assert got == [[(i, "x" * (i % 23))] for i in range(200)]

    def test_wrap_marker_consumes_tail_slack(self):
        ring = _local_ring(capacity=256)
        # Leave the write position near the end of the buffer, then
        # publish something that cannot fit contiguously there.
        ring.publish([("pad", "y" * 150)])
        got = []
        ring.drain(got.append)
        ring.publish([("wrapped", "z" * 100)])
        assert ring.drain(got.append) == 1
        assert got[-1] == [("wrapped", "z" * 100)]

    def test_oversize_batch_falls_back_to_chunks(self):
        ring = _local_ring(capacity=512)
        batch = [("big", "q" * 4000)]
        consumed = []
        done = threading.Event()

        def consume():
            while not consumed:
                ring.drain(consumed.append)
                time.sleep(0.001)
            done.set()

        t = threading.Thread(target=consume)
        t.start()
        wire, frames, copies, waits = ring.publish(batch)
        assert done.wait(5.0)
        t.join()
        assert copies == 1  # the one intermediate blob of the fallback
        assert frames > 1  # CHUNK*, LAST
        assert consumed == [batch]

    def test_backpressure_blocks_until_consumer_drains(self):
        ring = _local_ring(capacity=512)
        filler = [("fill", "f" * 300)]
        ring.publish(filler)  # ring now too full for a second batch
        published = threading.Event()

        def produce():
            ring.publish(filler)
            published.set()

        t = threading.Thread(target=produce)
        t.start()
        assert not published.wait(0.1)  # genuinely blocked on full
        got = []
        ring.drain(got.append)
        assert published.wait(5.0)
        t.join()
        ring.drain(got.append)
        assert got == [filler, filler]

    def test_blocked_producer_aborts_on_stop(self):
        ring = _local_ring(capacity=512)
        ring.publish([("fill", "f" * 300)])
        stop = threading.Event()
        raised = threading.Event()

        def produce():
            try:
                ring.publish([("more", "g" * 300)], stop=stop.is_set)
            except ProducerStopped:
                raised.set()

        t = threading.Thread(target=produce)
        t.start()
        assert not raised.wait(0.1)
        stop.set()
        assert raised.wait(5.0)
        t.join()

    def test_buffer_full_is_not_destructive(self):
        ring = _local_ring(capacity=256)
        ring.publish([("keep", 1)])
        with pytest.raises(BufferFull):
            ring.try_publish([("nope", "w" * 1000)])
        got = []
        assert ring.drain(got.append) == 1
        assert got == [[("keep", 1)]]

    def test_capacity_must_be_power_of_two(self):
        buf = memoryview(bytearray(HEADER_SIZE + 100))
        with pytest.raises(ValueError, match="power of two"):
            Ring(buf, 100, threading.Event(), threading.Event())


class TestRingCodec:
    """Rings over each pluggable batch codec: the framing layer never
    inspects blob contents, so every codec's wire format must ride
    through publish/drain — including the flat codec's whole-batch
    pickle fallback for non-``(digest, Config)`` payloads."""

    @pytest.mark.parametrize("codec_name", ("flat", "pickle"))
    def test_round_trip_with_each_codec(self, codec_name):
        from repro.memory.flatcodec import get_codec

        ring = _local_ring(codec=get_codec(codec_name))
        batch = [(b"d1", ("cfg", 1)), (b"d2", ("cfg", 2))]
        ring.publish(batch)
        got = []
        assert ring.drain(got.append) == 1
        assert got == [batch]

    @pytest.mark.parametrize("codec_name", ("flat", "pickle"))
    def test_real_configs_round_trip(self, codec_name):
        from repro.engine.fingerprint import stable_digest
        from repro.litmus.catalog import LITMUS_TESTS
        from repro.memory.flatcodec import get_codec
        from repro.semantics.explore import explore

        result = explore(LITMUS_TESTS[0].build())
        batch = [
            (stable_digest(repr(i).encode()), cfg)
            for i, cfg in enumerate(list(result.configs.values())[:8])
        ]
        ring = _local_ring(capacity=1 << 16, codec=get_codec(codec_name))
        ring.publish(batch)
        got = []
        assert ring.drain(got.append) == 1
        assert got == [batch]

    @pytest.mark.parametrize("codec_name", ("flat", "pickle"))
    def test_chunked_oversize_survives_codec(self, codec_name):
        from repro.memory.flatcodec import get_codec

        ring = _local_ring(capacity=512, codec=get_codec(codec_name))
        batch = [("big", "q" * 4000)]
        consumed = []
        done = threading.Event()

        def consume():
            while not consumed:
                ring.drain(consumed.append)
                time.sleep(0.001)
            done.set()

        t = threading.Thread(target=consume)
        t.start()
        ring.publish(batch)
        assert done.wait(5.0)
        t.join()
        assert consumed == [batch]

    def test_exchange_threads_codec_name_to_rings(self):
        ctx = _ctx()
        exchange = ShmExchange(2, ctx, capacity=4096, codec="flat")
        try:
            assert exchange.codec == "flat"
            ring = exchange.ring(0, 1)
            batch = [(b"d", ("payload",))]
            ring.publish(batch)
            got = []
            assert exchange.ring(0, 1).drain(got.append) == 1
            assert got == [batch]
        finally:
            exchange.cleanup()


class TestEncodeInto:
    def test_matches_codec_wire_format(self):
        import pickle

        from repro.memory.codec import decode_batch_from

        batch = [(b"digest", {"k": [1, 2, 3]})]
        buf = memoryview(bytearray(4096))
        n = encode_batch_into(batch, buf)
        assert 0 < n <= 4096
        assert decode_batch_from(buf[:n]) == batch
        assert pickle.loads(bytes(buf[:n])) == batch

    def test_raises_when_too_small(self):
        batch = [("x" * 100, "y" * 100)]
        with pytest.raises(BufferFull):
            encode_batch_into(batch, memoryview(bytearray(16)))


def _producer_then_crash(exchange, batches):
    ring = exchange.ring(0, 1)
    for b in batches:
        ring.publish(b)
    os._exit(3)  # no cleanup, no fragment: simulated crash


class TestExchange:
    def test_rings_cross_process(self):
        ctx = _ctx()
        exchange = ShmExchange(2, ctx, capacity=4096)
        try:
            batches = [[(i, "payload" * i)] for i in range(5)]
            p = ctx.Process(
                target=_producer_then_crash, args=(exchange, batches)
            )
            p.start()
            consumer = exchange.ring(0, 1)
            got = []
            deadline = time.monotonic() + 10.0
            while len(got) < 5 and time.monotonic() < deadline:
                consumer.drain(got.append)
                exchange.data_events[1].wait(0.01)
                exchange.data_events[1].clear()
            p.join()
            assert got == batches
        finally:
            exchange.cleanup()

    def test_producer_crash_leaves_consumer_unblocked(self):
        # A producer that dies mid-run publishes only complete frames
        # (tail moves after payload), so the consumer sees a clean
        # prefix and its bounded waits keep it live — never a hang.
        ctx = _ctx()
        exchange = ShmExchange(2, ctx, capacity=4096)
        try:
            p = ctx.Process(
                target=_producer_then_crash,
                args=(exchange, [[("only", 1)]]),
            )
            p.start()
            p.join()
            assert p.exitcode == 3
            consumer = exchange.ring(0, 1)
            got = []
            consumer.drain(got.append)
            assert got == [[("only", 1)]]
            assert consumer.used() == 0  # nothing half-written left
        finally:
            exchange.cleanup()

    def test_cleanup_unlinks_segment_and_is_idempotent(self):
        before = _shm_segments()
        ctx = _ctx()
        exchange = ShmExchange(3, ctx)
        assert len(_shm_segments()) == len(before) + 1
        exchange.cleanup()
        exchange.cleanup()
        assert _shm_segments() == before

    def test_default_capacity_env_override(self, monkeypatch):
        from repro.engine.shm import ring_capacity_from_env

        assert ring_capacity_from_env() == DEFAULT_RING_CAPACITY
        monkeypatch.setenv("REPRO_SHM_RING_CAP", "5000")
        assert ring_capacity_from_env() == 8192  # next power of two
        monkeypatch.setenv("REPRO_SHM_RING_CAP", "junk")
        assert ring_capacity_from_env() == DEFAULT_RING_CAPACITY


class TestPipelineShutdown:
    def test_clean_run_leaks_no_segments(self):
        from repro.engine import ExplorationEngine
        from repro.litmus.catalog import LITMUS_TESTS

        before = _shm_segments()
        engine = ExplorationEngine(workers=2, transport="shm")
        result = engine.explore(LITMUS_TESTS[0].build())
        assert result.state_count > 0
        assert _shm_segments() == before

    def test_unclean_run_leaks_no_segments(self):
        # A worker-side exception aborts the run through the error
        # path (terminate + join); the slab must still be unlinked.
        from repro.engine import ExplorationEngine
        from repro.litmus.catalog import LITMUS_TESTS

        before = _shm_segments()
        engine = ExplorationEngine(workers=2, transport="shm")

        def boom(cfg):
            raise RuntimeError("worker detonated")

        with pytest.raises(RuntimeError, match="worker detonated"):
            engine.explore(LITMUS_TESTS[0].build(), on_config=boom)
        assert _shm_segments() == before

    def test_tiny_rings_still_reach_parity(self, monkeypatch):
        # Force every batch through backpressure and chunking and the
        # result must still match the sequential reference exactly.
        from repro.engine import ExplorationEngine
        from repro.engine.core import explore_sequential
        from repro.litmus.catalog import LITMUS_TESTS

        monkeypatch.setenv("REPRO_SHM_RING_CAP", "256")
        test = next(t for t in LITMUS_TESTS if t.name == "MP-ring-3-RA")
        ref = explore_sequential(test.build())
        par = ExplorationEngine(workers=2, transport="shm").explore(
            test.build()
        )
        assert par.state_count == ref.state_count
        assert par.edge_count == ref.edge_count


class TestResolveTransport:
    def test_explicit_wins(self, monkeypatch):
        from repro.engine.pipeline import resolve_transport

        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        assert resolve_transport("queue") == ("queue", "requested")

    def test_env_consulted_when_unspecified(self, monkeypatch):
        from repro.engine.pipeline import resolve_transport

        monkeypatch.setenv("REPRO_TRANSPORT", "queue")
        assert resolve_transport(None) == ("queue", "env")

    def test_default_prefers_shm_where_available(self, monkeypatch):
        from repro.engine.pipeline import resolve_transport

        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert resolve_transport(None) == ("shm", "default")

    def test_falls_back_when_unavailable(self, monkeypatch):
        import repro.engine.shm as shm_mod
        from repro.engine.pipeline import resolve_transport

        monkeypatch.setattr(shm_mod, "_AVAILABLE", False)
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert resolve_transport("shm") == ("queue", "unavailable")
        assert resolve_transport(None) == ("queue", "unavailable")

    def test_bad_name_rejected(self):
        from repro.engine.pipeline import resolve_transport

        with pytest.raises(ValueError, match="unknown pipeline transport"):
            resolve_transport("bogus")

    def test_trace_records_selection(self, tmp_path):
        import json

        from repro.engine import ExplorationEngine
        from repro.litmus.catalog import LITMUS_TESTS
        from repro.obs.trace import TraceWriter, validate_event

        path = tmp_path / "trace.jsonl"
        trace = TraceWriter(str(path))
        engine = ExplorationEngine(workers=2, transport="shm", trace=trace)
        engine.explore(LITMUS_TESTS[0].build())
        trace.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        for ev in events:
            validate_event(ev)
        selected = [e for e in events if e["ev"] == "explore.transport"]
        assert selected and selected[0]["transport"] == "shm"
        assert selected[0]["reason"] == "requested"


class TestResolveCodec:
    """The documented codec resolution order (mirrors transport
    resolution): explicit request, then ``REPRO_CODEC``, then the flat
    default — recorded in the trace stream."""

    def test_explicit_wins(self, monkeypatch):
        from repro.engine.pipeline import resolve_codec

        monkeypatch.setenv("REPRO_CODEC", "flat")
        assert resolve_codec("pickle") == ("pickle", "requested")

    def test_env_consulted_when_unspecified(self, monkeypatch):
        from repro.engine.pipeline import resolve_codec

        monkeypatch.setenv("REPRO_CODEC", "pickle")
        assert resolve_codec(None) == ("pickle", "env")

    def test_default_is_flat(self, monkeypatch):
        from repro.engine.pipeline import resolve_codec

        monkeypatch.delenv("REPRO_CODEC", raising=False)
        assert resolve_codec(None) == ("flat", "default")

    def test_bad_name_rejected(self):
        from repro.engine.pipeline import resolve_codec

        with pytest.raises(ValueError, match="codec"):
            resolve_codec("bogus")

    def test_bad_env_value_rejected(self, monkeypatch):
        from repro.engine.pipeline import resolve_codec

        monkeypatch.setenv("REPRO_CODEC", "bogus")
        with pytest.raises(ValueError, match="codec"):
            resolve_codec(None)

    def test_trace_records_selection(self, tmp_path):
        import json

        from repro.engine import ExplorationEngine
        from repro.litmus.catalog import LITMUS_TESTS
        from repro.obs.trace import TraceWriter, validate_event

        path = tmp_path / "trace.jsonl"
        trace = TraceWriter(str(path))
        engine = ExplorationEngine(workers=2, codec="pickle", trace=trace)
        engine.explore(LITMUS_TESTS[0].build())
        trace.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        for ev in events:
            validate_event(ev)
        selected = [e for e in events if e["ev"] == "explore.codec"]
        assert selected and selected[0]["codec"] == "pickle"
        assert selected[0]["reason"] == "requested"
