"""Tests for witness (shortest counterexample execution) extraction."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.semantics.config import initial_config
from repro.semantics.explore import explore
from repro.semantics.step import successors
from repro.semantics.witness import find_path, find_terminal_witness
from tests.conftest import mp_ra, mp_relaxed


class TestFindPath:
    def test_initial_satisfies(self):
        p = mp_relaxed()
        w = find_path(p, lambda c: True)
        assert w is not None and len(w) == 0
        assert w.final is w.initial

    def test_unreachable_returns_none(self):
        p = mp_ra()
        w = find_terminal_witness(
            p,
            lambda c: c.local("2", "r1") == 1 and c.local("2", "r2") == 0,
        )
        assert w is None

    def test_weak_behaviour_witness(self):
        p = mp_relaxed()
        w = find_terminal_witness(
            p,
            lambda c: c.local("2", "r1") == 1 and c.local("2", "r2") == 0,
        )
        assert w is not None
        assert w.final.is_terminal()
        assert w.final.local("2", "r2") == 0

    def test_witness_is_replayable(self):
        """Each step of the witness is an actual successor along the way."""
        p = mp_relaxed()
        w = find_terminal_witness(p, lambda c: c.local("2", "r1") == 1)
        cfg = w.initial
        for step in w.steps:
            targets = [tr.target for tr in successors(p, cfg)]
            assert step.config in targets
            cfg = step.config
        assert cfg.is_terminal()

    def test_witness_is_shortest(self):
        """BFS guarantees minimality: no strictly shorter execution
        reaches the predicate (checked by bounded enumeration)."""
        p = mp_relaxed()
        pred = lambda c: c.is_terminal()  # noqa: E731
        w = find_path(p, pred)
        # Enumerate all executions up to len(w) - 1 steps: none terminal.
        frontier = [initial_config(p)]
        for _ in range(len(w) - 1):
            assert not any(pred(c) for c in frontier)
            frontier = [
                tr.target for c in frontier for tr in successors(p, c)
            ]

    def test_schedule_and_describe(self):
        p = mp_relaxed()
        w = find_terminal_witness(p, lambda c: True)
        assert len(w.schedule()) == len(w)
        text = w.describe()
        assert "witness execution" in text
        assert text.count("\n") == len(w)

    def test_max_states_cap(self):
        p = mp_relaxed()
        assert find_path(p, lambda c: False, max_states=3) is None


class TestPeterson:
    def test_mutual_exclusion_fails_under_ra(self):
        """Peterson's algorithm is broken in RC11 RAR: both threads can
        occupy their critical sections simultaneously."""
        from repro.litmus.peterson import (
            mutual_exclusion_violated,
            peterson_program,
        )

        p = peterson_program()
        w = find_path(p, lambda c: mutual_exclusion_violated(c, p))
        assert w is not None
        # The witness must contain a stale flag read: some acquiring read
        # of a flag returning 0 after that flag was written 1.
        flag_writes = set()
        stale_read = False
        for step in w.steps:
            a = step.action
            if a is None:
                continue
            if a.kind == "wrR" and a.var.startswith("flag") and a.val == 1:
                flag_writes.add(a.var)
            if a.kind == "rdA" and a.var in flag_writes and a.val == 0:
                stale_read = True
        assert stale_read

    def test_peterson_terminates(self):
        from repro.litmus.peterson import peterson_program

        result = explore(peterson_program())
        assert not result.truncated
        assert not result.stuck
        assert result.terminals
