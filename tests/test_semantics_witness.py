"""Tests for witness (shortest counterexample execution) extraction."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.semantics.config import initial_config
from repro.semantics.explore import explore
from repro.semantics.step import successors
from repro.semantics.witness import find_path, find_terminal_witness
from repro.util.errors import VerificationError
from tests.conftest import mp_ra, mp_relaxed, single_writer


class TestFindPath:
    def test_initial_satisfies(self):
        p = mp_relaxed()
        w = find_path(p, lambda c: True)
        assert w is not None and len(w) == 0
        assert w.final is w.initial

    def test_unreachable_returns_none(self):
        p = mp_ra()
        w = find_terminal_witness(
            p,
            lambda c: c.local("2", "r1") == 1 and c.local("2", "r2") == 0,
        )
        assert w is None

    def test_weak_behaviour_witness(self):
        p = mp_relaxed()
        w = find_terminal_witness(
            p,
            lambda c: c.local("2", "r1") == 1 and c.local("2", "r2") == 0,
        )
        assert w is not None
        assert w.final.is_terminal()
        assert w.final.local("2", "r2") == 0

    def test_witness_is_replayable(self):
        """Each step of the witness is an actual successor along the way."""
        p = mp_relaxed()
        w = find_terminal_witness(p, lambda c: c.local("2", "r1") == 1)
        cfg = w.initial
        for step in w.steps:
            targets = [tr.target for tr in successors(p, cfg)]
            assert step.config in targets
            cfg = step.config
        assert cfg.is_terminal()

    def test_witness_is_shortest(self):
        """BFS guarantees minimality: no strictly shorter execution
        reaches the predicate (checked by bounded enumeration)."""
        p = mp_relaxed()
        pred = lambda c: c.is_terminal()  # noqa: E731
        w = find_path(p, pred)
        # Enumerate all executions up to len(w) - 1 steps: none terminal.
        frontier = [initial_config(p)]
        for _ in range(len(w) - 1):
            assert not any(pred(c) for c in frontier)
            frontier = [
                tr.target for c in frontier for tr in successors(p, c)
            ]

    def test_schedule_and_describe(self):
        p = mp_relaxed()
        w = find_terminal_witness(p, lambda c: True)
        assert len(w.schedule()) == len(w)
        text = w.describe()
        assert "witness execution" in text
        assert text.count("\n") == len(w)

    def test_silent_steps_render_as_epsilon(self):
        """Silent steps print as a proper Greek ε, not the o-with-ogonek
        mojibake (regression: U+01EB crept into ``describe``)."""
        prog = Program(
            threads={"1": Thread(A.seq(A.LocalAssign("r", Lit(1)),
                                       A.Write("x", Lit(1))))},
            client_vars={"x": 0},
        )
        w = find_terminal_witness(prog, lambda c: True)
        silent = [s for s in w.steps if s.action is None]
        assert silent
        assert all("ε" in s.describe() for s in silent)
        assert all("ǫ" not in s.describe() for s in w.steps)


class TestTruncation:
    """``max_states`` semantics: truncated means inconclusive, never
    "unreachable" — and the cap must not hide a witness already in hand.
    """

    def test_truncated_no_witness_raises(self):
        # Unsatisfiable predicate + capped search: returning None would
        # claim unreachability the search did not establish.
        with pytest.raises(VerificationError, match="truncated"):
            find_path(mp_relaxed(), lambda c: False, max_states=3)

    def test_exhaustive_no_witness_still_returns_none(self):
        full = explore(mp_relaxed())
        assert (
            find_path(
                mp_relaxed(),
                lambda c: False,
                max_states=full.state_count,
            )
            is None
        )

    def test_witness_at_cap_boundary_is_found(self):
        # One thread, one write: the only successor of the initial
        # configuration is terminal.  With max_states=1 the cap is
        # already reached when that successor is generated — the
        # predicate must still be tested on it (the historical code
        # bailed first and returned None).
        p = single_writer()
        w = find_path(p, lambda c: c.is_terminal(), max_states=1)
        assert w is not None and len(w) == 1

    def test_no_none_between_one_and_full(self):
        # For every budget, find_path either produces the witness or
        # refuses loudly — never a silent None when one exists.
        p = mp_relaxed()
        pred = lambda c: c.is_terminal() and c.local("2", "r2") == 0  # noqa: E731
        full = explore(p).state_count
        for cap in range(1, full + 1):
            try:
                w = find_path(p, pred, max_states=cap)
            except VerificationError:
                continue
            assert w is not None and pred(w.final)


class TestPeterson:
    def test_mutual_exclusion_fails_under_ra(self):
        """Peterson's algorithm is broken in RC11 RAR: both threads can
        occupy their critical sections simultaneously."""
        from repro.litmus.peterson import (
            mutual_exclusion_violated,
            peterson_program,
        )

        p = peterson_program()
        w = find_path(p, lambda c: mutual_exclusion_violated(c, p))
        assert w is not None
        # The witness must contain a stale flag read: some acquiring read
        # of a flag returning 0 after that flag was written 1.
        flag_writes = set()
        stale_read = False
        for step in w.steps:
            a = step.action
            if a is None:
                continue
            if a.kind == "wrR" and a.var.startswith("flag") and a.val == 1:
                flag_writes.add(a.var)
            if a.kind == "rdA" and a.var in flag_writes and a.val == 0:
                stale_read = True
        assert stale_read

    def test_peterson_terminates(self):
        from repro.litmus.peterson import peterson_program

        result = explore(peterson_program())
        assert not result.truncated
        assert not result.stuck
        assert result.terminals
