"""The metrics registry and its cross-backend parity contract.

The unit half exercises :class:`repro.obs.metrics.Metrics` (collection,
merging, the active-collector protocol).  The parity half is the
load-bearing guarantee of the telemetry layer: the sharded backends'
per-worker counter fragments must merge to exactly the sequential
backend's totals — states, edges, and the reduction layer's
fusion/prune counts — across {rounds, pipeline} × {off, closure} on the
litmus catalog, because every backend expands every reachable state
exactly once and the semantics layers are deterministic per state.
"""

import pytest

from repro.engine import ExplorationEngine
from repro.engine.core import explore_sequential
from repro.litmus.catalog import LITMUS_TESTS
from repro.obs.metrics import Metrics, active, activate, collecting

WORKERS = 2


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        assert m.counters == {"a": 5}

    def test_timer_and_add_time(self):
        m = Metrics()
        m.add_time("t", 0.25)
        with m.timer("t"):
            pass
        assert m.timers["t"] >= 0.25

    def test_gauge_keeps_high_water(self):
        m = Metrics()
        m.gauge_max("g", 3)
        m.gauge_max("g", 1)
        assert m.gauges == {"g": 3}
        m.gauge_max("g", 7)
        assert m.gauges == {"g": 7}

    def test_merge_metrics_and_snapshot_forms(self):
        a = Metrics()
        a.inc("c", 2)
        a.add_time("t", 1.0)
        a.gauge_max("g", 5)
        b = Metrics()
        b.inc("c", 3)
        b.add_time("t", 0.5)
        b.gauge_max("g", 9)
        # Merge a live registry, then a snapshot dict (the worker
        # fragment wire format), then None (a skipped fragment).
        a.merge(b)
        a.merge(b.snapshot())
        a.merge(None)
        assert a.counters["c"] == 2 + 3 + 3
        assert a.timers["t"] == pytest.approx(2.0)
        assert a.gauges["g"] == 9

    def test_snapshot_is_json_safe_copy(self):
        import json

        m = Metrics()
        m.inc("c")
        m.add_time("t", 0.123456789)
        m.gauge_max("g", 2)
        snap = m.snapshot()
        json.dumps(snap)
        m.inc("c")
        assert snap["counters"]["c"] == 1  # a copy, not a view

    def test_states_per_sec(self):
        m = Metrics()
        assert m.states_per_sec() == 0.0
        m.inc("explore.states", 100)
        m.add_time("explore.elapsed", 2.0)
        assert m.states_per_sec() == pytest.approx(50.0)

    def test_shard_states_parses_counter_names(self):
        m = Metrics()
        m.inc("shard.0.states", 7)
        m.inc("shard.3.states", 9)
        m.inc("explore.states", 16)
        assert m.shard_states() == {0: 7, 3: 9}

    def test_describe_mentions_the_headline_numbers(self):
        m = Metrics()
        m.inc("explore.states", 42)
        m.inc("explore.edges", 99)
        m.inc("reduce.epsilon_fused", 5)
        m.add_time("explore.elapsed", 1.0)
        line = m.describe()
        assert "42 states" in line
        assert "99 edges" in line
        assert "ε-fused 5" in line
        assert "states/sec" in line
        assert "cache" not in line  # no cache counters collected
        m.inc("cache.hits", 3)
        assert "cache 3 hits" in m.describe()


class TestActiveCollector:
    def test_default_is_off(self):
        assert active() is None

    def test_collecting_scopes_and_restores(self):
        m = Metrics()
        with collecting(m):
            assert active() is m
            inner = Metrics()
            with collecting(inner):
                assert active() is inner
            assert active() is m
        assert active() is None

    def test_collecting_none_is_transparent(self):
        m = Metrics()
        with collecting(m):
            with collecting(None):
                assert active() is m  # outer collector keeps collecting
        assert active() is None

    def test_activate_returns_previous(self):
        m = Metrics()
        assert activate(m) is None
        try:
            assert active() is m
        finally:
            assert activate(None) is m
        assert active() is None


class TestSequentialCollection:
    def test_sequential_counts_states_edges_and_fusions(self):
        test = next(t for t in LITMUS_TESTS if t.name == "MP-ring-3-RA")
        m = Metrics()
        result = explore_sequential(
            test.build(), reduction="closure", metrics=m
        )
        c = m.counters
        assert c["explore.states"] == result.state_count
        assert c["explore.edges"] == result.edge_count
        # The ring polls flag variables: the closure must fuse silent
        # steps, and the collector must see them.
        assert c["reduce.epsilon_fused"] > 0
        assert m.timers["explore.elapsed"] == pytest.approx(
            result.elapsed, abs=1e-6
        )
        assert m.gauges["explore.frontier_peak"] >= 1
        assert result.metrics == m.snapshot()

    def test_no_sink_means_no_snapshot(self):
        result = explore_sequential(LITMUS_TESTS[0].build())
        assert result.metrics is None
        assert active() is None  # nothing leaked into the module slot


def _sequential_counters(program, reduction):
    m = Metrics()
    explore_sequential(program, reduction=reduction, metrics=m)
    return m.counters


class TestShardedParity:
    """Worker counter fragments must sum to the sequential totals."""

    @pytest.mark.parametrize("backend", ["rounds", "pipeline"])
    @pytest.mark.parametrize("reduction", ["off", "closure"])
    def test_catalog_counter_parity(self, backend, reduction):
        mismatches = []
        for test in LITMUS_TESTS:
            seq = _sequential_counters(test.build(), reduction)
            m = Metrics()
            engine = ExplorationEngine(
                workers=WORKERS,
                backend=backend,
                reduction=reduction,
                metrics=m,
            )
            result = engine.explore(test.build())
            # Counter parity is only defined on full runs (the
            # documented lower-bound contract covers the rest); the
            # catalog fits comfortably under the default cap.
            assert not result.truncated and not result.stopped
            par = result.metrics["counters"]
            checks = {
                "explore.states": seq["explore.states"],
                "explore.edges": seq["explore.edges"],
            }
            for name, want in checks.items():
                if par.get(name) != want:
                    mismatches.append((test.name, name, par.get(name), want))
            shard_sum = sum(
                n
                for name, n in par.items()
                if name.startswith("shard.") and name.endswith(".states")
            )
            if shard_sum != seq["explore.states"]:
                mismatches.append(
                    (test.name, "shard-sum", shard_sum, seq["explore.states"])
                )
            for name in ("reduce.epsilon_fused", "reduce.covering_pruned"):
                if par.get(name, 0) != seq.get(name, 0):
                    mismatches.append(
                        (test.name, name, par.get(name, 0), seq.get(name, 0))
                    )
        assert not mismatches, mismatches

    def test_pipeline_reports_codec_traffic(self):
        # Cross-shard successors must pass through the transport
        # counters: batches on either transport, plus the queue
        # transport's blob bytes and its deterministic two intermediate
        # copies per batch.
        test = next(t for t in LITMUS_TESTS if t.name == "MP-ring-3-RA")
        m = Metrics()
        engine = ExplorationEngine(
            workers=WORKERS, backend="pipeline", transport="queue", metrics=m
        )
        engine.explore(test.build())
        assert m.counters["pipeline.batches"] > 0
        assert m.counters["pipeline.blob_bytes"] > 0
        assert (
            m.counters["pipeline.batch_copies"]
            == 2 * m.counters["pipeline.batches"]
        )

    def test_pipeline_shm_reports_ring_traffic(self):
        # The shm transport replaces blob bytes with ring frame bytes
        # and must report *zero* intermediate batch copies on spaces
        # whose batches fit the rings (the zero-copy contract).
        from repro.engine.shm import shm_available

        if not shm_available():
            import pytest

            pytest.skip("SharedMemory unavailable; shm falls back to queue")
        test = next(t for t in LITMUS_TESTS if t.name == "MP-ring-3-RA")
        m = Metrics()
        engine = ExplorationEngine(
            workers=WORKERS, backend="pipeline", transport="shm", metrics=m
        )
        engine.explore(test.build())
        assert m.counters["pipeline.batches"] > 0
        assert m.counters["shm.ring.frames"] >= m.counters["pipeline.batches"]
        assert m.counters["shm.ring.bytes"] > 0
        assert m.counters.get("pipeline.batch_copies", 0) == 0

    def test_rounds_reports_codec_traffic(self):
        test = next(t for t in LITMUS_TESTS if t.name == "MP-ring-3-RA")
        m = Metrics()
        engine = ExplorationEngine(
            workers=WORKERS, backend="rounds", metrics=m
        )
        engine.explore(test.build())
        assert m.counters["rounds.blob_bytes"] > 0

    def test_engine_sink_accumulates_across_explorations(self):
        sink = Metrics()
        engine = ExplorationEngine(metrics=sink)
        r1 = engine.explore(LITMUS_TESTS[0].build())
        r2 = engine.explore(LITMUS_TESTS[1].build())
        assert sink.counters["explore.states"] == (
            r1.state_count + r2.state_count
        )
        # Per-run snapshots stay per-run.
        assert r1.metrics["counters"]["explore.states"] == r1.state_count

    def test_run_counts_cache_outcomes(self, tmp_path):
        from repro.engine.cache import ResultCache

        sink = Metrics()
        engine = ExplorationEngine(
            cache=ResultCache(tmp_path), metrics=sink
        )
        program = LITMUS_TESTS[0].build()
        engine.run(program)
        engine.run(program)
        assert sink.counters["cache.misses"] == 1
        assert sink.counters["cache.hits"] == 1
