"""Property-based tests: semantic invariants over random programs.

Hypothesis generates small two-thread programs over shared variables;
every reachable configuration of the combined semantics must satisfy the
structural invariants of the paper's state model, and the explorer's
canonicalisation must be stable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.memory.actions import rdval, wrval
from repro.semantics.canon import canonical_key
from repro.semantics.config import initial_config
from repro.semantics.explore import explore
from repro.semantics.step import successors

VARS = ("x", "y")


@st.composite
def atomic_commands(draw, regs=("r1", "r2")):
    kind = draw(st.sampled_from(["write", "writeR", "read", "readA", "cas", "fai"]))
    var = draw(st.sampled_from(VARS))
    reg = draw(st.sampled_from(regs))
    val = draw(st.integers(min_value=0, max_value=2))
    if kind == "write":
        return A.Write(var, Lit(val))
    if kind == "writeR":
        return A.Write(var, Lit(val), release=True)
    if kind == "read":
        return A.Read(reg, var)
    if kind == "readA":
        return A.Read(reg, var, acquire=True)
    if kind == "cas":
        return A.Cas(reg, var, Lit(val), Lit(val + 1))
    return A.Fai(reg, var)


@st.composite
def thread_bodies(draw, max_len=3):
    n = draw(st.integers(min_value=1, max_value=max_len))
    return A.seq(*[draw(atomic_commands()) for _ in range(n)])


@st.composite
def programs(draw):
    t1 = draw(thread_bodies())
    t2 = draw(thread_bodies())
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={v: 0 for v in VARS},
    )


@settings(max_examples=40, deadline=None)
@given(p=programs())
def test_all_reachable_states_coherent(p):
    """tview points into ops, cvd ⊆ ops, per-variable timestamps unique —
    at every reachable configuration."""
    explore(p, check_invariants=True, max_states=20_000)


@settings(max_examples=40, deadline=None)
@given(p=programs())
def test_reads_return_observable_written_values(p):
    """Every read action's value is the written value of an operation on
    that variable present in the component's ops (reads-from is real)."""
    result = explore(p, collect_edges=True, max_states=20_000)
    for key, edges in result.edges.items():
        cfg = result.configs[key]
        for _tid, _comp, action, _tkey in edges:
            if action is None or action.kind not in ("rd", "rdA"):
                continue
            values = {
                wrval(op.act) for op in cfg.gamma.ops_on(action.var)
            }
            assert action.val in values


@settings(max_examples=40, deadline=None)
@given(p=programs())
def test_view_monotonicity(p):
    """Thread viewfronts never move backwards along any transition.

    Successors are recomputed from each configuration (edge targets in
    the explorer are canonical *representatives* whose raw timestamps
    may differ from the true successor's).
    """
    result = explore(p, max_states=20_000)
    for cfg in result.configs.values():
        for tr in successors(p, cfg):
            for (t, v), op in cfg.gamma.tview.items():
                new = tr.target.gamma.thread_view(t, v)
                assert new is not None and new.ts >= op.ts


@settings(max_examples=40, deadline=None)
@given(p=programs())
def test_canonical_key_deterministic_and_injective_on_graph(p):
    """Exploring twice yields identical canonical state sets, and keys
    computed twice on the same config agree."""
    r1 = explore(p, max_states=20_000)
    r2 = explore(p, max_states=20_000)
    assert set(r1.configs) == set(r2.configs)
    for key, cfg in list(r1.configs.items())[:20]:
        assert canonical_key(p, cfg) == key


@settings(max_examples=30, deadline=None)
@given(p=programs())
def test_canonicalisation_never_splits_raw_states(p):
    """Canonical exploration finds at most as many states as raw
    exploration (it is a quotient), and both find the same terminal
    register outcomes."""
    canon = explore(p, max_states=50_000)
    raw = explore(p, canonicalise=False, max_states=50_000)
    if canon.truncated or raw.truncated:
        return
    assert canon.state_count <= raw.state_count
    regs = tuple(("1", r) for r in ("r1", "r2")) + tuple(
        ("2", r) for r in ("r1", "r2")
    )
    assert canon.terminal_locals(*regs) == raw.terminal_locals(*regs)


@settings(max_examples=30, deadline=None)
@given(p=programs(), seed=st.integers(min_value=0, max_value=99))
def test_random_runs_stay_inside_reachable_set(p, seed):
    """Random execution only visits canonically-reachable configurations."""
    import random

    from repro.semantics.step import successors as succ

    result = explore(p, max_states=20_000)
    if result.truncated:
        return
    rng = random.Random(seed)
    cfg = initial_config(p)
    for _ in range(30):
        assert canonical_key(p, cfg) in result.configs
        steps = succ(p, cfg)
        if not steps:
            break
        cfg = rng.choice(steps).target


@settings(max_examples=30, deadline=None)
@given(p=programs())
def test_updates_cover_exactly_their_anchors(p):
    """Along every update transition, exactly one additional operation
    becomes covered, and it is the operation the update read from."""
    result = explore(p, max_states=20_000)
    for cfg in result.configs.values():
        for tr in successors(p, cfg):
            action = tr.action
            if action is None or action.kind != "updRA":
                continue
            new_cvd = tr.target.gamma.cvd - cfg.gamma.cvd
            assert len(new_cvd) == 1
            (anchor,) = new_cvd
            assert wrval(anchor.act) == rdval(action)
