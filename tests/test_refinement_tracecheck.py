"""Tests for direct trace-refinement checking (Definitions 6–7)."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.refinement.tracecheck import (
    _tarjan_scc,
    check_program_refinement,
    client_traces,
    prefix_closure,
)
from tests.conftest import (
    abstract_lock_client,
    seqlock_client,
    spinlock_client,
    ticketlock_client,
)


class TestTarjan:
    def _edges(self, adj):
        # Adapt {u: [v, ...]} to the explorer's edge format.
        return {u: [(None, None, None, v) for v in vs] for u, vs in adj.items()}

    def test_dag(self):
        scc = _tarjan_scc(["a", "b", "c"], self._edges({"a": ["b"], "b": ["c"], "c": []}))
        assert len({scc["a"], scc["b"], scc["c"]}) == 3
        # Reverse-topological ids: successors get smaller ids.
        assert scc["c"] < scc["b"] < scc["a"]

    def test_cycle_collapses(self):
        scc = _tarjan_scc(
            ["a", "b", "c"],
            self._edges({"a": ["b"], "b": ["a", "c"], "c": []}),
        )
        assert scc["a"] == scc["b"]
        assert scc["c"] != scc["a"]

    def test_self_loop(self):
        scc = _tarjan_scc(["a", "b"], self._edges({"a": ["a", "b"], "b": []}))
        assert scc["a"] != scc["b"]

    def test_two_components(self):
        scc = _tarjan_scc(
            ["a", "b", "c", "d"],
            self._edges(
                {"a": ["b"], "b": ["a"], "c": ["d"], "d": ["c"], }
            ),
        )
        assert scc["a"] == scc["b"]
        assert scc["c"] == scc["d"]
        assert scc["a"] != scc["c"]


class TestClientTraces:
    def test_sequential_program_single_trace(self):
        p = Program(
            threads={"1": Thread(A.seq(A.Write("x", Lit(1)), A.Write("x", Lit(2))))},
            client_vars={"x": 0},
        )
        traces, cyclic = client_traces(p)
        assert not cyclic
        assert len(traces) == 1
        (trace,) = traces
        assert len(trace) == 3  # init, after first write, after second

    def test_library_loop_does_not_blow_up(self):
        # Busy-wait loops produce cycles with constant client projection.
        p = seqlock_client()
        traces, cyclic = client_traces(p)
        assert not cyclic
        assert len(traces) >= 1

    def test_racy_program_multiple_traces(self):
        p = Program(
            threads={
                "1": Thread(A.Write("x", Lit(1))),
                "2": Thread(A.Write("x", Lit(2))),
            },
            client_vars={"x": 0},
        )
        traces, _ = client_traces(p)
        assert len(traces) > 1

    def test_truncation_raises(self):
        from repro.util.errors import VerificationError

        with pytest.raises(VerificationError):
            client_traces(seqlock_client(), max_states=5)


class TestPrefixClosure:
    def test_includes_all_prefixes(self):
        traces = {(1, 2, 3)}
        assert prefix_closure(traces) == {(1,), (1, 2), (1, 2, 3)}

    def test_union(self):
        closure = prefix_closure({(1, 2), (1, 3)})
        assert closure == {(1,), (1, 2), (1, 3)}


class TestProgramRefinement:
    def test_reflexive(self):
        p = abstract_lock_client()
        assert check_program_refinement(p, p).refines

    @pytest.mark.parametrize(
        "make_concrete",
        [seqlock_client, ticketlock_client, spinlock_client],
        ids=["seqlock", "ticketlock", "spinlock"],
    )
    def test_locks_refine_abstract(self, make_concrete):
        result = check_program_refinement(
            make_concrete(), abstract_lock_client()
        )
        assert result.refines
        assert result.concrete_traces >= 1
        assert not result.cyclic_client_change

    def test_broken_lock_rejected(self):
        from repro.litmus.clients import lock_client

        def broken_fill(obj, method, dest=None):
            if method == "acquire":
                return A.LibBlock(
                    A.do_until(
                        A.Cas("_b", "lk", Lit(0), Lit(1)), Reg("_b")
                    )
                )
            return A.LibBlock(A.Write("lk", Lit(0)))  # relaxed: broken

        concrete = lock_client(broken_fill, lib_vars={"lk": 0})
        result = check_program_refinement(concrete, abstract_lock_client())
        assert not result.refines
        assert result.unmatched

    def test_abstract_does_not_refine_concrete_weaker(self):
        """Refinement is directional: a client over the *relaxed* stack
        does not refine the same client over the synchronising stack."""
        from tests.conftest import stack_program

        weak = stack_program(sync=False)
        strong = stack_program(sync=True)
        # weak ⊑ strong fails (weak has the stale-read trace)…
        assert not check_program_refinement(weak, strong).refines
        # …while strong ⊑ weak holds (sync removes behaviours).
        assert check_program_refinement(strong, weak).refines
