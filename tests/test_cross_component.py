"""Cross-component synchronisation (paper §3.3's headline feature).

"The semantics accommodates both client synchronisation affecting a
library, and vice versa."  The lock/stack tests exercise the
library-to-client direction; here the *reverse* is pinned down: a
release/acquire handshake on a **client** variable must transfer each
thread's view of **library** variables too, and vice versa for relaxed
handshakes.
"""

import pytest

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.semantics.explore import explore


def _program(release: bool, acquire: bool) -> Program:
    """t1: write library glb (relaxed, inside the library); publish via a
    *client* flag.  t2: acquire the client flag; read glb in the library.
    """
    t1 = A.seq(
        A.LibBlock(A.Write("glb", Lit(7))),
        A.Write("flag", Lit(1), release=release),
    )
    t2 = A.seq(
        A.Read("r1", "flag", acquire=acquire),
        A.LibBlock(A.Read("r2", "glb")),
        A.LocalAssign("out", Reg("r2")),
    )
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={"flag": 0},
        lib_vars={"glb": 0},
    )


class TestClientSyncTransfersLibraryViews:
    def test_release_acquire_publishes_library_write(self):
        outcomes = explore(_program(True, True)).terminal_locals(
            ("2", "r1"), ("2", "out")
        )
        # Once the client flag is read as 1, the library read *must*
        # return 7: the client handshake advanced t2's β-view.
        assert (1, 0) not in outcomes
        assert (1, 7) in outcomes
        assert (0, 0) in outcomes

    def test_relaxed_flag_does_not_publish(self):
        outcomes = explore(_program(False, False)).terminal_locals(
            ("2", "r1"), ("2", "out")
        )
        assert (1, 0) in outcomes  # stale library read possible

    def test_release_only_insufficient(self):
        outcomes = explore(_program(True, False)).terminal_locals(
            ("2", "r1"), ("2", "out")
        )
        assert (1, 0) in outcomes


class TestLibrarySyncTransfersClientViews:
    def _program(self, release: bool, acquire: bool) -> Program:
        """The mirror image: publish a *client* write via a library flag."""
        t1 = A.seq(
            A.Write("d", Lit(5)),
            A.LibBlock(A.Write("lflag", Lit(1), release=release)),
        )
        t2 = A.seq(
            A.LibBlock(A.Read("r1", "lflag", acquire=acquire)),
            A.Read("r2", "d"),
        )
        return Program(
            threads={"1": Thread(t1), "2": Thread(t2)},
            client_vars={"d": 0},
            lib_vars={"lflag": 0},
        )

    def test_library_handshake_publishes_client_write(self):
        outcomes = explore(self._program(True, True)).terminal_locals(
            ("2", "r1"), ("2", "r2")
        )
        assert (1, 0) not in outcomes
        assert (1, 5) in outcomes

    def test_relaxed_library_flag_does_not(self):
        outcomes = explore(self._program(False, False)).terminal_locals(
            ("2", "r1"), ("2", "r2")
        )
        assert (1, 0) in outcomes


class TestCasHandshakeAcrossComponents:
    def test_client_cas_transfers_library_views(self):
        """An update (CAS) on a client variable synchronises library
        views too — the Update rule's ctview computation."""
        t1 = A.seq(
            A.LibBlock(A.Write("glb", Lit(9))),
            A.Write("flag", Lit(1), release=True),
        )
        t2 = A.seq(
            A.Cas("ok", "flag", Lit(1), Lit(2)),
            A.LibBlock(A.Read("r", "glb")),
        )
        p = Program(
            threads={"1": Thread(t1), "2": Thread(t2)},
            client_vars={"flag": 0},
            lib_vars={"glb": 0},
        )
        outcomes = explore(p).terminal_locals(("2", "ok"), ("2", "r"))
        # Successful CAS on the released flag ⇒ library read sees 9.
        assert (True, 0) not in outcomes
        assert (True, 9) in outcomes
        # Failed CAS (read stale 0) leaves the library view alone.
        assert any(ok is False for ok, _ in outcomes)
