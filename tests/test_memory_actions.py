"""Tests for action constructors and classification."""

import pytest

from repro.memory.actions import (
    Action,
    is_acquiring,
    is_method,
    is_modifying,
    is_releasing,
    is_update,
    is_write,
    mk_method,
    mk_read,
    mk_update,
    mk_write,
    rdval,
    wrval,
)


class TestConstructors:
    def test_relaxed_read(self):
        a = mk_read("x", 1, "t1")
        assert a.kind == "rd" and a.var == "x" and a.val == 1

    def test_acquiring_read(self):
        assert mk_read("x", 1, "t1", acquire=True).kind == "rdA"

    def test_relaxed_write(self):
        assert mk_write("x", 1, "t1").kind == "wr"

    def test_releasing_write(self):
        assert mk_write("x", 1, "t1", release=True).kind == "wrR"

    def test_update(self):
        a = mk_update("x", 0, 1, "t1")
        assert a.kind == "updRA" and a.rdval == 0 and a.val == 1

    def test_method(self):
        a = mk_method("l", "acquire", tid="t1", index=3, sync=False)
        assert a.kind == "meth" and a.var == "l" and a.index == 3


class TestClassification:
    def test_is_write(self):
        assert is_write(mk_write("x", 1, "t"))
        assert is_write(mk_write("x", 1, "t", release=True))
        assert is_write(mk_update("x", 0, 1, "t"))
        assert not is_write(mk_read("x", 1, "t"))
        assert not is_write(mk_method("l", "release", index=2))

    def test_is_modifying(self):
        assert is_modifying(mk_method("l", "acquire", index=1))
        assert is_modifying(mk_write("x", 1, "t"))
        assert not is_modifying(mk_read("x", 1, "t"))

    def test_is_releasing_wr(self):
        # WR = releasing writes: wrR, updRA, synchronising method ops.
        assert is_releasing(mk_write("x", 1, "t", release=True))
        assert is_releasing(mk_update("x", 0, 1, "t"))
        assert not is_releasing(mk_write("x", 1, "t"))
        assert is_releasing(mk_method("l", "release", index=2, sync=True))
        assert not is_releasing(mk_method("l", "acquire", index=1, sync=False))

    def test_is_acquiring_ra(self):
        # RA = acquiring reads: rdA, updRA.
        assert is_acquiring(mk_read("x", 1, "t", acquire=True))
        assert is_acquiring(mk_update("x", 0, 1, "t"))
        assert not is_acquiring(mk_read("x", 1, "t"))

    def test_is_update_and_method(self):
        assert is_update(mk_update("x", 0, 1, "t"))
        assert not is_update(mk_write("x", 1, "t"))
        assert is_method(mk_method("l", "init", index=0))


class TestValues:
    def test_wrval_of_writes(self):
        assert wrval(mk_write("x", 7, "t")) == 7
        assert wrval(mk_update("x", 1, 2, "t")) == 2
        assert wrval(mk_method("s", "push", val=9, index=1)) == 9

    def test_wrval_of_read_raises(self):
        with pytest.raises(ValueError):
            wrval(mk_read("x", 1, "t"))

    def test_rdval(self):
        assert rdval(mk_read("x", 3, "t")) == 3
        assert rdval(mk_update("x", 4, 5, "t")) == 4
        with pytest.raises(ValueError):
            rdval(mk_write("x", 1, "t"))


class TestIdentity:
    def test_equality_structural(self):
        assert mk_write("x", 1, "t") == mk_write("x", 1, "t")
        assert mk_write("x", 1, "t") != mk_write("x", 1, "u")

    def test_hashable(self):
        assert hash(mk_read("x", 1, "t")) == hash(mk_read("x", 1, "t"))

    def test_repr_readable(self):
        assert "acquire" in repr(mk_method("l", "acquire", tid="t", index=1))
        assert "x" in repr(mk_write("x", 1, "t"))
        assert "->" in repr(mk_update("x", 0, 1, "t"))
