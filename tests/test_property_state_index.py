"""Differential properties: indexed vs naive component states.

:class:`~repro.memory.state.ComponentState` answers observation queries
through an incrementally-maintained per-variable index;
:mod:`repro.memory.naive` retains the original full-scan reference.  The
two representations are driven through the *real* transition rules in
lockstep over the full litmus catalog, the abstract-object clients and
hypothesis-generated random programs, asserting at every reachable
configuration that

* the raw component states are bit-identical (same ops, views, covered
  sets — the index changes no numeric timestamp);
* every observation query (``obs``, ``observable_uncovered``,
  ``ops_on``, ``max_ts``, ``last_op``, ``fresh_ts``) agrees;
* canonical keys and per-configuration successor *sets* (compared by
  canonical key) are identical.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.litmus.catalog import LITMUS_TESTS
from repro.memory.naive import (
    as_naive,
    naive_canonical_key,
    naive_initial_config,
)
from repro.semantics.canon import canonical_key
from repro.semantics.config import initial_config
from repro.semantics.step import successors
from tests.conftest import abstract_lock_client, stack_program

#: Safety cap: every space below is explored exhaustively well within it.
MAX_PAIRS = 30_000


def _assert_component_match(indexed, naive, tids_vars):
    """Field-level and query-level agreement of the two representations."""
    assert indexed.ops == naive.ops
    assert indexed.tview == naive.tview
    assert indexed.mview == naive.mview
    assert indexed.cvd == naive.cvd
    assert set(indexed.timestamps()) == set(naive.timestamps())
    variables = {op.act.var for op in indexed.ops}
    for var in variables:
        assert indexed.ops_on(var) == naive.ops_on(var)
        assert indexed.max_ts(var) == naive.max_ts(var)
        assert indexed.last_op(var) == naive.last_op(var)
        for anchor in indexed.ops_on(var):
            assert indexed.fresh_ts(var, anchor.ts) == naive.fresh_ts(
                var, anchor.ts
            )
    for tid, var in tids_vars:
        assert indexed.obs(tid, var) == naive.obs(tid, var)
        assert indexed.observable_uncovered(
            tid, var
        ) == naive.observable_uncovered(tid, var)
        assert indexed.thread_view_map(tid) == naive.thread_view_map(tid)


def assert_differential(program: Program, max_pairs: int = MAX_PAIRS):
    """Lockstep BFS of the indexed and naive representations."""
    init_i = initial_config(program)
    init_n = naive_initial_config(program)
    ki = canonical_key(program, init_i)
    assert ki == canonical_key(program, init_n)
    # The pre-index encoding is a different byte encoding of the same
    # quotient: it must identify exactly the canonical states the new
    # encoding identifies (checked via the seen-set bijection below).
    seen = {ki}
    seen_naive_enc = {naive_canonical_key(program, init_n)}
    queue = deque([(init_i, init_n)])
    pairs = 0
    while queue:
        cfg_i, cfg_n = queue.popleft()
        pairs += 1
        assert pairs <= max_pairs, "differential space unexpectedly large"
        _assert_component_match(
            cfg_i.gamma, cfg_n.gamma, [(t, x) for (t, x) in cfg_i.gamma.tview]
        )
        _assert_component_match(
            cfg_i.beta, cfg_n.beta, [(t, x) for (t, x) in cfg_i.beta.tview]
        )
        succ_i = {
            canonical_key(program, tr.target): tr.target
            for tr in successors(program, cfg_i)
        }
        succ_n = {
            canonical_key(program, tr.target): tr.target
            for tr in successors(program, cfg_n)
        }
        assert set(succ_i) == set(succ_n)
        for key, target_i in succ_i.items():
            if key not in seen:
                seen.add(key)
                seen_naive_enc.add(naive_canonical_key(program, succ_n[key]))
                queue.append((target_i, succ_n[key]))
    # Both encodings induce the same quotient: one distinct old-style
    # key per distinct new-style key.
    assert len(seen_naive_enc) == len(seen)


@pytest.mark.parametrize(
    "test", LITMUS_TESTS, ids=[t.name for t in LITMUS_TESTS]
)
def test_litmus_catalog_differential(test):
    assert_differential(test.build())


@pytest.mark.parametrize(
    "build",
    [abstract_lock_client, lambda: stack_program(sync=True)],
    ids=["abstract-lock", "stack-mp"],
)
def test_object_programs_differential(build):
    assert_differential(build())


def test_as_naive_round_trip():
    """Converting a state to the naive representation changes nothing
    observable, including after further steps."""
    cfg = initial_config(LITMUS_TESTS[0].build())
    gamma = cfg.gamma
    naive = as_naive(gamma)
    assert gamma.ops == naive.ops and gamma.tview == naive.tview
    for (tid, var) in gamma.tview:
        assert gamma.obs(tid, var) == naive.obs(tid, var)


# -- random programs --------------------------------------------------------

VARS = ("x", "y")


@st.composite
def atomic_commands(draw, regs=("r1", "r2")):
    kind = draw(
        st.sampled_from(["write", "writeR", "read", "readA", "cas", "fai"])
    )
    var = draw(st.sampled_from(VARS))
    reg = draw(st.sampled_from(regs))
    val = draw(st.integers(min_value=0, max_value=2))
    if kind == "write":
        return A.Write(var, Lit(val))
    if kind == "writeR":
        return A.Write(var, Lit(val), release=True)
    if kind == "read":
        return A.Read(reg, var)
    if kind == "readA":
        return A.Read(reg, var, acquire=True)
    if kind == "cas":
        return A.Cas(reg, var, Lit(val), Lit(val + 1))
    return A.Fai(reg, var)


@st.composite
def programs(draw):
    t1 = A.seq(*[draw(atomic_commands()) for _ in range(draw(st.integers(1, 3)))])
    t2 = A.seq(*[draw(atomic_commands()) for _ in range(draw(st.integers(1, 3)))])
    return Program(
        threads={"1": Thread(t1), "2": Thread(t2)},
        client_vars={v: 0 for v in VARS},
    )


@settings(max_examples=25, deadline=None)
@given(p=programs())
def test_random_programs_differential(p):
    assert_differential(p)
