"""Unit and property tests for the immutable map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.fmap import FMap

keys = st.text(min_size=1, max_size=4)
values = st.integers(min_value=-10, max_value=10)
dicts = st.dictionaries(keys, values, max_size=8)


class TestBasics:
    def test_empty(self):
        m = FMap()
        assert len(m) == 0
        assert "a" not in m
        assert m.get("a") is None

    def test_from_dict(self):
        m = FMap({"a": 1, "b": 2})
        assert m["a"] == 1
        assert m["b"] == 2
        assert len(m) == 2

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            FMap()["nope"]

    def test_iteration(self):
        m = FMap({"a": 1, "b": 2})
        assert sorted(m) == ["a", "b"]
        assert dict(m.items()) == {"a": 1, "b": 2}


class TestFunctionalUpdate:
    def test_set_does_not_mutate(self):
        m1 = FMap({"a": 1})
        m2 = m1.set("a", 2)
        assert m1["a"] == 1
        assert m2["a"] == 2

    def test_set_adds(self):
        m = FMap().set("x", 5)
        assert m["x"] == 5

    def test_set_many(self):
        m = FMap({"a": 1}).set_many({"b": 2, "c": 3})
        assert dict(m.items()) == {"a": 1, "b": 2, "c": 3}

    def test_set_many_empty_returns_self(self):
        m = FMap({"a": 1})
        assert m.set_many({}) is m

    def test_set_same_binding_returns_self(self):
        m = FMap({"a": 1})
        assert m.set("a", 1) is m
        # A no-op update must not discard the cached hash.
        h = hash(m)
        assert m.set("a", 1)._hash == h

    def test_set_none_value_not_confused_with_absent(self):
        m = FMap({"a": None})
        assert m.set("a", None) is m
        assert FMap({}).set("a", None) is not FMap({})
        assert FMap().set("a", None)["a"] is None

    def test_set_many_all_same_returns_self(self):
        m = FMap({"a": 1, "b": 2})
        assert m.set_many({"a": 1, "b": 2}) is m
        assert m.set_many({"b": 2}) is m

    def test_set_many_one_change_copies(self):
        m = FMap({"a": 1, "b": 2})
        m2 = m.set_many({"a": 1, "b": 3})
        assert m2 is not m
        assert dict(m2.items()) == {"a": 1, "b": 3}

    def test_remove(self):
        m1 = FMap({"a": 1, "b": 2})
        m2 = m1.remove("a")
        assert "a" not in m2
        assert "a" in m1

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            FMap().remove("a")


class TestIdentity:
    def test_equality_structural(self):
        assert FMap({"a": 1}) == FMap({"a": 1})
        assert FMap({"a": 1}) != FMap({"a": 2})

    def test_equality_with_plain_mapping(self):
        assert FMap({"a": 1}) == {"a": 1}

    def test_hash_consistent(self):
        assert hash(FMap({"a": 1, "b": 2})) == hash(FMap({"b": 2, "a": 1}))

    def test_usable_as_dict_key(self):
        d = {FMap({"a": 1}): "x"}
        assert d[FMap({"a": 1})] == "x"

    @given(d=dicts)
    def test_property_roundtrip(self, d):
        assert dict(FMap(d).items()) == d

    @given(d=dicts, k=keys, v=values)
    def test_property_set_get(self, d, k, v):
        m = FMap(d).set(k, v)
        assert m[k] == v
        for other, val in d.items():
            if other != k:
                assert m[other] == val

    @given(d=dicts)
    def test_property_hash_equals_imply_eq_dict(self, d):
        m1, m2 = FMap(d), FMap(dict(d))
        assert m1 == m2 and hash(m1) == hash(m2)


class TestSortedItems:
    def test_items_sorted_deterministic(self):
        m = FMap({"b": 2, "a": 1})
        assert m.items_sorted() == (("a", 1), ("b", 2))

    def test_items_sorted_heterogeneous_keys(self):
        # Tuple keys of mixed shapes sort by repr without TypeError.
        m = FMap({("t1", "x"): 1, ("t2", "y"): 2})
        assert len(m.items_sorted()) == 2
