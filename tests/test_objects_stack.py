"""Tests for the abstract stack (Figures 1–3)."""

import pytest

from repro.lang import ast as A
from repro.lang.expr import EMPTY
from repro.lang.program import Program
from repro.memory.initial import initial_states
from repro.objects.stack import AbstractStack


@pytest.fixture()
def setup():
    stack = AbstractStack("s")
    program = Program(
        threads={"1": A.skip(), "2": A.skip()},
        client_vars={"d": 0},
        objects=(stack,),
    )
    gamma, beta = initial_states(program)
    return stack, gamma, beta


def the(steps):
    out = list(steps)
    assert len(out) == 1
    return out[0]


class TestContent:
    def test_initially_empty(self, setup):
        stack, _g, beta = setup
        assert stack.content(beta) == ()
        assert stack.top(beta) is None

    def test_push_pop_lifo(self, setup):
        stack, gamma, beta = setup
        s = the(stack.method_steps(beta, gamma, "1", "push", 1))
        s = the(stack.method_steps(s.lib, s.cli, "1", "push", 2))
        assert [v for v, _ in stack.content(s.lib)] == [1, 2]
        assert stack.top(s.lib)[0] == 2
        p = the(stack.method_steps(s.lib, s.cli, "2", "pop"))
        assert p.retval == 2
        p2 = the(stack.method_steps(p.lib, p.cli, "2", "pop"))
        assert p2.retval == 1
        assert stack.content(p2.lib) == ()


class TestEmptyPop:
    def test_returns_empty_without_state_change(self, setup):
        stack, gamma, beta = setup
        p = the(stack.method_steps(beta, gamma, "1", "pop"))
        assert p.retval == EMPTY
        assert p.lib is beta and p.cli is gamma
        assert p.action is None

    def test_acquiring_variant_same(self, setup):
        stack, gamma, beta = setup
        p = the(stack.method_steps(beta, gamma, "1", "popA"))
        assert p.retval == EMPTY


class TestOperationRecording:
    def test_push_indices_count_ops(self, setup):
        stack, gamma, beta = setup
        s = the(stack.method_steps(beta, gamma, "1", "pushR", 1))
        assert s.action.index == 1  # init is op 0
        s2 = the(stack.method_steps(s.lib, s.cli, "1", "push", 2))
        assert s2.action.index == 2

    def test_push_requires_argument(self, setup):
        stack, gamma, beta = setup
        with pytest.raises(ValueError):
            list(stack.method_steps(beta, gamma, "1", "push"))

    def test_sync_flag_follows_annotation(self, setup):
        stack, gamma, beta = setup
        rel = the(stack.method_steps(beta, gamma, "1", "pushR", 1))
        assert rel.action.sync
        rlx = the(stack.method_steps(rel.lib, rel.cli, "1", "push", 2))
        assert not rlx.action.sync

    def test_pop_records_value(self, setup):
        stack, gamma, beta = setup
        s = the(stack.method_steps(beta, gamma, "1", "push", 7))
        p = the(stack.method_steps(s.lib, s.cli, "2", "pop"))
        assert p.action.val == 7
        assert p.action.method == "pop"


class TestSynchronisation:
    def _publish(self, setup, push_method, pop_method):
        from repro.memory.transitions import write_steps

        stack, gamma, beta = setup
        # Thread 1: d := 5 (client); push(1).
        _a, _w, gamma1, _ = the(
            write_steps(gamma, beta, "1", "d", 5, release=False)
        )
        dnew = gamma1.thread_view("1", "d")
        s = the(stack.method_steps(beta, gamma1, "1", push_method, 1))
        # Thread 2 pops.
        p = the(stack.method_steps(s.lib, s.cli, "2", pop_method))
        assert p.retval == 1
        return dnew, p

    def test_release_acquire_pair_transfers_view(self, setup):
        dnew, p = self._publish(setup, "pushR", "popA")
        assert p.cli.thread_view("2", "d") == dnew

    def test_relaxed_push_does_not_transfer(self, setup):
        dnew, p = self._publish(setup, "push", "popA")
        assert p.cli.thread_view("2", "d") != dnew

    def test_relaxed_pop_does_not_transfer(self, setup):
        dnew, p = self._publish(setup, "pushR", "pop")
        assert p.cli.thread_view("2", "d") != dnew

    def test_unknown_method_raises(self, setup):
        stack, gamma, beta = setup
        with pytest.raises(ValueError):
            list(stack.method_steps(beta, gamma, "1", "peek"))
