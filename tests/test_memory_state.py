"""Tests for the component state: observability, updates, invariants."""

from fractions import Fraction

import pytest

from repro.lang.program import Program
from repro.memory.actions import Op, mk_write
from repro.memory.initial import initial_states
from repro.memory.state import ComponentState
from repro.memory.views import view_union
from repro.util.fmap import FMap
from tests.conftest import mp_relaxed


@pytest.fixture()
def init_pair():
    return initial_states(mp_relaxed())


class TestInitialObservability:
    def test_every_thread_sees_init(self, init_pair):
        gamma, _beta = init_pair
        for t in ("1", "2"):
            for x in ("d", "f"):
                obs = gamma.obs(t, x)
                assert len(obs) == 1
                assert obs[0].ts == Fraction(0)

    def test_unknown_variable_unobservable(self, init_pair):
        gamma, _ = init_pair
        assert gamma.obs("1", "nope") == ()

    def test_nothing_covered(self, init_pair):
        gamma, _ = init_pair
        assert gamma.cvd == frozenset()
        assert gamma.observable_uncovered("1", "d") == gamma.obs("1", "d")


class TestAddOp:
    def test_add_op_updates_everything(self, init_pair):
        gamma, _ = init_pair
        old = gamma.last_op("d")
        new = Op(mk_write("d", 5, "1"), Fraction(1))
        tview = gamma.thread_view_map("1").set("d", new)
        mview = tview
        gamma2 = gamma.add_op(new, mview, "1", tview)
        assert new in gamma2.ops
        assert gamma2.thread_view("1", "d") == new
        assert gamma2.mview[new] == mview
        # Thread 2's view untouched.
        assert gamma2.thread_view("2", "d") == old
        # Original state unchanged (immutability).
        assert new not in gamma.ops

    def test_add_op_with_cover(self, init_pair):
        gamma, _ = init_pair
        old = gamma.last_op("d")
        new = Op(mk_write("d", 5, "1"), Fraction(1))
        tview = gamma.thread_view_map("1").set("d", new)
        gamma2 = gamma.add_op(new, tview, "1", tview, cover=old)
        assert old in gamma2.cvd
        assert old not in gamma2.observable_uncovered("2", "d")
        # Covered op is still *observable* (readable), just not writable-after.
        assert old in gamma2.obs("2", "d")


class TestObsFiltering:
    def test_obs_excludes_before_viewfront(self, init_pair):
        gamma, _ = init_pair
        w1 = Op(mk_write("d", 1, "1"), Fraction(1))
        w2 = Op(mk_write("d", 2, "1"), Fraction(2))
        tview1 = gamma.thread_view_map("1").set("d", w1)
        gamma = gamma.add_op(w1, tview1, "1", tview1)
        tview2 = gamma.thread_view_map("1").set("d", w2)
        gamma = gamma.add_op(w2, tview2, "1", tview2)
        # Thread 1's viewfront is w2: only w2 observable.
        assert gamma.obs("1", "d") == (w2,)
        # Thread 2 still at the initial write: sees all three.
        assert len(gamma.obs("2", "d")) == 3

    def test_obs_sorted_by_timestamp(self, init_pair):
        gamma, _ = init_pair
        w1 = Op(mk_write("d", 1, "1"), Fraction(2))
        w2 = Op(mk_write("d", 2, "1"), Fraction(1))
        tv = gamma.thread_view_map("1")
        gamma = gamma.add_op(w1, tv, "1", tv)
        gamma = gamma.add_op(w2, tv, "1", tv)
        obs = gamma.obs("2", "d")
        assert [o.ts for o in obs] == sorted(o.ts for o in obs)


class TestQueries:
    def test_ops_on(self, init_pair):
        gamma, _ = init_pair
        assert len(gamma.ops_on("d")) == 1
        assert gamma.ops_on("nope") == ()

    def test_max_ts_and_last_op(self, init_pair):
        gamma, _ = init_pair
        w = Op(mk_write("d", 5, "1"), Fraction(3))
        tv = gamma.thread_view_map("1").set("d", w)
        gamma2 = gamma.add_op(w, tv, "1", tv)
        assert gamma2.max_ts("d") == Fraction(3)
        assert gamma2.last_op("d") == w

    def test_timestamps(self, init_pair):
        gamma, _ = init_pair
        assert set(gamma.timestamps()) == {Fraction(0)}


class TestIndex:
    def test_index_matches_ops(self, init_pair):
        gamma, _ = init_pair
        for var, (seq, ts_seq) in gamma.index.items():
            assert all(op.act.var == var for op in seq)
            assert ts_seq == tuple(op.ts for op in seq)
            assert list(ts_seq) == sorted(ts_seq)
        indexed = {op for seq, _ in gamma.index.values() for op in seq}
        assert indexed == set(gamma.ops)

    def test_add_op_maintains_index_incrementally(self, init_pair):
        gamma, _ = init_pair
        # Insert out of timestamp order: 2 then 1 — the index must stay
        # sorted without a rescan of ops.
        w2 = Op(mk_write("d", 2, "1"), Fraction(2))
        w1 = Op(mk_write("d", 1, "1"), Fraction(1))
        tv = gamma.thread_view_map("1")
        gamma = gamma.add_op(w2, tv, "1", tv)
        gamma = gamma.add_op(w1, tv, "1", tv)
        assert gamma.last_op("d") == w2
        assert [op.ts for op in gamma.ops_on("d")] == [
            Fraction(0),
            Fraction(1),
            Fraction(2),
        ]
        assert gamma.all_ts == (
            Fraction(0),
            Fraction(0),
            Fraction(1),
            Fraction(2),
        )
        gamma.check_invariants(("1", "2"))

    def test_fresh_ts_midpoint_and_top(self, init_pair):
        gamma, _ = init_pair
        w = Op(mk_write("d", 1, "1"), Fraction(1))
        tv = gamma.thread_view_map("1")
        gamma = gamma.add_op(w, tv, "1", tv)
        # Between init (0) and w (1): the canonical midpoint.
        assert gamma.fresh_ts("d", Fraction(0)) == Fraction(1, 2)
        # Above the maximum: max + 1.
        assert gamma.fresh_ts("d", Fraction(1)) == Fraction(2)

    def test_fresh_ts_matches_component_wide_fresh_after(self, init_pair):
        # The ceiling is component-wide (the paper's fresh over *ops*),
        # not per-variable: an f-op in the gap above a d-anchor caps it.
        from repro.util.rationals import fresh_after

        gamma, _ = init_pair
        wf = Op(mk_write("f", 1, "1"), Fraction(1, 3))
        tv = gamma.thread_view_map("1")
        gamma = gamma.add_op(wf, tv, "1", tv)
        assert gamma.fresh_ts("d", Fraction(0)) == fresh_after(
            Fraction(0), gamma.timestamps()
        )
        assert gamma.fresh_ts("d", Fraction(0)) == Fraction(1, 6)

    def test_with_thread_view_no_op_returns_self(self, init_pair):
        gamma, _ = init_pair
        unchanged = gamma.with_thread_view("1", gamma.thread_view_map("1"))
        assert unchanged is gamma

    def test_thread_view_map_cached_and_correct_after_updates(self, init_pair):
        gamma, _ = init_pair
        assert gamma.thread_view_map("1") is gamma.thread_view_map("1")
        w = Op(mk_write("d", 7, "1"), Fraction(1))
        tview = gamma.thread_view_map("1").set("d", w)
        gamma2 = gamma.add_op(w, tview, "1", tview)
        assert gamma2.thread_view_map("1") == tview
        # The other thread's (derived) view map is unaffected.
        assert gamma2.thread_view_map("2") == gamma.thread_view_map("2")


class TestInvariants:
    def test_initial_states_coherent(self, init_pair):
        gamma, beta = init_pair
        gamma.check_invariants(("1", "2"))
        beta.check_invariants(("1", "2"))

    def test_detects_dangling_tview(self, init_pair):
        gamma, _ = init_pair
        bogus = Op(mk_write("d", 9, "1"), Fraction(9))
        broken = ComponentState(
            ops=gamma.ops,
            tview=gamma.tview.set(("1", "d"), bogus),
            mview=gamma.mview,
            cvd=gamma.cvd,
        )
        with pytest.raises(AssertionError):
            broken.check_invariants(("1", "2"))

    def test_detects_duplicate_timestamp(self, init_pair):
        gamma, _ = init_pair
        dup = Op(mk_write("d", 9, "2"), Fraction(0))  # clashes with init at 0
        broken = ComponentState(
            ops=gamma.ops | {dup},
            tview=gamma.tview,
            mview=gamma.mview.set(dup, gamma.thread_view_map("1")),
            cvd=gamma.cvd,
        )
        with pytest.raises(AssertionError):
            broken.check_invariants(("1", "2"))
