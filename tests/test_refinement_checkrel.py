"""Tests for checking user-supplied simulation relations (Definition 8).

The paper's Isabelle proofs of Propositions 9 and 10 supply the
simulation relation explicitly; here we express those relations and have
the checker discharge the three conditions — then falsify deliberately
wrong relations.
"""

import pytest

from repro.refinement.checkrel import check_simulation_relation
from tests.conftest import (
    abstract_lock_client,
    seqlock_client,
    spinlock_client,
    ticketlock_client,
)


def pcs_equal(abs_env, conc_env) -> bool:
    p_a, p_c = abs_env.program, conc_env.program
    return all(
        abs_env.pc(t) == conc_env.pc(t) for t in p_a.tids
    ) and p_a.tids == p_c.tids


def obs_refines(abs_env, conc_env) -> bool:
    from repro.refinement.traces import client_projection

    conc = client_projection(conc_env.program, conc_env.config)
    abst = client_projection(abs_env.program, abs_env.config)
    return conc.refines(abst)


def abstract_holder(abs_env):
    lock = abs_env.program.object_map["l"]
    return lock.holder(abs_env.beta)


class TestSeqlockRelation:
    """The Proposition 9 relation: client states agree, and the lock
    correspondence is glb's parity — odd iff taken — refined by the
    *completion window*: between a thread's successful CAS (which makes
    glb odd) and the end of its Acquire body there are only silent
    steps, during which the abstract lock is still free.  The abstract
    acquire fires at the body-completing step (everything else in the
    acquire loop stutters).  The paper's hand-built relation makes the
    same distinction through the implementation's local state."""

    @staticmethod
    def taker(conc_env):
        """The thread whose successful CAS currently holds glb odd."""
        last = conc_env.beta.last_op("glb")
        if last.act.kind == "updRA" and last.act.val % 2 == 1:
            return last.act.tid
        return None

    @classmethod
    def relation(cls, abs_env, conc_env) -> bool:
        if not (pcs_equal(abs_env, conc_env) and obs_refines(abs_env, conc_env)):
            return False
        taker = cls.taker(conc_env)
        # Abstract holds iff glb is taken *and* the taker's Acquire body
        # has completed (its pc left the acquire label).
        effective_held = taker is not None and conc_env.pc(taker) != 1
        return (abstract_holder(abs_env) is not None) == effective_held

    def test_relation_is_a_simulation(self):
        result = check_simulation_relation(
            seqlock_client(), abstract_lock_client(), self.relation
        )
        assert result.valid, result.failures[:2]
        assert result.related_pairs > 0
        assert result.checked_steps > 0

    def test_wrong_parity_rejected(self):
        def broken(abs_env, conc_env):
            if not (pcs_equal(abs_env, conc_env) and obs_refines(abs_env, conc_env)):
                return False
            glb = conc_env.beta.last_op("glb").act.val
            held = abstract_holder(abs_env) is not None
            return (glb % 2 == 0) == held  # inverted correspondence

        result = check_simulation_relation(
            seqlock_client(), abstract_lock_client(), broken
        )
        assert not result.valid

    def test_window_conjunct_matters(self):
        """Without the completion window the parity correspondence is
        *not* a simulation (the CAS-success step is unmatchable)."""

        def naive(abs_env, conc_env):
            if not (pcs_equal(abs_env, conc_env) and obs_refines(abs_env, conc_env)):
                return False
            glb = conc_env.beta.last_op("glb").act.val
            return (glb % 2 == 1) == (abstract_holder(abs_env) is not None)

        result = check_simulation_relation(
            seqlock_client(), abstract_lock_client(), naive
        )
        assert not result.valid
        assert any(kind == "unmatched-step" for kind, _a, _c in result.failures)

    def test_empty_relation_rejected_at_init(self):
        result = check_simulation_relation(
            seqlock_client(),
            abstract_lock_client(),
            lambda a, c: False,
        )
        assert not result.valid
        assert result.failures[0][0] == "initial"


class TestTicketlockRelation:
    """Proposition 10's relation: serving-now corresponds to completed
    handovers — the lock is held iff fewer releases than acquires have
    occurred, i.e. iff some ticket was taken and not yet served out."""

    @staticmethod
    def relation(abs_env, conc_env) -> bool:
        if not (pcs_equal(abs_env, conc_env) and obs_refines(abs_env, conc_env)):
            return False
        held = abstract_holder(abs_env) is not None
        # Concrete: the number of completed releases is sn's value; the
        # number of *effective* acquires equals the abstract acquire
        # count (pc alignment pins them); held iff acquires > releases.
        sn = conc_env.beta.last_op("sn").act.val
        acquires = sum(
            1
            for op in abs_env.beta.ops_on("l")
            if op.act.method == "acquire"
        )
        return held == (acquires > sn)

    def test_relation_is_a_simulation(self):
        result = check_simulation_relation(
            ticketlock_client(), abstract_lock_client(), self.relation
        )
        assert result.valid


class TestGenericRelation:
    """The weakest paper-shaped relation — client alignment plus the
    observation condition — is itself a simulation for all three locks
    (the timing of abstract method firing is pinned by pc equality)."""

    @staticmethod
    def relation(abs_env, conc_env) -> bool:
        return pcs_equal(abs_env, conc_env) and obs_refines(abs_env, conc_env)

    @pytest.mark.parametrize(
        "make_concrete",
        [seqlock_client, ticketlock_client, spinlock_client],
        ids=["seqlock", "ticketlock", "spinlock"],
    )
    def test_simulation(self, make_concrete):
        result = check_simulation_relation(
            make_concrete(), abstract_lock_client(), self.relation
        )
        assert result.valid

    def test_agreement_with_game_solver(self):
        """The checker and the game solver agree on validity."""
        from repro.refinement.simulation import find_forward_simulation

        conc, abst = spinlock_client(), abstract_lock_client()
        game = find_forward_simulation(conc, abst)
        supplied = check_simulation_relation(conc, abst, self.relation)
        assert game.found and supplied.valid
        # The supplied relation is contained in the game's greatest one.
        assert supplied.related_pairs <= game.relation_size
