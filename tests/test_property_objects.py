"""Model-based property tests for the abstract objects.

Hypothesis drives random method sequences against each abstract object
and an ordinary Python reference model; because the objects' operations
are totally ordered (timestamp-maximal insertion), sequential replay
must agree with the model exactly.  Structural invariants of the
operation sets are checked along the way.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.expr import EMPTY
from repro.lang.program import Program
from repro.memory.initial import initial_states
from repro.objects.counter import AbstractCounter
from repro.objects.lock import AbstractLock
from repro.objects.queue import AbstractQueue
from repro.objects.stack import AbstractStack

TIDS = ("1", "2")


def _setup(obj):
    program = Program(
        threads={t: A.skip() for t in TIDS},
        objects=(obj,),
    )
    _gamma, beta = initial_states(program)
    return program, beta, _gamma


def the(steps):
    out = list(steps)
    assert len(out) == 1
    return out[0]


stack_ops = st.lists(
    st.tuples(
        st.sampled_from(["push", "pushR", "pop", "popA"]),
        st.integers(min_value=1, max_value=5),
        st.sampled_from(TIDS),
    ),
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(ops=stack_ops)
def test_stack_agrees_with_list_model(ops):
    stack = AbstractStack("s")
    _p, lib, cli = _setup(stack)
    model = []
    for method, arg, tid in ops:
        if method.startswith("push"):
            step = the(stack.method_steps(lib, cli, tid, method, arg))
            model.append(arg)
        else:
            step = the(stack.method_steps(lib, cli, tid, method))
            expected = model.pop() if model else EMPTY
            assert step.retval == expected
        lib, cli = step.lib, step.cli
        assert [v for v, _ in stack.content(lib)] == model


queue_ops = st.lists(
    st.tuples(
        st.sampled_from(["enq", "enqR", "deq", "deqA"]),
        st.integers(min_value=1, max_value=5),
        st.sampled_from(TIDS),
    ),
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(ops=queue_ops)
def test_queue_agrees_with_fifo_model(ops):
    queue = AbstractQueue("q")
    _p, lib, cli = _setup(queue)
    model = []
    for method, arg, tid in ops:
        if method.startswith("enq"):
            step = the(queue.method_steps(lib, cli, tid, method, arg))
            model.append(arg)
        else:
            step = the(queue.method_steps(lib, cli, tid, method))
            expected = model.pop(0) if model else EMPTY
            assert step.retval == expected
        lib, cli = step.lib, step.cli
        assert [v for v, _ in queue.content(lib)] == model


lock_ops = st.lists(
    st.tuples(st.sampled_from(["acquire", "release"]), st.sampled_from(TIDS)),
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(ops=lock_ops)
def test_lock_agrees_with_owner_model(ops):
    lock = AbstractLock("l")
    _p, lib, cli = _setup(lock)
    holder = None
    count = 0
    for method, tid in ops:
        steps = list(lock.method_steps(lib, cli, tid, method))
        if method == "acquire":
            if holder is None:
                assert len(steps) == 1
                holder = tid
                count += 1
                assert steps[0].retval == count
                lib, cli = steps[0].lib, steps[0].cli
            else:
                assert steps == []  # blocked
        else:
            if holder == tid:
                assert len(steps) == 1
                holder = None
                count += 1
                lib, cli = steps[0].lib, steps[0].cli
            else:
                assert steps == []  # not the owner
        assert lock.holder(lib) == holder


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["inc", "read"]), st.sampled_from(TIDS)),
        max_size=10,
    )
)
def test_counter_agrees_with_int_model(ops):
    counter = AbstractCounter("c")
    _p, lib, cli = _setup(counter)
    model = 0
    for method, tid in ops:
        if method == "inc":
            step = the(counter.method_steps(lib, cli, tid, "inc"))
            assert step.retval == model
            model += 1
            lib, cli = step.lib, step.cli
        else:
            values = {
                s.retval for s in counter.method_steps(lib, cli, tid, "read")
            }
            # Weak reads return *some* historical value up to the model.
            assert values <= set(range(model + 1))
            assert model in values or 0 in values
        assert counter.value(lib) == model


@settings(max_examples=40, deadline=None)
@given(ops=stack_ops)
def test_object_ops_structural_invariants(ops):
    """Operation indices are consecutive and timestamps strictly
    increase in index order (total order of object operations)."""
    stack = AbstractStack("s")
    _p, lib, cli = _setup(stack)
    for method, arg, tid in ops:
        arg_val = arg if method.startswith("push") else None
        step = the(stack.method_steps(lib, cli, tid, method, arg_val))
        lib, cli = step.lib, step.cli
    recorded = sorted(lib.ops_on("s"), key=lambda op: op.ts)
    indices = [op.act.index for op in recorded]
    assert indices == list(range(len(recorded)))
