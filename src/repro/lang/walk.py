"""Generic traversal over the command AST (:mod:`repro.lang.ast`).

Every consumer that used to hand-roll the same structural recursion —
register collection in ``ast.py``, label search in ``labels.py``,
footprint summaries in ``semantics/dpor.py``, and the whole static
analysis layer (:mod:`repro.analysis`) — walks the tree through the two
primitives here instead, so the node shape table lives in exactly one
place:

:func:`iter_nodes`
    a pre-order generator yielding ``(node, path, in_lib)`` visits —
    ``path`` is the tuple of dataclass field names from the root (the
    stable "node path" of lint diagnostics) and ``in_lib`` flags
    :class:`~repro.lang.ast.LibBlock` regions;
:func:`fold`
    a bottom-up combinator ``fn(node, in_lib, child_values)`` with full
    control at every node (a ``LibBlock`` can subtract its
    ``public_regs``, a ``Labeled`` can ignore its children), plus an
    optional value-keyed memo table — AST nodes are immutable and loop
    unfoldings rebuild structurally-equal suffixes, so ``(node,
    in_lib)``-keyed memoisation hits across a whole exploration.

Both treat ``None`` (the terminated command ``⊥``) as the empty tree.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterator,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
    Type,
)

from repro.lang.ast import (
    Cas,
    Com,
    Fai,
    If,
    Labeled,
    LibBlock,
    LocalAssign,
    MethodCall,
    Node,
    Read,
    Seq,
    While,
    Write,
)
from repro.lang.expr import Expr
from repro.util.cache import evict_half

#: Child field names per interior node type; leaves are absent.
CHILD_FIELDS: Mapping[Type[Node], Tuple[str, ...]] = {
    Seq: ("first", "second"),
    If: ("then_branch", "else_branch"),
    While: ("body",),
    Labeled: ("body",),
    LibBlock: ("body",),
}

#: Expression field names per node type (nodes without expressions are
#: absent).  ``MethodCall.arg`` may be ``None`` and is skipped then.
EXPR_FIELDS: Mapping[Type[Node], Tuple[str, ...]] = {
    LocalAssign: ("expr",),
    Write: ("expr",),
    Cas: ("expect", "new"),
    MethodCall: ("arg",),
    If: ("cond",),
    While: ("cond",),
}

_LEAVES = (LocalAssign, Write, Read, Cas, Fai, MethodCall)


def children(node: Node) -> Tuple[Tuple[str, Com], ...]:
    """``(field_name, child)`` pairs of ``node``, in evaluation order.

    ``None`` children (an absent ``else`` branch) are included so that
    positions stay stable; leaves return ``()``.  Raises
    :class:`TypeError` on objects outside the AST, mirroring the strict
    recursions this module replaced.
    """
    fields = CHILD_FIELDS.get(type(node))
    if fields is None:
        if isinstance(node, _LEAVES):
            return ()
        raise TypeError(f"unknown command node: {node!r}")
    return tuple((f, getattr(node, f)) for f in fields)


def node_exprs(node: Node) -> Tuple[Expr, ...]:
    """The expressions evaluated directly by ``node`` (no descent)."""
    fields = EXPR_FIELDS.get(type(node))
    if fields is None:
        return ()
    return tuple(
        e for e in (getattr(node, f) for f in fields) if e is not None
    )


def assigned_register(node: Node) -> Optional[str]:
    """The register ``node`` writes, or ``None``.

    ``LocalAssign``/``Read``/``Cas``/``Fai`` bind their ``reg``;
    ``MethodCall`` binds its optional ``dest``.
    """
    if isinstance(node, (LocalAssign, Read, Cas, Fai)):
        return node.reg
    if isinstance(node, MethodCall):
        return node.dest
    return None


class NodeVisit(NamedTuple):
    """One pre-order visit: the node, its field path from the root, and
    whether it lies inside a ``LibBlock`` region."""

    node: Node
    path: Tuple[str, ...]
    in_lib: bool


def iter_nodes(cmd: Com, in_lib: bool = False) -> Iterator[NodeVisit]:
    """Pre-order traversal of ``cmd`` (empty for a terminated ``None``)."""
    if cmd is None:
        return
    stack = [NodeVisit(cmd, (), in_lib)]
    while stack:
        visit = stack.pop()
        yield visit
        child_lib = visit.in_lib or isinstance(visit.node, LibBlock)
        for field, child in reversed(children(visit.node)):
            if child is not None:
                stack.append(
                    NodeVisit(child, visit.path + (field,), child_lib)
                )


def format_path(path: Tuple[str, ...]) -> str:
    """Render a node path for diagnostics (the root is ``<body>``)."""
    return ".".join(path) if path else "<body>"


#: Sentinel distinguishing a memo miss from a cached ``None``-able value.
_MISS = object()


def fold(
    cmd: Com,
    fn: Callable,
    in_lib: bool = False,
    cache: Optional[Dict] = None,
    cache_max: Optional[int] = None,
):
    """Bottom-up reduction of ``cmd``: ``fn(node, in_lib, child_values)``.

    ``child_values`` holds one value per :func:`children` entry (a
    ``None`` child folds through ``fn(None, in_lib, ())``, so ``fn``
    sees the terminated command exactly once per absent branch).
    ``in_lib`` flips to ``True`` below a ``LibBlock`` — the block node
    itself is folded with the *outer* flag, its body with the inner
    one, which is what lets ``fn`` scope ``public_regs`` subtraction.

    ``cache`` memoises results under ``(node, in_lib)`` keys; when
    ``cache_max`` is set the table sheds its oldest-inserted half at
    the bound (:func:`repro.util.cache.evict_half`).  Only pass a cache
    when ``fn`` is a pure function of the node — the table is consulted
    before descending.
    """
    if cmd is None:
        return fn(None, in_lib, ())
    if cache is not None:
        hit = cache.get((cmd, in_lib), _MISS)
        if hit is not _MISS:
            return hit
    child_lib = in_lib or isinstance(cmd, LibBlock)
    values = tuple(
        fold(child, fn, child_lib, cache, cache_max)
        for _field, child in children(cmd)
    )
    result = fn(cmd, in_lib, values)
    if cache is not None:
        if cache_max is not None and len(cache) >= cache_max:
            evict_half(cache)
        cache[(cmd, in_lib)] = result
    return result
