"""Expressions over local registers (paper §3.1, ``Exp_L``).

Expressions must only involve local variables (registers); global
variables are accessed exclusively through the read/write/update commands
so that every global access is a distinct transition of the memory
semantics.

Values are Python ints and bools plus the distinguished :data:`EMPTY`
value returned by a pop on an empty stack (the paper's ``Empty``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Union

from repro.util.errors import SemanticsError


class _Empty:
    """Singleton for the ``Empty`` return value of pop on an empty stack."""

    _instance: "_Empty | None" = None

    def __new__(cls) -> "_Empty":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Empty"

    def __hash__(self) -> int:
        return hash("repro.EMPTY")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Empty)


#: The value returned by ``pop`` on an empty stack.
EMPTY = _Empty()

#: Values a register or global variable may hold.
Value = Union[int, bool, _Empty, None]


@dataclass(frozen=True)
class Expr:
    """Base class for local expressions."""

    def __add__(self, other: "Expr | Value") -> "BinOp":
        return BinOp("+", self, _coerce(other))

    def __sub__(self, other: "Expr | Value") -> "BinOp":
        return BinOp("-", self, _coerce(other))

    def __mul__(self, other: "Expr | Value") -> "BinOp":
        return BinOp("*", self, _coerce(other))

    def __mod__(self, other: "Expr | Value") -> "BinOp":
        return BinOp("%", self, _coerce(other))

    def eq(self, other: "Expr | Value") -> "BinOp":
        return BinOp("==", self, _coerce(other))

    def ne(self, other: "Expr | Value") -> "BinOp":
        return BinOp("!=", self, _coerce(other))

    def lt(self, other: "Expr | Value") -> "BinOp":
        return BinOp("<", self, _coerce(other))

    def le(self, other: "Expr | Value") -> "BinOp":
        return BinOp("<=", self, _coerce(other))

    def gt(self, other: "Expr | Value") -> "BinOp":
        return BinOp(">", self, _coerce(other))

    def ge(self, other: "Expr | Value") -> "BinOp":
        return BinOp(">=", self, _coerce(other))

    def and_(self, other: "Expr | Value") -> "BinOp":
        return BinOp("and", self, _coerce(other))

    def or_(self, other: "Expr | Value") -> "BinOp":
        return BinOp("or", self, _coerce(other))

    def not_(self) -> "UnOp":
        return UnOp("not", self)

    def even(self) -> "UnOp":
        return UnOp("even", self)

    def odd(self) -> "UnOp":
        return UnOp("odd", self)


@dataclass(frozen=True)
class Lit(Expr):
    """A literal value ``n ∈ Val``."""

    value: Value


@dataclass(frozen=True)
class Reg(Expr):
    """A local register ``r ∈ LVar``."""

    name: str


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operator application ``⊖ Exp_L``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator application ``Exp_L ⊕ Exp_L``."""

    op: str
    left: Expr
    right: Expr


def lit(value: Value) -> Lit:
    """Shorthand constructor for a literal."""
    return Lit(value)


def reg(name: str) -> Reg:
    """Shorthand constructor for a register reference."""
    return Reg(name)


def _coerce(x: "Expr | Value") -> Expr:
    return x if isinstance(x, Expr) else Lit(x)


_UN_OPS: Mapping[str, Callable[[Value], Value]] = {
    "not": lambda v: not v,
    "-": lambda v: -v,  # type: ignore[operator]
    "even": lambda v: isinstance(v, int) and v % 2 == 0,
    "odd": lambda v: isinstance(v, int) and v % 2 == 1,
}

_BIN_OPS: Mapping[str, Callable[[Value, Value], Value]] = {
    "+": lambda a, b: a + b,  # type: ignore[operator]
    "-": lambda a, b: a - b,  # type: ignore[operator]
    "*": lambda a, b: a * b,  # type: ignore[operator]
    "%": lambda a, b: a % b,  # type: ignore[operator]
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,  # type: ignore[operator]
    "<=": lambda a, b: a <= b,  # type: ignore[operator]
    ">": lambda a, b: a > b,  # type: ignore[operator]
    ">=": lambda a, b: a >= b,  # type: ignore[operator]
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


def eval_expr(expr: Expr, ls: Mapping[str, Value]) -> Value:
    """Evaluate ``expr`` in local state ``ls`` (the paper's ``⟦E⟧ls``)."""
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Reg):
        try:
            return ls[expr.name]
        except KeyError as exc:
            raise SemanticsError(f"register {expr.name!r} is unbound") from exc
    if isinstance(expr, UnOp):
        try:
            fn = _UN_OPS[expr.op]
        except KeyError as exc:
            raise SemanticsError(f"unknown unary operator {expr.op!r}") from exc
        return fn(eval_expr(expr.operand, ls))
    if isinstance(expr, BinOp):
        try:
            fn = _BIN_OPS[expr.op]
        except KeyError as exc:
            raise SemanticsError(f"unknown binary operator {expr.op!r}") from exc
        return fn(eval_expr(expr.left, ls), eval_expr(expr.right, ls))
    raise SemanticsError(f"not an expression: {expr!r}")


def eval_bool(expr: Expr, ls: Mapping[str, Value]) -> bool:
    """Evaluate a boolean condition ``B`` (paper: ``⟦B⟧ls``)."""
    return bool(eval_expr(expr, ls))


def registers_of(expr: Expr) -> frozenset:
    """The set of register names occurring in ``expr``."""
    if isinstance(expr, Reg):
        return frozenset({expr.name})
    if isinstance(expr, UnOp):
        return registers_of(expr.operand)
    if isinstance(expr, BinOp):
        return registers_of(expr.left) | registers_of(expr.right)
    return frozenset()
