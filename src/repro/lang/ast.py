"""Command syntax ``ACom``/``Com`` from Figure 4 of the paper.

All nodes are immutable (frozen dataclasses) so that continuations can be
stored inside hashable configurations.  A *terminated* command is
represented by ``None`` (the paper's ``⊥``): ``Seq`` stepping collapses a
finished first component, and a thread whose whole continuation is
``None`` has terminated.

Two nodes go beyond the paper's surface grammar but implement its
semantics directly:

* :class:`MethodCall` — an abstract method call ``o.m([u])`` occupying a
  hole.  Its execution is a *library* transition governed by the abstract
  object semantics (paper Section 4, rule ``Lib`` in Figure 4).
* :class:`LibBlock` — a hole filled with a concrete implementation
  (``• ::= Com``).  Every global access inside executes against the
  library state ``β`` and is tagged as a library step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.lang.expr import Expr, Lit, UnOp

#: A command is an AST node or ``None`` (terminated, the paper's ``⊥``).
Com = Optional["Node"]

#: Labels are small ints or strings; used for proof-outline program counters.
Label = Union[int, str]


@dataclass(frozen=True)
class Node:
    """Base class for command AST nodes."""


@dataclass(frozen=True)
class LocalAssign(Node):
    """``r := E`` — a silent (ε) step updating a local register."""

    reg: str
    expr: Expr


@dataclass(frozen=True)
class Write(Node):
    """``x :=[R] E`` — a relaxed or releasing write to a global variable."""

    var: str
    expr: Expr
    release: bool = False


@dataclass(frozen=True)
class Read(Node):
    """``r ←[A] x`` — a relaxed or acquiring read of a global variable."""

    reg: str
    var: str
    acquire: bool = False


@dataclass(frozen=True)
class Cas(Node):
    """``r ← CAS(x, u, v)^RA``.

    Success performs an acquiring-releasing update ``updRA(x, u, v)`` and
    sets ``r := true``; failure is a relaxed read of a value ``≠ u`` and
    sets ``r := false`` (paper Figure 4).  ``expect``/``new`` are local
    expressions, evaluated at step time — the sequence lock's
    ``CAS(glb, r, r + 1)`` needs register operands.
    """

    reg: str
    var: str
    expect: Expr
    new: Expr


@dataclass(frozen=True)
class Fai(Node):
    """``r ← FAI(x)^RA`` — fetch-and-increment, an update ``updRA(x, u, u+1)``."""

    reg: str
    var: str


@dataclass(frozen=True)
class MethodCall(Node):
    """Abstract method call ``o.m([u])``, optionally binding its result.

    ``dest`` receives the method's return value (a popped element, a lock
    version).  Execution is a single *library* transition defined by the
    abstract object registered under ``obj``.
    """

    obj: str
    method: str
    arg: Optional[Expr] = None
    dest: Optional[str] = None


@dataclass(frozen=True)
class Seq(Node):
    """``Com; Com``."""

    first: Node
    second: Node


@dataclass(frozen=True)
class If(Node):
    """``if B then C1 else C2`` with a local condition ``B``."""

    cond: Expr
    then_branch: Com
    else_branch: Com = None


@dataclass(frozen=True)
class While(Node):
    """``while B do C`` with a local condition ``B``."""

    cond: Expr
    body: Node


@dataclass(frozen=True)
class LibBlock(Node):
    """A hole filled with a concrete library implementation.

    All global accesses in ``body`` target the library state ``β`` and are
    tagged as library steps (the ``Lib`` rule of Figure 4).  Registers
    written inside are library-local (``LVar_L``), *except* those named in
    ``public_regs``: an implementation whose method returns a value binds
    the client-visible result register at its linearization step —
    mirroring the abstract semantics, where the return value is bound
    atomically with the method transition (paper Example 1:
    ``ls' = ls[rval := true]``).
    """

    body: Node
    public_regs: frozenset = frozenset()


@dataclass(frozen=True)
class Labeled(Node):
    """A command carrying a proof-outline label (program counter value).

    The label is retained while the wrapped command executes, so a label
    wrapping a loop or an inlined method body denotes the whole region —
    exactly how Figures 3 and 7 of the paper annotate statements.
    """

    label: Label
    body: Node


def seq(*cmds: Com) -> Com:
    """Right-nested sequencing of commands, skipping ``None`` entries."""
    result: Com = None
    for cmd in reversed(cmds):
        if cmd is None:
            continue
        result = cmd if result is None else Seq(cmd, result)
    return result


def do_until(body: Node, cond: Expr) -> Node:
    """``do C until B``  ≡  ``C; while ¬B do C`` (paper §3.1)."""
    return Seq(body, While(UnOp("not", cond), body))


def skip() -> Node:
    """A no-op command (an ε local step); useful in tests."""
    return LocalAssign("__skip__", Lit(0))


def seq_cons(first: Com, second: Node) -> Node:
    """Rebuild a sequence after the first component stepped.

    Implements the rule ``(v; C2, ls) −ε→ (C2, ls)``: when the first
    component has terminated (``None``), the continuation is ``second``.
    """
    if first is None:
        return second
    return Seq(first, second)


_NO_REGS: frozenset = frozenset()


def _lib_regs_fold(node: Com, in_lib: bool, child_values) -> frozenset:
    if node is None:
        return _NO_REGS
    if isinstance(node, (LocalAssign, Read, Cas, Fai)):
        return frozenset({node.reg}) if in_lib else _NO_REGS
    acc = _NO_REGS
    for value in child_values:
        acc |= value
    if isinstance(node, LibBlock):
        # Scoped subtraction: only *this* block's public registers are
        # client-visible; an enclosing block's privacy is unaffected.
        return acc - node.public_regs
    return acc


def library_registers(cmd: Com) -> frozenset:
    """Registers assigned inside ``LibBlock`` regions of ``cmd``.

    These constitute ``LVar_L``; the client trace projection (paper §6.1)
    removes them from local states.
    """
    from repro.lang.walk import fold  # walk imports this module

    return fold(cmd, _lib_regs_fold)
