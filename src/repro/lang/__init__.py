"""Program syntax for open client/library programs (paper Section 3.1).

The grammar follows Figure 4 of the paper: sequential commands built from
local assignments, (annotated) global reads and writes, CAS/FAI updates,
method calls on abstract objects, sequencing, conditionals and loops.
Programs with *holes* are realised at build time: a client template is
instantiated either with abstract :class:`~repro.lang.ast.MethodCall`
nodes or with inlined concrete implementations wrapped in
:class:`~repro.lang.ast.LibBlock`.
"""

from repro.lang.ast import (
    Cas,
    Com,
    Fai,
    If,
    Labeled,
    LibBlock,
    LocalAssign,
    MethodCall,
    Read,
    Seq,
    While,
    Write,
    do_until,
    seq,
)
from repro.lang.expr import (
    EMPTY,
    BinOp,
    Expr,
    Lit,
    Reg,
    UnOp,
    eval_expr,
    lit,
    reg,
)
from repro.lang.labels import DONE_PC, pc_of
from repro.lang.program import Program, Thread

__all__ = [
    "BinOp",
    "Cas",
    "Com",
    "DONE_PC",
    "EMPTY",
    "Expr",
    "Fai",
    "If",
    "Labeled",
    "LibBlock",
    "Lit",
    "LocalAssign",
    "MethodCall",
    "Program",
    "Read",
    "Reg",
    "Seq",
    "Thread",
    "UnOp",
    "While",
    "Write",
    "do_until",
    "eval_expr",
    "lit",
    "pc_of",
    "reg",
    "seq",
]
