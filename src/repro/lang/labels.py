"""Program-counter extraction for proof outlines (paper §5.3).

The proof outlines of Figures 3 and 7 annotate statements with labels and
let assertions refer to the program counters of *other* threads
(``pc1 ∈ {2,3,4}`` etc.).  We recover a thread's pc from its continuation:
the label of the leftmost :class:`~repro.lang.ast.Labeled` node, or
:data:`DONE_PC` when the thread has terminated.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import (
    Com,
    If,
    Labeled,
    LibBlock,
    Seq,
    While,
)

#: Program counter of a terminated thread (customisable per thread in
#: :class:`~repro.lang.program.Thread`).
DONE_PC = "done"


def pc_of(cmd: Com, done_label=DONE_PC):
    """The current program counter of a continuation.

    Labels do not nest for pc purposes: a label wrapping a region denotes
    the whole region, so we stop at the outermost ``Labeled`` on the
    leftmost execution path.  Unlabelled leading commands are transparent
    (they belong to the previous label's region in the paper's outlines);
    if no label occurs at all, ``done_label`` is returned only for a
    terminated thread and ``None`` for an unlabelled active one.
    """
    if cmd is None:
        return done_label
    found = _leftmost_label(cmd)
    return found


def _leftmost_label(cmd: Com) -> Optional[object]:
    if cmd is None:
        return None
    if isinstance(cmd, Labeled):
        return cmd.label
    if isinstance(cmd, Seq):
        left = _leftmost_label(cmd.first)
        if left is not None:
            return left
        return _leftmost_label(cmd.second)
    if isinstance(cmd, While):
        return _leftmost_label(cmd.body)
    if isinstance(cmd, If):
        # A conditional's label lives on the node wrapping it; branches
        # are only consulted once taken.
        return None
    if isinstance(cmd, LibBlock):
        return _leftmost_label(cmd.body)
    return None
