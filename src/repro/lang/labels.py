"""Program-counter extraction for proof outlines (paper §5.3).

The proof outlines of Figures 3 and 7 annotate statements with labels and
let assertions refer to the program counters of *other* threads
(``pc1 ∈ {2,3,4}`` etc.).  We recover a thread's pc from its continuation:
the label of the leftmost :class:`~repro.lang.ast.Labeled` node, or
:data:`DONE_PC` when the thread has terminated.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import (
    Com,
    Labeled,
    LibBlock,
    Seq,
    While,
)
from repro.lang.walk import fold

#: Program counter of a terminated thread (customisable per thread in
#: :class:`~repro.lang.program.Thread`).
DONE_PC = "done"


def pc_of(cmd: Com, done_label=DONE_PC):
    """The current program counter of a continuation.

    Labels do not nest for pc purposes: a label wrapping a region denotes
    the whole region, so we stop at the outermost ``Labeled`` on the
    leftmost execution path.  Unlabelled leading commands are transparent
    (they belong to the previous label's region in the paper's outlines);
    if no label occurs at all, ``done_label`` is returned only for a
    terminated thread and ``None`` for an unlabelled active one.
    """
    if cmd is None:
        return done_label
    return _leftmost_label(cmd)


def _label_fold(node: Com, in_lib: bool, child_values) -> Optional[object]:
    if node is None:
        return None
    if isinstance(node, Labeled):
        # The outermost label denotes the whole region; children are
        # not consulted.
        return node.label
    if isinstance(node, Seq):
        first, second = child_values
        return first if first is not None else second
    if isinstance(node, (While, LibBlock)):
        return child_values[0]
    # ``If``: a conditional's label lives on the node wrapping it —
    # branches are only consulted once taken.  Leaves carry no label.
    return None


def _leftmost_label(cmd: Com) -> Optional[object]:
    return fold(cmd, _label_fold)
