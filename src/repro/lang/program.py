"""Concurrent programs ``Init; (C1 || … || Cn)`` (paper §3.2).

A :class:`Program` bundles the per-thread commands with everything the
combined semantics needs: initial values for client and library globals,
initial register values, the abstract objects in use, and the partition
of global variables into client (``GVar_C``) and library (``GVar_L``)
parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.lang.ast import Com, library_registers
from repro.lang.expr import Value
from repro.lang.labels import DONE_PC


@dataclass(frozen=True)
class Thread:
    """A single thread: its command and the label reported once finished."""

    body: Com
    done_label: object = DONE_PC


@dataclass(frozen=True)
class Program:
    """A closed concurrent program over a client and a library component.

    Parameters
    ----------
    threads:
        Mapping from thread id to :class:`Thread` (or raw command).
    client_vars:
        Initial values of client globals (``GVar_C``); each is initialised
        exactly once, at timestamp 0.
    lib_vars:
        Initial values of library globals (``GVar_L``) — used by concrete
        implementations (e.g. ``glb`` for the sequence lock).
    objects:
        Abstract objects (by name) whose operations live in the library
        state; each contributes its initial operation(s).
    init_locals:
        Optional initial register values per thread, the paper's
        ``[r := l]`` part of ``Init``.
    """

    threads: Mapping[str, Thread]
    client_vars: Mapping[str, Value] = field(default_factory=dict)
    lib_vars: Mapping[str, Value] = field(default_factory=dict)
    objects: Tuple[object, ...] = ()
    init_locals: Mapping[str, Mapping[str, Value]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalised = {}
        for tid, th in dict(self.threads).items():
            if not isinstance(th, Thread):
                th = Thread(body=th)
            normalised[tid] = th
        object.__setattr__(self, "threads", normalised)
        overlap = set(self.client_vars) & set(self.lib_vars)
        if overlap:
            raise ValueError(f"variables in both components: {sorted(overlap)}")
        obj_names = [o.name for o in self.objects]
        if len(obj_names) != len(set(obj_names)):
            raise ValueError("duplicate abstract object names")
        clash = set(obj_names) & (set(self.client_vars) | set(self.lib_vars))
        if clash:
            raise ValueError(f"object names clash with globals: {sorted(clash)}")

    # -- derived structure -------------------------------------------------
    @property
    def tids(self) -> Tuple[str, ...]:
        return tuple(sorted(self.threads))

    @property
    def object_map(self) -> Mapping[str, object]:
        return {o.name: o for o in self.objects}

    @property
    def client_var_names(self) -> frozenset:
        return frozenset(self.client_vars)

    @property
    def lib_var_names(self) -> frozenset:
        """Library globals plus abstract object names (both live in β)."""
        return frozenset(self.lib_vars) | frozenset(o.name for o in self.objects)

    def lib_registers(self) -> frozenset:
        """``LVar_L``: registers assigned inside any thread's LibBlocks."""
        regs: frozenset = frozenset()
        for th in self.threads.values():
            regs |= library_registers(th.body)
        return regs

    def done_label_of(self, tid: str):
        return self.threads[tid].done_label

    def body_of(self, tid: str) -> Com:
        return self.threads[tid].body

    def initial_locals_of(self, tid: str) -> Mapping[str, Value]:
        return dict(self.init_locals.get(tid, {}))


def component_of(program: Program, var: str) -> str:
    """Which component a global variable or object belongs to: 'C' or 'L'."""
    if var in program.client_var_names:
        return "C"
    if var in program.lib_var_names:
        return "L"
    raise KeyError(f"unknown global variable or object: {var!r}")
