"""A small immutable mapping with cheap functional update.

The explorer memoises configurations in a visited set, so every piece of
semantic state must be hashable and immutable.  ``FMap`` wraps a plain
``dict`` (never mutated after construction) and provides ``set``/``remove``
returning new maps.  Profiling (per the HPC optimisation guide: measure,
then optimise the bottleneck) showed dict-copy update is faster at the
state sizes this framework reaches (tens of entries) than tree-based
persistent structures, and far simpler.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: Sentinel distinguishing "absent" from "bound to None".
_ABSENT = object()


class FMap(Mapping[K, V]):
    """Immutable hashable mapping with functional update."""

    __slots__ = ("_d", "_hash", "_sorted", "_ordered")

    def __init__(self, items: Mapping[K, V] | None = None) -> None:
        self._d: Dict[K, V] = dict(items) if items else {}
        self._hash: int | None = None
        self._sorted: Tuple[Tuple[K, V], ...] | None = None
        self._ordered: Tuple[Tuple[K, V], ...] | None = None

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: K) -> V:
        return self._d[key]

    def __iter__(self) -> Iterator[K]:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __contains__(self, key: object) -> bool:
        return key in self._d

    # Direct delegates: the Mapping ABC's mixin versions route through
    # ``__getitem__`` item-by-item (ItemsView iteration, try/except get),
    # which profiling shows on the explorer's hot path.
    def get(self, key: K, default=None):
        return self._d.get(key, default)

    def keys(self):
        return self._d.keys()

    def values(self):
        return self._d.values()

    def items(self):
        return self._d.items()

    # -- functional updates ------------------------------------------------
    def set(self, key: K, value: V) -> "FMap[K, V]":
        """Return a copy with ``key`` bound to ``value``.

        When the binding is already present with an equal value the map
        itself is returned — no copy, and the cached hash survives.  The
        explorer hits this constantly through non-advancing view updates.
        """
        cur = self._d.get(key, _ABSENT)
        if cur is value or (cur is not _ABSENT and cur == value):
            return self
        new = dict(self._d)
        new[key] = value
        return FMap(new)

    def set_many(self, items: Mapping[K, V]) -> "FMap[K, V]":
        """Return a copy with every binding in ``items`` applied.

        Returns ``self`` (preserving the cached hash) when every binding
        is already present with an equal value.
        """
        if not items:
            return self
        d = self._d
        for k, v in items.items():
            cur = d.get(k, _ABSENT)
            if not (cur is v or (cur is not _ABSENT and cur == v)):
                break
        else:
            return self
        new = dict(d)
        new.update(items)
        return FMap(new)

    def remove(self, key: K) -> "FMap[K, V]":
        """Return a copy without ``key`` (KeyError when absent)."""
        new = dict(self._d)
        del new[key]
        return FMap(new)

    # -- serialisation -----------------------------------------------------
    def __reduce__(self):
        """Constructor-shaped encoding (``FMap(dict)``): one class
        reference and the mapping, no state dict — and the cached hash,
        which folds per-process string hashes (``PYTHONHASHSEED``),
        never crosses processes."""
        return (FMap, (self._d,))

    def __getstate__(self):
        """Pre-codec wire format (kept for old pickles and the codec
        benchmark's reference pickler)."""
        return self._d

    def __setstate__(self, d) -> None:
        self._d = d
        self._hash = None
        self._sorted = None
        self._ordered = None

    # -- identity ----------------------------------------------------------
    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._d.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FMap):
            return self._d == other._d
        if isinstance(other, Mapping):
            return self._d == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in sorted_items(self._d))
        return f"FMap({{{inner}}})"

    def items_sorted(self) -> Tuple[Tuple[K, V], ...]:
        """Items in a deterministic order (for canonical encodings).
        Cached — the map is immutable and canonical encodings revisit
        shared maps constantly."""
        s = self._sorted
        if s is None:
            s = self._sorted = tuple(sorted_items(self._d))
        return s

    def items_ordered(self) -> Tuple[Tuple[K, V], ...]:
        """Items sorted by the keys' *natural* order (keys must be
        mutually comparable — strings, tuples of strings).  Cached, like
        :meth:`items_sorted`; preferred on hot canonical paths because
        it skips the per-item ``repr``.  Unique keys mean the values are
        never compared."""
        o = self._ordered
        if o is None:
            o = self._ordered = tuple(sorted(self._d.items()))
        return o


def sorted_items(d: Mapping[Any, Any]):
    """Sort mapping items by ``repr`` of the key — total and deterministic
    even for heterogeneous key types."""
    return sorted(d.items(), key=lambda kv: repr(kv[0]))
