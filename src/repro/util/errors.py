"""Exception hierarchy for the repro framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SemanticsError(ReproError):
    """An operational-semantics rule was applied to a state that does not
    satisfy its premises (e.g. reading a variable with no write in ``ops``).
    """


class StuckError(SemanticsError):
    """A configuration has no successors but has not terminated.

    Under the paper's semantics this can only happen for genuinely blocking
    constructs (an abstract ``acquire`` on a held lock is *disabled*, not
    stuck — it becomes stuck only if no other thread can ever release).
    """


class VerificationError(ReproError):
    """A verification judgment failed; carries a counterexample description.

    ``counterexample`` is the offending configuration (when one exists),
    ``witness`` an optional :class:`repro.semantics.witness.Witness` —
    the concrete execution reaching it — and ``details`` an optional
    mapping of replay data (e.g. the seed and schedule of a failing
    random run).
    """

    def __init__(
        self,
        message: str,
        counterexample: object = None,
        witness: object = None,
        details: dict = None,
    ) -> None:
        super().__init__(message)
        self.counterexample = counterexample
        self.witness = witness
        self.details = details
