"""Exact timestamp arithmetic for the RC11 RAR operational semantics.

The semantics of Dalvandi & Dongol (PPoPP 2021, Section 3.3) attaches a
rational timestamp to every operation.  New operations are inserted into
the *gap* immediately after some existing operation: ``fresh(q, q')``
requires ``q < q'`` and that ``q'`` precede every existing timestamp that
is greater than ``q``.

We use :class:`fractions.Fraction` so gap insertion is exact and
unbounded.  All placement nondeterminism lives in *which* operation a new
one follows; the numeric choice within the gap is canonical (midpoint, or
``max + 1`` at the top), so two runs that order operations identically
produce identical states.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

#: The timestamp given to every initialising write (paper: "we assume 0 is
#: the initial timestamp").
TS_ZERO: Fraction = Fraction(0)


def between(lo: Fraction, hi: Fraction) -> Fraction:
    """Return the canonical timestamp strictly between ``lo`` and ``hi``.

    Raises :class:`ValueError` when the gap is empty (``lo >= hi``).
    """
    if lo >= hi:
        raise ValueError(f"empty timestamp gap: ({lo}, {hi})")
    return (lo + hi) / 2


def next_after(lo: Fraction) -> Fraction:
    """Return the canonical timestamp used when ``lo`` is currently maximal."""
    return lo + 1


def fresh_after(q: Fraction, existing: Iterable[Fraction]) -> Fraction:
    """Compute the canonical fresh timestamp ``q'`` with ``fresh(q, q')``.

    ``fresh(q, q') = q < q' ∧ ∀w' ∈ ops. q < tst(w') ⇒ q' < tst(w')``
    (paper §3.3).  ``existing`` is the multiset of timestamps of *all*
    operations in the component.  The result is the midpoint of the gap
    between ``q`` and the least existing timestamp above ``q``, or
    ``q + 1`` when ``q`` is maximal.
    """
    ceiling: Fraction | None = None
    for ts in existing:
        if ts > q and (ceiling is None or ts < ceiling):
            ceiling = ts
    if ceiling is None:
        return next_after(q)
    return between(q, ceiling)


def is_fresh(q: Fraction, q_new: Fraction, existing: Iterable[Fraction]) -> bool:
    """Decide the paper's ``fresh(q, q_new)`` predicate against ``existing``."""
    if not q < q_new:
        return False
    return all(q_new < ts for ts in existing if ts > q)


def rank_map(timestamps: Iterable[Fraction]) -> Mapping[Fraction, Fraction]:
    """Map each distinct timestamp to its integer rank in sorted order.

    Used by state canonicalisation: replacing every timestamp with its rank
    is an order-isomorphic relabelling, so two states that differ only in
    the rational values of their timestamps canonicalise identically.
    """
    distinct = sorted(set(timestamps))
    return {ts: Fraction(i) for i, ts in enumerate(distinct)}
