"""Human-readable rendering of states, configurations and executions.

Counterexamples are only useful if a person can read them; these
formatters render component states (operations in modification order,
per-thread viewfronts, covered sets), whole configurations, and witness
executions.  They are used by the examples and available for debugging
(`print(format_config(program, cfg))`).
"""

from __future__ import annotations

from typing import List

from repro.lang.program import Program
from repro.memory.state import ComponentState
from repro.semantics.config import Config


def format_component(state: ComponentState, name: str = "component") -> str:
    """Render one component state."""
    lines: List[str] = [f"{name}:"]
    by_var = {}
    for op in state.ops:
        by_var.setdefault(op.act.var, []).append(op)
    for var in sorted(by_var):
        ops = sorted(by_var[var], key=lambda op: op.ts)
        rendered = []
        for op in ops:
            mark = "†" if op in state.cvd else ""
            rendered.append(f"{op.act!r}{mark}")
        lines.append(f"  {var}: " + " → ".join(rendered))
    tids = sorted({t for (t, _x) in state.tview})
    for t in tids:
        front = {
            x: op for (tt, x), op in state.tview.items() if tt == t
        }
        parts = [
            f"{x}@{front[x].ts}" for x in sorted(front)
        ]
        lines.append(f"  view[{t}]: " + ", ".join(parts))
    return "\n".join(lines)


def format_locals(cfg: Config) -> str:
    """Render per-thread local register states."""
    lines = ["locals:"]
    for tid in sorted(cfg.locals):
        ls = cfg.locals[tid]
        if len(ls) == 0:
            lines.append(f"  {tid}: (empty)")
        else:
            body = ", ".join(
                f"{r} = {v!r}" for r, v in sorted(ls.items())
            )
            lines.append(f"  {tid}: {body}")
    return "\n".join(lines)


def format_config(program: Program, cfg: Config) -> str:
    """Render a full configuration: pcs, locals, both components.

    Covered operations are marked with ``†``; per-variable operation
    chains are shown in modification order.
    """
    pcs = ", ".join(
        f"pc{t} = {cfg.pc(t, program)}" for t in program.tids
    )
    parts = [
        f"configuration ({pcs})"
        + ("  [terminal]" if cfg.is_terminal() else ""),
        format_locals(cfg),
        format_component(cfg.gamma, "client γ"),
        format_component(cfg.beta, "library β"),
    ]
    return "\n".join(parts)


def format_outcomes(outcomes, regs) -> str:
    """Render a terminal-outcome set as a small table."""
    header = " ".join(f"{t}.{r}" for t, r in regs)
    lines = [header, "-" * len(header)]
    for row in sorted(outcomes, key=repr):
        lines.append(" ".join(f"{v!r:>{len(t) + len(r) + 1}}" for v, (t, r) in zip(row, regs)))
    return "\n".join(lines)
