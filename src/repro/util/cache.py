"""Bounded-dict eviction shared by the value-keyed memo tables.

Several hot-path memoisations (continuation footprints, phase
summaries, the codec intern tables) key immutable values in plain
dicts bounded only as a backstop against pathological workloads.  When
a table hits its cap, dropping the *oldest-inserted* half — dicts
preserve insertion order — sheds dead entries from earlier programs
while keeping the live working set, which by construction is the
recently inserted half; a full ``clear()`` would force the current
program to rebuild (and lose the identity sharing of) every entry it
is actively using.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict


def evict_half(table: Dict) -> None:
    """Drop the oldest-inserted half of ``table`` in place."""
    drop = len(table) // 2
    for key in list(islice(table, drop)):
        del table[key]
