"""Shared utilities: exact timestamp arithmetic, immutable maps, errors.

These helpers deliberately avoid any dependency on the semantic layers;
everything else in :mod:`repro` builds on top of them.
"""

from repro.util.errors import (
    ReproError,
    SemanticsError,
    StuckError,
    VerificationError,
)
from repro.util.fmap import FMap
from repro.util.rationals import (
    TS_ZERO,
    between,
    fresh_after,
    next_after,
    rank_map,
)

__all__ = [
    "FMap",
    "ReproError",
    "SemanticsError",
    "StuckError",
    "TS_ZERO",
    "VerificationError",
    "between",
    "fresh_after",
    "next_after",
    "rank_map",
]
