"""Assertion environments and boolean combinators (paper §5.1–5.2).

The paper's predicates have type ``Σ_C11 → B`` where
``Σ_C11 = (LVar → Val) × Σ_C × Σ_L``.  Our :class:`Env` additionally
exposes the per-thread program counters, which the paper's proof outlines
use freely (``pc1 ∈ {2,3,4}`` in Figure 7's ``Inv``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.lang.expr import Value
from repro.lang.program import Program
from repro.memory.state import ComponentState
from repro.semantics.config import Config


@dataclass(frozen=True)
class Env:
    """An annotated configuration: what assertions are evaluated against."""

    program: Program
    config: Config

    @property
    def gamma(self) -> ComponentState:
        return self.config.gamma

    @property
    def beta(self) -> ComponentState:
        return self.config.beta

    def component(self, which: str) -> ComponentState:
        """'C' → client state γ, 'L' → library state β."""
        if which == "C":
            return self.config.gamma
        if which == "L":
            return self.config.beta
        raise ValueError(f"component must be 'C' or 'L', got {which!r}")

    def component_of_var(self, var: str) -> str:
        if var in self.program.client_var_names:
            return "C"
        if var in self.program.lib_var_names:
            return "L"
        raise KeyError(f"unknown global/object: {var!r}")

    def local(self, tid: str, reg: str, default: Value = None) -> Value:
        return self.config.local(tid, reg, default)

    def pc(self, tid: str):
        return self.config.pc(tid, self.program)

    def object(self, name: str):
        return self.program.object_map[name]


def make_env(program: Program, config: Config) -> Env:
    """Build the assertion-evaluation environment for a configuration."""
    return Env(program=program, config=config)


class Assertion:
    """Base class: a predicate over :class:`Env` with boolean operators."""

    def holds(self, env: Env) -> bool:
        raise NotImplementedError

    def __call__(self, env: Env) -> bool:
        return self.holds(env)

    # -- combinators ---------------------------------------------------------
    def __and__(self, other: "Assertion") -> "Assertion":
        return _And(self, other)

    def __or__(self, other: "Assertion") -> "Assertion":
        return _Or(self, other)

    def __invert__(self) -> "Assertion":
        return _Not(self)

    def __rshift__(self, other: "Assertion") -> "Assertion":
        """Implication: ``p >> q`` is ``p ⇒ q``."""
        return _Or(_Not(self), other)

    def describe(self) -> str:
        return self.__class__.__name__

    def __repr__(self) -> str:
        return self.describe()


@dataclass(frozen=True, repr=False)
class _And(Assertion):
    left: Assertion
    right: Assertion

    def holds(self, env: Env) -> bool:
        return self.left.holds(env) and self.right.holds(env)

    def describe(self) -> str:
        return f"({self.left.describe()} ∧ {self.right.describe()})"


@dataclass(frozen=True, repr=False)
class _Or(Assertion):
    left: Assertion
    right: Assertion

    def holds(self, env: Env) -> bool:
        return self.left.holds(env) or self.right.holds(env)

    def describe(self) -> str:
        return f"({self.left.describe()} ∨ {self.right.describe()})"


@dataclass(frozen=True, repr=False)
class _Not(Assertion):
    inner: Assertion

    def holds(self, env: Env) -> bool:
        return not self.inner.holds(env)

    def describe(self) -> str:
        return f"¬{self.inner.describe()}"


class _Const(Assertion):
    def __init__(self, value: bool, name: str) -> None:
        self._value = value
        self._name = name

    def holds(self, env: Env) -> bool:
        return self._value

    def describe(self) -> str:
        return self._name


TRUE = _Const(True, "true")
FALSE = _Const(False, "false")


@dataclass(frozen=True, repr=False)
class Pred(Assertion):
    """Escape hatch: an arbitrary predicate with a description."""

    fn: Callable[[Env], bool]
    name: str = "pred"

    def holds(self, env: Env) -> bool:
        return self.fn(env)

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class LocalEq(Assertion):
    """``r = v`` for a thread-local register."""

    tid: str
    reg: str
    value: Value

    def holds(self, env: Env) -> bool:
        return env.local(self.tid, self.reg) == self.value

    def describe(self) -> str:
        return f"{self.reg}@{self.tid} = {self.value!r}"


@dataclass(frozen=True, repr=False)
class LocalIn(Assertion):
    """``r ∈ S`` for a thread-local register."""

    tid: str
    reg: str
    values: tuple

    def holds(self, env: Env) -> bool:
        return env.local(self.tid, self.reg) in self.values

    def describe(self) -> str:
        return f"{self.reg}@{self.tid} ∈ {set(self.values)!r}"


@dataclass(frozen=True, repr=False)
class AtPc(Assertion):
    """``pc_t ∈ L`` — the thread's program counter is one of ``labels``."""

    tid: str
    labels: tuple

    def holds(self, env: Env) -> bool:
        return env.pc(self.tid) in self.labels

    def describe(self) -> str:
        return f"pc{self.tid} ∈ {set(self.labels)!r}"


def all_of(assertions: Iterable[Assertion]) -> Assertion:
    """Conjunction of a collection of assertions (``TRUE`` when empty)."""
    result: Optional[Assertion] = None
    for a in assertions:
        result = a if result is None else result & a
    return result if result is not None else TRUE
