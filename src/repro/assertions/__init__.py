"""The assertion language of Section 5.1.

Assertions are composable predicates over *annotated configurations*: the
full combined state ``(P, ls, γ, β)`` together with the program, so that
proof outlines can refer to other threads' program counters (as the
paper's Figures 3 and 7 do) and to both components' observability
structure.

Atoms mirror the paper exactly:

=====================  =====================================================
``PossibleValue``      ``⟨x = u⟩t`` — thread t may observe u for x
``DefiniteValue``      ``[x = u]t`` — thread t can only see the last write,
                       which wrote u
``ConditionalValue``   ``⟨x = u⟩[y = v]t`` — reading u from x synchronises
                       and establishes a definite observation of y
``PossibleMethod``     ``⟨o.m⟩t`` — an o.m operation is observable to t
``DefiniteMethod``     ``[o.m]t`` — t's view of o is the latest op, an o.m
``ConditionalMethod``  ``⟨o.m⟩[y = v]t`` — synchronising with o.m
                       establishes a definite client observation
``Covered``            ``C_{o.m}`` — all uncovered ops on o are the latest
                       o.m
``Hidden``             ``H_{o.m}`` — o.m exists but every occurrence is
                       covered
=====================  =====================================================

plus register/pc atoms and the boolean combinators ``&``, ``|``, ``~``,
``>>`` (implication).
"""

from repro.assertions.core import (
    Assertion,
    FALSE,
    TRUE,
    AtPc,
    Env,
    LocalEq,
    Pred,
    make_env,
)
from repro.assertions.observability import (
    ConditionalMethod,
    ConditionalValue,
    Covered,
    DefiniteMethod,
    DefiniteValue,
    Hidden,
    PossibleMethod,
    PossibleValue,
    StackEmpty,
    StackTopIs,
    definite_value,
    possible_value,
)

__all__ = [
    "Assertion",
    "AtPc",
    "ConditionalMethod",
    "ConditionalValue",
    "Covered",
    "DefiniteMethod",
    "DefiniteValue",
    "Env",
    "FALSE",
    "Hidden",
    "LocalEq",
    "PossibleMethod",
    "PossibleValue",
    "Pred",
    "StackEmpty",
    "StackTopIs",
    "TRUE",
    "definite_value",
    "make_env",
    "possible_value",
]
