"""Observability assertions (paper §5.1).

Every atom resolves the component of its variable/object automatically
(client variables against ``γ``, library variables and objects against
``β``), which realises the paper's ``⟨p⟩C_t`` / ``⟨p⟩L_t`` lifting without
separate syntax; the cross-component conditional
:class:`ConditionalMethod` corresponds to ``⟨o.m⟩L[y = v]C_t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.assertions.core import Assertion, Env
from repro.lang.expr import Value
from repro.memory.actions import METH, Action, Op, is_write, wrval
from repro.memory.state import ComponentState
from repro.memory.views import View
from repro.objects.stack import AbstractStack


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MethodMatch:
    """A pattern ``o.m`` with optional index/value/thread constraints.

    ``l.release_2`` is ``MethodMatch('l', 'release', index=2)``; the
    paper's subscripts become the ``index`` field.
    """

    obj: str
    method: str
    index: Optional[int] = None
    val: Value = None
    tid: Optional[str] = None

    def matches(self, a: Action) -> bool:
        if a.kind != METH or a.var != self.obj or a.method != self.method:
            return False
        if self.index is not None and a.index != self.index:
            return False
        if self.val is not None and a.val != self.val:
            return False
        if self.tid is not None and a.tid != self.tid:
            return False
        return True

    def describe(self) -> str:
        idx = "" if self.index is None else f"_{self.index}"
        return f"{self.obj}.{self.method}{idx}"


def dview_value(view: View, state: ComponentState, var: str) -> Optional[Value]:
    """``dview(view, W, x)``: the definite value of ``x`` under ``view``.

    Returns the value written by the last write to ``x`` in ``state.ops``
    when ``view`` points at it; ``None`` when the view is stale (no
    definite observation).
    """
    last = state.last_op(var, only=is_write)
    if last is None:
        return None
    pointed = view.get(var)
    if pointed is None or pointed != last:
        return None
    return wrval(last.act)


# ---------------------------------------------------------------------------
# variable-level atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class PossibleValue(Assertion):
    """``⟨x = u⟩t`` — some observable write to x has value u."""

    var: str
    value: Value
    tid: str

    def holds(self, env: Env) -> bool:
        state = env.component(env.component_of_var(self.var))
        return any(
            wrval(w.act) == self.value for w in state.obs(self.tid, self.var)
        )

    def describe(self) -> str:
        return f"⟨{self.var} = {self.value!r}⟩{self.tid}"


@dataclass(frozen=True, repr=False)
class DefiniteValue(Assertion):
    """``[x = u]t`` — t's viewfront is the last write to x, of value u."""

    var: str
    value: Value
    tid: str

    def holds(self, env: Env) -> bool:
        state = env.component(env.component_of_var(self.var))
        view = state.thread_view_map(self.tid)
        return dview_value(view, state, self.var) == self.value

    def describe(self) -> str:
        return f"[{self.var} = {self.value!r}]{self.tid}"


@dataclass(frozen=True, repr=False)
class ConditionalValue(Assertion):
    """``⟨x = u⟩[y = v]t`` — synchronising with any observable write of u
    to x establishes a definite observation of v for y.

    Every observable write of ``u`` to ``x`` must be releasing and its
    modification view must give ``y`` its definite value ``v``.
    """

    var: str
    value: Value
    dep_var: str
    dep_value: Value
    tid: str

    def holds(self, env: Env) -> bool:
        from repro.memory.actions import is_releasing

        state = env.component(env.component_of_var(self.var))
        dep_state = env.component(env.component_of_var(self.dep_var))
        for w in state.obs(self.tid, self.var):
            if wrval(w.act) != self.value:
                continue
            if not is_releasing(w.act):
                return False
            mv = state.mview[w]
            if dview_value(mv, dep_state, self.dep_var) != self.dep_value:
                return False
        return True

    def describe(self) -> str:
        return (
            f"⟨{self.var} = {self.value!r}⟩"
            f"[{self.dep_var} = {self.dep_value!r}]{self.tid}"
        )


# ---------------------------------------------------------------------------
# object-level atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class PossibleMethod(Assertion):
    """``⟨o.m⟩t`` — an operation matching o.m is observable to t."""

    match: MethodMatch
    tid: str

    def holds(self, env: Env) -> bool:
        state = env.component("L")
        front = state.thread_view(self.tid, self.match.obj)
        floor = front.ts if front is not None else None
        for op in state.ops_on(self.match.obj):
            if floor is not None and op.ts < floor:
                continue
            if self.match.matches(op.act):
                return True
        return False

    def describe(self) -> str:
        return f"⟨{self.match.describe()}⟩{self.tid}"


@dataclass(frozen=True, repr=False)
class DefiniteMethod(Assertion):
    """``[o.m]t`` — t's view of o is the latest operation, matching o.m."""

    match: MethodMatch
    tid: str

    def holds(self, env: Env) -> bool:
        state = env.component("L")
        latest = state.last_op(self.match.obj)
        if latest is None or not self.match.matches(latest.act):
            return False
        return state.thread_view(self.tid, self.match.obj) == latest

    def describe(self) -> str:
        return f"[{self.match.describe()}]{self.tid}"


@dataclass(frozen=True, repr=False)
class ConditionalMethod(Assertion):
    """``⟨o.m⟩[y = v]t`` (paper: ``⟨o.m⟩L[y = v]C_t``).

    Every observable operation matching ``o.m`` must be synchronising and
    its modification view must give ``y`` its definite value ``v`` — so
    if ``t`` later synchronises with such an operation (e.g. by acquiring
    the lock it released), ``[y = v]t`` is established.
    """

    match: MethodMatch
    dep_var: str
    dep_value: Value
    tid: str

    def holds(self, env: Env) -> bool:
        lib = env.component("L")
        dep_state = env.component(env.component_of_var(self.dep_var))
        front = lib.thread_view(self.tid, self.match.obj)
        floor = front.ts if front is not None else None
        for op in lib.ops_on(self.match.obj):
            if floor is not None and op.ts < floor:
                continue
            if not self.match.matches(op.act):
                continue
            if not op.act.sync:
                return False
            mv = lib.mview[op]
            if dview_value(mv, dep_state, self.dep_var) != self.dep_value:
                return False
        return True

    def describe(self) -> str:
        return (
            f"⟨{self.match.describe()}⟩"
            f"[{self.dep_var} = {self.dep_value!r}]{self.tid}"
        )


@dataclass(frozen=True, repr=False)
class Covered(Assertion):
    """``C_{o.m}`` — every uncovered operation on o is the latest, matching
    o.m (paper §5.1, used as ``C_{l.acquire_1}`` in Figure 7's P1)."""

    match: MethodMatch

    def holds(self, env: Env) -> bool:
        state = env.component("L")
        obj = self.match.obj
        max_ts = state.max_ts(obj)
        for op in state.ops_on(obj):
            if op in state.cvd:
                continue
            if not (self.match.matches(op.act) and op.ts == max_ts):
                return False
        return True

    def describe(self) -> str:
        return f"C[{self.match.describe()}]"


@dataclass(frozen=True, repr=False)
class Hidden(Assertion):
    """``H_{o.m}`` — o.m occurs, and every occurrence is covered."""

    match: MethodMatch

    def holds(self, env: Env) -> bool:
        state = env.component("L")
        found = False
        for op in state.ops_on(self.match.obj):
            if self.match.matches(op.act):
                found = True
                if op not in state.cvd:
                    return False
        return found

    def describe(self) -> str:
        return f"H[{self.match.describe()}]"


# ---------------------------------------------------------------------------
# stack-specific atoms (Figures 1–3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class StackEmpty(Assertion):
    """``[s.pop emp]`` — a pop can only return Empty (the stack holds no
    elements)."""

    obj: str

    def holds(self, env: Env) -> bool:
        stack = env.object(self.obj)
        assert isinstance(stack, AbstractStack)
        return len(stack.content(env.beta)) == 0

    def describe(self) -> str:
        return f"[{self.obj}.pop emp]"


@dataclass(frozen=True, repr=False)
class StackTopIs(Assertion):
    """``⟨s.pop v⟩`` — a pop executed now would return v."""

    obj: str
    value: Value

    def holds(self, env: Env) -> bool:
        stack = env.object(self.obj)
        assert isinstance(stack, AbstractStack)
        top = stack.top(env.beta)
        return top is not None and top[0] == self.value

    def describe(self) -> str:
        return f"⟨{self.obj}.pop {self.value!r}⟩"


@dataclass(frozen=True, repr=False)
class ConditionalPop(Assertion):
    """``⟨s.pop v⟩[y = u]t`` — if a pop by t returned v (synchronising with
    the releasing push of the top element), t would definitely observe u
    for y."""

    obj: str
    value: Value
    dep_var: str
    dep_value: Value
    tid: str

    def holds(self, env: Env) -> bool:
        stack = env.object(self.obj)
        assert isinstance(stack, AbstractStack)
        dep_state = env.component(env.component_of_var(self.dep_var))
        top = stack.top(env.beta)
        if top is None or top[0] != self.value:
            return True  # vacuous: a pop cannot return v now
        _value, push_op = top
        if not push_op.act.sync:
            return False
        mv = env.beta.mview[push_op]
        return dview_value(mv, dep_state, self.dep_var) == self.dep_value

    def describe(self) -> str:
        return (
            f"⟨{self.obj}.pop {self.value!r}⟩"
            f"[{self.dep_var} = {self.dep_value!r}]{self.tid}"
        )


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------


def possible_value(var: str, value: Value, tid: str) -> PossibleValue:
    """Shorthand for ``⟨var = value⟩tid``."""
    return PossibleValue(var, value, tid)


def definite_value(var: str, value: Value, tid: str) -> DefiniteValue:
    """Shorthand for ``[var = value]tid``."""
    return DefiniteValue(var, value, tid)
