"""A proof outline for variable-level message passing (§5.1 assertions).

The paper's Figure 3 proves message passing *through a library stack*;
the same assertion language also proves the plain release/acquire MP
client (the shape the paper's §2 opens with, and the worked example of
the prior-work logic [5] this paper builds on)::

    Init: d := 0; f := 0;
    Thread 1                      Thread 2
    {¬⟨f = 1⟩2 ∧ [d = 0]1}        {⟨f = 1⟩[d = 5]2}
    1: d := 5;                    3: do r1 ←A f until r1 = 1;
    {¬⟨f = 1⟩2 ∧ [d = 5]1}        {[d = 5]2}
    2: f :=R 1;                   4: r2 ← d;
    {true}                        {r2 = 5}

The conditional observation ``⟨f = 1⟩[d = 5]2`` is vacuous while no
write of 1 to ``f`` is observable, and once thread 1's releasing write
appears it carries ``[d = 5]`` in its modification view — the exact
variable-level analogue of Figure 3's ``⟨s.pop 1⟩[d = 5]2``.
"""

from __future__ import annotations

from repro.assertions.core import TRUE, LocalEq
from repro.assertions.observability import (
    ConditionalValue,
    DefiniteValue,
    PossibleValue,
)
from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.logic.outline import ProofOutline, ThreadOutline


def mp_ra_labelled() -> Program:
    """The release/acquire MP client with proof-outline labels."""
    t1 = A.seq(
        A.Labeled(1, A.Write("d", Lit(5))),
        A.Labeled(2, A.Write("f", Lit(1), release=True)),
    )
    t2 = A.seq(
        A.Labeled(
            3,
            A.do_until(A.Read("r1", "f", acquire=True), Reg("r1").eq(1)),
        ),
        A.Labeled(4, A.Read("r2", "d")),
    )
    return Program(
        threads={"1": Thread(t1, done_label=3), "2": Thread(t2, done_label=5)},
        client_vars={"d": 0, "f": 0},
    )


def mp_outline() -> ProofOutline:
    """The variable-level message-passing proof outline."""
    program = mp_ra_labelled()
    no_flag = ~PossibleValue("f", 1, "2")
    thread1 = ThreadOutline(
        {
            1: no_flag & DefiniteValue("d", 0, "1"),
            2: no_flag & DefiniteValue("d", 5, "1"),
            3: TRUE,
        }
    )
    thread2 = ThreadOutline(
        {
            3: ConditionalValue("f", 1, "d", 5, "2"),
            4: DefiniteValue("d", 5, "2"),
            5: LocalEq("2", "r2", 5),
        }
    )
    return ProofOutline(
        program=program,
        threads={"1": thread1, "2": thread2},
        postcondition=LocalEq("2", "r2", 5),
    )
