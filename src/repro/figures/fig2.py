"""Figure 2: publication via a synchronising stack.

::

    Init: d := 0; s.init();
    Thread 1          Thread 2
    d := 5;           do r1 := s.popA() until r1 = 1;
    s.pushR(1);       r2 ← d;
                      {r2 = 5}

The releasing push / acquiring pop induce a happens-before
synchronisation: once thread 2 pops 1 it can no longer observe the stale
initial write of ``d``, so ``r2 = 5`` holds in every terminal state.
"""

from __future__ import annotations

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.objects.stack import AbstractStack


def fig2_program() -> Program:
    """Build the Figure 2 client (synchronising stack message passing)."""
    t1 = A.seq(
        A.Labeled(1, A.Write("d", Lit(5))),
        A.Labeled(2, A.MethodCall("s", "pushR", arg=Lit(1))),
    )
    t2 = A.seq(
        A.Labeled(
            3,
            A.do_until(A.MethodCall("s", "popA", dest="r1"), Reg("r1").eq(1)),
        ),
        A.Labeled(4, A.Read("r2", "d")),
    )
    return Program(
        threads={"1": Thread(t1, done_label=3), "2": Thread(t2, done_label=5)},
        client_vars={"d": 0},
        objects=(AbstractStack("s"),),
    )


#: The paper's postcondition: publication succeeded.
EXPECTED_OUTCOMES = {(5,)}
