"""Figure 3: the proof outline for message passing via the stack.

::

    Init: d := 0; s.init();
    {[d = 0]1 ∧ [d = 0]2 ∧ [s.pop emp]1 ∧ [s.pop emp]2}
    Thread 1                        Thread 2
    {¬⟨s.pop 1⟩2 ∧ [d = 0]1}        {⟨s.pop 1⟩[d = 5]2}
    1: d := 5;                      3: do r1 := s.popA() until r1 = 1;
    {¬⟨s.pop 1⟩2 ∧ [d = 5]1}        {[d = 5]2}
    2: s.pushR(1);                  4: r2 ← d;
    {true}                          {r2 = 5}

The outline is checked Owicki–Gries style: each assertion is the
precondition of the statement at its label; the thread-2 postcondition
``r2 = 5`` is the outline's overall postcondition.
"""

from __future__ import annotations

from repro.assertions.core import TRUE, LocalEq
from repro.assertions.observability import (
    ConditionalPop,
    DefiniteValue,
    StackEmpty,
    StackTopIs,
)
from repro.figures.fig2 import fig2_program
from repro.logic.outline import ProofOutline, ThreadOutline


def fig3_outline() -> ProofOutline:
    """The Figure 3 proof outline over the Figure 2 program."""
    program = fig2_program()
    no_pop1 = ~StackTopIs("s", 1)
    thread1 = ThreadOutline(
        {
            1: no_pop1 & DefiniteValue("d", 0, "1"),
            2: no_pop1 & DefiniteValue("d", 5, "1"),
            3: TRUE,  # thread 1's done label
        }
    )
    thread2 = ThreadOutline(
        {
            3: ConditionalPop("s", 1, "d", 5, "2"),
            4: DefiniteValue("d", 5, "2"),
            5: LocalEq("2", "r2", 5),
        }
    )
    return ProofOutline(
        program=program,
        threads={"1": thread1, "2": thread2},
        postcondition=LocalEq("2", "r2", 5),
    )


def fig3_initial_assertion():
    """The outline's initialisation assertion (checked separately)."""
    return (
        DefiniteValue("d", 0, "1")
        & DefiniteValue("d", 0, "2")
        & StackEmpty("s")
    )
