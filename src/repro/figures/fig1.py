"""Figure 1: unsynchronised message passing via a relaxed stack.

::

    Init: d := 0; s.init();
    Thread 1          Thread 2
    d := 5;           do r1 := s.pop() until r1 = 1;
    s.push(1);        r2 ← d;
                      {r2 = 0 ∨ r2 = 5}

With relaxed stack operations the pop does not synchronise with the
push, so thread 2 may read the stale initial value of ``d`` — the
postcondition can only be ``r2 = 0 ∨ r2 = 5``, and the framework shows
both disjuncts are realised.
"""

from __future__ import annotations

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg
from repro.lang.program import Program, Thread
from repro.objects.stack import AbstractStack


def fig1_program() -> Program:
    """Build the Figure 1 client (relaxed stack message passing)."""
    t1 = A.seq(
        A.Labeled(1, A.Write("d", Lit(5))),
        A.Labeled(2, A.MethodCall("s", "push", arg=Lit(1))),
    )
    t2 = A.seq(
        A.Labeled(
            3,
            A.do_until(A.MethodCall("s", "pop", dest="r1"), Reg("r1").eq(1)),
        ),
        A.Labeled(4, A.Read("r2", "d")),
    )
    return Program(
        threads={"1": Thread(t1, done_label=3), "2": Thread(t2, done_label=5)},
        client_vars={"d": 0},
        objects=(AbstractStack("s"),),
    )


#: The paper's (weak) postcondition: only a disjunction is provable.
EXPECTED_OUTCOMES = {(0,), (5,)}
