"""Figure 7: lock-synchronisation client and its proof outline (Lemma 4).

::

    Init: d1 := 0; d2 := 0; l.init();
    Thread 1                 Thread 2
    1: l.Acquire()           1: l.Acquire(rl)
    2: d1 := 5;              2: r1 ← d1;
    3: d2 := 5;              3: r2 ← d2;
    4: l.Release()           4: l.Release()
    {(r1 = 0 ∧ r2 = 0) ∨ (r1 = 5 ∧ r2 = 5)}

with the paper's assertions::

    Inv  = ¬(pc1 ∈ {2,3,4} ∧ pc2 ∈ {2,3,4}) ∧ rl ∈ {1,3}
    Ppo  = (pc2 = 1 ⇒ ¬⟨l.release_2⟩2) ∧ H_{l.init_0}
    P1   = [d1=0]1 ∧ [d2=0]1 ∧ (pc2 = 1 ⇒ [l.init_0]1 ∧ [l.init_0]2)
                              ∧ (pc2 ∈ {2,3,4} ⇒ C_{l.acquire_1})
    P2   = [d1=0]1 ∧ [d2=0]1 ∧ Ppo
    P3   = [d1=5]1 ∧ [d2=0]1 ∧ Ppo
    P4   = [d1=5]1 ∧ [d2=5]1 ∧ Ppo
    Q'1  = pc1 = 5 ∧ ⟨l.release_2⟩[d1=5]2 ∧ ⟨l.release_2⟩[d2=5]2
    Q1   = (pc1 ∉ {2,3,4} ⇒ ([l.init_0]2 ∧ [d1=0]2 ∧ [d2=0]2) ∨ Q'1)
           ∧ (pc1 = 1 ⇒ [l.init_0]1) ∧ (pc1 = 5 ⇒ H_{l.init_0})
    Q2   = (rl = 1 ⇒ [d1=0]2 ∧ [d2=0]2) ∧ (rl = 3 ⇒ [d1=5]2 ∧ [d2=5]2)
    Q3   = (rl = 1 ⇒ r1=0 ∧ [d2=0]2)   ∧ (rl = 3 ⇒ r1=5 ∧ [d2=5]2)
    Q4   = (rl = 1 ⇒ r1=0 ∧ r2=0)      ∧ (rl = 3 ⇒ r1=5 ∧ r2=5)

``rl`` records the lock version bound by thread 2's acquire (1 when
thread 2 entered its critical section first, 3 when second); it is
initialised to 1 so that ``Inv`` holds initially, as in the paper's
mechanisation.
"""

from __future__ import annotations

from repro.assertions.core import TRUE, AtPc, LocalEq, LocalIn
from repro.assertions.observability import (
    ConditionalMethod,
    Covered,
    DefiniteMethod,
    DefiniteValue,
    Hidden,
    MethodMatch,
    PossibleMethod,
)
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program, Thread
from repro.logic.outline import ProofOutline, ThreadOutline
from repro.objects.lock import AbstractLock


def fig7_program() -> Program:
    """Build the Figure 7 lock-synchronisation client."""
    t1 = A.seq(
        A.Labeled(1, A.MethodCall("l", "acquire")),
        A.Labeled(2, A.Write("d1", Lit(5))),
        A.Labeled(3, A.Write("d2", Lit(5))),
        A.Labeled(4, A.MethodCall("l", "release")),
    )
    t2 = A.seq(
        A.Labeled(1, A.MethodCall("l", "acquire", dest="rl")),
        A.Labeled(2, A.Read("r1", "d1")),
        A.Labeled(3, A.Read("r2", "d2")),
        A.Labeled(4, A.MethodCall("l", "release")),
    )
    return Program(
        threads={"1": Thread(t1, done_label=5), "2": Thread(t2, done_label=5)},
        client_vars={"d1": 0, "d2": 0},
        objects=(AbstractLock("l"),),
        init_locals={"2": {"rl": 1}},
    )


#: The paper's postcondition at thread 2's label 5.
EXPECTED_OUTCOMES = {(1, 0, 0), (3, 5, 5)}  # (rl, r1, r2)


def fig7_outline() -> ProofOutline:
    """The Figure 7 proof outline with the paper's assertions verbatim."""
    program = fig7_program()

    init0 = MethodMatch("l", "init", index=0)
    release2 = MethodMatch("l", "release", index=2)
    acquire1 = MethodMatch("l", "acquire", index=1)

    inv = (~(AtPc("1", (2, 3, 4)) & AtPc("2", (2, 3, 4)))) & LocalIn(
        "2", "rl", (1, 3)
    )

    ppo = (AtPc("2", (1,)) >> ~PossibleMethod(release2, "2")) & Hidden(init0)

    p1 = (
        DefiniteValue("d1", 0, "1")
        & DefiniteValue("d2", 0, "1")
        & (
            AtPc("2", (1,))
            >> (DefiniteMethod(init0, "1") & DefiniteMethod(init0, "2"))
        )
        & (AtPc("2", (2, 3, 4)) >> Covered(acquire1))
    )
    p2 = DefiniteValue("d1", 0, "1") & DefiniteValue("d2", 0, "1") & ppo
    p3 = DefiniteValue("d1", 5, "1") & DefiniteValue("d2", 0, "1") & ppo
    p4 = DefiniteValue("d1", 5, "1") & DefiniteValue("d2", 5, "1") & ppo

    q1_prime = (
        AtPc("1", (5,))
        & ConditionalMethod(release2, "d1", 5, "2")
        & ConditionalMethod(release2, "d2", 5, "2")
    )
    q1 = (
        (
            (~AtPc("1", (2, 3, 4)))
            >> (
                (
                    DefiniteMethod(init0, "2")
                    & DefiniteValue("d1", 0, "2")
                    & DefiniteValue("d2", 0, "2")
                )
                | q1_prime
            )
        )
        & (AtPc("1", (1,)) >> DefiniteMethod(init0, "1"))
        & (AtPc("1", (5,)) >> Hidden(init0))
    )
    rl1 = LocalEq("2", "rl", 1)
    rl3 = LocalEq("2", "rl", 3)
    q2 = (rl1 >> (DefiniteValue("d1", 0, "2") & DefiniteValue("d2", 0, "2"))) & (
        rl3 >> (DefiniteValue("d1", 5, "2") & DefiniteValue("d2", 5, "2"))
    )
    q3 = (rl1 >> (LocalEq("2", "r1", 0) & DefiniteValue("d2", 0, "2"))) & (
        rl3 >> (LocalEq("2", "r1", 5) & DefiniteValue("d2", 5, "2"))
    )
    q4 = (rl1 >> (LocalEq("2", "r1", 0) & LocalEq("2", "r2", 0))) & (
        rl3 >> (LocalEq("2", "r1", 5) & LocalEq("2", "r2", 5))
    )

    post = (LocalEq("2", "r1", 0) & LocalEq("2", "r2", 0)) | (
        LocalEq("2", "r1", 5) & LocalEq("2", "r2", 5)
    )

    thread1 = ThreadOutline({1: p1, 2: p2, 3: p3, 4: p4, 5: TRUE})
    thread2 = ThreadOutline({1: q1, 2: q2, 3: q3, 4: q4, 5: q4 & post})

    return ProofOutline(
        program=program,
        threads={"1": thread1, "2": thread2},
        invariant=inv,
        postcondition=post,
    )
