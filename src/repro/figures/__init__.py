"""The paper's example programs and proof outlines, as library objects.

* ``fig1`` — unsynchronised message passing via a relaxed stack;
* ``fig2`` — publication via a synchronising stack;
* ``fig3`` — the Owicki–Gries proof outline for Figure 2's program;
* ``fig7`` — the lock-synchronisation client and its proof outline
  (Lemma 4), including the paper's ``Inv``, ``P1–P4`` and ``Q1–Q4``.
"""

from repro.figures.fig1 import fig1_program
from repro.figures.fig2 import fig2_program
from repro.figures.fig3 import fig3_outline
from repro.figures.fig7 import fig7_outline, fig7_program

__all__ = [
    "fig1_program",
    "fig2_program",
    "fig3_outline",
    "fig7_outline",
    "fig7_program",
]
