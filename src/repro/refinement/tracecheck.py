"""Direct trace-refinement checking (Definitions 5–7).

``C[AO] ⊑ C[CO]`` is checked literally: enumerate the stutter-free
client traces of both programs and verify every concrete trace is
pointwise refined by some abstract trace (Definition 6).  The paper's
executions are arbitrary finite or infinite transition sequences — not
necessarily maximal — so trace sets are prefix-closed; we enumerate the
*complete* traces (ending at configurations without successors, or
absorbed in a cycle) and match concrete complete traces against the
prefix-closure of the abstract set, which implies matching for every
prefix as well.

Trace enumeration runs on the strongly-connected-component condensation
of the canonical configuration graph.  Library-internal cycles
(busy-wait loops, failed-CAS retries) never change the client
projection, so every SCC is projection-constant and the enumeration is
exact; an SCC whose members have different projections would make the
stutter-free trace language infinite and is reported as
``cyclic_client_change`` instead of being silently mishandled.

This checker is exponential and meant for the small client battery; it
decides refinement directly, and cross-validates the forward-simulation
solver (the Theorem 8.1 soundness bench).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lang.program import Program
from repro.refinement.traces import ClientState, client_projection, trace_refines
from repro.semantics.explore import explore
from repro.semantics.witness import Witness, WitnessStep


@dataclass
class RefinementResult:
    """Outcome of a direct program-refinement check."""

    refines: bool
    concrete_traces: int
    abstract_traces: int
    unmatched: List[Tuple[ClientState, ...]] = field(default_factory=list)
    cyclic_client_change: bool = False
    #: On failure: a concrete execution of the *concrete* program whose
    #: client projection realises the (shortest) unmatched trace —
    #: extracted from the already-explored transition graph, no second
    #: exploration.  None when the check passed (or no realisation was
    #: found, which the enumeration's construction should preclude).
    witness: Optional[Witness] = None

    def __bool__(self) -> bool:
        return self.refines


def _tarjan_scc(nodes: List, edges: Dict) -> Dict:
    """Iterative Tarjan: node -> SCC id (ids in reverse topological order)."""
    index: Dict = {}
    low: Dict = {}
    on_stack: Set = set()
    stack: List = []
    scc_of: Dict = {}
    counter = [0]
    scc_count = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, 0)]
        while work:
            node, ei = work[-1]
            if ei == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            out = edges.get(node, ())
            advanced = False
            while ei < len(out):
                succ = out[ei][3]
                ei += 1
                if succ not in index:
                    work[-1] = (node, ei)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work[-1] = (node, ei)
            if ei >= len(out):
                work.pop()
                if low[node] == index[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc_of[member] = scc_count[0]
                        if member == node:
                            break
                    scc_count[0] += 1
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
    return scc_of


def client_traces(
    program: Program, max_states: int = 200_000, engine=None
) -> Tuple[Set[Tuple[ClientState, ...]], bool]:
    """Complete stutter-free client traces of ``program``.

    A trace is *complete* when its execution ends at a configuration
    without successors (terminal or stuck) or enters a bottom SCC.
    Returns ``(traces, cyclic_client_change)``.  ``engine`` optionally
    routes exploration through a configured
    :class:`repro.engine.ExplorationEngine`.
    """
    traces, cyclic, _result, _projections = _client_trace_data(
        program, max_states=max_states, engine=engine
    )
    return traces, cyclic


def _client_trace_data(
    program: Program, max_states: int = 200_000, engine=None
):
    """Trace enumeration keeping its exploration by-products.

    Returns ``(traces, cyclic_client_change, result, projections)`` —
    the explored graph and per-state client projections are what
    :func:`_realise_trace` consumes to turn an unmatched trace back
    into a concrete interleaving without re-exploring.
    """
    # Trace enumeration consumes the un-fused transition graph: the
    # client projection changes across silent steps (local assignments
    # are client-observable), so ε-closure would alter the stutter
    # structure.  Request reduction="off" explicitly, overriding
    # whatever policy the supplied engine was configured with.
    if engine is not None:
        result = engine.explore(
            program, max_states=max_states, collect_edges=True,
            reduction="off",
        )
    else:
        result = explore(
            program, max_states=max_states, collect_edges=True,
            reduction="off",
        )
    if result.truncated:
        from repro.util.errors import VerificationError

        raise VerificationError(
            "state space truncated during trace collection; raise max_states"
        )
    projections: Dict[Tuple, ClientState] = {
        key: client_projection(program, cfg)
        for key, cfg in result.configs.items()
    }
    node_list = list(result.configs.keys())
    scc_of = _tarjan_scc(node_list, result.edges)

    # Group nodes, build the condensation, check projection-constancy.
    members: Dict[int, List[Tuple]] = {}
    for node, scc in scc_of.items():
        members.setdefault(scc, []).append(node)
    cyclic_change = False
    scc_proj: Dict[int, ClientState] = {}
    for scc, group in members.items():
        projs = {projections[n] for n in group}
        if len(projs) > 1:
            cyclic_change = True
        scc_proj[scc] = projections[group[0]]

    dag: Dict[int, Set[int]] = {scc: set() for scc in members}
    has_sink_member: Dict[int, bool] = {scc: False for scc in members}
    for node in node_list:
        scc = scc_of[node]
        out = result.edges.get(node, ())
        if not out:
            has_sink_member[scc] = True
        for _tid, _comp, _act, succ in out:
            if scc_of[succ] != scc:
                dag[scc].add(scc_of[succ])

    # Tarjan assigns ids in reverse topological order: successors of an
    # SCC always have smaller ids, so ascending id order is a valid
    # bottom-up evaluation order for suffix sets.
    suffixes: Dict[int, FrozenSet[Tuple[ClientState, ...]]] = {}
    for scc in sorted(members):
        proj = scc_proj[scc]
        collected: Set[Tuple[ClientState, ...]] = set()
        if has_sink_member[scc] or not dag[scc]:
            collected.add((proj,))
        for succ_scc in dag[scc]:
            for suffix in suffixes[succ_scc]:
                if suffix[0] == proj:
                    collected.add(suffix)
                else:
                    collected.add((proj,) + suffix)
        suffixes[scc] = frozenset(collected)

    initial_scc = scc_of[result.initial_key]
    return set(suffixes[initial_scc]), cyclic_change, result, projections


def _realise_trace(
    result, projections: Dict, trace: Tuple[ClientState, ...]
) -> Optional[Witness]:
    """A concrete execution whose stutter-free client projection is
    ``trace``, rebuilt from the explored graph.

    BFS over the product of the recorded transition graph and the trace
    position: an edge stays at position ``i`` when the successor still
    projects to ``trace[i]`` (stutter) and advances when it projects to
    ``trace[i+1]``.  The target is full consumption at a sink state
    (terminal/stuck); traces absorbed in a cycle fall back to the first
    full-consumption state found.  Every step is a recorded edge of the
    unreduced graph, so the witness replays through raw ``successors``.
    """
    if not trace or projections[result.initial_key] != trace[0]:
        return None
    start = (result.initial_key, 0)
    # (node, i) -> (previous product state, (tid, component, action, key))
    parent: Dict[Tuple, Optional[Tuple]] = {start: None}
    queue = deque([start])
    goal = None
    fallback = None
    while queue and goal is None:
        node, i = queue.popleft()
        out = result.edges.get(node, ())
        if i == len(trace) - 1:
            if not out:
                goal = (node, i)
                break
            if fallback is None:
                fallback = (node, i)
        for tid, comp, act, succ in out:
            proj = projections[succ]
            if proj == trace[i]:
                ni = i
            elif i + 1 < len(trace) and proj == trace[i + 1]:
                ni = i + 1
            else:
                continue
            state = (succ, ni)
            if state in parent:
                continue
            parent[state] = ((node, i), (tid, comp, act, succ))
            queue.append(state)
    target = goal if goal is not None else fallback
    if target is None:
        return None
    steps: List[WitnessStep] = []
    state = target
    while parent[state] is not None:
        prev, (tid, comp, act, key) = parent[state]
        steps.append(WitnessStep(tid, comp, act, result.configs[key]))
        state = prev
    steps.reverse()
    return Witness(initial=result.initial, steps=steps)


def prefix_closure(
    traces: Set[Tuple[ClientState, ...]]
) -> Set[Tuple[ClientState, ...]]:
    """All non-empty prefixes of the given traces."""
    out: Set[Tuple[ClientState, ...]] = set()
    for trace in traces:
        for i in range(1, len(trace) + 1):
            out.add(trace[:i])
    return out


def check_program_refinement(
    concrete: Program,
    abstract: Program,
    max_states: int = 200_000,
    engine=None,
) -> RefinementResult:
    """Definition 6/7: every stutter-free concrete client trace is
    pointwise refined by some abstract client trace.

    Concrete *complete* traces are matched against the prefix-closure of
    the abstract complete traces; matching for all prefixes of concrete
    traces follows (a prefix of a matched trace is matched by the
    corresponding prefix).

    On failure the result carries a ``witness``: a concrete
    interleaving of the *concrete* program realising the shortest
    unmatched trace, rebuilt from the transition graph the check
    already explored — this is what
    :meth:`repro.toolkit.RefinementReport.describe` prints.
    """
    conc_traces, conc_cyclic, conc_result, conc_proj = _client_trace_data(
        concrete, max_states=max_states, engine=engine
    )
    abs_traces, abs_cyclic = client_traces(
        abstract, max_states=max_states, engine=engine
    )
    abs_prefixes = prefix_closure(abs_traces)

    by_len: Dict[int, List[Tuple[ClientState, ...]]] = {}
    for at in abs_prefixes:
        by_len.setdefault(len(at), []).append(at)

    unmatched = []
    for ct in conc_traces:
        candidates = by_len.get(len(ct), ())
        if not any(trace_refines(ct, at) for at in candidates):
            unmatched.append(ct)

    witness = None
    if unmatched:
        shortest = min(unmatched, key=lambda t: (len(t), repr(t)))
        witness = _realise_trace(conc_result, conc_proj, shortest)

    return RefinementResult(
        refines=not unmatched and not conc_cyclic and not abs_cyclic,
        concrete_traces=len(conc_traces),
        abstract_traces=len(abs_traces),
        unmatched=unmatched,
        cyclic_client_change=conc_cyclic or abs_cyclic,
        witness=witness,
    )
