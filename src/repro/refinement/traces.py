"""Client trace projection and stuttering (paper §6.1).

A client trace extracts, from each configuration of an execution, the
pair ``(ls|C, γ)``: thread-local states restricted to client registers,
and the client component state.  Library-internal steps stutter in this
projection; :func:`remove_stutter` collapses them, yielding the
stutter-free traces of Definition 6.

Projections are *canonical* — client operation timestamps are replaced
by their ranks — so projections of corresponding abstract and concrete
executions are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Tuple

from repro.lang.program import Program
from repro.memory.actions import Op
from repro.semantics.config import Config


@dataclass(frozen=True)
class ClientState:
    """The client-observable part of a configuration (canonicalised).

    Carries exactly what Definition 5 compares: client-projected local
    states, the client operation set, per-(thread, variable) observable
    operation sets, and the client's covered set.
    """

    locals: Tuple  # ((tid, ((reg, val), ...)), ...)
    ops: FrozenSet  # encoded client operations
    obs: Tuple  # (((tid, var), frozenset(encoded ops)), ...)
    cvd: FrozenSet  # encoded covered client operations

    def refines(self, abstract: "ClientState") -> bool:
        """Definition 5: ``(ls_A, γ_A) ⊑ (ls_C, γ_C)`` with ``self`` the
        concrete state.

        Local states and covered sets agree; every concrete observable
        set is contained in the abstract one.
        """
        if self.locals != abstract.locals:
            return False
        if self.cvd != abstract.cvd:
            return False
        abs_obs = dict(abstract.obs)
        for key, conc_set in self.obs:
            if not conc_set <= abs_obs.get(key, frozenset()):
                return False
        return True


def client_projection(program: Program, cfg: Config) -> ClientState:
    """Project a configuration to its client-observable state."""
    from repro.semantics.canon import _enc_table

    gamma = cfg.gamma
    table = _enc_table(gamma)
    lib_regs = program.lib_registers()

    def enc(op: Op) -> Tuple:
        return table[op]

    locals_ = tuple(
        sorted(
            (
                tid,
                tuple(
                    sorted((r, v) for r, v in ls.items() if r not in lib_regs)
                ),
            )
            for tid, ls in cfg.locals.items()
        )
    )
    obs = tuple(
        sorted(
            (
                (tid, var),
                frozenset(enc(op) for op in gamma.obs(tid, var)),
            )
            for tid in program.tids
            for var in program.client_var_names
        )
    )
    return ClientState(
        locals=locals_,
        ops=frozenset(enc(op) for op in gamma.ops),
        obs=obs,
        cvd=frozenset(enc(op) for op in gamma.cvd),
    )


def remove_stutter(trace: Sequence[ClientState]) -> Tuple[ClientState, ...]:
    """``rem_stut``: collapse consecutive repeated client states."""
    out = []
    for state in trace:
        if not out or out[-1] != state:
            out.append(state)
    return tuple(out)


def trace_refines(
    concrete: Sequence[ClientState], abstract: Sequence[ClientState]
) -> bool:
    """Definition 5 lifted to traces: pointwise refinement, equal length."""
    if len(concrete) != len(abstract):
        return False
    return all(c.refines(a) for c, a in zip(concrete, abstract))
