"""Checking a user-supplied forward-simulation relation (Definition 8).

The game solver (:mod:`repro.refinement.simulation`) *discovers* a
simulation; the paper's Isabelle proofs instead *supply* a relation and
discharge Definition 8's three conditions.  This module reproduces that
workflow: the user provides ``relate(abs_env, conc_env) -> bool`` and
the checker verifies, over all product-reachable pairs,

1. every related pair satisfies the client-observation condition
   (client locals equal, client ``cvd`` equal, concrete observable sets
   ⊆ abstract ones);
2. the initial configurations are related;
3. every concrete step from a related pair is matched by abstract
   stuttering or by one abstract step, ending in a related pair.

Because the relation is given, failures are attributed precisely: a
pair that should be related but is not (condition 3 dead end), or a
related pair violating client observation (condition 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.assertions.core import Env, make_env
from repro.lang.program import Program
from repro.refinement.simulation import _prepare
from repro.util.errors import VerificationError

#: relate(abstract_env, concrete_env) -> bool.
Relation = Callable[[Env, Env], bool]


@dataclass
class RelationCheckResult:
    """Outcome of checking a supplied simulation relation."""

    valid: bool
    related_pairs: int
    checked_steps: int
    #: ('observation' | 'initial' | 'unmatched-step', abs key, conc key)
    failures: List[Tuple[str, Tuple, Tuple]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


def check_simulation_relation(
    concrete: Program,
    abstract: Program,
    relate: Relation,
    max_states: int = 200_000,
    stop_on_first: bool = False,
) -> RelationCheckResult:
    """Verify that ``relate`` is a forward simulation per Definition 8."""
    conc = _prepare(concrete, max_states)
    abst = _prepare(abstract, max_states)

    def related(akey: Tuple, ckey: Tuple) -> bool:
        return relate(
            make_env(abstract, abst.result.configs[akey]),
            make_env(concrete, conc.result.configs[ckey]),
        )

    def observation_ok(akey: Tuple, ckey: Tuple) -> bool:
        return conc.projections[ckey].refines(abst.projections[akey])

    failures: List[Tuple[str, Tuple, Tuple]] = []
    init_pair = (abst.result.initial_key, conc.result.initial_key)
    if not related(*init_pair):
        failures.append(("initial", *init_pair))
        return RelationCheckResult(
            valid=False, related_pairs=0, checked_steps=0, failures=failures
        )

    seen: Set[Tuple[Tuple, Tuple]] = {init_pair}
    queue: List[Tuple[Tuple, Tuple]] = [init_pair]
    checked_steps = 0
    while queue:
        akey, ckey = queue.pop()
        # Condition 1: client observation at every related pair.
        if not observation_ok(akey, ckey):
            failures.append(("observation", akey, ckey))
            if stop_on_first:
                break
            continue
        # Condition 3: match every concrete step.
        for (_tid, _comp, _act, csucc) in conc.result.edges.get(ckey, ()):
            checked_steps += 1
            matches = []
            if related(akey, csucc):
                matches.append((akey, csucc))
            for (_t2, _c2, _a2, asucc) in abst.result.edges.get(akey, ()):
                if related(asucc, csucc):
                    matches.append((asucc, csucc))
            if not matches:
                failures.append(("unmatched-step", akey, csucc))
                if stop_on_first:
                    queue.clear()
                    break
                continue
            for pair in matches:
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)

    return RelationCheckResult(
        valid=not failures,
        related_pairs=len(seen),
        checked_steps=checked_steps,
        failures=failures,
    )
