"""Contextual refinement (paper Section 6).

* :mod:`repro.refinement.traces` — executions, client trace projection
  and stutter removal (§6.1);
* :mod:`repro.refinement.tracecheck` — state/trace/program refinement
  checked directly from Definitions 5–7 by enumerating stutter-free
  client traces of ``C[CO]`` and ``C[AO]``;
* :mod:`repro.refinement.simulation` — the forward-simulation rule of
  Definition 8 solved as a simulation *game* over the product of the
  abstract and concrete configuration graphs: the greatest fixpoint of
  good pairs is itself the simulation relation ``R`` when it contains
  the initial pair.
"""

from repro.refinement.checkrel import (
    RelationCheckResult,
    check_simulation_relation,
)
from repro.refinement.simulation import SimulationResult, find_forward_simulation
from repro.refinement.tracecheck import (
    RefinementResult,
    check_program_refinement,
    client_traces,
)
from repro.refinement.traces import client_projection, remove_stutter

__all__ = [
    "RefinementResult",
    "RelationCheckResult",
    "SimulationResult",
    "check_program_refinement",
    "check_simulation_relation",
    "client_projection",
    "client_traces",
    "find_forward_simulation",
    "remove_stutter",
]
