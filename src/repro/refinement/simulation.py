"""Forward simulation as a game (Definition 8, Theorem 8.1).

Definition 8 asks for a relation ``R`` between abstract and concrete
configurations such that (1) related states agree on the client
projection — equal client locals, equal client ``cvd``, concrete
observable sets contained in abstract ones; (2) the initial states are
related; (3) every concrete step is matched by abstract stuttering or by
one abstract step, preserving ``R``.

Instead of asking the user to supply ``R`` (as the paper's Isabelle
proofs do), we *solve* for it: compute all product-reachable pairs
satisfying the client-observation condition, then take the greatest
fixpoint removing pairs with an unmatched concrete step.  If the initial
pair survives, the surviving set **is** a forward simulation — the
certificate for Propositions 9 and 10.  The solver also discovers the
stuttering structure automatically (failed CAS, busy-wait reads, the FAI
before the decisive read all stutter; the successful CAS / decisive read
matches the abstract method call).

Good pairs additionally require equal client program counters, which
pins the alignment of the shared client code; this strengthens ``R``
(any relation satisfying a stronger condition (1) is still a simulation
in the sense of Definition 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.program import Program
from repro.refinement.traces import ClientState, client_projection
from repro.semantics.explore import ExploreResult, explore
from repro.util.errors import VerificationError


@dataclass
class SimulationResult:
    """Outcome of the simulation game."""

    found: bool
    relation_size: int
    abstract_states: int
    concrete_states: int
    product_pairs: int
    iterations: int
    #: A concrete configuration key whose steps cannot be matched (when
    #: the game is lost) — the root of the counterexample.
    failure: Optional[Tuple] = None

    def __bool__(self) -> bool:
        return self.found


@dataclass
class _Side:
    result: ExploreResult
    projections: Dict[Tuple, ClientState]
    pcs: Dict[Tuple, Tuple]


def _prepare(program: Program, max_states: int, engine=None) -> _Side:
    # The simulation game matches individual concrete steps against
    # abstract stuttering: it needs the un-fused transition graph (and
    # the intermediate configurations whose program counters pin the
    # alignment), so reduction is explicitly off regardless of the
    # engine's configured policy.
    if engine is not None:
        result = engine.explore(
            program, max_states=max_states, collect_edges=True,
            reduction="off",
        )
    else:
        result = explore(
            program, max_states=max_states, collect_edges=True,
            reduction="off",
        )
    if result.truncated:
        raise VerificationError(
            "state space truncated during simulation; raise max_states"
        )
    projections = {
        key: client_projection(program, cfg)
        for key, cfg in result.configs.items()
    }
    pcs = {
        key: tuple(cfg.pc(t, program) for t in program.tids)
        for key, cfg in result.configs.items()
    }
    return _Side(result=result, projections=projections, pcs=pcs)


def find_forward_simulation(
    concrete: Program,
    abstract: Program,
    max_states: int = 200_000,
    engine=None,
) -> SimulationResult:
    """Solve the simulation game between ``C[CO]`` and ``C[AO]``.

    Both programs must be instantiations of the same client template
    (same thread ids, same client variables, same statement labels), as
    in Definition 7.  ``engine`` optionally routes the two explorations
    through a configured :class:`repro.engine.ExplorationEngine` (e.g.
    the sharded multiprocess backend for large implementations).
    """
    conc = _prepare(concrete, max_states, engine)
    abst = _prepare(abstract, max_states, engine)

    def good(akey: Tuple, ckey: Tuple) -> bool:
        if conc.pcs[ckey] != abst.pcs[akey]:
            return False
        return conc.projections[ckey].refines(abst.projections[akey])

    init_pair = (abst.result.initial_key, conc.result.initial_key)
    if not good(*init_pair):
        return SimulationResult(
            found=False,
            relation_size=0,
            abstract_states=abst.result.state_count,
            concrete_states=conc.result.state_count,
            product_pairs=0,
            iterations=0,
            failure=conc.result.initial_key,
        )

    # Forward-reachable good pairs, with candidate matches per concrete
    # edge: stutter (same abstract state) or one abstract move.
    pairs: Set[Tuple[Tuple, Tuple]] = {init_pair}
    queue: List[Tuple[Tuple, Tuple]] = [init_pair]
    # (pair, concrete edge index) -> list of candidate successor pairs
    candidates: Dict[Tuple[Tuple[Tuple, Tuple], int], List] = {}

    while queue:
        akey, ckey = queue.pop()
        for i, (_tid, _comp, _act, csucc) in enumerate(
            conc.result.edges.get(ckey, ())
        ):
            cands = []
            if good(akey, csucc):
                cands.append((akey, csucc))
            for (_t2, _c2, _a2, asucc) in abst.result.edges.get(akey, ()):
                if good(asucc, csucc):
                    cands.append((asucc, csucc))
            candidates[((akey, ckey), i)] = cands
            for pair in cands:
                if pair not in pairs:
                    pairs.add(pair)
                    queue.append(pair)

    # Greatest fixpoint: drop pairs with an unmatchable concrete step.
    alive: Set[Tuple[Tuple, Tuple]] = set(pairs)
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        dead = []
        for pair in alive:
            akey, ckey = pair
            for i in range(len(conc.result.edges.get(ckey, ()))):
                cands = candidates.get((pair, i), ())
                if not any(p in alive for p in cands):
                    dead.append(pair)
                    break
        if dead:
            changed = True
            for pair in dead:
                alive.discard(pair)

    found = init_pair in alive
    return SimulationResult(
        found=found,
        relation_size=len(alive) if found else 0,
        abstract_states=abst.result.state_count,
        concrete_states=conc.result.state_count,
        product_pairs=len(pairs),
        iterations=iterations,
        failure=None if found else conc.result.initial_key,
    )
