"""Live exploration progress: a rate-limited stderr heartbeat.

A :class:`Progress` reporter redraws one status line in place —
``exploring: 12,345 states (4,567/s) shards 3101/3090/3077`` — while a
long exploration runs, then erases it so the command's real output is
untouched.  It is designed for the engine's hot loops:

* **TTY-gated**: unless ``enabled`` is forced, the reporter silently
  disables itself when the stream is not a terminal (CI logs, pipes,
  the test-suite) — and the CLI's ``--quiet`` flag never constructs
  one at all.
* **Rate-limited twice over**: callers may invoke :meth:`update` per
  admitted state; an internal countdown skips all but every 64th call
  before even reading the clock, and redraws are additionally capped at
  one per ``interval`` seconds.

The parallel backends feed it shard balance: the rounds master updates
per BFS round, the pipeline master from the workers' periodic ``stat``
messages (emitted only when a reporter is attached, so the message
traffic is also zero when off).
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, Sequence

#: update() calls skipped between clock reads (keeps the per-state cost
#: of an attached reporter to one decrement and compare).
_TICK_EVERY = 64


class Progress:
    """A self-erasing, rate-limited status line."""

    def __init__(
        self,
        stream=None,
        interval: float = 0.25,
        label: str = "exploring",
        enabled: Optional[bool] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            try:
                enabled = bool(isatty()) if isatty is not None else False
            except Exception:
                enabled = False
        self.enabled = enabled
        self.interval = interval
        self.label = label
        self._t0: Optional[float] = None
        self._last = 0.0
        self._tick = 0
        self._dirty = False

    def update(
        self,
        states: int,
        shards: Optional[Sequence[int]] = None,
        force: bool = False,
    ) -> None:
        """Report ``states`` admitted so far (and optionally per-shard
        counts); redraws at most once per ``interval`` seconds."""
        if not self.enabled:
            return
        if not force:
            self._tick -= 1
            if self._tick > 0:
                return
            self._tick = _TICK_EVERY
        now = time.monotonic()
        if self._t0 is None:
            self._t0 = now
        if not force and now - self._last < self.interval:
            return
        self._last = now
        elapsed = now - self._t0
        rate = states / elapsed if elapsed > 0 else 0.0
        msg = f"{self.label}: {states:,} states ({rate:,.0f}/s)"
        if shards:
            msg += " shards " + "/".join(str(int(s)) for s in shards)
        self.stream.write("\r\x1b[2K" + msg)
        self.stream.flush()
        self._dirty = True

    def finish(self) -> None:
        """Erase the status line (if one was drawn) and reset the rate
        clock, so one reporter can serve many explorations in turn."""
        if self._dirty:
            self.stream.write("\r\x1b[2K")
            self.stream.flush()
            self._dirty = False
        self._t0 = None
        self._tick = 0


def shard_counts(states_by_shard: dict) -> List[int]:
    """``{wid: states}`` → the display ordering ``update`` expects."""
    return [states_by_shard[w] for w in sorted(states_by_shard)]
