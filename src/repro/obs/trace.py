"""The JSONL trace stream: timestamped span + sample events.

A :class:`TraceWriter` appends one JSON object per line to a file (or
any writable stream).  The stream is the machine-readable counterpart
of the CLI's progress line — and the substrate the planned
``repro serve`` mode will stream to clients — so its schema is stable
and versioned.

Wire format (schema version 1)
------------------------------
Every line is one JSON object with three envelope fields::

    {"v": 1, "ts": 1717171717.123, "ev": "explore.start", ...}

``v``
    schema version (integer, currently :data:`SCHEMA_VERSION`);
``ts``
    event time as a Unix timestamp (float seconds);
``ev``
    event name, one of the keys of :data:`EVENTS`.

Event payloads (additional fields may be appended in later versions —
consumers must ignore unknown fields; the fields below are guaranteed):

``explore.start``
    an engine exploration began — ``backend`` (``"sequential"`` |
    ``"rounds"`` | ``"pipeline"``), ``workers``, ``reduction``,
    ``max_states``;
``explore.finish``
    its span end — ``states``, ``edges``, ``elapsed`` (seconds),
    ``truncated``, ``stopped``, ``states_per_sec``;
``explore.cached``
    an ``engine.run()`` served from the persistent result cache
    (no exploration span) — ``key`` (the cache fingerprint);
``explore.round``
    rounds backend, start of one level-synchronous BFS round —
    ``round`` (1-based), ``frontier`` (configurations about to
    expand), ``states`` (admitted so far);
``explore.transport``
    pipeline backend, the resolved cross-shard data plane —
    ``transport`` (``"shm"`` | ``"queue"``), ``reason``
    (``"requested"`` | ``"env"`` | ``"default"`` | ``"unavailable"``);
``explore.codec``
    pipeline backend, the resolved batch wire format —
    ``codec`` (``"flat"`` | ``"pickle"``), ``reason``
    (``"requested"`` | ``"env"`` | ``"default"``);
``explore.drain``
    pipeline backend, a worker drained its local frontier and went
    idle — ``worker`` (shard id), ``consumed`` (inbox batches
    processed so far);
``metrics.sample``
    a metrics snapshot — ``metrics`` (the
    :meth:`repro.obs.metrics.Metrics.snapshot` dict); emitted by the
    engine after each exploration's ``explore.finish``;
``analysis.report``
    the engine's pre-exploration static analysis ran (``analysis=``
    policies other than ``"off"``) — ``policy``, ``errors``,
    ``warnings`` (finding counts by severity);
``litmus.start`` / ``litmus.finish``
    CLI litmus battery span — ``tests`` / ``ok``;
``batch.start`` / ``batch.finish``
    batch-runner span — ``jobs`` (names), ``workers`` / ``ok``,
    ``elapsed``;
``batch.job.start`` / ``batch.job.finish``
    one batch job's lifecycle — ``job`` / ``job``, ``ok``,
    ``elapsed``.  With ``workers > 1`` the jobs run in a process pool:
    start events are emitted at submission and finish events as
    results arrive, all from the coordinating process.

Events are emitted by the coordinating (master) process only — worker
processes never touch the trace file, so no interleaving or locking
concerns arise.  :func:`validate_event` checks one decoded line against
the schema; the test-suite validates every stream the CLI produces.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

#: Trace schema version, the ``v`` field of every event.
SCHEMA_VERSION = 1

#: Environment variable naming a JSONL trace file the CLI appends to
#: (the ``--trace FILE`` flag wins when both are given).
TRACE_ENV = "REPRO_TRACE"

#: The event schema: event name -> required payload fields and their
#: JSON types.  ``float`` accepts ints (JSON has one number type);
#: ``int`` rejects booleans (a common JSON-typing footgun).
EVENTS: Dict[str, Dict[str, type]] = {
    "explore.start": {
        "backend": str, "workers": int, "reduction": str, "max_states": int,
    },
    "explore.finish": {
        "states": int, "edges": int, "elapsed": float,
        "truncated": bool, "stopped": bool, "states_per_sec": float,
    },
    "explore.cached": {"key": str},
    "explore.round": {"round": int, "frontier": int, "states": int},
    "explore.transport": {"transport": str, "reason": str},
    "explore.codec": {"codec": str, "reason": str},
    "explore.drain": {"worker": int, "consumed": int},
    "metrics.sample": {"metrics": dict},
    "analysis.report": {"policy": str, "errors": int, "warnings": int},
    "litmus.start": {"tests": int},
    "litmus.finish": {"ok": bool},
    "batch.start": {"jobs": list, "workers": int},
    "batch.finish": {"ok": bool, "elapsed": float},
    "batch.job.start": {"job": str},
    "batch.job.finish": {"job": str, "ok": bool, "elapsed": float},
}


def validate_event(obj: object) -> Dict:
    """Check one decoded JSONL line against the schema.

    Returns the object unchanged; raises :class:`ValueError` naming the
    first problem.  Unknown *fields* are allowed (forward
    compatibility); unknown *events* are not.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace event must be an object, got {type(obj)}")
    if obj.get("v") != SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema version {obj.get('v')!r}")
    ts = obj.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        raise ValueError(f"bad ts {ts!r}")
    ev = obj.get("ev")
    if ev not in EVENTS:
        raise ValueError(f"unknown event {ev!r}")
    for field, ftype in EVENTS[ev].items():
        if field not in obj:
            raise ValueError(f"{ev}: missing field {field!r}")
        value = obj[field]
        if ftype is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif ftype is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif ftype is bool:
            ok = isinstance(value, bool)
        else:
            ok = isinstance(value, ftype)
        if not ok:
            raise ValueError(
                f"{ev}: field {field!r} should be {ftype.__name__}, "
                f"got {value!r}"
            )
    return obj


class TraceWriter:
    """An append-only JSONL event sink (see the module docstring).

    ``target`` is a path (opened in append mode, so successive commands
    pointed at one file accumulate a session log) or any object with a
    ``write`` method.  Lines are flushed per event: a crashed run's
    trace is complete up to the crash.
    """

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._own = False
            self.path = getattr(target, "name", None)
        else:
            self._fh = open(target, "a", encoding="utf-8")
            self._own = True
            self.path = str(target)

    def __repr__(self) -> str:
        state = "closed" if self._fh is None else "open"
        return f"TraceWriter({self.path!r}, {state})"

    def emit(self, ev: str, **fields) -> None:
        """Append one event; no-op after :meth:`close`."""
        if self._fh is None:
            return
        record = {"v": SCHEMA_VERSION, "ts": time.time(), "ev": ev}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self._own:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def trace_from_env() -> Optional[TraceWriter]:
    """A :class:`TraceWriter` on the ``REPRO_TRACE`` file, or None."""
    path = os.environ.get(TRACE_ENV, "").strip()
    return TraceWriter(path) if path else None
