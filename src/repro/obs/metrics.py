"""The engine-wide metrics registry: counters, timers, gauges.

A :class:`Metrics` object is a small, mergeable registry.  Collection
points come in two shapes:

* call sites that hold a ``Metrics`` in hand — the engine backends —
  call :meth:`Metrics.inc` / :meth:`Metrics.add_time` /
  :meth:`Metrics.gauge_max` directly;
* instrumentation buried in the semantics hot paths (the reduction
  layer's ε-fusion and covering-read-prune counts, which cannot thread
  a parameter through ``successors``) reads the module-level *active
  collector* ``_ACTIVE`` — ``None`` by default, installed around an
  exploration by :func:`collecting` (or :func:`activate` in worker
  processes).  The fully-disabled cost is one module-attribute load and
  an ``is None`` test at each such site, which the overhead benchmark
  (``benchmarks/test_bench_obs.py``) gates as unmeasurable.

Worker processes never share a registry: each sharded worker collects
into its own ``Metrics`` and ships ``snapshot()`` home inside its
result fragment; the master :meth:`Metrics.merge`\\ s fragments into the
one global registry whose snapshot lands on ``ExploreResult.metrics``.

Counter schema — stable names; the same keys appear in trace
``metrics.sample`` events and batch-report ``metrics`` blocks:

===================================  ======================================
``explore.states``                   states admitted to the visited set
``explore.edges``                    transitions generated while expanding
``reduce.epsilon_fused``             silent steps fused by the ε-closure
``reduce.covering_pruned``           read candidates skipped by the
                                     covering prune
``reduce.dpor.sleep_blocked``        transitions suppressed by sleep sets
                                     (dpor)
``reduce.dpor.persistent_expanded``  states expanded via a *proper*
                                     persistent subset of their enabled
                                     threads (dpor)
``reduce.dpor.static_disjoint``      thread-pair conflict tests skipped
                                     by the static-disjointness fast
                                     path (dpor)
``analysis.runs``                    programs statically analysed by the
                                     engine (``analysis=`` policies
                                     other than ``"off"``)
``analysis.errors``                  error-severity findings across
                                     those runs
``analysis.warnings``                warning-severity findings across
                                     those runs
``cache.hits``                       engine ``run()`` calls served from
                                     the cache
``cache.misses``                     engine ``run()`` calls that explored
                                     live
``shard.<w>.states``                 states owned/expanded by shard ``w``
``pipeline.batches``                 cross-shard batches shipped (pipeline)
``pipeline.blob_bytes``              bytes of cross-shard codec blobs
                                     (pipeline, queue transport)
``codec.encode_ns``                  nanoseconds spent encoding batch
                                     blobs (either codec, both
                                     transports)
``codec.decode_ns``                  nanoseconds spent decoding batch
                                     blobs
``codec.table_entries``              intern-table entries written by the
                                     flat codec (actions + timestamps +
                                     names + command ASTs, per batch —
                                     the shared-structure dedup the v2
                                     wire format exists for)
``pipeline.batch_copies``            intermediate batch materialisations:
                                     deterministically 2 per batch on the
                                     queue transport (worker blob + master
                                     hop), 0 on shm's zero-copy path, 1
                                     per chunked oversize batch
``shm.ring.bytes``                   bytes published into shm rings
                                     (frame headers included)
``shm.ring.frames``                  frames published into shm rings
                                     (> batches only when chunking)
``shm.ring.full_waits``              producer waits on a full ring —
                                     sustained growth means undersized
                                     rings (``REPRO_SHM_RING_CAP``)
``rounds.blob_bytes``                bytes of per-state result blobs
                                     (rounds)
===================================  ======================================

Timers (seconds, additive): ``explore.elapsed`` — exploration
wall-clock, the denominator of the states/sec rate.  Gauges (high-water
marks, merged by max): ``explore.frontier_peak`` — sampled peak
frontier/queue depth; ``shm.ring.<src>.<dst>.occupancy`` — peak bytes
resident in the ``src → dst`` ring, sampled at publish.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional, Union

#: The active collector consulted by parameterless instrumentation
#: points (the reduction layer).  ``None`` — the default — disables
#: them at the cost of one attribute load + ``is None`` test.
_ACTIVE: Optional["Metrics"] = None


def active() -> Optional["Metrics"]:
    """The currently-installed active collector (None when off)."""
    return _ACTIVE


def activate(metrics: Optional["Metrics"]) -> Optional["Metrics"]:
    """Install ``metrics`` as the active collector; returns the
    previous one so callers can restore it (see :func:`collecting` for
    the context-managed form used in-process; worker processes call
    this once at startup and never restore)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = metrics
    return previous


@contextmanager
def collecting(metrics: Optional["Metrics"]):
    """Scope ``metrics`` as the active collector; no-op when None
    (an outer collector, if any, keeps collecting)."""
    if metrics is None:
        yield
        return
    previous = activate(metrics)
    try:
        yield
    finally:
        activate(previous)


class Metrics:
    """A mergeable registry of counters, timers and gauges."""

    __slots__ = ("counters", "timers", "gauges")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self.counters)} counters, "
            f"{len(self.timers)} timers, {len(self.gauges)} gauges)"
        )

    # -- collection ----------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` onto timer ``name``."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """Time a block onto timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new high."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # -- aggregation ---------------------------------------------------------
    def merge(self, other: Union["Metrics", Dict, None]) -> "Metrics":
        """Fold another registry (or a :meth:`snapshot` dict, e.g. a
        worker fragment) into this one: counters and timers add, gauges
        take the maximum.  Returns self."""
        if other is None:
            return self
        if isinstance(other, Metrics):
            counters, timers, gauges = other.counters, other.timers, other.gauges
        else:
            counters = other.get("counters", {})
            timers = other.get("timers", {})
            gauges = other.get("gauges", {})
        for name, n in counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, s in timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + s
        for name, v in gauges.items():
            if v > self.gauges.get(name, float("-inf")):
                self.gauges[name] = v
        return self

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-safe copy: ``{"counters": .., "timers": .., "gauges": ..}``
        — the wire format of worker fragments, ``ExploreResult.metrics``,
        trace ``metrics.sample`` events and batch-report blocks."""
        return {
            "counters": dict(self.counters),
            "timers": {k: round(v, 6) for k, v in self.timers.items()},
            "gauges": dict(self.gauges),
        }

    # -- presentation --------------------------------------------------------
    def states_per_sec(self) -> float:
        """``explore.states`` over ``explore.elapsed`` (0.0 when idle)."""
        elapsed = self.timers.get("explore.elapsed", 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.counters.get("explore.states", 0) / elapsed

    def shard_states(self) -> Dict[int, int]:
        """Per-shard state counts: ``{wid: states}`` from the
        ``shard.<wid>.states`` counters (empty for sequential runs)."""
        out: Dict[int, int] = {}
        for name, n in self.counters.items():
            if name.startswith("shard.") and name.endswith(".states"):
                out[int(name.split(".")[1])] = n
        return out

    def describe(self) -> str:
        """The one-line human summary the CLI prints."""
        c = self.counters
        line = (
            f"telemetry: {c.get('explore.states', 0)} states, "
            f"{c.get('explore.edges', 0)} edges in "
            f"{self.timers.get('explore.elapsed', 0.0):.3f}s "
            f"({self.states_per_sec():,.0f} states/sec); "
            f"ε-fused {c.get('reduce.epsilon_fused', 0)}, "
            f"covering-read pruned {c.get('reduce.covering_pruned', 0)}"
        )
        if "cache.hits" in c or "cache.misses" in c:
            line += (
                f"; cache {c.get('cache.hits', 0)} hits / "
                f"{c.get('cache.misses', 0)} misses"
            )
        shards = self.shard_states()
        if shards:
            balance = "/".join(
                str(shards[w]) for w in sorted(shards)
            )
            line += f"; shard balance {balance}"
        return line
