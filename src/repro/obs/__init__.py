"""repro.obs — engine-wide observability: metrics, progress, tracing.

A 54k-state exploration used to be a silent black box until it
returned.  This package is the telemetry layer every engine backend
threads through — strictly *zero-cost when off*: all collection points
are guarded by ``is None`` tests on sinks the caller didn't install.

* :mod:`repro.obs.metrics` — a mergeable registry of counters, timers
  and gauges (:class:`Metrics`).  Backends count states/edges/frontier
  depth; the reduction layer's hot paths report ε-fusions and
  covering-read prunes through a module-level *active collector*;
  worker processes ship per-shard fragments that merge into one global
  snapshot on ``ExploreResult.metrics``.
* :mod:`repro.obs.progress` — a rate-limited stderr heartbeat
  (:class:`Progress`): states/sec and per-shard balance while a long
  exploration runs, automatically off when stderr is not a TTY or the
  CLI was asked to be ``--quiet``.
* :mod:`repro.obs.trace` — an append-only JSONL event stream
  (:class:`TraceWriter`, ``--trace FILE`` / ``REPRO_TRACE``) with a
  documented stable schema: exploration spans, per-round/per-drain
  samples and batch job lifecycle — the substrate a future
  ``repro serve`` mode streams to clients.

Verbosity is resolved in one place (:func:`configure_verbosity`):
CLI ``--quiet``/``-v`` flags win over the ``REPRO_LOG`` environment
variable (``quiet``/``info``/``debug`` or ``0``/``1``/``2``), and the
result also sets the ``repro`` logger level.
"""

from __future__ import annotations

import logging
import os

from repro.obs.metrics import Metrics, active, collecting
from repro.obs.progress import Progress
from repro.obs.trace import (
    SCHEMA_VERSION,
    TRACE_ENV,
    TraceWriter,
    trace_from_env,
    validate_event,
)

__all__ = [
    "LOG_ENV",
    "Metrics",
    "Progress",
    "SCHEMA_VERSION",
    "TRACE_ENV",
    "TraceWriter",
    "active",
    "collecting",
    "configure_verbosity",
    "trace_from_env",
    "validate_event",
    "verbosity_from_env",
]

#: Environment variable holding the default verbosity when no CLI flag
#: is given: ``quiet``/``warning``/``0``, ``info``/``1`` (default) or
#: ``debug``/``verbose``/``2``.
LOG_ENV = "REPRO_LOG"

_LEVEL_NAMES = {
    "0": 0, "quiet": 0, "warning": 0, "warn": 0,
    "1": 1, "info": 1,
    "2": 2, "debug": 2, "verbose": 2,
}

_LOG_LEVELS = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}


def verbosity_from_env(default: int = 1) -> int:
    """The ``REPRO_LOG`` verbosity (0 quiet / 1 normal / 2 verbose),
    or ``default`` when unset or unrecognised."""
    raw = os.environ.get(LOG_ENV, "").strip().lower()
    return _LEVEL_NAMES.get(raw, default)


def configure_verbosity(quiet: bool = False, verbose: bool = False) -> int:
    """Resolve CLI flags and ``REPRO_LOG`` into one verbosity level.

    ``--quiet`` wins over everything (0), then ``-v`` (2), then the
    environment default (1 when ``REPRO_LOG`` is unset).  The ``repro``
    logger is set to WARNING/INFO/DEBUG accordingly (with a stderr
    handler installed once), so library ``logger.debug`` diagnostics
    surface under ``-v`` without any print plumbing.
    """
    level = 0 if quiet else 2 if verbose else verbosity_from_env(1)
    logger = logging.getLogger("repro")
    logger.setLevel(_LOG_LEVELS[level])
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("repro[%(levelname)s] %(message)s")
        )
        logger.addHandler(handler)
        logger.propagate = False
    return level
