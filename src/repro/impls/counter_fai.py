"""A fetch-and-increment counter implementation (extension).

Implements the abstract :class:`~repro.objects.counter.AbstractCounter`
with a single shared variable and one ``FAI`` per increment::

    Init: ctr = 0
    Inc():  1: r ← FAI(ctr)        (returns r)
    Read(): 1: r ← [A] ctr

The FAI is an acquiring-releasing update, so consecutive increments
synchronise exactly like the abstract counter's totally-ordered ``inc``
operations; the acquiring read matches the abstract ``readA`` and the
relaxed read the abstract ``read``.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast as A
from repro.lang.expr import Reg

#: Library-local scratch register used by the implementation bodies.
SCRATCH = "_ctr_r"

#: Initial library variables required by this implementation.
FAICOUNTER_VARS = {"ctr": 0}


def counter_fill(obj: str, method: str, dest: Optional[str] = None) -> A.Node:
    """Fill a counter hole with the FAI implementation.

    The return value is bound to ``dest`` *atomically* at the FAI/read —
    the implementation's linearization step — matching the abstract
    counter, which binds its return value in the method transition.  A
    separate copy step would expose an intermediate client state (views
    transferred, register unset) that the abstract object never exhibits,
    breaking contextual refinement for value-returning methods.
    """
    if method == "inc":
        target = dest if dest is not None else SCRATCH
        public = frozenset({dest}) if dest is not None else frozenset()
        return A.LibBlock(A.Fai(target, "ctr"), public_regs=public)
    if method in ("read", "readA"):
        target = dest if dest is not None else SCRATCH
        public = frozenset({dest}) if dest is not None else frozenset()
        return A.LibBlock(
            A.Read(target, "ctr", acquire=method == "readA"),
            public_regs=public,
        )
    raise ValueError(f"FAI counter has no method {method!r}")
