"""A test-and-set spinlock (extension; the paper's §7 future work).

One shared variable ``lk`` (0 = free, 1 = held)::

    Init: lk = 0
    Acquire():
      1: do loc ← CAS(lk, 0, 1) until loc
    Release():
      1: lk :=R 0

The successful CAS (an acquiring-releasing update) synchronises with the
previous releasing write of ``lk`` — the refining step; failed CASes
stutter.  Unlike the ticket lock this lock is not fair, but fairness is
a liveness property and contextual refinement (a safety property over
traces) holds regardless: the abstract lock admits every acquisition
order the spinlock can produce.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg

#: Library-local register.
LOC = "_sp_loc"

#: Initial library variables required by this implementation.
SPINLOCK_VARS = {"lk": 0}


def acquire_body() -> A.Node:
    """The Acquire() body: spin on CAS(lk, 0, 1)."""
    return A.do_until(A.Cas(LOC, "lk", Lit(0), Lit(1)), Reg(LOC))


def release_body() -> A.Node:
    """The Release() body: a releasing write of 0."""
    return A.Write("lk", Lit(0), release=True)


def spinlock_fill(obj: str, method: str, dest: Optional[str] = None) -> A.Node:
    """Fill a lock hole with the spinlock implementation."""
    if method == "acquire":
        block: A.Node = A.LibBlock(acquire_body())
        if dest is not None:
            block = A.seq(block, A.LocalAssign(dest, Reg(LOC)))
        return block
    if method == "release":
        return A.LibBlock(release_body())
    raise ValueError(f"spinlock has no method {method!r}")
