"""The sequence lock (paper §6.2).

Operates over a single shared variable ``glb``::

    Init: glb = 0
    Acquire():
      1: do  do r ←A glb until even(r);
             loc ← CAS(glb, r, r + 1)
         until loc
    Release():
      1: glb :=R r + 2

``glb`` even ⇔ lock free; a successful CAS makes it odd (the refining
step matching the abstract acquire — the CAS is an acquiring-releasing
update, so it synchronises with the previous releasing write of
``glb``); the releasing write of ``r + 2`` restores evenness and
publishes the critical section (the refining step matching the abstract
release).  The acquire-loop read and any failed CAS are stuttering
steps.  ``r`` persists in the acquiring thread's local state between
Acquire and Release, exactly as in the paper's listing.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg

#: Library-local registers (``LVar_L``); per-thread, so no clashes
#: between threads using the same names.
R = "_sl_r"
LOC = "_sl_loc"

#: Initial library variables required by this implementation.
SEQLOCK_VARS = {"glb": 0}


def acquire_body() -> A.Node:
    """The Acquire() body from §6.2."""
    wait_even = A.do_until(
        A.Read(R, "glb", acquire=True), Reg(R).even()
    )
    attempt = A.seq(
        wait_even,
        A.Cas(LOC, "glb", Reg(R), Reg(R) + 1),
    )
    return A.do_until(attempt, Reg(LOC))


def release_body() -> A.Node:
    """The Release() body from §6.2 (uses ``r`` from the acquire)."""
    return A.Write("glb", Reg(R) + 2, release=True)


def seqlock_fill(obj: str, method: str, dest: Optional[str] = None) -> A.Node:
    """Fill a lock hole with the sequence-lock implementation.

    ``dest``, when given, receives the return value ``true`` of Acquire
    (the paper: Acquire returns true iff the CAS succeeded — which is
    the loop's exit condition, so the result is always ``true``).
    """
    if method == "acquire":
        block: A.Node = A.LibBlock(acquire_body())
        if dest is not None:
            # The return-value copy is a client (ε) step at the method
            # boundary, so ``dest`` stays a client register.
            block = A.seq(block, A.LocalAssign(dest, Reg(LOC)))
        return block
    if method == "release":
        return A.LibBlock(release_body())
    raise ValueError(f"sequence lock has no method {method!r}")
