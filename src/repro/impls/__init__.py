"""Concrete library implementations (paper §6.2–6.3 + extensions).

Each implementation exposes a *fill* in the sense of
:mod:`repro.litmus.clients`: a callback producing, per call site, the
command that fills the client's hole — the implementation body wrapped
in :class:`~repro.lang.ast.LibBlock` so its accesses run against the
library component ``β`` as library steps.
"""

from repro.impls.seqlock import seqlock_fill
from repro.impls.spinlock import spinlock_fill
from repro.impls.ticketlock import ticketlock_fill

__all__ = ["seqlock_fill", "spinlock_fill", "ticketlock_fill"]
