"""The ticket lock (paper §6.3).

Two shared variables: ``nt`` (next ticket) and ``sn`` (serving now)::

    Init: nt = 0, sn = 0
    Acquire():
      1: m_t ← FAI(nt)
      2: do s_n ←A sn until m_t = s_n
    Release():
      1: sn :=R s_n + 1

The FAI takes a ticket (a stuttering step in the refinement); the
acquiring read of ``sn`` that returns the thread's own ticket is the
refining step matching the abstract acquire — it synchronises with the
releasing write of ``sn`` by the previous holder.  Release's single
releasing write matches the abstract release.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast as A
from repro.lang.expr import Lit, Reg

#: Library-local registers: the ticket and the serving snapshot.
MT = "_tl_m"
SN = "_tl_s"

#: Initial library variables required by this implementation.
TICKETLOCK_VARS = {"nt": 0, "sn": 0}


def acquire_body() -> A.Node:
    """The Acquire() body from §6.3."""
    return A.seq(
        A.Fai(MT, "nt"),
        A.do_until(A.Read(SN, "sn", acquire=True), Reg(MT).eq(Reg(SN))),
    )


def release_body() -> A.Node:
    """The Release() body from §6.3 (``s_n`` holds the served ticket)."""
    return A.Write("sn", Reg(SN) + 1, release=True)


def ticketlock_fill(obj: str, method: str, dest: Optional[str] = None) -> A.Node:
    """Fill a lock hole with the ticket-lock implementation."""
    if method == "acquire":
        block: A.Node = A.LibBlock(acquire_body())
        if dest is not None:
            block = A.seq(block, A.LocalAssign(dest, Lit(True)))
        return block
    if method == "release":
        return A.LibBlock(release_body())
    raise ValueError(f"ticket lock has no method {method!r}")
