"""Command-line entry point: ``python -m repro [command] [options]``.

Commands:

* ``litmus``   — run the litmus battery and print the verdict table;
* ``figures``  — verify the paper's figures (1, 2, 3, 7) end to end;
* ``refine``   — verify all lock implementations against the abstract
  lock across the client battery;
* ``batch``    — run named verification jobs concurrently and emit a
  JSON report (see ``--jobs``/``--json``);
* ``witness``  — extract the shortest execution exhibiting a litmus
  test's weak outcome (``witness MP-relaxed``): the engine explores
  with predecessor tracking and reconstructs the concrete schedule,
  re-expanding ε-closure macro-steps when ``--reduction closure``
  (the default) did the searching;
* ``lint``     — statically analyse the shipped program corpus (the
  litmus catalog, the figure programs and the ``examples/`` builders)
  with the :mod:`repro.analysis` passes and print every finding; the
  command fails only on *error*-severity findings (expected warnings —
  the relaxed litmus races — are informational);
* ``all``      — litmus + figures + refine (default).

Options:

* ``--workers N``   — worker processes: the engine's sharded explorer
  for ``litmus``, job-level concurrency for ``batch`` (default 1);
* ``--backend B``   — sharded backend for ``--workers N>1``:
  ``pipeline`` (default: persistent shard-owned workers, streaming
  frontier) | ``rounds`` (level-synchronous BFS — the
  deterministic-shortest-path backend ``witness`` always searches
  with);
* ``--transport T`` — pipeline cross-shard data plane: ``shm``
  (shared-memory rings, zero-copy — the default where ``SharedMemory``
  works) | ``queue`` (master-routed blobs, the portable fallback);
  also via ``REPRO_TRANSPORT``.  Pure performance — results are
  identical;
* ``--codec C``     — pipeline batch wire format: ``flat``
  (pickle-free struct-packed v2, the default) | ``pickle`` (the v1
  reference codec); also via ``REPRO_CODEC``.  Pure performance —
  results are identical;
* ``--profile PATH`` — dump cProfile stats of the exploration hot path
  to PATH (sets ``REPRO_PROFILE``; with ``--workers N>1`` each
  pipeline worker dumps ``PATH.w<wid>`` and the master merges them
  into PATH);
* ``--strategy S``  — frontier strategy ``bfs`` | ``dfs`` |
  ``swarm[:seed]`` (sequential engine only);
* ``--reduction R`` — state-space reduction policy (any name in the
  registry :data:`repro.semantics.reduce.REDUCTIONS`): ``closure``
  (default: ε-closure + covering-read prune, same verdicts from far
  fewer stored states) | ``dpor`` (sleep-set + persistent-set partial
  order reduction layered on ``closure``; sequential or
  ``--backend rounds``) | ``off`` (the unreduced semantics) for
  ``litmus``/``batch``;
* ``--analysis P``  — static-analysis policy the engine applies before
  exploring: ``off`` (default) | ``warn`` (log findings, count them in
  the metrics) | ``strict`` (refuse to explore a program with
  error-severity findings);
* ``--no-cache``    — disable the persistent result cache;
* ``--jobs a,b,c``  — subset of batch jobs (default: all);
* ``--json PATH``   — write the batch report to PATH;
* ``--trace PATH``  — append a JSONL telemetry stream (exploration
  spans, metrics samples, batch job lifecycle — schema documented in
  :mod:`repro.obs.trace`) to PATH; ``REPRO_TRACE`` sets a default;
* ``--quiet``/``-q`` — suppress the telemetry/cache summary lines and
  the live progress heartbeat;
* ``--verbose``/``-v`` — debug-level ``repro`` logging on stderr.

Flags only apply to commands that read them (``--jobs``/``--json`` are
batch-only, ``figures`` takes none); inapplicable flags are rejected.

The cache directory honours ``REPRO_CACHE_DIR`` (default
``~/.cache/repro-engine``); ``REPRO_CACHE=0`` disables caching globally.
``REPRO_LOG`` (``quiet``/``info``/``debug`` or ``0``/``1``/``2``) sets
the default verbosity when neither ``--quiet`` nor ``-v`` is given.
"""

from __future__ import annotations

import sys
from typing import Optional


def _make_trace(options: dict):
    """The command's JSONL trace sink: ``--trace`` wins, then
    ``REPRO_TRACE``, else None.  The caller owns closing it."""
    from repro.obs import TraceWriter, trace_from_env

    path = options.get("trace")
    if path:
        return TraceWriter(path)
    return trace_from_env()


def _make_engine(options: Optional[dict] = None):
    """Build the exploration engine the CLI commands route through,
    with the observability sinks attached: an always-on metrics
    registry (the summary line is printed unless ``--quiet``), the
    optional JSONL trace and a live progress heartbeat (auto-disabled
    off-TTY, forced off by ``--quiet``)."""
    from repro.engine import ExplorationEngine, ResultCache, cache_enabled_by_env
    from repro.obs import Metrics, Progress

    options = options or {}
    cache = None
    if not options.get("no_cache") and cache_enabled_by_env():
        cache = ResultCache()
    quiet = options.get("quiet", False)
    return ExplorationEngine(
        strategy=options.get("strategy", "bfs"),
        workers=options.get("workers", 1),
        cache=cache,
        reduction=options.get("reduction", "closure"),
        backend=options.get("backend", "pipeline"),
        transport=options.get("transport"),
        codec=options.get("codec"),
        metrics=Metrics(),
        trace=_make_trace(options),
        progress=None if quiet else Progress(),
        analysis=options.get("analysis", "off"),
    )


def run_litmus(options: Optional[dict] = None) -> bool:
    """Run the litmus battery; True iff every verdict matches RC11 RAR.

    Under ``--reduction closure`` (the default) the ``full`` column
    reports the states an unreduced exploration would store, read from
    the committed reduction-benchmark baseline rather than re-run.
    """
    from repro.litmus.catalog import LITMUS_TESTS, reduction_baseline, run_litmus

    options = options or {}
    quiet = options.get("quiet", False)
    engine = _make_engine(options)
    baseline = (
        reduction_baseline() if engine.reduction == "closure" else None
    )
    full_col = f" {'full':>7s}" if baseline is not None else ""
    ok = True
    try:
        if engine.trace is not None:
            engine.trace.emit("litmus.start", tests=len(LITMUS_TESTS))
        print(
            f"{'litmus test':20s} {'states':>7s}{full_col} {'weak':>10s} "
            f"{'src':>6s} verdict"
        )
        # Both totals run over the tests the baseline covers, so the
        # printed ratio always compares like with like (a catalog entry
        # added since the baseline was regenerated is shown with `?`
        # and excluded).
        explored_total = 0
        full_total = 0
        for test in LITMUS_TESTS:
            result = run_litmus(test, engine=engine, use_cache=True)
            ok &= result["verdict_ok"]
            weak = "observed" if result["weak_observed"] else "absent"
            src = "cache" if result["cached"] else "run"
            full = ""
            if baseline is not None:
                full_states = baseline.get(test.name)
                if full_states is not None:
                    full = f" {full_states:7d}"
                    full_total += full_states
                    explored_total += result["states"]
                else:
                    full = f" {'?':>7s}"
            print(
                f"{test.name:20s} {result['states']:7d}{full} {weak:>10s} "
                f"{src:>6s} {'OK' if result['verdict_ok'] else 'MISMATCH'}"
            )
            if not result["verdict_ok"] and result.get("witness"):
                print("  violating schedule:")
                for line in result["witness"]:
                    print(f"    {line}")
        if baseline is not None and full_total:
            print(
                f"reduction: {explored_total} states stored vs {full_total} "
                f"unreduced ({full_total / max(explored_total, 1):.2f}x, "
                "baseline benchmarks/BENCH_reduction.json)"
            )
        if engine.cache is not None:
            print(
                f"engine: {engine.explorations} explorations, "
                f"cache {engine.cache.hits} hits / {engine.cache.misses} misses"
            )
        if not quiet:
            print(engine.metrics.describe())
            if engine.cache is not None:
                stats = engine.cache.stats()
                print(
                    f"cache: {stats['hits']} hits, {stats['misses']} misses, "
                    f"{stats['entries']} entries on disk"
                )
        if engine.trace is not None:
            engine.trace.emit("litmus.finish", ok=ok)
    finally:
        if engine.trace is not None:
            engine.trace.close()
    return ok


def run_figures(options: Optional[dict] = None) -> bool:
    """Verify the paper's figure programs and proof outlines."""
    from repro.figures.fig1 import EXPECTED_OUTCOMES as F1
    from repro.figures.fig1 import fig1_program
    from repro.figures.fig2 import EXPECTED_OUTCOMES as F2
    from repro.figures.fig2 import fig2_program
    from repro.figures.fig3 import fig3_outline
    from repro.figures.fig7 import EXPECTED_OUTCOMES as F7
    from repro.figures.fig7 import fig7_outline, fig7_program
    from repro.figures.mp_outline import mp_outline
    from repro.logic.owicki import check_proof_outline
    from repro.semantics.explore import explore

    ok = True
    out1 = explore(fig1_program()).terminal_locals(("2", "r2"))
    print(f"Figure 1: outcomes {sorted(out1, key=repr)}  "
          f"{'OK' if out1 == F1 else 'MISMATCH'}")
    ok &= out1 == F1

    out2 = explore(fig2_program()).terminal_locals(("2", "r2"))
    print(f"Figure 2: outcomes {sorted(out2, key=repr)}  "
          f"{'OK' if out2 == F2 else 'MISMATCH'}")
    ok &= out2 == F2

    r3 = check_proof_outline(fig3_outline())
    print(f"Figure 3: outline valid = {r3.valid} "
          f"({r3.obligations} obligations)")
    ok &= r3.valid

    rmp = check_proof_outline(mp_outline())
    print(f"MP outline (variable-level): valid = {rmp.valid}")
    ok &= rmp.valid

    out7 = explore(fig7_program()).terminal_locals(
        ("2", "rl"), ("2", "r1"), ("2", "r2")
    )
    print(f"Figure 7: outcomes {sorted(out7)}  "
          f"{'OK' if out7 == F7 else 'MISMATCH'}")
    ok &= out7 == F7

    r7 = check_proof_outline(fig7_outline())
    print(f"Lemma 4 : outline valid = {r7.valid} "
          f"({r7.obligations} obligations)")
    ok &= r7.valid
    return ok


def run_refine(options: Optional[dict] = None) -> bool:
    """Verify every lock implementation against the abstract lock."""
    from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
    from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
    from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
    from repro.toolkit import verify_lock_implementation

    options = options or {}
    engine = None
    if options.get("workers", 1) > 1 or options.get("strategy", "bfs") != "bfs":
        # Refinement needs full transition graphs, so there is nothing
        # to cache — route through an engine only to pick the backend.
        from repro.engine import ExplorationEngine

        engine = ExplorationEngine(
            strategy=options.get("strategy", "bfs"),
            workers=options.get("workers", 1),
            backend=options.get("backend", "pipeline"),
            transport=options.get("transport"),
            codec=options.get("codec"),
        )
    ok = True
    for fill, lib_vars in (
        (seqlock_fill, SEQLOCK_VARS),
        (ticketlock_fill, TICKETLOCK_VARS),
        (spinlock_fill, SPINLOCK_VARS),
    ):
        report = verify_lock_implementation(fill, lib_vars, engine=engine)
        print(report.describe())
        ok &= report.ok
    return ok


def run_witness(options: Optional[dict] = None) -> bool:
    """Extract and print the shortest execution exhibiting a litmus
    test's weak outcome; True iff reachability matches the RC11 RAR
    verdict (weak allowed ⇒ witness exists, forbidden ⇒ none).

    The search rides the configured engine — workers, strategy and
    reduction all apply — with predecessor tracking instead of stored
    configurations; under ``--reduction closure`` (the default) the
    reduced search's macro-steps are re-expanded so the printed
    schedule replays step-for-step through the unreduced semantics.
    """
    from repro.litmus.catalog import LITMUS_TESTS
    from repro.util.errors import VerificationError

    options = options or {}
    tests = {t.name: t for t in LITMUS_TESTS}
    name = options.get("test")
    if not name:
        raise ValueError(
            "usage: python -m repro witness <litmus-test> "
            f"[--workers N --strategy S --reduction R]; "
            f"available tests: {', '.join(sorted(tests))}"
        )
    if name not in tests:
        raise ValueError(
            f"unknown litmus test {name!r}; "
            f"available: {', '.join(sorted(tests))}"
        )
    test = tests[name]
    engine = _make_engine(options)

    def weak_outcome(cfg) -> bool:
        return test.outcome_of(cfg) in test.weak

    try:
        witness = engine.find_witness(
            test.build(), weak_outcome, terminal_only=True
        )
    except VerificationError as exc:
        print(f"{test.name}: {exc}")
        if engine.trace is not None:
            engine.trace.close()
        return False
    verdict = "allowed" if test.weak_allowed else "forbidden"
    regs = ", ".join(f"{t}.{r}" for t, r in test.regs)
    weak = " | ".join(repr(w) for w in sorted(test.weak, key=repr))
    print(f"{test.name}: weak outcome ({regs}) ∈ {{{weak}}} — "
          f"{verdict} under RC11 RAR")
    if witness is not None:
        print(witness.describe())
        print(f"schedule: {' '.join(witness.schedule())}")
        print(f"engine: {engine!r}")
    else:
        print("unreachable (exhaustive search, no witness exists)")
    ok = (witness is not None) == test.weak_allowed
    print(f"verdict {'OK' if ok else 'MISMATCH'}")
    if not (options or {}).get("quiet", False):
        print(engine.metrics.describe())
    if engine.trace is not None:
        engine.trace.close()
    return ok


def _example_programs():
    """``(label, program)`` pairs from the ``examples/`` directory's
    program builders, imported by file path (the directory is not a
    package); missing files or import failures skip gracefully —
    installed distributions may not ship the examples."""
    import importlib.util
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "examples"
    if not root.is_dir():
        return []
    builders = {
        "quickstart": [
            ("message_passing(True, True)",
             lambda m: m.message_passing(True, True)),
            ("message_passing(False, False)",
             lambda m: m.message_passing(False, False)),
        ],
        "work_queue": [
            ("handoff(True)", lambda m: m.handoff(True)),
            ("handoff(False)", lambda m: m.handoff(False)),
        ],
        "custom_object": [
            ("publication_client()", lambda m: m.publication_client()),
        ],
    }
    out = []
    for mod_name, entries in builders.items():
        path = root / f"{mod_name}.py"
        if not path.is_file():
            continue
        spec = importlib.util.spec_from_file_location(
            f"_repro_lint_example_{mod_name}", path
        )
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(module)
        except Exception:
            continue
        for label, build in entries:
            try:
                out.append((f"examples/{mod_name}.{label}", build(module)))
            except Exception:
                continue
    return out


def lint_targets():
    """The shipped program corpus the ``lint`` command analyses:
    ``(label, program)`` for every litmus test, the figure programs,
    Peterson's lock and the example builders."""
    from repro.figures.fig1 import fig1_program
    from repro.figures.fig2 import fig2_program
    from repro.figures.fig7 import fig7_program
    from repro.litmus.catalog import LITMUS_TESTS
    from repro.litmus.peterson import peterson_program

    targets = [(f"litmus/{t.name}", t.build()) for t in LITMUS_TESTS]
    targets += [
        ("figures/fig1", fig1_program()),
        ("figures/fig2", fig2_program()),
        ("figures/fig7", fig7_program()),
        ("litmus/peterson", peterson_program()),
    ]
    targets += _example_programs()
    return targets


def run_lint(options: Optional[dict] = None) -> bool:
    """Statically analyse the shipped program corpus; True iff no
    target has an error-severity finding (warnings are reported but
    expected — the relaxed litmus tests race by design)."""
    from repro.analysis import analyse_program

    options = options or {}
    quiet = options.get("quiet", False)
    targets = lint_targets()
    total_errors = 0
    total_warnings = 0
    clean = 0
    for label, program in targets:
        report = analyse_program(program)
        total_errors += len(report.errors)
        total_warnings += len(report.warnings)
        if report.clean():
            clean += 1
            if not quiet:
                print(f"{label:45s} clean")
            continue
        codes = ", ".join(sorted(report.codes()))
        print(f"{label:45s} {codes}")
        for diag in report.diagnostics:
            print(f"  {diag.format()}")
    print(
        f"lint: {len(targets)} programs analysed, {clean} clean, "
        f"{total_errors} error(s), {total_warnings} warning(s)"
    )
    return total_errors == 0


def run_batch_cmd(options: Optional[dict] = None) -> bool:
    """Run the batch job suite; True iff every job passes."""
    from repro.engine.batch import run_batch

    options = options or {}
    trace = _make_trace(options)
    try:
        report = run_batch(
            jobs=options.get("jobs"),
            workers=options.get("workers", 1),
            use_cache=not options.get("no_cache", False),
            json_path=options.get("json"),
            reduction=options.get("reduction", "closure"),
            trace=trace,
        )
    finally:
        if trace is not None:
            trace.close()
    print(report.describe())
    if not options.get("quiet", False):
        merged = report.aggregate_metrics()
        if merged is not None:
            from repro.obs import Metrics

            print(Metrics().merge(merged).describe())
    if options.get("json"):
        print(f"report written to {options['json']}")
    return report.ok


#: Flags each command actually reads; anything else is a usage error
#: rather than a silent no-op.
_COMMAND_FLAGS = {
    "litmus": {
        "workers", "strategy", "no_cache", "reduction", "backend",
        "transport", "codec", "profile", "trace", "quiet", "verbose",
        "analysis",
    },
    "figures": set(),
    "refine": {
        "workers", "strategy", "backend", "transport", "codec", "quiet",
        "verbose",
    },
    "batch": {
        "workers", "jobs", "json", "no_cache", "reduction", "backend",
        "transport", "codec", "profile", "trace", "quiet", "verbose",
    },
    "witness": {
        "workers", "strategy", "reduction", "trace", "quiet", "verbose",
        "analysis",
    },
    "lint": {"quiet", "verbose"},
    "all": {
        "workers", "strategy", "no_cache", "reduction", "backend",
        "transport", "codec", "trace", "quiet", "verbose", "analysis",
    },
}


def _parse_options(args, command: str) -> Optional[dict]:
    """Parse trailing CLI flags; None signals a usage error."""
    options = {
        "workers": 1,
        "strategy": "bfs",
        "no_cache": False,
        "reduction": "closure",
        "backend": "pipeline",
        "transport": None,  # auto: REPRO_TRANSPORT, then availability
        "codec": None,  # auto: REPRO_CODEC, then the flat default
        "profile": None,
        "trace": None,
        "quiet": False,
        "verbose": False,
        "analysis": "off",
    }
    given = set()
    i = 0
    while i < len(args):
        flag = args[i]
        if flag == "--no-cache":
            options["no_cache"] = True
            given.add("no_cache")
        elif flag in ("--quiet", "-q"):
            options["quiet"] = True
            given.add("quiet")
        elif flag in ("--verbose", "-v"):
            options["verbose"] = True
            given.add("verbose")
        elif flag in (
            "--workers", "--strategy", "--jobs", "--json", "--reduction",
            "--backend", "--transport", "--codec", "--profile", "--trace",
            "--analysis",
        ):
            if i + 1 >= len(args):
                return None
            value = args[i + 1]
            i += 1
            given.add(flag.lstrip("-"))
            if flag == "--workers":
                try:
                    options["workers"] = int(value)
                except ValueError:
                    return None
            elif flag == "--strategy":
                options["strategy"] = value
            elif flag == "--jobs":
                options["jobs"] = [j for j in value.split(",") if j]
            elif flag == "--reduction":
                from repro.engine import REDUCTIONS

                if value not in REDUCTIONS:
                    print(
                        f"error: unknown reduction {value!r}; expected "
                        + " or ".join(REDUCTIONS)
                    )
                    return None
                options["reduction"] = value
            elif flag == "--backend":
                from repro.engine import BACKENDS

                if value not in BACKENDS:
                    print(
                        f"error: unknown backend {value!r}; expected "
                        + " or ".join(BACKENDS)
                    )
                    return None
                options["backend"] = value
            elif flag == "--transport":
                from repro.engine import TRANSPORTS

                if value not in TRANSPORTS:
                    print(
                        f"error: unknown transport {value!r}; expected "
                        + " or ".join(TRANSPORTS)
                    )
                    return None
                options["transport"] = value
            elif flag == "--codec":
                from repro.engine import CODECS

                if value not in CODECS:
                    print(
                        f"error: unknown codec {value!r}; expected "
                        + " or ".join(CODECS)
                    )
                    return None
                options["codec"] = value
            elif flag == "--profile":
                options["profile"] = value
            elif flag == "--analysis":
                from repro.analysis import ANALYSIS_POLICIES

                if value not in ANALYSIS_POLICIES:
                    print(
                        f"error: unknown analysis policy {value!r}; expected "
                        + " or ".join(ANALYSIS_POLICIES)
                    )
                    return None
                options["analysis"] = value
            elif flag == "--trace":
                options["trace"] = value
            else:
                options["json"] = value
        else:
            return None
        i += 1
    unsupported = given - _COMMAND_FLAGS[command]
    if unsupported:
        flags = ", ".join(
            "--" + f.replace("_", "-") for f in sorted(unsupported)
        )
        print(f"error: {flags} not supported by the {command!r} command")
        return None
    return options


def main(argv) -> int:
    """Dispatch the CLI command; returns a process exit code."""
    command = argv[1] if len(argv) > 1 else "all"
    dispatch = {
        "litmus": [run_litmus],
        "figures": [run_figures],
        "refine": [run_refine],
        "batch": [run_batch_cmd],
        "witness": [run_witness],
        "lint": [run_lint],
        "all": [run_litmus, run_figures, run_refine],
    }
    if command not in dispatch:
        print(__doc__)
        return 2
    args = list(argv[2:])
    positional = {}
    if command == "witness" and args and not args[0].startswith("--"):
        positional["test"] = args.pop(0)
    options = _parse_options(args, command)
    if options is None:
        print(__doc__)
        return 2
    options.update(positional)
    from repro.obs import configure_verbosity

    configure_verbosity(
        quiet=options.get("quiet", False),
        verbose=options.get("verbose", False),
    )
    import os

    env_sets = {}
    if options.get("profile"):
        # The profiling hook is environment-keyed so it reaches the
        # pipeline workers (separate processes) as well as the
        # sequential engine.
        env_sets["REPRO_PROFILE"] = options["profile"]
    if command == "batch" and options.get("codec"):
        # The batch runner builds its per-job engines from the
        # environment (see repro.engine.batch), so the flag rides the
        # same channel REPRO_CODEC does.
        env_sets["REPRO_CODEC"] = options["codec"]
    saved = {k: os.environ.get(k) for k in env_sets}
    os.environ.update(env_sets)
    ok = True
    try:
        for i, job in enumerate(dispatch[command]):
            if i:
                print()
            try:
                ok &= job(options)
            except ValueError as exc:  # bad strategy / job names, etc.
                print(f"error: {exc}")
                return 2
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    print()
    print("ALL CHECKS PASS" if ok else "SOME CHECKS FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
