"""Command-line entry point: ``python -m repro [command]``.

Commands:

* ``litmus``   — run the litmus battery and print the verdict table;
* ``figures``  — verify the paper's figures (1, 2, 3, 7) end to end;
* ``refine``   — verify all lock implementations against the abstract
  lock across the client battery;
* ``all``      — everything above (default).
"""

from __future__ import annotations

import sys


def run_litmus() -> bool:
    """Run the litmus battery; True iff every verdict matches RC11 RAR."""
    from repro.litmus.catalog import LITMUS_TESTS, run_litmus

    ok = True
    print(f"{'litmus test':18s} {'states':>7s} {'weak':>10s} verdict")
    for test in LITMUS_TESTS:
        result = run_litmus(test)
        ok &= result["verdict_ok"]
        weak = "observed" if result["weak_observed"] else "absent"
        print(
            f"{test.name:18s} {result['states']:7d} {weak:>10s} "
            f"{'OK' if result['verdict_ok'] else 'MISMATCH'}"
        )
    return ok


def run_figures() -> bool:
    """Verify the paper's figure programs and proof outlines."""
    from repro.figures.fig1 import EXPECTED_OUTCOMES as F1
    from repro.figures.fig1 import fig1_program
    from repro.figures.fig2 import EXPECTED_OUTCOMES as F2
    from repro.figures.fig2 import fig2_program
    from repro.figures.fig3 import fig3_outline
    from repro.figures.fig7 import EXPECTED_OUTCOMES as F7
    from repro.figures.fig7 import fig7_outline, fig7_program
    from repro.figures.mp_outline import mp_outline
    from repro.logic.owicki import check_proof_outline
    from repro.semantics.explore import explore

    ok = True
    out1 = explore(fig1_program()).terminal_locals(("2", "r2"))
    print(f"Figure 1: outcomes {sorted(out1, key=repr)}  "
          f"{'OK' if out1 == F1 else 'MISMATCH'}")
    ok &= out1 == F1

    out2 = explore(fig2_program()).terminal_locals(("2", "r2"))
    print(f"Figure 2: outcomes {sorted(out2, key=repr)}  "
          f"{'OK' if out2 == F2 else 'MISMATCH'}")
    ok &= out2 == F2

    r3 = check_proof_outline(fig3_outline())
    print(f"Figure 3: outline valid = {r3.valid} "
          f"({r3.obligations} obligations)")
    ok &= r3.valid

    rmp = check_proof_outline(mp_outline())
    print(f"MP outline (variable-level): valid = {rmp.valid}")
    ok &= rmp.valid

    out7 = explore(fig7_program()).terminal_locals(
        ("2", "rl"), ("2", "r1"), ("2", "r2")
    )
    print(f"Figure 7: outcomes {sorted(out7)}  "
          f"{'OK' if out7 == F7 else 'MISMATCH'}")
    ok &= out7 == F7

    r7 = check_proof_outline(fig7_outline())
    print(f"Lemma 4 : outline valid = {r7.valid} "
          f"({r7.obligations} obligations)")
    ok &= r7.valid
    return ok


def run_refine() -> bool:
    """Verify every lock implementation against the abstract lock."""
    from repro.impls.seqlock import SEQLOCK_VARS, seqlock_fill
    from repro.impls.spinlock import SPINLOCK_VARS, spinlock_fill
    from repro.impls.ticketlock import TICKETLOCK_VARS, ticketlock_fill
    from repro.toolkit import verify_lock_implementation

    ok = True
    for fill, lib_vars in (
        (seqlock_fill, SEQLOCK_VARS),
        (ticketlock_fill, TICKETLOCK_VARS),
        (spinlock_fill, SPINLOCK_VARS),
    ):
        report = verify_lock_implementation(fill, lib_vars)
        print(report.describe())
        ok &= report.ok
    return ok


def main(argv) -> int:
    """Dispatch the CLI command; returns a process exit code."""
    command = argv[1] if len(argv) > 1 else "all"
    dispatch = {
        "litmus": [run_litmus],
        "figures": [run_figures],
        "refine": [run_refine],
        "all": [run_litmus, run_figures, run_refine],
    }
    if command not in dispatch:
        print(__doc__)
        return 2
    ok = True
    for i, job in enumerate(dispatch[command]):
        if i:
            print()
        ok &= job()
    print()
    print("ALL CHECKS PASS" if ok else "SOME CHECKS FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
