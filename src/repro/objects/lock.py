"""The abstract lock (paper Example 1 and Figure 6).

Operations on a lock ``l`` are totally ordered: every acquire and release
takes a timestamp larger than all existing ``l``-operations.  The *index*
(subscript) of an operation counts the lock operations executed so far —
``l.init_0``, then ``l.acquire_1``, ``l.release_2``, ``l.acquire_3``, … —
and doubles as the "version" bound by ``l.Acquire(v)`` in proofs.

Semantics (Figure 6):

* ``Acquire`` is enabled only when the latest ``l``-operation ``(w, q)``
  is ``l.init_0`` or a release (mutual exclusion: a held lock — latest
  operation an acquire — disables further acquires).  The new operation
  ``l.acquire_n(t)`` synchronises with ``w``: the acquiring thread's
  views of *both* components merge in ``mview(w)``, and ``w`` becomes
  covered.
* ``Release`` is enabled only when the latest operation is an acquire by
  the *same* thread (the releaser must hold the lock).  It appends
  ``l.release_n`` with a maximal timestamp and records the releaser's
  combined viewfront as the new operation's modification view — this is
  what a later acquire picks up.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.lang.expr import Value
from repro.memory.actions import Action, Op, mk_method
from repro.memory.state import ComponentState
from repro.memory.views import merge_views, view_union
from repro.objects.base import AbstractObject, ObjStep
from repro.util.rationals import TS_ZERO

ACQUIRE = "acquire"
RELEASE = "release"
INIT = "init"


class AbstractLock(AbstractObject):
    """The paper's abstract lock specification."""

    @property
    def methods(self) -> Tuple[str, ...]:
        return (ACQUIRE, RELEASE)

    def init_ops(self) -> Tuple[Op, ...]:
        return (Op(mk_method(self.name, INIT, index=0, sync=True), TS_ZERO),)

    # -- state inspection ----------------------------------------------------
    def holder(self, lib: ComponentState) -> Optional[str]:
        """The thread currently holding the lock, or ``None`` when free."""
        top = self.latest(lib)
        if top is not None and top.act.method == ACQUIRE:
            return top.act.tid
        return None

    def is_free(self, lib: ComponentState) -> bool:
        top = self.latest(lib)
        return top is not None and top.act.method in (INIT, RELEASE)

    def next_index(self, lib: ComponentState) -> int:
        return self.op_count(lib)

    # -- transitions (Figure 6) -----------------------------------------------
    def method_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        method: str,
        arg: Value = None,
    ) -> Iterator[ObjStep]:
        if method == ACQUIRE:
            yield from self._acquire_steps(lib, cli, tid)
        elif method == RELEASE:
            yield from self._release_steps(lib, cli, tid)
        else:
            raise ValueError(f"lock {self.name!r} has no method {method!r}")

    def _acquire_steps(
        self, lib: ComponentState, cli: ComponentState, tid: str
    ) -> Iterator[ObjStep]:
        w = self.latest(lib)
        if w is None or w.act.method not in (INIT, RELEASE):
            return  # lock held: acquire disabled (blocks)
        n = self.next_index(lib)
        q_new = lib.fresh_ts(self.name, w.ts)
        b = Op(mk_method(self.name, ACQUIRE, tid=tid, index=n), q_new)
        mv_w = lib.mview[w]
        # tview' = γ.tview_t[l := (b, q')] ⊗ γ.mview(w, q)
        tview2 = merge_views(lib.thread_view_map(tid).set(self.name, b), mv_w)
        # ctview' = β.tview_t ⊗ γ.mview(w, q)
        ctview2 = merge_views(cli.thread_view_map(tid), mv_w)
        mview2 = view_union(tview2, ctview2)
        lib2 = lib.add_op(b, mview2, tid, tview2, cover=w)
        cli2 = cli.with_thread_view(tid, ctview2)
        yield ObjStep(action=b.act, retval=n, lib=lib2, cli=cli2)

    def _release_steps(
        self, lib: ComponentState, cli: ComponentState, tid: str
    ) -> Iterator[ObjStep]:
        w = self.latest(lib)
        if w is None or w.act.method != ACQUIRE or w.act.tid != tid:
            return  # releaser does not hold the lock: disabled
        n = self.next_index(lib)
        q_new = lib.fresh_ts(self.name, w.ts)
        a = Op(mk_method(self.name, RELEASE, tid=tid, index=n, sync=True), q_new)
        tview2 = lib.thread_view_map(tid).set(self.name, a)
        mview2 = view_union(tview2, cli.thread_view_map(tid))
        lib2 = lib.add_op(a, mview2, tid, tview2)
        yield ObjStep(action=a.act, retval=n, lib=lib2, cli=cli)
