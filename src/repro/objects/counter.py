"""An abstract atomic counter (extension object).

``inc`` is an atomic fetch-and-increment at the object level: totally
ordered like the lock's operations (each increment covers its
predecessor, preventing any operation from slipping between an increment
and the value it incremented — the abstract analogue of ``cvd`` for
updates in Figure 5).  ``inc`` is both releasing and acquiring, mirroring
``updRA``; ``read``/``readA`` behave like the weak register's reads.

The counter is the abstract specification matched by a ticket-dispenser
style implementation (a single FAI variable) and is used in tests and
examples to show the framework generalises beyond locks.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lang.expr import Value
from repro.memory.actions import Op, mk_method
from repro.memory.state import ComponentState
from repro.memory.views import merge_views, view_union
from repro.objects.base import AbstractObject, ObjStep
from repro.util.rationals import TS_ZERO

INC = "inc"
READ = "read"
READ_A = "readA"
INIT = "init"


class AbstractCounter(AbstractObject):
    """Totally-ordered atomic counter with FAI-style increments."""

    def __init__(self, name: str, initial: int = 0) -> None:
        super().__init__(name)
        self.initial = initial

    @property
    def methods(self) -> Tuple[str, ...]:
        return (INC, READ, READ_A)

    def init_ops(self) -> Tuple[Op, ...]:
        return (
            Op(mk_method(self.name, INIT, val=self.initial, index=0, sync=True), TS_ZERO),
        )

    def value(self, lib: ComponentState) -> int:
        """Current counter value: initial + number of increments."""
        incs = sum(1 for op in lib.ops_on(self.name) if op.act.method == INC)
        return self.initial + incs

    def method_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        method: str,
        arg: Value = None,
    ) -> Iterator[ObjStep]:
        if method == INC:
            yield from self._inc_steps(lib, cli, tid)
        elif method in (READ, READ_A):
            yield from self._read_steps(lib, cli, tid, method == READ_A)
        else:
            raise ValueError(f"counter {self.name!r} has no method {method!r}")

    def _inc_steps(
        self, lib: ComponentState, cli: ComponentState, tid: str
    ) -> Iterator[ObjStep]:
        w = self.latest(lib)
        assert w is not None, "counter missing its init operation"
        old = self.value(lib)
        n = self.op_count(lib)
        q_new = lib.fresh_ts(self.name, w.ts)
        op = Op(
            mk_method(self.name, INC, tid=tid, val=old + 1, index=n, sync=True),
            q_new,
        )
        # updRA-style: acquire the predecessor's modification view…
        mv_w = lib.mview[w]
        tview2 = merge_views(lib.thread_view_map(tid).set(self.name, op), mv_w)
        ctview2 = merge_views(cli.thread_view_map(tid), mv_w)
        mview2 = view_union(tview2, ctview2)
        # …and cover it, so nothing intervenes (abstract cvd discipline).
        lib2 = lib.add_op(op, mview2, tid, tview2, cover=w)
        cli2 = cli.with_thread_view(tid, ctview2)
        yield ObjStep(action=op.act, retval=old, lib=lib2, cli=cli2)

    def _read_steps(
        self, lib: ComponentState, cli: ComponentState, tid: str, acquire: bool
    ) -> Iterator[ObjStep]:
        for w in lib.obs(tid, self.name):
            value = w.act.val
            if acquire and w.act.sync:
                mv = lib.mview[w]
                lib2 = lib.with_thread_view(
                    tid, merge_views(lib.thread_view_map(tid), mv)
                )
                cli2 = cli.with_thread_view(
                    tid, merge_views(cli.thread_view_map(tid), mv)
                )
            else:
                lib2 = lib.with_thread_view(
                    tid, lib.thread_view_map(tid).set(self.name, w)
                )
                cli2 = cli
            yield ObjStep(action=None, retval=value, lib=lib2, cli=cli2)
