"""The abstract (synchronising) stack of Figures 1–3.

The paper uses a stack with a *releasing push* (``s.push_R(1)``) and an
*acquiring pop* (``s.pop_A()``) to publish client data across threads; a
relaxed variant (Figure 1) provides no such guarantee.  Section 4's lock
construction gives the recipe, which we instantiate for a stack:

* all stack operations are totally ordered — every push/pop takes a
  timestamp larger than all existing ``s``-operations (the stack is a
  single atomic object, like the lock);
* the stack *content* in a state is the fold of its operation sequence:
  pushes push, pops remove the element they returned;
* a **pop** returns the current top element.  When the popping call is
  acquiring *and* the push that produced the element was releasing, the
  pop synchronises: the popper's thread views of both components merge in
  the push's modification view — exactly the release-acquire view
  transfer of Figure 5/6.  This is what makes Figure 2's message passing
  sound;
* a **pop on an empty stack** returns :data:`~repro.lang.expr.EMPTY` and
  leaves the state unchanged.  Only modifying operations enter ``ops``
  (paper §3.3), and an empty pop modifies nothing; this also keeps
  busy-wait pop loops finite-state.

Method names: ``push``/``pop`` are relaxed, ``pushR``/``popA`` the
synchronising variants, mirroring the paper's annotations.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.lang.expr import EMPTY, Value
from repro.memory.actions import Op, mk_method
from repro.memory.state import ComponentState
from repro.memory.views import merge_views, view_union
from repro.objects.base import AbstractObject, ObjStep
from repro.util.rationals import TS_ZERO

PUSH = "push"
PUSH_R = "pushR"
POP = "pop"
POP_A = "popA"
INIT = "init"


class AbstractStack(AbstractObject):
    """Abstract stack with relaxed and release/acquire method variants."""

    @property
    def methods(self) -> Tuple[str, ...]:
        return (PUSH, PUSH_R, POP, POP_A)

    def init_ops(self) -> Tuple[Op, ...]:
        return (Op(mk_method(self.name, INIT, index=0), TS_ZERO),)

    # -- content -------------------------------------------------------------
    def content(self, lib: ComponentState) -> Tuple[Tuple[Value, Op], ...]:
        """The stack content, bottom to top, as ``(value, push-op)`` pairs.

        Replays the totally-ordered operation sequence; each pop removes
        the top (which, by construction, is the element it returned).
        """
        stack: List[Tuple[Value, Op]] = []
        for op in lib.ops_on(self.name):
            meth = op.act.method
            if meth in (PUSH, PUSH_R):
                stack.append((op.act.val, op))
            elif meth in (POP, POP_A):
                if stack:  # pops only occur on non-empty stacks
                    stack.pop()
        return tuple(stack)

    def top(self, lib: ComponentState) -> Optional[Tuple[Value, Op]]:
        content = self.content(lib)
        return content[-1] if content else None

    # -- transitions ----------------------------------------------------------
    def method_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        method: str,
        arg: Value = None,
    ) -> Iterator[ObjStep]:
        if method in (PUSH, PUSH_R):
            yield from self._push_steps(lib, cli, tid, arg, method == PUSH_R)
        elif method in (POP, POP_A):
            yield from self._pop_steps(lib, cli, tid, method == POP_A)
        else:
            raise ValueError(f"stack {self.name!r} has no method {method!r}")

    def _push_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        value: Value,
        release: bool,
    ) -> Iterator[ObjStep]:
        if value is None:
            raise ValueError("push requires an argument")
        w = self.latest(lib)
        assert w is not None, "stack missing its init operation"
        n = self.op_count(lib)
        q_new = lib.fresh_ts(self.name, w.ts)
        name = PUSH_R if release else PUSH
        op = Op(mk_method(self.name, name, tid=tid, val=value, index=n, sync=release), q_new)
        tview2 = lib.thread_view_map(tid).set(self.name, op)
        mview2 = view_union(tview2, cli.thread_view_map(tid))
        lib2 = lib.add_op(op, mview2, tid, tview2)
        yield ObjStep(action=op.act, retval=None, lib=lib2, cli=cli)

    def _pop_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        acquire: bool,
    ) -> Iterator[ObjStep]:
        top = self.top(lib)
        if top is None:
            # Empty pop: returns EMPTY, modifies nothing.
            yield ObjStep(action=None, retval=EMPTY, lib=lib, cli=cli)
            return
        value, push_op = top
        latest = self.latest(lib)
        n = self.op_count(lib)
        q_new = lib.fresh_ts(self.name, latest.ts)
        name = POP_A if acquire else POP
        op = Op(mk_method(self.name, name, tid=tid, val=value, index=n), q_new)
        base_view = lib.thread_view_map(tid).set(self.name, op)
        if acquire and push_op.act.sync:
            mv = lib.mview[push_op]
            tview2 = merge_views(base_view, mv)
            ctview2 = merge_views(cli.thread_view_map(tid), mv)
        else:
            tview2 = base_view
            ctview2 = cli.thread_view_map(tid)
        mview2 = view_union(tview2, ctview2)
        lib2 = lib.add_op(op, mview2, tid, tview2)
        cli2 = cli.with_thread_view(tid, ctview2)
        yield ObjStep(action=op.act, retval=value, lib=lib2, cli=cli2)
