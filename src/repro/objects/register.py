"""An abstract *weak register* (extension object).

Unlike the lock and stack — whose operations are totally ordered and act
on the globally-latest state — the register exposes genuine weak-memory
behaviour at the abstract level: a ``read`` may return any write the
reading thread can observe (its viewfront or later), exactly like a
variable read under Figure 5, but packaged as an abstract object.

This demonstrates that the framework of Section 4 accommodates abstract
specifications that are themselves weakly consistent (the paper's §7
future-work direction), and provides a useful baseline in tests: a
register with relaxed methods admits stale reads that the synchronising
variants rule out.

Methods: ``write``/``writeR`` (relaxed/releasing) and ``read``/``readA``
(relaxed/acquiring).  Reads modify nothing; writes append with a
placement choice like Figure 5's Write rule (any observable uncovered
predecessor), so the register's modification order is per-thread-view
driven rather than total.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lang.expr import Value
from repro.memory.actions import Op, mk_method
from repro.memory.state import ComponentState
from repro.memory.views import merge_views, view_union
from repro.objects.base import AbstractObject, ObjStep
from repro.util.rationals import TS_ZERO

WRITE = "write"
WRITE_R = "writeR"
READ = "read"
READ_A = "readA"
INIT = "init"


class AbstractRegister(AbstractObject):
    """A register whose abstract reads/writes follow Figure 5 verbatim."""

    def __init__(self, name: str, initial: Value = 0) -> None:
        super().__init__(name)
        self.initial = initial

    @property
    def methods(self) -> Tuple[str, ...]:
        return (WRITE, WRITE_R, READ, READ_A)

    def init_ops(self) -> Tuple[Op, ...]:
        return (
            Op(mk_method(self.name, INIT, val=self.initial, index=0), TS_ZERO),
        )

    def method_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        method: str,
        arg: Value = None,
    ) -> Iterator[ObjStep]:
        if method in (WRITE, WRITE_R):
            yield from self._write_steps(lib, cli, tid, arg, method == WRITE_R)
        elif method in (READ, READ_A):
            yield from self._read_steps(lib, cli, tid, method == READ_A)
        else:
            raise ValueError(f"register {self.name!r} has no method {method!r}")

    def _write_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        value: Value,
        release: bool,
    ) -> Iterator[ObjStep]:
        if value is None:
            raise ValueError("write requires an argument")
        n = self.op_count(lib)
        name = WRITE_R if release else WRITE
        for w in lib.observable_uncovered(tid, self.name):
            q_new = lib.fresh_ts(self.name, w.ts)
            op = Op(
                mk_method(self.name, name, tid=tid, val=value, index=n, sync=release),
                q_new,
            )
            tview2 = lib.thread_view_map(tid).set(self.name, op)
            mview2 = view_union(tview2, cli.thread_view_map(tid))
            lib2 = lib.add_op(op, mview2, tid, tview2)
            yield ObjStep(action=op.act, retval=None, lib=lib2, cli=cli)

    def _read_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        acquire: bool,
    ) -> Iterator[ObjStep]:
        for w in lib.obs(tid, self.name):
            value = w.act.val
            if acquire and w.act.sync:
                mv = lib.mview[w]
                tview2 = merge_views(lib.thread_view_map(tid), mv)
                ctview2 = merge_views(cli.thread_view_map(tid), mv)
                lib2 = lib.with_thread_view(tid, tview2)
                cli2 = cli.with_thread_view(tid, ctview2)
            else:
                tview2 = lib.thread_view_map(tid).set(self.name, w)
                lib2 = lib.with_thread_view(tid, tview2)
                cli2 = cli
            yield ObjStep(action=None, retval=value, lib=lib2, cli=cli2)
