"""Abstract object semantics (paper Section 4).

Abstract method calls are first-class operations in the library component
state: the set ``ops`` records timestamped method operations, not just
writes.  Each object defines which methods are enabled in a state, what
they return, and how they synchronise thread views across the client and
library components.

The paper's worked example is the :class:`~repro.objects.lock.AbstractLock`
(Figure 6).  The :class:`~repro.objects.stack.AbstractStack` realises the
synchronising stack used in the message-passing examples (Figures 1–3).
:class:`~repro.objects.register.AbstractRegister` and
:class:`~repro.objects.counter.AbstractCounter` are extensions in the
spirit of the paper's "other concurrent data types" future work.
"""

from repro.objects.base import AbstractObject, ObjStep
from repro.objects.counter import AbstractCounter
from repro.objects.lock import AbstractLock
from repro.objects.queue import AbstractQueue
from repro.objects.register import AbstractRegister
from repro.objects.stack import AbstractStack

__all__ = [
    "AbstractCounter",
    "AbstractLock",
    "AbstractObject",
    "AbstractQueue",
    "AbstractRegister",
    "AbstractStack",
    "ObjStep",
]
