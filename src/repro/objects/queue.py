"""An abstract FIFO queue (extension object, paper §7).

Mirrors the stack's construction (totally-ordered operations acting on
the globally-latest state) with FIFO removal: ``deq`` returns the
*oldest* enqueued element still present.  The synchronising pair is a
releasing ``enqR`` observed by an acquiring ``deqA`` — dequeuing an
element publishes everything its enqueuer did before enqueuing it,
which is exactly how message-passing over a work queue is supposed to
behave.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.lang.expr import EMPTY, Value
from repro.memory.actions import Op, mk_method
from repro.memory.state import ComponentState
from repro.memory.views import merge_views, view_union
from repro.objects.base import AbstractObject, ObjStep
from repro.util.rationals import TS_ZERO

ENQ = "enq"
ENQ_R = "enqR"
DEQ = "deq"
DEQ_A = "deqA"
INIT = "init"


class AbstractQueue(AbstractObject):
    """Abstract queue with relaxed and release/acquire method variants."""

    @property
    def methods(self) -> Tuple[str, ...]:
        return (ENQ, ENQ_R, DEQ, DEQ_A)

    def init_ops(self) -> Tuple[Op, ...]:
        return (Op(mk_method(self.name, INIT, index=0), TS_ZERO),)

    # -- content -------------------------------------------------------------
    def content(self, lib: ComponentState) -> Tuple[Tuple[Value, Op], ...]:
        """Queue content, front to back, as ``(value, enq-op)`` pairs."""
        queue: List[Tuple[Value, Op]] = []
        for op in lib.ops_on(self.name):
            meth = op.act.method
            if meth in (ENQ, ENQ_R):
                queue.append((op.act.val, op))
            elif meth in (DEQ, DEQ_A):
                if queue:
                    queue.pop(0)
        return tuple(queue)

    def front(self, lib: ComponentState) -> Optional[Tuple[Value, Op]]:
        content = self.content(lib)
        return content[0] if content else None

    # -- transitions ----------------------------------------------------------
    def method_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        method: str,
        arg: Value = None,
    ) -> Iterator[ObjStep]:
        if method in (ENQ, ENQ_R):
            yield from self._enq_steps(lib, cli, tid, arg, method == ENQ_R)
        elif method in (DEQ, DEQ_A):
            yield from self._deq_steps(lib, cli, tid, method == DEQ_A)
        else:
            raise ValueError(f"queue {self.name!r} has no method {method!r}")

    def _enq_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        value: Value,
        release: bool,
    ) -> Iterator[ObjStep]:
        if value is None:
            raise ValueError("enq requires an argument")
        latest = self.latest(lib)
        assert latest is not None, "queue missing its init operation"
        n = self.op_count(lib)
        q_new = lib.fresh_ts(self.name, latest.ts)
        name = ENQ_R if release else ENQ
        op = Op(
            mk_method(self.name, name, tid=tid, val=value, index=n, sync=release),
            q_new,
        )
        tview2 = lib.thread_view_map(tid).set(self.name, op)
        mview2 = view_union(tview2, cli.thread_view_map(tid))
        lib2 = lib.add_op(op, mview2, tid, tview2)
        yield ObjStep(action=op.act, retval=None, lib=lib2, cli=cli)

    def _deq_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        acquire: bool,
    ) -> Iterator[ObjStep]:
        front = self.front(lib)
        if front is None:
            yield ObjStep(action=None, retval=EMPTY, lib=lib, cli=cli)
            return
        value, enq_op = front
        latest = self.latest(lib)
        n = self.op_count(lib)
        q_new = lib.fresh_ts(self.name, latest.ts)
        name = DEQ_A if acquire else DEQ
        op = Op(mk_method(self.name, name, tid=tid, val=value, index=n), q_new)
        base_view = lib.thread_view_map(tid).set(self.name, op)
        if acquire and enq_op.act.sync:
            mv = lib.mview[enq_op]
            tview2 = merge_views(base_view, mv)
            ctview2 = merge_views(cli.thread_view_map(tid), mv)
        else:
            tview2 = base_view
            ctview2 = cli.thread_view_map(tid)
        mview2 = view_union(tview2, ctview2)
        lib2 = lib.add_op(op, mview2, tid, tview2)
        cli2 = cli.with_thread_view(tid, ctview2)
        yield ObjStep(action=op.act, retval=value, lib=lib2, cli=cli2)
