"""The abstract-object protocol.

An abstract object ``o`` lives in the library component: its operations
are recorded in ``β.ops`` with ``var(a) = o``.  Executing one of its
methods is a single *library* transition (the ``Lib`` rule of Figure 4
combined with the object semantics of Section 4): the object receives the
library state as the executing component ``γ`` and the client state as
the context ``β`` — the orientation used in Figure 6.

A method may be *disabled* in a state (an acquire on a held lock yields
no steps); the combined semantics then simply offers no transition for
that thread, which models blocking.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, NamedTuple, Optional, Tuple

from repro.lang.expr import Value
from repro.memory.actions import Action, Op
from repro.memory.state import ComponentState


class ObjStep(NamedTuple):
    """One abstract method transition.

    ``retval`` is bound to the call's destination register (if any) and
    recorded as the thread's ``rval`` — the paper's device for ensuring
    corresponding abstract/concrete calls return the same value.
    """

    action: Action
    retval: Value
    lib: ComponentState
    cli: ComponentState


class AbstractObject(ABC):
    """Base class for abstract object specifications."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    @abstractmethod
    def methods(self) -> Tuple[str, ...]:
        """Names of the callable methods."""

    @abstractmethod
    def init_ops(self) -> Tuple[Op, ...]:
        """Initial operations contributed to ``β_Init.ops`` (e.g.
        ``(l.init_0, 0)``)."""

    @abstractmethod
    def method_steps(
        self,
        lib: ComponentState,
        cli: ComponentState,
        tid: str,
        method: str,
        arg: Value = None,
    ) -> Iterator[ObjStep]:
        """All transitions of ``o.method(arg)`` by thread ``tid``.

        ``lib`` is the executing component (the object's home), ``cli``
        the context.  Yields nothing when the method is disabled.
        """

    # -- shared helpers ------------------------------------------------------
    def op_count(self, lib: ComponentState) -> int:
        """Number of operations on this object so far (including init);
        used as the next operation index (the lock's "version")."""
        return len(lib.ops_on(self.name))

    def latest(self, lib: ComponentState) -> Optional[Op]:
        """The operation on this object with maximal timestamp."""
        return lib.last_op(self.name)
