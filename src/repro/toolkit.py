"""High-level verification workflows.

One-call entry points bundling the machinery a downstream user reaches
for most often: verifying that a lock (or any object) implementation
contextually refines its abstract specification across a battery of
clients, with both checkers and readable reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.lang.program import Program
from repro.litmus.clients import (
    Fill,
    abstract_fill,
    lock_client,
    lock_client_one_sided,
)
from repro.refinement.simulation import SimulationResult, find_forward_simulation
from repro.refinement.tracecheck import RefinementResult, check_program_refinement

#: A client builder: (fill, objects=..., lib_vars=...) -> Program.
ClientBuilder = Callable[..., Program]


@dataclass
class ClientVerdict:
    """Refinement verdicts for one client of the battery."""

    client: str
    simulation: SimulationResult
    traces: Optional[RefinementResult]

    @property
    def ok(self) -> bool:
        if not self.simulation.found:
            return False
        return self.traces is None or bool(self.traces.refines)


@dataclass
class RefinementReport:
    """Aggregated verdicts across the client battery."""

    implementation: str
    verdicts: List[ClientVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def describe(self) -> str:
        lines = [
            f"refinement report for {self.implementation}: "
            f"{'PASS' if self.ok else 'FAIL'}"
        ]
        for v in self.verdicts:
            sim = (
                f"simulation |R|={v.simulation.relation_size}"
                if v.simulation.found
                else "simulation NOT FOUND"
            )
            tr = ""
            if v.traces is not None:
                tr = f", traces {'ok' if v.traces.refines else 'FAIL'}"
            lines.append(f"  {v.client}: {sim}{tr}")
            if (
                v.traces is not None
                and not v.traces.refines
                and v.traces.witness is not None
            ):
                # The interleaving realising the unmatched client trace,
                # straight from the checker's already-explored graph.
                lines.append(
                    f"    counterexample interleaving "
                    f"({len(v.traces.witness.steps)} steps):"
                )
                lines += [
                    f"      {i + 1:2d}. {s.describe()}"
                    for i, s in enumerate(v.traces.witness.steps)
                ]
        return "\n".join(lines)


def default_lock_battery() -> Sequence[Tuple[str, ClientBuilder, dict]]:
    """The standard client battery for lock verification."""
    return (
        ("reader-client", lock_client, {}),
        ("writer-client", lock_client, {"readers": False}),
        ("one-sided-client", lock_client_one_sided, {}),
    )


def verify_lock_implementation(
    fill: Fill,
    lib_vars: Mapping[str, object],
    object_factory: Callable[[], object] = None,
    battery: Optional[Sequence[Tuple[str, ClientBuilder, dict]]] = None,
    check_traces: bool = True,
    max_states: int = 200_000,
    engine=None,
) -> RefinementReport:
    """Verify a lock implementation against the abstract lock.

    For each client in the battery, instantiates ``C[CO]`` with ``fill``
    and ``C[AO]`` with the abstract object, solves the Definition 8
    simulation game, and (optionally) confirms by Definition 6 trace
    inclusion.

    Parameters
    ----------
    fill:
        The implementation's hole-filling callback (e.g.
        :func:`repro.impls.seqlock.seqlock_fill`).
    lib_vars:
        Initial library variables the implementation needs.
    object_factory:
        Factory for the abstract specification; defaults to
        ``AbstractLock("l")``.
    battery:
        ``(name, builder, kwargs)`` triples; defaults to
        :func:`default_lock_battery`.
    engine:
        Optional :class:`repro.engine.ExplorationEngine` through which
        every state-space exploration of the battery is routed (pick a
        strategy or the sharded multiprocess backend for large
        implementations); None keeps the sequential in-process default.
    """
    if object_factory is None:
        from repro.objects.lock import AbstractLock

        object_factory = lambda: AbstractLock("l")  # noqa: E731
    battery = battery if battery is not None else default_lock_battery()

    name = getattr(fill, "__name__", repr(fill))
    report = RefinementReport(implementation=name)
    for client_name, builder, kwargs in battery:
        afill, objs = abstract_fill(object_factory)
        abstract = builder(afill, objects=objs, **kwargs)
        concrete = builder(fill, lib_vars=dict(lib_vars), **kwargs)
        sim = find_forward_simulation(
            concrete, abstract, max_states=max_states, engine=engine
        )
        traces = None
        if check_traces:
            traces = check_program_refinement(
                concrete, abstract, max_states=max_states, engine=engine
            )
        report.verdicts.append(
            ClientVerdict(client=client_name, simulation=sim, traces=traces)
        )
    return report
