"""Proof outlines (paper §5.2–5.3).

A proof outline decorates each labelled statement of each thread with an
assertion (the statement's precondition) and designates a postcondition
for the terminal label, optionally strengthened by a global invariant
conjoined everywhere — the shape of the paper's Figures 3 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.assertions.core import TRUE, Assertion
from repro.lang.program import Program


@dataclass(frozen=True)
class ThreadOutline:
    """Assertions of one thread, keyed by statement label.

    ``assertions[l]`` is the precondition of the statement labelled ``l``;
    the entry for the thread's done-label is the thread's postcondition.
    """

    assertions: Mapping[object, Assertion]

    def at(self, label) -> Optional[Assertion]:
        return self.assertions.get(label)


@dataclass(frozen=True)
class ProofOutline:
    """A fully annotated concurrent program."""

    program: Program
    threads: Mapping[str, ThreadOutline]
    invariant: Assertion = TRUE
    #: Checked at terminal configurations (the outline's overall post).
    postcondition: Assertion = TRUE

    def assertion_at(self, tid: str, label) -> Optional[Assertion]:
        """The (invariant-strengthened) assertion of ``tid`` at ``label``.

        Returns ``None`` for labels the outline does not annotate; the
        checker treats those as ``invariant`` only.
        """
        thread = self.threads.get(tid)
        base = thread.at(label) if thread is not None else None
        if base is None:
            return None
        return self.invariant & base

    def labels_of(self, tid: str) -> Tuple[object, ...]:
        thread = self.threads.get(tid)
        return tuple(thread.assertions.keys()) if thread else ()
