"""The abstract-lock proof rules of Lemma 3, checked by enumeration.

Each rule is an atomic Hoare triple about a lock method call, quantified
over all states.  We instantiate the rule schemas (over version index
``u``, client variable ``x``, values, and thread ids) and check every
instance against a *universe* of canonical configurations harvested from
a family of lock-client programs — every state the paper's deductive
proof would range over for those programs.

Rules (statement decorated with the executing thread; ``m`` ranges over
Acquire/Release, ``t ≠ t'``)::

    (1) {H_{l.release_u}}            l.Acquire(v)_t  {v > u + 1}
    (2) {H_{l.release_u}}            l.m(v)_t        {H_{l.release_u}}
    (3) {[l.release_u]_t}            l.Acquire(v)_t  {[l.acquire_{u+1}]_t}
    (4) {[x = u]_t}                  l.m(v)_t'       {[x = u]_t}
    (5) {⟨l.release_u⟩[x = n]_t}     l.Acquire(v)_t  {v = u+1 ⇒ [x = n]_t}
    (6) {¬⟨l.release_u⟩_t' ∧ [x=v]_t} l.Release(u)_t {⟨l.release_u⟩[x = v]_t'}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.assertions.core import Assertion, Pred
from repro.assertions.observability import (
    ConditionalMethod,
    DefiniteMethod,
    DefiniteValue,
    Hidden,
    MethodMatch,
    PossibleMethod,
)
from repro.lang.ast import MethodCall
from repro.lang.program import Program
from repro.logic.triples import TripleResult, check_atomic_triple
from repro.semantics.config import Config

#: Register used to bind the version argument of Acquire(v)/Release(v).
VREG = "__version__"


@dataclass
class RuleReport:
    """Aggregated result of all instances of one rule."""

    rule: str
    valid: bool = True
    instances: int = 0
    checked: int = 0
    applied: int = 0
    failures: List[Tuple[dict, TripleResult]] = field(default_factory=list)

    def absorb(self, params: dict, result: TripleResult) -> None:
        self.instances += 1
        self.checked += result.checked
        self.applied += result.applied
        if not result.valid:
            self.valid = False
            self.failures.append((params, result))


def _acquire(lock: str) -> MethodCall:
    return MethodCall(lock, "acquire", dest=VREG)


def _release(lock: str) -> MethodCall:
    return MethodCall(lock, "release", dest=VREG)


def _version_gt(tid: str, bound: int) -> Assertion:
    return Pred(
        lambda env, t=tid, b=bound: (env.local(t, VREG) or 0) > b,
        name=f"v@{tid} > {bound}",
    )


def _version_eq_implies(tid: str, value: int, then: Assertion) -> Assertion:
    cond = Pred(
        lambda env, t=tid, v=value: env.local(t, VREG) == v,
        name=f"v@{tid} = {value}",
    )
    return cond >> then


def check_rule1(
    program: Program, universe: Iterable[Config], lock: str, tid: str, u: int
) -> TripleResult:
    """``{H_{l.release_u}} l.Acquire(v)_t {v > u + 1}``."""
    pre = Hidden(MethodMatch(lock, "release", index=u))
    post = _version_gt(tid, u + 1)
    return check_atomic_triple(program, universe, pre, _acquire(lock), tid, post)


def check_rule2(
    program: Program,
    universe: Iterable[Config],
    lock: str,
    tid: str,
    u: int,
    method: str,
) -> TripleResult:
    """``{H_{l.release_u}} l.m(v)_t {H_{l.release_u}}``."""
    hidden = Hidden(MethodMatch(lock, "release", index=u))
    cmd = _acquire(lock) if method == "acquire" else _release(lock)
    return check_atomic_triple(program, universe, hidden, cmd, tid, hidden)


def check_rule3(
    program: Program, universe: Iterable[Config], lock: str, tid: str, u: int
) -> TripleResult:
    """``{[l.release_u]_t} l.Acquire(v)_t {[l.acquire_{u+1}]_t}``."""
    pre = DefiniteMethod(MethodMatch(lock, "release", index=u), tid)
    post = DefiniteMethod(MethodMatch(lock, "acquire", index=u + 1), tid)
    return check_atomic_triple(program, universe, pre, _acquire(lock), tid, post)


def check_rule4(
    program: Program,
    universe: Iterable[Config],
    lock: str,
    tid: str,
    other: str,
    var: str,
    value,
    method: str,
) -> TripleResult:
    """``{[x = u]_t} l.m(v)_t' {[x = u]_t}`` for ``t ≠ t'``."""
    assert tid != other
    stable = DefiniteValue(var, value, tid)
    cmd = _acquire(lock) if method == "acquire" else _release(lock)
    return check_atomic_triple(program, universe, stable, cmd, other, stable)


def check_rule5(
    program: Program,
    universe: Iterable[Config],
    lock: str,
    tid: str,
    u: int,
    var: str,
    value,
) -> TripleResult:
    """``{⟨l.release_u⟩[x = n]_t} l.Acquire(v)_t {v = u+1 ⇒ [x = n]_t}``."""
    pre = ConditionalMethod(
        MethodMatch(lock, "release", index=u), var, value, tid
    )
    post = _version_eq_implies(tid, u + 1, DefiniteValue(var, value, tid))
    return check_atomic_triple(program, universe, pre, _acquire(lock), tid, post)


def check_rule6(
    program: Program,
    universe: Iterable[Config],
    lock: str,
    tid: str,
    other: str,
    u: int,
    var: str,
    value,
) -> TripleResult:
    """``{¬⟨l.release_u⟩_t' ∧ [x = v]_t} l.Release(u)_t
    {⟨l.release_u⟩[x = v]_t'}``."""
    assert tid != other
    match = MethodMatch(lock, "release", index=u)
    pre = (~PossibleMethod(match, other)) & DefiniteValue(var, value, tid)
    post = _version_eq_implies(
        tid, u, ConditionalMethod(match, var, value, other)
    )
    return check_atomic_triple(program, universe, pre, _release(lock), tid, post)


def check_all_rules(
    groups: Sequence[Tuple[Program, List[Config]]],
    lock: str = "l",
    indices: Sequence[int] = (2, 4),
    values: Sequence[int] = (0, 5),
) -> Dict[str, RuleReport]:
    """Check every rule of Lemma 3 over all universe groups.

    ``indices`` instantiates the version schema variable ``u``; ``values``
    instantiates written values ``n``/``u``; client variables and thread
    ids are taken from each program.
    """
    reports = {f"rule{i}": RuleReport(rule=f"rule{i}") for i in range(1, 7)}
    for program, universe in groups:
        tids = program.tids
        cvars = sorted(program.client_var_names)
        for t in tids:
            for u in indices:
                reports["rule1"].absorb(
                    {"t": t, "u": u},
                    check_rule1(program, universe, lock, t, u),
                )
                for m in ("acquire", "release"):
                    reports["rule2"].absorb(
                        {"t": t, "u": u, "m": m},
                        check_rule2(program, universe, lock, t, u, m),
                    )
                reports["rule3"].absorb(
                    {"t": t, "u": u},
                    check_rule3(program, universe, lock, t, u),
                )
                for x in cvars:
                    for n in values:
                        reports["rule5"].absorb(
                            {"t": t, "u": u, "x": x, "n": n},
                            check_rule5(program, universe, lock, t, u, x, n),
                        )
            for t2 in tids:
                if t2 == t:
                    continue
                for x in cvars:
                    for n in values:
                        for m in ("acquire", "release"):
                            reports["rule4"].absorb(
                                {"t": t, "t2": t2, "x": x, "n": n, "m": m},
                                check_rule4(
                                    program, universe, lock, t, t2, x, n, m
                                ),
                            )
                        for u in indices:
                            reports["rule6"].absorb(
                                {"t": t, "t2": t2, "u": u, "x": x, "v": n},
                                check_rule6(
                                    program, universe, lock, t, t2, u, x, n
                                ),
                            )
    return reports
