"""Hoare logic and Owicki–Gries proof-outline checking (paper §5.2–5.3).

The paper discharges its proof obligations deductively in Isabelle/HOL;
here the same obligations are discharged by exhaustive enumeration:

* :mod:`repro.logic.triples` — Hoare triples for whole programs
  (Definition 2) and for atomic statements quantified over a *state
  universe* (every canonical configuration reachable from a family of
  initialisations);
* :mod:`repro.logic.outline` / :mod:`repro.logic.owicki` — proof
  outlines with per-label assertions, checked for initial validity,
  local correctness and interference freedom over the reachable
  configuration graph;
* :mod:`repro.logic.lockrules` — the abstract-lock proof rules of
  Lemma 3, each checked over generated universes.
"""

from repro.logic.outline import ProofOutline, ThreadOutline
from repro.logic.owicki import OGFailure, OGResult, check_proof_outline
from repro.logic.triples import (
    TripleResult,
    check_atomic_triple,
    check_program_triple,
    collect_universe,
)

__all__ = [
    "OGFailure",
    "OGResult",
    "ProofOutline",
    "ThreadOutline",
    "TripleResult",
    "check_atomic_triple",
    "check_program_triple",
    "check_proof_outline",
    "collect_universe",
]
