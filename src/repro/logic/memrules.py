"""Proof rules for plain reads, writes and updates (paper §5.2).

The paper reuses "a collection of rules for reads, writes and updates
… given in prior work [6, 5]" (Dalvandi et al., ECOOP'20).  This module
states the core rules of that collection and checks them the same way
as the Lemma 3 harness — over every canonical configuration reachable
from a program family::

    (W-self)   {[x = u]_t}         x :=[R] v @t   {[x = v]_t}
    (R-self)   {[x = u]_t}         r ← x @t       {r = u ∧ [x = u]_t}
    (R-poss)   {⟨x = u⟩_t}         r ← x @t       {possibly r = u}    (existential)
    (MP-read)  {⟨x = u⟩[y = v]_t}  r ←A x @t      {r = u ⇒ [y = v]_t}
    (W-stable) {[x = u]_t}         y :=[R] w @t'  {[x = u]_t}         (x ≠ y)
    (R-stable) {[x = u]_t}         r ← y @t'      {[x = u]_t}
    (U-self)   {[x = u]_t}         r ← FAI(x) @t  {r = u ∧ [x = u+1]_t}

(MP-read) is the essence of message passing: an acquiring read that
returns the conditionally-observed value establishes the definite
observation of the dependent variable.

Note the precondition of (W-self): ``{true} x := v {[x = v]_t}`` is
*unsound* under weak memory — a writer with a stale view may place its
write in the middle of modification order, so the new write need not be
the last one.  Under ``[x = u]_t`` the writer's view is mo-maximal and
the new write lands at the top.  The harness demonstrates the unsound
variant's counterexample as a control
(:func:`check_write_self_unsound_variant`).
"""

from __future__ import annotations

from typing import Iterable

from repro.assertions.core import Assertion, Pred, TRUE
from repro.assertions.observability import (
    ConditionalValue,
    DefiniteValue,
    PossibleValue,
)
from repro.lang import ast as A
from repro.lang.expr import Lit
from repro.lang.program import Program
from repro.logic.triples import TripleResult, check_atomic_triple
from repro.semantics.config import Config

RREG = "__r__"


def _local_eq(tid: str, value) -> Assertion:
    return Pred(
        lambda env, t=tid, v=value: env.local(t, RREG) == v,
        name=f"{RREG}@{tid} = {value!r}",
    )


def check_write_self(
    program: Program,
    universe: Iterable[Config],
    tid: str,
    var: str,
    old,
    value,
    release=False,
) -> TripleResult:
    """(W-self): a view-maximal writer establishes its definite
    observation: ``{[x = old]_t} x := v @t {[x = v]_t}``."""
    return check_atomic_triple(
        program,
        universe,
        DefiniteValue(var, old, tid),
        A.Write(var, Lit(value), release=release),
        tid,
        DefiniteValue(var, value, tid),
    )


def check_write_self_unsound_variant(
    program: Program, universe: Iterable[Config], tid: str, var: str, value
) -> TripleResult:
    """Control: ``{true} x := v @t {[x = v]_t}`` — expected to FAIL on
    universes containing stale-view writers (the write may be placed
    mid-modification-order)."""
    return check_atomic_triple(
        program,
        universe,
        TRUE,
        A.Write(var, Lit(value)),
        tid,
        DefiniteValue(var, value, tid),
    )


def check_read_self(
    program: Program, universe: Iterable[Config], tid: str, var: str, value
) -> TripleResult:
    """(R-self): under a definite observation, a read returns it and
    preserves it."""
    pre = DefiniteValue(var, value, tid)
    post = _local_eq(tid, value) & pre
    return check_atomic_triple(
        program, universe, pre, A.Read(RREG, var), tid, post
    )


def check_mp_read(
    program: Program,
    universe: Iterable[Config],
    tid: str,
    var: str,
    value,
    dep_var: str,
    dep_value,
) -> TripleResult:
    """(MP-read): the message-passing rule for acquiring reads."""
    pre = ConditionalValue(var, value, dep_var, dep_value, tid)
    post = _local_eq(tid, value) >> DefiniteValue(dep_var, dep_value, tid)
    return check_atomic_triple(
        program, universe, pre, A.Read(RREG, var, acquire=True), tid, post
    )


def check_write_stable(
    program: Program,
    universe: Iterable[Config],
    tid: str,
    other: str,
    var: str,
    value,
    other_var: str,
    other_value,
    release=False,
) -> TripleResult:
    """(W-stable): another thread's write to a *different* variable
    preserves a definite observation."""
    assert var != other_var and tid != other
    stable = DefiniteValue(var, value, tid)
    return check_atomic_triple(
        program,
        universe,
        stable,
        A.Write(other_var, Lit(other_value), release=release),
        other,
        stable,
    )


def check_read_stable(
    program: Program,
    universe: Iterable[Config],
    tid: str,
    other: str,
    var: str,
    value,
    read_var: str,
) -> TripleResult:
    """(R-stable): reads never disturb definite observations."""
    assert tid != other
    stable = DefiniteValue(var, value, tid)
    return check_atomic_triple(
        program, universe, stable, A.Read(RREG, read_var), other, stable
    )


def check_fai_self(
    program: Program, universe: Iterable[Config], tid: str, var: str, value: int
) -> TripleResult:
    """(U-self): FAI under a definite observation reads it and bumps it."""
    pre = DefiniteValue(var, value, tid)
    post = _local_eq(tid, value) & DefiniteValue(var, value + 1, tid)
    return check_atomic_triple(
        program, universe, pre, A.Fai(RREG, var), tid, post
    )


def check_possible_read(
    program: Program, universe: Iterable[Config], tid: str, var: str, value
) -> dict:
    """(R-poss), existential: wherever ``⟨x = u⟩_t`` holds, *some* read
    transition returns ``u`` (possible observations are realisable).

    Returns a dict with counts; ``ok`` is False if any pre-state has no
    matching read.
    """
    from repro.assertions.core import make_env
    from repro.semantics.step import _steps

    pre = PossibleValue(var, value, tid)
    checked = realised = 0
    for cfg in universe:
        if not pre.holds(make_env(program, cfg)):
            continue
        checked += 1
        values = {
            a.val
            for a, _c, _n, _ls, _g, _b in _steps(
                program, A.Read(RREG, var), tid, cfg.locals[tid],
                cfg.gamma, cfg.beta, in_lib=False,
            )
        }
        if value in values:
            realised += 1
    return {"checked": checked, "realised": realised, "ok": checked == realised}
