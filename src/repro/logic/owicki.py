"""Owicki–Gries validity of proof outlines, by enumeration.

Classical Owicki–Gries [24] decomposes a concurrent proof into

1. **initial validity** — every thread's first assertion holds in the
   initial configuration;
2. **local correctness** — each statement, executed from a state
   satisfying its precondition, establishes the next assertion of its
   own thread;
3. **interference freedom** — each statement preserves every assertion
   of every *other* thread that co-holds with its precondition.

The paper discharges these obligations deductively (Lemma 4).  We
discharge them by enumeration over the reachable canonical configuration
graph: for every reachable configuration and every enabled transition,
the three obligations are checked and reported *per (statement,
assertion) pair*, which reproduces the structure (and the diagnostics)
of an Owicki–Gries proof rather than a bare safety check.  Over the
reachable universe the conjunction of (2) and (3) plus (1) is equivalent
to annotation validity at every reachable configuration; we also check
that directly as a sanity cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.assertions.core import Env, make_env
from repro.logic.outline import ProofOutline
from repro.semantics.config import Config
from repro.semantics.explore import explore
from repro.semantics.step import successors


@dataclass(frozen=True)
class OGFailure:
    """One failed proof obligation."""

    kind: str  # 'initial' | 'local' | 'interference' | 'post' | 'annotation'
    tid: str  # the executing thread ('' for initial/post failures)
    label: object  # label of the violated assertion
    owner: str  # thread owning the violated assertion
    config: Config
    target: Optional[Config] = None

    def describe(self) -> str:
        where = f"{self.owner}@{self.label}"
        if self.kind == "interference":
            return f"statement of {self.tid} interferes with assertion {where}"
        if self.kind == "local":
            return f"statement of {self.tid} fails to establish {where}"
        return f"{self.kind} obligation fails at {where}"


@dataclass
class OGResult:
    """Outcome of checking a proof outline."""

    valid: bool
    states: int
    transitions: int
    obligations: int
    failures: List[OGFailure] = field(default_factory=list)
    truncated: bool = False

    def __bool__(self) -> bool:
        return self.valid


def check_proof_outline(
    outline: ProofOutline,
    max_states: int = 500_000,
    stop_on_first: bool = False,
) -> OGResult:
    """Check initial validity, local correctness, interference freedom and
    the terminal postcondition of ``outline``."""
    program = outline.program
    # Owicki–Gries obligations are stated per (statement, assertion)
    # pair at intermediate program points — silent steps (the guard
    # evaluations and local assignments the assertions annotate) are
    # exactly what is being checked, so the enumeration explicitly
    # requests the unreduced configuration graph.
    result = explore(program, max_states=max_states, reduction="off")
    failures: List[OGFailure] = []
    obligations = 0
    transitions = 0

    def record(failure: OGFailure) -> bool:
        failures.append(failure)
        return stop_on_first

    # (1) initial validity ---------------------------------------------------
    init_env = make_env(program, result.initial)
    for tid in program.tids:
        label = result.initial.pc(tid, program)
        assertion = outline.assertion_at(tid, label)
        obligations += 1
        if assertion is not None and not assertion.holds(init_env):
            if record(
                OGFailure("initial", "", label, tid, result.initial)
            ):
                return _final(result, obligations, transitions, failures)

    # (2)+(3) per-transition obligations --------------------------------------
    for cfg in result.configs.values():
        env = make_env(program, cfg)
        # Annotation validity cross-check (semantic reading of the outline).
        for tid in program.tids:
            label = cfg.pc(tid, program)
            assertion = outline.assertion_at(tid, label)
            obligations += 1
            if assertion is not None and not assertion.holds(env):
                if record(OGFailure("annotation", "", label, tid, cfg)):
                    return _final(result, obligations, transitions, failures)
        # Postcondition at terminal configurations.
        if cfg.is_terminal():
            obligations += 1
            if not outline.postcondition.holds(env):
                if record(OGFailure("post", "", None, "", cfg)):
                    return _final(result, obligations, transitions, failures)
            continue
        pcs = {tid: cfg.pc(tid, program) for tid in program.tids}
        pres = {
            tid: outline.assertion_at(tid, pcs[tid]) for tid in program.tids
        }
        for tr in successors(program, cfg):
            transitions += 1
            pre = pres[tr.tid]
            if pre is not None and not pre.holds(env):
                # The executing statement's precondition does not hold here;
                # under OG the obligation is vacuous for this state.  (Cannot
                # occur once annotation validity holds — kept for fidelity.)
                continue
            tenv = make_env(program, tr.target)
            # Local correctness: the executing thread's next assertion.
            new_label = tr.target.pc(tr.tid, program)
            post = outline.assertion_at(tr.tid, new_label)
            obligations += 1
            if post is not None and not post.holds(tenv):
                if record(
                    OGFailure("local", tr.tid, new_label, tr.tid, cfg, tr.target)
                ):
                    return _final(result, obligations, transitions, failures)
            # Interference freedom: other threads' current assertions.
            for other in program.tids:
                if other == tr.tid:
                    continue
                other_assert = pres[other]
                if other_assert is None:
                    continue
                obligations += 1
                if not other_assert.holds(env):
                    continue  # {p ∧ pre} c {p}: p must co-hold to obligate
                if not other_assert.holds(tenv):
                    if record(
                        OGFailure(
                            "interference",
                            tr.tid,
                            pcs[other],
                            other,
                            cfg,
                            tr.target,
                        )
                    ):
                        return _final(
                            result, obligations, transitions, failures
                        )

    return _final(result, obligations, transitions, failures)


def _final(result, obligations: int, transitions: int, failures) -> OGResult:
    return OGResult(
        valid=not failures and not result.truncated,
        states=result.state_count,
        transitions=transitions,
        obligations=obligations,
        failures=failures,
        truncated=result.truncated,
    )
