"""Hoare triples by enumeration (paper §5.2, Definition 2).

Two judgment forms are provided:

* **Program triples** ``{p} Init; P {q}``: ``p`` is checked at the
  initial configuration and ``q`` at every terminal configuration of the
  exhaustive exploration — exactly Definition 2's partial-correctness
  semantics restricted to the (finite) reachable space.

* **Atomic triples** ``{p} c@t {q}``: for every configuration in a given
  *universe* satisfying ``p``, every transition of command ``c`` executed
  by thread ``t`` must land in a configuration satisfying ``q``.  This is
  the form in which the paper states its proof rules (Lemma 3); the
  universe plays the role of the paper's implicit "all states", made
  finite by harvesting every canonical configuration reachable from a
  family of client programs (:func:`collect_universe`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.assertions.core import Assertion, Env, make_env
from repro.lang.ast import Node
from repro.lang.program import Program
from repro.semantics.canon import canonical_key
from repro.semantics.config import Config, initial_config
from repro.semantics.explore import explore
from repro.semantics.step import _steps


@dataclass
class TripleResult:
    """Outcome of a triple check, with counterexamples when invalid."""

    valid: bool
    checked: int
    applied: int
    failures: List[Tuple[Config, Optional[Config]]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


def check_program_triple(
    program: Program,
    pre: Assertion,
    post: Assertion,
    max_states: int = 500_000,
) -> TripleResult:
    """``{p} Init; P {q}`` under partial correctness (Definition 2)."""
    init = initial_config(program)
    failures: List[Tuple[Config, Optional[Config]]] = []
    if not pre.holds(make_env(program, init)):
        failures.append((init, None))
    result = explore(program, max_states=max_states)
    checked = 1
    for cfg in result.terminals:
        checked += 1
        if not post.holds(make_env(program, cfg)):
            failures.append((cfg, None))
    return TripleResult(
        valid=not failures and not result.truncated,
        checked=checked,
        applied=len(result.terminals),
        failures=failures,
    )


def check_atomic_triple(
    program: Program,
    universe: Iterable[Config],
    pre: Assertion,
    cmd: Node,
    tid: str,
    post: Assertion,
) -> TripleResult:
    """``{p} c@t {q}`` quantified over ``universe``.

    ``program`` supplies the object registry and variable partition; the
    command is executed *ad hoc* from each universe configuration (it
    need not occur syntactically in the program).  Configurations where
    ``c`` is disabled contribute vacuously, as in the paper (a blocked
    acquire has no transitions to constrain).
    """
    checked = 0
    applied = 0
    failures: List[Tuple[Config, Optional[Config]]] = []
    for cfg in universe:
        if not pre.holds(make_env(program, cfg)):
            continue
        checked += 1
        for _a, _comp, _c2, ls2, g2, b2 in _steps(
            program, cmd, tid, cfg.locals[tid], cfg.gamma, cfg.beta, in_lib=False
        ):
            applied += 1
            cfg2 = cfg.with_thread(tid, None, ls2, g2, b2)
            if not post.holds(make_env(program, cfg2)):
                failures.append((cfg, cfg2))
    return TripleResult(
        valid=not failures,
        checked=checked,
        applied=applied,
        failures=failures,
    )


def collect_universe(
    programs: Sequence[Program],
    max_states: int = 200_000,
) -> List[Tuple[Program, List[Config]]]:
    """Harvest the canonical reachable configurations of several programs.

    Returns one ``(program, configs)`` group per input program: atomic
    triples must be applied with the matching program (object registry,
    variable partition), so universes from different programs are kept
    apart.
    """
    groups: List[Tuple[Program, List[Config]]] = []
    for program in programs:
        result = explore(program, max_states=max_states)
        groups.append((program, list(result.configs.values())))
    return groups
