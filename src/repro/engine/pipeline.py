"""Pipelined sharded exploration: persistent shard-owned workers.

The ``rounds`` backend (:mod:`repro.engine.parallel`) is
level-synchronous: every BFS round is a ``pool.map`` barrier gated on
the slowest shard, and every discovered configuration round-trips
through the master's serial merge loop.  This module removes both
bottlenecks by inverting the ownership:

* **Workers own their shard.**  Each of the ``workers`` persistent
  processes holds the visited set, frontier, configuration fragment,
  parent fragment and edge fragment for the states whose stable digest
  maps to its shard.  A worker expands its local frontier continuously
  — no rounds, no barrier — and a successor that lands in its own shard
  is admitted *in place*: it never leaves the process and never meets
  the codec at all.
* **Only cross-shard successors travel**, as batches of
  ``(digest, configuration)`` pairs encoded *together* in the compact
  codec wire format (:mod:`repro.memory.codec`) per batch.  Batch-level
  encoding matters: successor configurations share most of their
  substructure (ops sets, actions, view maps, continuations), so one
  pickle memo serialises the shared part once — measured ~6x fewer
  bytes and ~6x less codec time per state than the rounds backend's
  per-state blobs.  The discovering worker also keeps a
  forwarded-digest filter, so each remote state is shipped at most once
  per discovering shard — the rounds backend re-ships every duplicate
  discovery, a multiple of the state count on branchy spaces.
* **Batches move over a pluggable transport** (``transport=`` /
  ``REPRO_TRANSPORT``).  The default, ``"shm"``, is the zero-copy data
  plane of :mod:`repro.engine.shm`: one shared-memory SPSC ring per
  directed worker pair, the discovering worker encoding each batch
  *directly into the owner's mapped ring memory* and the owner decoding
  it from that same memory — no intermediate ``bytes`` object and no
  master hop.  ``"queue"`` is the original ``multiprocessing.Queue``
  path (batches routed through the master as opaque blobs), kept
  byte-identical in behaviour and selected automatically where
  ``SharedMemory`` is unavailable (e.g. no /dev/shm).  Both transports
  produce byte-identical exploration results; see
  :func:`resolve_transport`.
* **The master is a control plane, nothing else.**  Under ``"shm"`` it
  only seeds the first configuration, collects errors and detects
  quiescence: each worker's idle report carries its cumulative per-ring
  ``(sent, consumed)`` counter vectors, and the exploration is complete
  when every worker's *latest* report is idle and every directed ring's
  sent count equals its consumed count (plus every seeded control
  message is consumed).  FIFO rings make this sound — a worker flushes
  before it reports, so any in-flight batch shows up as a counter
  mismatch in the freshest report pair, and a worker that consumed
  anything after its last report will report again.  The one subtlety:
  a blocked flush drains inbound rings (the ``on_wait`` anti-deadlock
  hook), which can refill the frontier *during* ``flush_all`` — the
  worker must re-check the frontier after flushing and withhold its
  idle report if so, else the master would see matched counters while
  unexpanded states hide in a local frontier.  Under ``"queue"``
  the master additionally routes every batch (the original protocol:
  complete when all workers idle and consumed-equals-sent on the one
  master-routed stream).  Either way the master never unpickles a
  configuration — not even for ``on_config``, which the rounds backend
  evaluates master-side on every discovered state.
* **Early stop is a worker-side broadcast.**  ``on_config`` runs in the
  owning worker at expansion (exactly the sequential loop's cadence); a
  truthy return sends one ``hit`` message and the master broadcasts
  ``finish``.  The callback must therefore be a *pure predicate* —
  worker-side mutations don't propagate — which is the
  ``reachable``/``assert_invariant``/``find_witness`` shape.  Stateful
  callbacks belong on ``backend="rounds"``.
* **``max_states`` becomes per-shard budgets** summing exactly to the
  cap.  A worker that exhausts its budget reports ``trunc`` and the
  master broadcasts ``finish`` promptly.  Digest sharding is balanced,
  so a non-truncated run can only differ from sequential when the space
  is within a shard-imbalance factor of the cap; truncated results are
  lower bounds either way — the documented contract.

At ``finish`` every worker ships its result fragment (configurations as
objects — their shared substructure survives the one fragment pickle —
plus terminal/stuck digests, parents, edges and counts) and the master
merges fragments into one :class:`~repro.engine.result.ExploreResult`.
On non-truncated, non-stopped runs the merged result is bit-identical
to sequential BFS in every representation-independent observable:
ownership partitions the state space, each state is expanded exactly
once by its owner, and visited-set exploration is order-insensitive.

Parent edges record *a* first-discovery path, valid for witness replay
but not necessarily shortest (expansion order is shard-local, not
level-global) — :meth:`repro.engine.core.ExplorationEngine.find_witness`
pins the rounds backend for shortest-path witnesses.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from collections import deque
from queue import Empty
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.engine.fingerprint import stable_digest
from repro.engine.result import ExploreResult
from repro.obs.metrics import Metrics, activate, collecting as _collecting

if TYPE_CHECKING:
    from repro.lang.program import Program
    from repro.semantics.config import Config

#: Cross-shard batches are flushed to the master once this many targets
#: have accumulated for one destination (or whenever the local frontier
#: drains — small spaces never wait).
FLUSH_TARGETS = 64

#: Expansions between opportunistic (non-blocking) inbox drains, which
#: keep incoming work and ``finish`` broadcasts flowing mid-burst.
POLL_EVERY = 32

#: Master receive timeout (seconds) between liveness checks on the
#: worker processes — only reached when the pipeline is wedged.
_MASTER_POLL = 2.0

#: Expansions between ``stat`` progress reports to the master.  Only
#: sent when a live progress reporter is attached (``report_stats``),
#: so the steady-state message traffic is untouched when telemetry is
#: off or the output is not a terminal.
_STAT_EVERY = 1024

#: Timeout (seconds) on a shm-transport worker's idle wait — the
#: worker re-drains its rings and control queue at least this often, so
#: a missed event wakeup costs at most one timeout.
_IDLE_WAIT = 0.05


def pipeline_usable(on_config) -> bool:
    """Whether the pipeline backend can run this exploration here.

    Workers receive their arguments by fork inheritance where fork is
    available (closures welcome); under a spawn-only start method every
    argument crosses a pickle boundary, so an unpicklable ``on_config``
    (the common closure case) must fall back to the rounds backend,
    which evaluates the callback master-side.

    This probe runs *before* transport resolution, so the shm and queue
    paths accept exactly the same callbacks and reject them at exactly
    the same point — transport choice can never change error timing.
    The probe pickles at ``HIGHEST_PROTOCOL``, matching how ``spawn``
    actually ships process arguments.
    """
    if on_config is None:
        return True
    from repro.engine.parallel import _pool_context

    if _pool_context().get_start_method() == "fork":
        return True
    try:
        pickle.dumps(on_config, pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


def resolve_transport(transport: Optional[str]) -> Tuple[str, str]:
    """Resolve the cross-shard transport for this run.

    Resolution order: explicit argument → ``REPRO_TRANSPORT`` → the
    default (``"shm"`` where :func:`repro.engine.shm.shm_available`,
    else ``"queue"``).  A *requested* ``"shm"`` on a host without
    working ``SharedMemory`` falls back to ``"queue"`` rather than
    failing — both transports are result-identical, so availability is
    a performance concern, not a correctness one.

    Returns ``(transport, reason)`` where ``reason`` is one of
    ``"requested"``, ``"env"``, ``"default"`` or ``"unavailable"``
    (shm wanted, queue substituted) — emitted on the run's trace as an
    ``explore.transport`` event.
    """
    from repro.engine.core import _check_transport
    from repro.engine.shm import shm_available

    reason = "requested"
    if transport is None:
        transport = os.environ.get("REPRO_TRANSPORT") or None
        reason = "env" if transport is not None else "default"
    if transport is not None:
        _check_transport(transport)
    if transport == "queue":
        return "queue", reason
    if shm_available():
        return "shm", reason
    return "queue", "unavailable"


def resolve_codec(codec: Optional[str]) -> Tuple[str, str]:
    """Resolve the cross-shard batch wire format for this run.

    Resolution order: explicit argument → ``REPRO_CODEC`` → the default
    ``"flat"`` (the pickle-free v2 format,
    :mod:`repro.memory.flatcodec`; ``"pickle"`` is the v1 format kept
    as measured fallback and parity reference).  Returns
    ``(codec, reason)`` with ``reason`` one of ``"requested"``,
    ``"env"`` or ``"default"`` — emitted on the run's trace as an
    ``explore.codec`` event.  Unlike the transport there is no
    availability fallback: both codecs are pure Python and always
    usable.
    """
    from repro.engine.core import _check_codec

    reason = "requested"
    if codec is None:
        codec = os.environ.get("REPRO_CODEC") or None
        reason = "env" if codec is not None else "default"
    if codec is None:
        return "flat", reason
    return _check_codec(codec), reason


def _budgets(max_states: int, workers: int) -> List[int]:
    """Per-shard admission budgets summing exactly to ``max_states``."""
    base, extra = divmod(max_states, workers)
    return [base + (1 if w < extra else 0) for w in range(workers)]


def _worker_main(
    wid: int,
    workers: int,
    inbox,
    out,
    program: "Program",
    canonicalise: bool,
    check_invariants: bool,
    collect_edges: bool,
    reduction: str,
    track_parents: bool,
    keep_configs: bool,
    on_config: Optional[Callable[["Config"], Optional[bool]]],
    budget: int,
    collect_metrics: bool = False,
    report_stats: bool = False,
    exchange=None,
    codec_name: str = "flat",
) -> None:
    """One shard-owning worker: the whole exploration loop for shard
    ``wid``, from first admission to result fragment.

    Protocol (all worker→master messages share one FIFO queue, so the
    master sees a worker's batches before its subsequent idle report):

    * in: ``("work", blob)`` — admit cross-shard targets; ``blob`` is
      one batch-pickled list of ``(digest, config)`` (or ``(digest,
      config, parent_edge)``) tuples; ``("finish",)`` — ship the result
      fragment and exit.
    * out: ``("batch", dst, blob)`` — cross-shard successors to route
      (opaque bytes to the master; queue transport only — under shm
      batches go straight into the owner's ring);
      ``("idle", wid, consumed)`` — local frontier drained, buffers
      flushed, ``consumed`` inbox batches processed so far.  Under shm
      the payload is instead ``(sent, received, consumed)``: the
      cumulative per-destination publish counts, per-source ring
      consumption counts and control-queue consumption — the master's
      quiescence evidence — and it is re-sent only when those counters
      changed since the last report;
      ``("stat", wid, states)`` — periodic progress sample, only under
      ``report_stats``;
      ``("hit", wid)`` / ``("trunc", wid)`` — request a stop broadcast;
      ``("done", wid, fragment)`` / ``("error", wid, traceback)``.

    ``exchange`` is the run's :class:`repro.engine.shm.ShmExchange`
    (None selects the queue transport).  A shm worker waits on its
    single inbound data event instead of a blocking queue get, and —
    crucially — keeps draining its rings even when halted or out of
    budget, so a producer blocked on a full ring is never deadlocked by
    a consumer that no longer wants the data (consumption just counts
    and discards once the budget or a hit closed admission).

    ``collect_metrics`` activates a private :class:`Metrics` for the
    worker's lifetime (capturing the reduction layer's counters plus
    shard/batch/codec-byte counts); its snapshot ships inside the
    ``done`` fragment under ``"metrics"`` for the master to merge.

    ``codec_name`` selects the batch wire format this worker *encodes*
    (``"flat"``/``"pickle"``); decoding always goes through the
    magic-dispatching :func:`repro.memory.flatcodec.decode_batch`, so
    mixed-codec traffic is well-defined.  When ``REPRO_PROFILE=FILE``
    is set the worker runs under :mod:`cProfile` and dumps its stats to
    ``FILE.w<wid>`` on exit (merged master-side into ``FILE``).
    """
    profile_to = os.environ.get("REPRO_PROFILE")
    prof = None
    if profile_to:
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
    try:
        import gc

        from repro.engine.core import key_function, successor_function
        from repro.engine.parallel import _shard_of
        from repro.memory.flatcodec import decode_batch, get_codec

        codec = get_codec(codec_name)

        # A shard-owning worker accumulates an ever-growing heap of
        # *immutable, acyclic* semantic structures (configs, ops, view
        # maps) that can never become cyclic garbage — but CPython's
        # generational collector rescans that heap over and over as it
        # grows, which profiling shows costing more than a third of the
        # exploration on ≥50k-state shards.  Automatic collection is
        # disabled for the worker's (bounded, process-exit-reclaimed)
        # lifetime; refcounting still frees everything non-cyclic.
        gc.disable()

        keyf = key_function(program, canonicalise)
        successors = successor_function(reduction)

        # Worker processes own their collector for their whole lifetime
        # — activated once, never restored (the process exits after the
        # fragment ships).
        m = Metrics() if collect_metrics else None
        if m is not None:
            activate(m)

        visited: set = set()
        frontier: deque = deque()
        configs: Dict[bytes, "Config"] = {}  # owned states (or sinks only)
        terminal_keys: List[bytes] = []
        stuck_keys: List[bytes] = []
        parents: Optional[Dict[bytes, Optional[Tuple]]] = (
            {} if track_parents else None
        )
        edges: Optional[Dict[bytes, List]] = {} if collect_edges else None
        edge_count = 0
        truncated = False
        halted = False  # on_config hit: stop expanding, await finish
        finishing = False
        consumed = 0
        stat_countdown = _STAT_EVERY
        forwarded: set = set()  # remote digests already shipped once
        bufs: Dict[int, List] = {d: [] for d in range(workers) if d != wid}

        shm_mode = exchange is not None
        if shm_mode:
            from repro.engine.shm import ProducerStopped

            exchange.attach()
            out_rings = exchange.out_rings(wid)
            in_rings = exchange.in_rings(wid)
            data_event = exchange.data_events[wid]
            stopping = exchange.stop_event.is_set
            sent = [0] * workers  # cumulative batches published per dst
            received = [0] * workers  # cumulative batches drained per src
            last_report = None

        def admit(digest: bytes, payload, parent_edge) -> None:
            nonlocal truncated
            if digest in visited or halted:
                return
            if len(visited) >= budget:
                if not truncated:
                    truncated = True
                    out.put(("trunc", wid))
                return
            visited.add(digest)
            if track_parents:
                parents[digest] = parent_edge
            frontier.append((digest, payload))

        def admit_batch(batch: List) -> None:
            # One batch decode: the shared substructure of the batch's
            # configurations is reconstructed (and interned) once, not
            # per state.
            if track_parents:
                for digest, cfg, parent_edge in batch:
                    admit(digest, cfg, parent_edge)
            else:
                for digest, cfg in batch:
                    admit(digest, cfg, None)

        def handle(msg) -> None:
            nonlocal consumed, finishing
            if msg[0] == "work":
                consumed += 1
                admit_batch(decode_batch(msg[1]))
            else:  # "finish"
                finishing = True

        if shm_mode:

            def drain_rings() -> int:
                got = 0
                for src, ring in in_rings:
                    n = ring.drain(admit_batch)
                    if n:
                        received[src] += n
                        got += n
                return got

            def flush(dst: int, buf: List) -> None:
                ring = out_rings[dst]
                try:
                    # on_wait=drain_rings: while blocked on a full peer
                    # ring, keep consuming our own inbound rings so two
                    # mutually-publishing workers can't deadlock.
                    wire, frames, copies, waits = ring.publish(
                        buf, stop=stopping, on_wait=drain_rings
                    )
                except ProducerStopped:
                    # The run is shutting down and the owner stopped
                    # draining: drop the batch (counts are lower bounds
                    # on stopped/truncated runs by contract).
                    bufs[dst] = []
                    return
                sent[dst] += 1
                if m is not None:
                    m.inc("pipeline.batches")
                    m.inc("shm.ring.frames", frames)
                    m.inc("shm.ring.bytes", wire)
                    if waits:
                        m.inc("shm.ring.full_waits", waits)
                    if copies:
                        m.inc("pipeline.batch_copies", copies)
                    m.gauge_max(
                        f"shm.ring.{wid}.{dst}.occupancy", ring.used()
                    )
                bufs[dst] = []

        else:

            def flush(dst: int, buf: List) -> None:
                blob = codec.encode_bytes(buf)
                if m is not None:
                    m.inc("pipeline.batches")
                    m.inc("pipeline.blob_bytes", len(blob))
                    # Deterministically two intermediate copies per
                    # batch on this transport: the blob built here plus
                    # the master routing hop.
                    m.inc("pipeline.batch_copies", 2)
                out.put(("batch", dst, blob))
                bufs[dst] = []

        def flush_all() -> None:
            for dst, buf in bufs.items():
                if buf:
                    flush(dst, buf)

        while not finishing:
            while True:  # opportunistic inbox drain
                try:
                    msg = inbox.get_nowait()
                except Empty:
                    break
                handle(msg)
            if shm_mode and not finishing:
                drain_rings()
            if finishing:
                break
            if not frontier or halted or truncated:
                # Nothing (more) to expand: flush, report, block.
                flush_all()
                if shm_mode:
                    if frontier and not (halted or truncated):
                        # flush_all's on_wait drain refilled the
                        # frontier: this worker is not idle.  Reporting
                        # now would hand the master a fully-matched
                        # counter matrix (the drains are counted) while
                        # unexpanded states hide in the local frontier —
                        # a false quiescence that drops states.
                        continue
                    report = (tuple(sent), tuple(received), consumed)
                    if report != last_report:
                        out.put(("idle", wid, report))
                        last_report = report
                    # Clear-then-recheck-then-wait: a producer (or the
                    # master posting a control message) sets the event
                    # after publishing, so anything that arrived after
                    # the clear either shows up in the drain below or
                    # re-sets the event and cuts the wait short.  The
                    # timeout bounds the one remaining (benign) race.
                    data_event.clear()
                    got = drain_rings()
                    try:
                        handle(inbox.get_nowait())
                    except Empty:
                        if not got:
                            data_event.wait(_IDLE_WAIT)
                else:
                    out.put(("idle", wid, consumed))
                    handle(inbox.get())
                continue
            if m is not None:
                # Sampled once per burst: the high-water mark of this
                # shard's local queue (merged by max across shards).
                m.gauge_max("explore.frontier_peak", len(frontier))
            if report_stats:
                stat_countdown -= POLL_EVERY
                if stat_countdown <= 0:
                    stat_countdown = _STAT_EVERY
                    out.put(("stat", wid, len(visited)))
            for _ in range(POLL_EVERY):
                if not frontier or halted or truncated:
                    break
                digest, cfg = frontier.popleft()
                if keep_configs:
                    configs[digest] = cfg
                if check_invariants:
                    cfg.gamma.check_invariants(program.tids)
                    cfg.beta.check_invariants(program.tids)
                if on_config is not None and on_config(cfg):
                    halted = True
                    out.put(("hit", wid))
                    break
                succs = successors(program, cfg)
                edge_count += len(succs)
                labels = [] if collect_edges else None
                if not succs:
                    (terminal_keys if cfg.is_terminal() else stuck_keys
                     ).append(digest)
                    if not keep_configs:
                        configs[digest] = cfg  # sinks only: verdict input
                if collect_edges:
                    edges[digest] = labels
                key_digests: Dict[Tuple, bytes] = {}  # per-expansion dedup
                for tr in succs:
                    key = keyf(tr.target)
                    tdigest = key_digests.get(key)
                    fresh = tdigest is None
                    if fresh:
                        tdigest = stable_digest(key)
                        key_digests[key] = tdigest
                    if collect_edges:
                        labels.append(
                            (tr.tid, tr.component, tr.action, tdigest)
                        )
                    if not fresh:
                        continue
                    dst = _shard_of(tdigest, workers)
                    if dst == wid:
                        admit(
                            tdigest,
                            tr.target,
                            (digest, tr.tid, tr.component, tr.action)
                            if track_parents
                            else None,
                        )
                    elif tdigest not in forwarded:
                        forwarded.add(tdigest)
                        buf = bufs[dst]
                        buf.append(
                            (
                                tdigest,
                                tr.target,
                                (digest, tr.tid, tr.component, tr.action),
                            )
                            if track_parents
                            else (tdigest, tr.target)
                        )
                        if len(buf) >= FLUSH_TARGETS:
                            flush(dst, buf)

        if m is not None:
            # The fragment carries this shard's share of the global
            # counter schema; the master merges fragments, so it must
            # not add states/edges again itself.
            m.inc("explore.states", len(visited))
            m.inc("explore.edges", edge_count)
            m.inc(f"shard.{wid}.states", len(visited))
        out.put(
            (
                "done",
                wid,
                {
                    "visited": len(visited),
                    "edge_count": edge_count,
                    "truncated": truncated,
                    "configs": configs,
                    "terminal_keys": terminal_keys,
                    "stuck_keys": stuck_keys,
                    "parents": parents,
                    "edges": edges,
                    "metrics": m.snapshot() if m is not None else None,
                },
            )
        )
    except Exception as exc:
        # Ship the exception itself where possible so the master can
        # re-raise the original type (check_invariants assertions,
        # predicate errors — matching the rounds/sequential backends);
        # the formatted traceback rides along for unpicklable ones.
        try:
            blob = pickle.dumps(exc, pickle.HIGHEST_PROTOCOL)
        except Exception:
            blob = None
        out.put(("error", wid, blob, traceback.format_exc()))
    finally:
        if prof is not None:
            prof.disable()
            try:
                prof.dump_stats(f"{profile_to}.w{wid}")
            except Exception:
                pass  # profiling must never take a worker down


def explore_pipeline(
    program: "Program",
    workers: int,
    max_states: int,
    collect_edges: bool = False,
    canonicalise: bool = True,
    check_invariants: bool = False,
    on_config: Optional[Callable[["Config"], Optional[bool]]] = None,
    reduction: str = "off",
    keep_configs: bool = True,
    track_parents: bool = False,
    metrics: Optional[Metrics] = None,
    progress=None,
    trace=None,
    transport: Optional[str] = None,
    codec: Optional[str] = None,
) -> ExploreResult:
    """Explore ``program`` with ``workers`` persistent shard-owning
    processes (see the module docstring).  Reached via
    :func:`repro.engine.parallel.explore_parallel` with
    ``backend="pipeline"``; ``workers >= 2`` by construction.

    ``transport`` picks the cross-shard data plane — ``"shm"``
    (shared-memory rings, the default where available) or ``"queue"``
    (master-routed blobs); ``None`` resolves via
    :func:`resolve_transport` (env ``REPRO_TRANSPORT``, then
    availability).  ``codec`` picks the batch wire format — ``"flat"``
    (pickle-free struct-packed v2, the default) or ``"pickle"`` (the v1
    reference); ``None`` resolves via :func:`resolve_codec` (env
    ``REPRO_CODEC``, then the flat default).  Neither choice ever
    affects results, only throughput and blob size.

    ``metrics``/``progress``/``trace`` are the observability sinks
    (:mod:`repro.obs`), all defaulting to None (off).  Worker metric
    fragments ride home inside the ``done`` messages and merge
    master-side; progress is fed by the workers' opt-in ``stat``
    samples; ``trace`` gains one ``explore.transport`` and one
    ``explore.codec`` event for the resolved choices and one
    ``explore.drain`` event per worker idle report.
    """
    from repro.engine.core import key_function
    from repro.engine.parallel import _pool_context, _shard_of
    from repro.semantics.config import initial_config

    if collect_edges:
        # Edge consumers address states by digest: the full map is the
        # point of the exploration, so the summary path is off the table.
        keep_configs = True

    from repro.semantics.reduce import get_strategy

    strat = get_strategy(reduction)
    if not strat.pipeline_safe:
        # Streaming shards never re-visit a state, so policies that need
        # the sleep-shrink re-expansion protocol (dpor) have no sound
        # home here; explore_parallel normally rejects these before
        # dispatch, but guard direct callers too.
        raise ValueError(
            f"reduction {reduction!r} is not supported on the pipeline "
            "backend (cross-shard sleep-set exchange is not implemented); "
            "use backend='rounds' or workers=1"
        )
    if strat.requires_canonical and not canonicalise:
        raise ValueError(
            f"reduction {reduction!r} is only sound under canonical state "
            "keys; canonicalise=False is not supported"
        )

    chosen_transport, why = resolve_transport(transport)
    chosen_codec, codec_why = resolve_codec(codec)
    if trace is not None:
        trace.emit(
            "explore.transport", transport=chosen_transport, reason=why
        )
        trace.emit("explore.codec", codec=chosen_codec, reason=codec_why)

    start = time.perf_counter()
    keyf = key_function(program, canonicalise)
    with _collecting(metrics):
        # Master-side, so the initial configuration's ε-closure fusions
        # are counted exactly once, as in the sequential backend.
        init = strat.normalise_initial(program, initial_config(program))
    init_key = stable_digest(keyf(init))

    ctx = _pool_context()
    exchange = None
    if chosen_transport == "shm":
        from repro.engine.shm import ShmExchange

        exchange = ShmExchange(workers, ctx, codec=chosen_codec)
    inboxes = [ctx.Queue() for _ in range(workers)]
    out = ctx.Queue()
    budgets = _budgets(max_states, workers)
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(
                w, workers, inboxes[w], out, program, canonicalise,
                check_invariants, collect_edges, reduction, track_parents,
                keep_configs, on_config, budgets[w],
                metrics is not None,
                progress is not None and progress.enabled,
                exchange, chosen_codec,
            ),
            daemon=True,
        )
        for w in range(workers)
    ]
    for p in procs:
        p.start()

    shm_mode = exchange is not None
    sent = [0] * workers  # control-queue "work" messages per worker
    consumed = [-1] * workers  # as of each worker's latest idle report
    idle = [False] * workers
    reports: List[Optional[Tuple]] = [None] * workers  # shm counter vectors
    owner = _shard_of(init_key, workers)
    first = (init_key, init, None) if track_parents else (init_key, init)
    from repro.memory.flatcodec import get_codec

    inboxes[owner].put(
        ("work", get_codec(chosen_codec).encode_bytes([first]))
    )
    sent[owner] += 1
    if shm_mode:
        exchange.wake(owner)

    stopped = False
    truncated = False
    finishing = False
    fragments: Dict[int, dict] = {}
    stat_tally: Dict[int, int] = {}  # latest per-worker stat samples

    def broadcast_finish() -> None:
        for q in inboxes:
            q.put(("finish",))
        if shm_mode:
            # Unblock everyone: idle workers waiting on their data
            # event, and producers blocked on a full ring whose
            # consumer already stopped draining (their batch is
            # dropped — sound, because a finish broadcast before
            # quiescence already marks the counts as lower bounds).
            exchange.stop_event.set()
            exchange.wake_all()

    def shm_quiescent() -> bool:
        """All workers idle, every seeded control message consumed and
        every directed ring's publish count matched by the consumer's
        drain count — across the *latest* report of each worker.  FIFO
        rings + cumulative counters make a false positive impossible: a
        worker only publishes after its report if it consumed something
        after its report, which its next report (mandatory, since its
        counters changed) exposes — provided idle reports are withheld
        while a frontier refilled by an ``on_wait`` drain is pending
        (see the worker loop)."""
        if not all(idle):
            return False
        for w in range(workers):
            if reports[w][2] != sent[w]:
                return False
        for s in range(workers):
            row = reports[s][0]
            for d in range(workers):
                if s != d and row[d] != reports[d][1][s]:
                    return False
        return True

    try:
        while len(fragments) < workers:
            try:
                msg = out.get(timeout=_MASTER_POLL)
            except Empty:
                dead = [
                    w
                    for w, p in enumerate(procs)
                    if not p.is_alive() and w not in fragments
                ]
                if dead:
                    raise RuntimeError(
                        f"pipeline worker(s) {dead} exited without a "
                        "result fragment"
                    )
                continue
            kind = msg[0]
            if kind == "batch":
                if not finishing:
                    dst = msg[1]
                    inboxes[dst].put(("work", msg[2]))
                    sent[dst] += 1
                    idle[dst] = False
            elif kind == "idle":
                wid = msg[1]
                idle[wid] = True
                if shm_mode:
                    reports[wid] = msg[2]
                    if trace is not None:
                        trace.emit(
                            "explore.drain", worker=wid, consumed=msg[2][2]
                        )
                    if not finishing and shm_quiescent():
                        finishing = True
                        broadcast_finish()
                    continue
                consumed[wid] = msg[2]
                if trace is not None:
                    trace.emit("explore.drain", worker=wid, consumed=msg[2])
                if not finishing and all(idle) and consumed == sent:
                    finishing = True
                    broadcast_finish()
            elif kind == "stat":
                stat_tally[msg[1]] = msg[2]
                if progress is not None:
                    progress.update(
                        sum(stat_tally.values()),
                        shards=[
                            stat_tally.get(w, 0) for w in range(workers)
                        ],
                        force=True,
                    )
            elif kind == "hit":
                stopped = True
                if not finishing:
                    finishing = True
                    broadcast_finish()
            elif kind == "trunc":
                truncated = True
                if not finishing:
                    finishing = True
                    broadcast_finish()
            elif kind == "done":
                fragments[msg[1]] = msg[2]
            else:  # ("error", wid, pickled exception or None, traceback)
                _wid, blob, tb = msg[1], msg[2], msg[3]
                exc = None
                if blob is not None:
                    try:
                        exc = pickle.loads(blob)
                    except Exception:
                        exc = None
                if isinstance(exc, BaseException):
                    exc.add_note(f"(raised in pipeline worker {_wid})\n{tb}")
                    raise exc
                raise RuntimeError(
                    f"pipeline worker {_wid} failed:\n{tb}"
                )
    except BaseException:
        if shm_mode:
            exchange.stop_event.set()
            exchange.wake_all()
        for p in procs:
            p.terminate()
        raise
    finally:
        for p in procs:
            p.join()
        if shm_mode:
            # The master owns the slab's lifecycle: unmap and unlink
            # now that every worker has exited (their mappings die with
            # their processes) — no segment survives the run, even an
            # unclean one.
            exchange.cleanup()

    profile_to = os.environ.get("REPRO_PROFILE")
    if profile_to:
        # Merge the per-worker dumps (FILE.w<wid>) into one FILE so the
        # profile reads like the sequential backend's, regardless of
        # worker count.  Best-effort: a worker killed before its finally
        # block simply contributes nothing.
        import pstats

        parts = [
            f"{profile_to}.w{w}"
            for w in range(workers)
            if os.path.exists(f"{profile_to}.w{w}")
        ]
        if parts:
            try:
                stats = pstats.Stats(parts[0])
                for part in parts[1:]:
                    stats.add(part)
                stats.dump_stats(profile_to)
            except Exception:
                pass  # profiling must never take the run down

    configs: Dict[bytes, "Config"] = {}
    parents: Optional[Dict[bytes, Optional[Tuple]]] = (
        {} if track_parents else None
    )
    edges: Optional[Dict[bytes, List]] = {} if collect_edges else None
    terminal_keys: List[bytes] = []
    stuck_keys: List[bytes] = []
    edge_count = 0
    visited_total = 0
    for wid in range(workers):
        frag = fragments[wid]
        visited_total += frag["visited"]
        edge_count += frag["edge_count"]
        truncated = truncated or frag["truncated"]
        if metrics is not None:
            metrics.merge(frag.get("metrics"))
        configs.update(frag["configs"])
        terminal_keys.extend(frag["terminal_keys"])
        stuck_keys.extend(frag["stuck_keys"])
        if track_parents and frag["parents"]:
            parents.update(frag["parents"])
        if collect_edges and frag["edges"]:
            edges.update(frag["edges"])
    if keep_configs or init_key in configs:
        # Keep the original initial object (`initial is configs[...]`).
        configs[init_key] = init

    elapsed = time.perf_counter() - start
    if metrics is not None:
        metrics.add_time("explore.elapsed", elapsed)
    if progress is not None:
        progress.finish()
    return ExploreResult(
        program=program,
        initial=init,
        initial_key=init_key,
        configs=configs,
        terminals=[configs[d] for d in terminal_keys],
        stuck=[configs[d] for d in stuck_keys],
        edge_count=edge_count,
        truncated=truncated,
        elapsed=elapsed,
        edges=edges,
        stopped=stopped,
        state_total=visited_total,
        parents=parents,
        metrics=metrics.snapshot() if metrics is not None else None,
    )
