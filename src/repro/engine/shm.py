"""Shared-memory SPSC ring buffers: the pipeline's zero-copy data plane.

The pipeline backend's cross-shard traffic used to flow worker → master
→ worker over ``multiprocessing.Queue``: every batch was pickled by the
discovering worker, re-pickled by the queue feeder, copied through two
OS pipes, and routed by the master — two full batch copies and a
process hop that scale with the state space.  This module replaces that
path with one **single-producer / single-consumer byte ring per ordered
worker pair** laid out in a single ``multiprocessing.shared_memory``
slab, so a batch is encoded exactly once, *directly into the consumer's
mapped memory* (:func:`repro.memory.codec.encode_batch_into`), and
decoded exactly once from that same memory — no intermediate ``bytes``
object exists on the default path, and the master never touches a
batch again.

Ring layout (one region of the slab per directed pair ``s → d``)::

    ┌──────────── 16-byte header ────────────┬──── capacity bytes ────┐
    │ head u32 │ tail u32 │ waiting u32 │ ── │ frame | frame | …      │
    └──────────┴──────────┴─────────────┴────┴────────────────────────┘

``head``/``tail`` are *monotonic* u32 counters (positions are
``counter & (capacity - 1)`` — capacity is forced to a power of two so
the modulus survives the u32 wrap); ``tail`` is written only by the
producer, ``head`` only by the consumer, and each store is a single
aligned 32-bit write (via a ``memoryview.cast("I")``), which is atomic
on every platform CPython runs on.  The producer publishes a frame by
writing payload *then* tail, so ``tail - head > 0`` implies at least
one complete frame is readable.

Frame format (lengths little-endian)::

    flag:u8  length:u32  payload[length]

* ``FLAG_BATCH`` — payload is one complete codec-encoded batch;
* ``FLAG_CHUNK`` / ``FLAG_LAST`` — consecutive pieces of one oversized
  batch (a batch whose encoding cannot fit the ring is encoded to
  bytes once — the single copy on this fallback — and split; SPSC
  FIFO order makes reassembly trivial);
* ``FLAG_WRAP`` — a 1-byte marker meaning "this frame would not fit
  contiguously; skip to offset 0".  Frames are therefore always
  contiguous, which is what lets both the encoder and
  ``pickle.loads`` run over a plain slice of ring memory.

Backpressure is bounded spin → event wait: a producer that finds the
ring full spins briefly on ``head``, then sets the ``waiting`` word,
clears the ring's space event, re-checks, and sleeps on the event with
a timeout; the consumer sets the event after advancing ``head`` iff
``waiting`` is up.  The timeout makes any lost-wakeup window benign.
All of a worker's inbound rings share one ``data`` event (set by every
producer after publishing, and by the master alongside control-queue
messages), so an idle worker blocks on a single primitive.

A run-wide ``stop`` event aborts producers blocked on a full ring whose
consumer has stopped draining (early stop / truncation) — dropped
batches are sound there because a stop broadcast already marks the
run's counts as lower bounds, and quiescence termination can never
coincide with a blocked producer (a producer flushes *before* it
reports idle, so its unconsumed traffic shows up as a counter
mismatch).
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Optional, Tuple

from repro.memory.codec import BufferFull, decode_batch_from, encode_batch_into


def _pickle_dumps(batch) -> bytes:
    """Default chunked-path encoder (the historical v1 wire bytes)."""
    return pickle.dumps(batch, pickle.HIGHEST_PROTOCOL)

#: Ring header: head u32 @0, tail u32 @4, waiting u32 @8, reserved @12.
HEADER_SIZE = 16

#: Frame header: flag byte + u32 little-endian payload length.
FRAME_HEADER = 5

FLAG_BATCH = 0x00
FLAG_CHUNK = 0x01
FLAG_LAST = 0x02
FLAG_WRAP = 0xFF

_MASK = 0xFFFFFFFF

#: Default per-ring data capacity (bytes); override with
#: ``REPRO_SHM_RING_CAP``.  Must be (rounded up to) a power of two.
DEFAULT_RING_CAPACITY = 1 << 20

#: Producer-side bounded spin before arming the event wait.
_SPIN = 200

#: Event-wait timeout (seconds) — bounds any missed-wakeup window.
_WAIT = 0.05


def _pow2(n: int) -> int:
    """Round ``n`` up to the next power of two (min 64)."""
    p = 64
    while p < n:
        p <<= 1
    return p


def ring_capacity_from_env() -> int:
    raw = os.environ.get("REPRO_SHM_RING_CAP", "")
    try:
        cap = int(raw)
    except ValueError:
        cap = 0
    return _pow2(cap) if cap > 0 else DEFAULT_RING_CAPACITY


_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` actually works here
    (importable *and* a segment can be created — e.g. /dev/shm exists
    and is writable).  Probed once per process."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing.shared_memory import SharedMemory

            seg = SharedMemory(create=True, size=64)
            try:
                seg.buf[:4] = b"ping"
                ok = bytes(seg.buf[:4]) == b"ping"
            finally:
                seg.close()
                seg.unlink()
            _AVAILABLE = bool(ok)
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


class ProducerStopped(Exception):
    """Raised by :meth:`Ring.publish` when the run's stop flag went up
    while the producer was blocked on a full ring."""


class Ring:
    """One SPSC byte ring over a shared-memory region.

    The two sides are asymmetric by construction — exactly one process
    may call the producer methods (:meth:`publish`) and exactly one the
    consumer methods (:meth:`drain`).  ``space_event`` is this ring's
    producer wakeup; ``data_event`` is the *consumer's* shared inbound
    wakeup (one per worker, spanning all its rings).

    ``codec`` is an optional :class:`repro.memory.flatcodec.BatchCodec`
    supplying the encode functions (buffer-direct for the zero-copy
    frame, bytes-producing for the chunked-oversize fallback); None
    keeps the historical v1 pickle wire format.  Decoding always goes
    through the magic-dispatching :func:`decode_batch_from`, so a ring
    accepts frames of either format regardless of its producer codec.
    """

    __slots__ = (
        "capacity", "_idx", "_data", "space_event", "data_event", "_mask",
        "_chunks", "_encode_into", "_encode_bytes",
    )

    def __init__(self, region: memoryview, capacity: int,
                 space_event, data_event, codec=None) -> None:
        if capacity & (capacity - 1):
            raise ValueError(f"ring capacity must be a power of two: {capacity}")
        self.capacity = capacity
        self._mask = capacity - 1
        self._idx = region[:HEADER_SIZE].cast("I")
        self._data = region[HEADER_SIZE:HEADER_SIZE + capacity]
        self.space_event = space_event
        self.data_event = data_event
        self._chunks = bytearray()  # consumer-side oversize reassembly
        if codec is None:
            self._encode_into = encode_batch_into
            self._encode_bytes = _pickle_dumps
        else:
            self._encode_into = codec.encode_into
            self._encode_bytes = codec.encode_bytes

    def release(self) -> None:
        """Release the underlying memory views so the backing
        ``SharedMemory`` mapping can close without exported pointers."""
        self._idx.release()
        self._data.release()

    # -- shared ------------------------------------------------------------

    def used(self) -> int:
        """Bytes currently occupied (complete frames only)."""
        return (self._idx[1] - self._idx[0]) & _MASK

    def free(self) -> int:
        return self.capacity - self.used()

    # -- producer side -----------------------------------------------------

    def _commit(self, pos: int, flag: int, length: int, tail: int) -> None:
        """Backfill a frame header at ``pos`` and publish the new tail."""
        data = self._data
        data[pos] = flag
        data[pos + 1:pos + FRAME_HEADER] = length.to_bytes(4, "little")
        self._idx[1] = (tail) & _MASK
        self.data_event.set()

    def try_publish(self, batch) -> int:
        """One attempt at a zero-copy single-frame publish.

        Encodes ``batch`` straight into the largest contiguous free
        region (in place, or after a wrap marker when the region at the
        buffer start is bigger), backfills the frame header, publishes.
        Returns bytes-on-wire; raises :class:`BufferFull` untouched
        (tail not advanced — speculative writes are invisible) when the
        encoding does not fit the region.
        """
        idx = self._idx
        head = idx[0]
        tail = idx[1]
        free = self.capacity - ((tail - head) & _MASK)
        pos = tail & self._mask
        contig = self.capacity - pos
        here = min(contig, free) - FRAME_HEADER
        # Payload room at offset 0 after spending ``contig`` bytes on a
        # wrap marker (the free region wraps at the capacity boundary,
        # so the remainder is contiguous from 0).
        there = free - contig - FRAME_HEADER
        if here < 0 and there < 0:
            raise BufferFull(max(here, there))
        if here >= there:
            n = self._encode_into(
                batch, self._data[pos + FRAME_HEADER:pos + FRAME_HEADER + here]
            )
            self._commit(pos, FLAG_BATCH, n, tail + FRAME_HEADER + n)
            return FRAME_HEADER + n
        # Wrap first: the marker byte sits in the skipped region, which
        # is free by ``free >= contig`` (implied by there >= 0).
        self._data[pos] = FLAG_WRAP
        n = self._encode_into(
            batch, self._data[FRAME_HEADER:FRAME_HEADER + there]
        )
        self._commit(0, FLAG_BATCH, n, tail + contig + FRAME_HEADER + n)
        return contig + FRAME_HEADER + n

    def _try_frame_bytes(self, flag: int, payload) -> int:
        """One attempt at writing a pre-encoded frame (chunk path)."""
        need = FRAME_HEADER + len(payload)
        idx = self._idx
        head = idx[0]
        tail = idx[1]
        free = self.capacity - ((tail - head) & _MASK)
        pos = tail & self._mask
        contig = self.capacity - pos
        if contig < need:
            if free < contig + need:
                raise BufferFull(need)
            self._data[pos] = FLAG_WRAP
            tail += contig
            pos = 0
        elif free < need:
            raise BufferFull(need)
        self._data[pos + FRAME_HEADER:pos + FRAME_HEADER + len(payload)] = (
            payload
        )
        self._commit(pos, flag, len(payload), tail + need)
        return need

    def _wait_space(self, stop: Optional[Callable[[], bool]],
                    on_wait: Optional[Callable[[], None]] = None) -> bool:
        """Block until the consumer moves ``head``; False if stopped.

        ``on_wait`` runs on every blocked iteration.  The pipeline
        workers pass their inbound-ring drain here: two workers whose
        rings fill simultaneously would otherwise deadlock, each
        blocked publishing while the batches the other needs consumed
        sit in its own inbound rings.
        """
        idx = self._idx
        start_head = idx[0]
        for _ in range(_SPIN):
            if idx[0] != start_head:
                return True
        idx[2] = 1  # waiting — consumer will set space_event on advance
        try:
            while idx[0] == start_head:
                if stop is not None and stop():
                    return False
                if on_wait is not None:
                    on_wait()
                    if idx[0] != start_head:
                        break
                self.space_event.clear()
                if idx[0] != start_head:
                    break
                self.space_event.wait(_WAIT)
        finally:
            idx[2] = 0
        return True

    def publish(self, batch,
                stop: Optional[Callable[[], bool]] = None,
                on_wait: Optional[Callable[[], None]] = None,
                ) -> Tuple[int, int, int, int]:
        """Publish one batch, blocking on a full ring.

        Returns ``(wire_bytes, frames, copies, full_waits)`` where
        ``copies`` counts intermediate batch materialisations (0 on the
        zero-copy path, 1 when the batch had to be chunked).  Raises
        :class:`ProducerStopped` if ``stop()`` went truthy while
        blocked — the caller is shutting down and the batch is dropped.
        ``on_wait`` runs on every blocked iteration (see
        :meth:`_wait_space`).
        """
        waits = 0
        while True:
            try:
                wire = self.try_publish(batch)
                return wire, 1, 0, waits
            except BufferFull:
                pass
            if self.used() == 0:
                # Even an empty ring cannot hold the encoding in one
                # contiguous frame: fall back to chunked frames.
                return self._publish_chunked(batch, stop, on_wait, waits)
            waits += 1
            if not self._wait_space(stop, on_wait):
                raise ProducerStopped

    def _publish_chunked(self, batch, stop, on_wait, waits: int
                         ) -> Tuple[int, int, int, int]:
        # The one copy on this path: the oversized batch is encoded to
        # an intermediate bytes object, then streamed as CHUNK*, LAST.
        blob = self._encode_bytes(batch)
        piece = max(64, self.capacity // 4)
        view = memoryview(blob)
        offsets = range(0, len(blob), piece)
        last = offsets[-1]
        wire = 0
        frames = 0
        for off in offsets:
            flag = FLAG_LAST if off == last else FLAG_CHUNK
            part = view[off:off + piece]
            while True:
                try:
                    wire += self._try_frame_bytes(flag, part)
                    frames += 1
                    break
                except BufferFull:
                    waits += 1
                    if not self._wait_space(stop, on_wait):
                        raise ProducerStopped from None
        return wire, frames, 1, waits

    # -- consumer side -----------------------------------------------------

    def _advance(self, new_head: int) -> None:
        idx = self._idx
        idx[0] = new_head & _MASK
        if idx[2]:  # producer armed the wait — wake it
            self.space_event.set()

    def drain(self, sink: Callable[[list], None]) -> int:
        """Decode every complete batch currently in the ring, calling
        ``sink(batch)`` for each; returns the number of batches.

        Decoding happens *before* ``head`` advances — ``pickle.loads``
        reads the ring memory directly (no copy-out), and the region
        only becomes writable to the producer once ``head`` moves past
        it.
        """
        batches = 0
        idx = self._idx
        data = self._data
        mask = self._mask
        while True:
            head = idx[0]
            if ((idx[1] - head) & _MASK) == 0:
                return batches
            pos = head & mask
            flag = data[pos]
            if flag == FLAG_WRAP:
                self._advance(head + (self.capacity - pos))
                continue
            length = int.from_bytes(data[pos + 1:pos + FRAME_HEADER], "little")
            payload = data[pos + FRAME_HEADER:pos + FRAME_HEADER + length]
            if flag == FLAG_BATCH:
                batch = decode_batch_from(payload)
                self._advance(head + FRAME_HEADER + length)
                sink(batch)
                batches += 1
            else:  # CHUNK / LAST — reassemble, then decode
                self._chunks += payload
                self._advance(head + FRAME_HEADER + length)
                if flag == FLAG_LAST:
                    batch = decode_batch_from(bytes(self._chunks))
                    self._chunks.clear()
                    sink(batch)
                    batches += 1


class ShmExchange:
    """All ``workers × (workers - 1)`` rings in one shared-memory slab,
    plus the event plumbing: one ``data`` event per worker (inbound
    wakeup), one ``space`` event per ring (producer wakeup), one
    run-wide ``stop`` event.

    Created master-side; workers receive the exchange by fork
    inheritance or pickle (the slab travels as its name and is
    re-attached lazily — see ``__getstate__``).  The master must call
    :meth:`cleanup` when the run ends; workers call :meth:`attach`
    (idempotent) before building their ring views.
    """

    def __init__(self, workers: int, ctx,
                 capacity: Optional[int] = None,
                 codec: Optional[str] = None) -> None:
        from multiprocessing.shared_memory import SharedMemory

        cap = _pow2(capacity) if capacity else ring_capacity_from_env()
        self.workers = workers
        self.capacity = cap
        #: Producer wire format for every ring of the run (a codec
        #: *name*, so it survives the ``__getstate__`` trip to spawned
        #: workers); None keeps the v1 pickle format.
        self.codec = codec
        self._stride = HEADER_SIZE + cap
        n_rings = workers * (workers - 1)
        self._slab = SharedMemory(create=True, size=n_rings * self._stride)
        self.name = self._slab.name
        self._owner = True
        self.data_events = [ctx.Event() for _ in range(workers)]
        self.space_events = [ctx.Event() for _ in range(n_rings)]
        self.stop_event = ctx.Event()
        self._rings: List[Ring] = []  # views handed out in this process
        # SharedMemory segments are born zero-filled, so every ring
        # header (head = tail = waiting = 0) is already initialised.

    # -- process transfer --------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_slab"] = None  # re-attached by name in the new process
        state["_owner"] = False
        state["_rings"] = []  # views are per-process
        return state

    def attach(self) -> None:
        """Map the slab in this process (no-op when already mapped)."""
        if self._slab is not None:
            return
        from multiprocessing import resource_tracker
        from multiprocessing.shared_memory import SharedMemory

        self._slab = SharedMemory(name=self.name)
        try:
            # Pre-3.13 resource_tracker registers every attach and then
            # unlinks the segment when *any* attaching process exits —
            # the master owns the lifecycle, so detach the tracker here.
            resource_tracker.unregister(self._slab._name, "shared_memory")
        except Exception:
            pass

    # -- ring construction -------------------------------------------------

    def _ring_index(self, src: int, dst: int) -> int:
        return src * (self.workers - 1) + (dst if dst < src else dst - 1)

    def ring(self, src: int, dst: int) -> Ring:
        """The ``src → dst`` ring, viewed over this process's mapping."""
        if src == dst:
            raise ValueError("no self-ring: same-shard successors stay local")
        self.attach()
        codec = None
        if self.codec is not None:
            from repro.memory.flatcodec import get_codec

            codec = get_codec(self.codec)
        i = self._ring_index(src, dst)
        region = self._slab.buf[i * self._stride:(i + 1) * self._stride]
        ring = Ring(
            region, self.capacity,
            space_event=self.space_events[i],
            data_event=self.data_events[dst],
            codec=codec,
        )
        self._rings.append(ring)
        return ring

    def out_rings(self, wid: int) -> dict:
        """Producer views for worker ``wid``: ``{dst: Ring}``."""
        return {
            d: self.ring(wid, d) for d in range(self.workers) if d != wid
        }

    def in_rings(self, wid: int) -> List[Tuple[int, Ring]]:
        """Consumer views for worker ``wid``: ``[(src, Ring), ...]``."""
        return [
            (s, self.ring(s, wid)) for s in range(self.workers) if s != wid
        ]

    def wake(self, wid: int) -> None:
        """Wake worker ``wid``'s inbound wait (used by the master when
        posting control-queue messages)."""
        self.data_events[wid].set()

    def wake_all(self) -> None:
        for ev in self.data_events:
            ev.set()
        for ev in self.space_events:
            ev.set()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for ring in self._rings:
            try:
                ring.release()
            except Exception:
                pass
        self._rings = []
        if self._slab is not None:
            try:
                self._slab.close()
            except Exception:
                pass
            self._slab = None

    def cleanup(self) -> None:
        """Master-side teardown: unmap and unlink the slab.  Safe to
        call more than once and after worker exits."""
        from multiprocessing.shared_memory import SharedMemory

        self.close()
        if self._owner:
            self._owner = False
            try:
                seg = SharedMemory(name=self.name)
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
