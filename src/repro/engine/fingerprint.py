"""Stable program fingerprints for the persistent result cache.

A fingerprint must identify a :class:`~repro.lang.program.Program` by
*content* — thread commands, initial values, abstract objects — and be
stable across interpreter runs (``PYTHONHASHSEED``-independent) so that
a cache written by one process is readable by the next.  Python's
built-in ``hash`` gives neither, so programs are first lowered to a
canonical pure-data encoding (sorted mappings and sets, dataclasses as
``(qualified name, field values)``) and then hashed with SHA-256.

:data:`SEMANTICS_VERSION` salts every key: bump it whenever the
operational semantics or the canonical-key encoding changes behaviour,
which atomically invalidates all previously cached verdicts.
"""

from __future__ import annotations

import dataclasses
import hashlib
from fractions import Fraction
from itertools import islice
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from repro.lang.program import Program

#: Cache-key salt tied to the semantics' behaviour.  Bump on any change
#: to the transition rules, canonicalisation or result summarisation.
#: rc11-rar-2: indexed component states — rank-from-index canonical
#: encoding (structural mview ordering, integer ranks) and structural
#: sort keys in the program encoding below.
SEMANTICS_VERSION = "rc11-rar-2"


def _encode(obj) -> tuple:
    """Lower ``obj`` to a deterministic, order-independent pure-data tree.

    Every node is a tuple whose first element is a string tag (or a
    dotted qualified class name), and same-tagged nodes carry same-typed
    fields, so encoded trees compare with plain tuple ordering — the
    sorts below are structural, no ``repr`` serialisation of whole
    subtrees.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return ("lit", type(obj).__name__, repr(obj))
    if isinstance(obj, Fraction):
        return ("frac", str(obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return (
            f"{cls.__module__}.{cls.__qualname__}",
            tuple(
                (f.name, _encode(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, Mapping):
        return (
            "map",
            tuple(sorted((_encode(k), _encode(v)) for k, v in obj.items())),
        )
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(_encode(x) for x in obj)))
    if isinstance(obj, (tuple, list)):
        return ("seq", tuple(_encode(x) for x in obj))
    # Plain objects (e.g. abstract object specs): identity is their class
    # plus instance attributes.  ``vars`` raises for __slots__ classes,
    # which all define deterministic reprs here.
    try:
        state = vars(obj)
    except TypeError:
        return ("repr", type(obj).__qualname__, repr(obj))
    return (
        "obj",
        f"{type(obj).__module__}.{type(obj).__qualname__}",
        _encode(state),
    )


#: Memoised digests of hashable substructures (Actions, AST nodes, …)
#: which repeat across virtually every canonical key of a run.  Value
#: keyed — equal values share a digest — and bounded by half-eviction:
#: when the memo reaches ``_SUB_DIGESTS_MAX`` entries, the oldest
#: insertion half is dropped (dicts preserve insertion order).  The
#: live working set — the substructures of the *current* exploration —
#: is by construction the recently inserted half, so long batch runs
#: shed the dead weight of earlier programs without ever re-hashing the
#: current one from cold (a full clear forced exactly that).
_SUB_DIGESTS: dict = {}
_SUB_DIGESTS_MAX = 1_000_000


def _evict_sub_digests() -> None:
    """Drop the oldest-inserted half of the substructure memo."""
    drop = len(_SUB_DIGESTS) // 2
    for key in list(islice(_SUB_DIGESTS, drop)):
        del _SUB_DIGESTS[key]


def stable_digest(obj, digest_size: int = 16) -> bytes:
    """An order- and process-independent digest of a canonical key.

    Canonical keys are nested tuples containing frozensets (both at the
    top level and inside ``LibBlock.public_regs``), whose iteration —
    and hence pickle byte order — depends on ``PYTHONHASHSEED``.  The
    sharded explorer dedups states across worker processes by digest,
    so the encoding must not involve per-process hash state: sets and
    dataclasses are folded into *sub-digests* (sorted, for sets),
    everything else is fed as a tagged byte stream.
    """
    h = hashlib.blake2b(digest_size=digest_size)
    _feed(h, obj, digest_size)
    return h.digest()


def _feed(h, x, digest_size: int) -> None:
    if isinstance(x, tuple):
        if len(x) >= 2:
            # Substructures (operation encodings, views, continuations)
            # repeat across virtually every key of a run: fold them into
            # memoised sub-digests instead of re-hashing byte streams.
            h.update(b"c")
            h.update(_sub_digest(x, digest_size))
        else:
            h.update(b"t%d:" % len(x))
            for e in x:
                _feed(h, e, digest_size)
    elif isinstance(x, str):
        h.update(b"s")
        h.update(x.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    elif x is None:
        h.update(b"N")
    elif isinstance(x, (bool, int, float, Fraction)):
        # One numeric encoding for every numeric type: Python equality
        # identifies True == 1 == Fraction(1), and digest equality must
        # coincide with key equality or parallel dedup diverges from
        # sequential dedup.
        h.update(b"q")
        h.update(str(Fraction(x)).encode("ascii"))
        h.update(b"\x00")
    elif isinstance(x, (frozenset, set)):
        h.update(b"f%d:" % len(x))
        h.update(b"".join(sorted(_sub_digest(e, digest_size) for e in x)))
    elif dataclasses.is_dataclass(x) and not isinstance(x, type):
        h.update(b"c")
        h.update(_sub_digest(x, digest_size))
    elif isinstance(x, list):
        h.update(b"L%d:" % len(x))
        for e in x:
            _feed(h, e, digest_size)
    elif isinstance(x, bytes):
        h.update(b"b")
        h.update(x)
        h.update(b"\x00")
    elif isinstance(x, Mapping):
        h.update(b"m%d:" % len(x))
        h.update(
            b"".join(
                sorted(_sub_digest(kv, digest_size) for kv in x.items())
            )
        )
    else:
        h.update(b"r")
        h.update(f"{type(x).__qualname__}:{x!r}".encode("utf-8"))
        h.update(b"\x00")


def _sub_digest(x, digest_size: int) -> bytes:
    """Digest of one substructure, memoised when ``x`` is hashable."""
    try:
        cached = _SUB_DIGESTS.get((digest_size, x))
        cacheable = True
    except TypeError:  # unhashable (e.g. a tuple containing a list)
        cached = None
        cacheable = False
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=digest_size)
    if dataclasses.is_dataclass(x) and not isinstance(x, type):
        cls = type(x)
        h.update(b"d")
        h.update(f"{cls.__module__}.{cls.__qualname__}".encode("ascii"))
        h.update(b"\x00")
        for f in dataclasses.fields(x):
            _feed(h, getattr(x, f.name), digest_size)
    elif isinstance(x, tuple):
        # Inline element feed (not via _feed, which would re-enter this
        # cache for the same tuple).
        h.update(b"t%d:" % len(x))
        for e in x:
            _feed(h, e, digest_size)
    else:
        _feed(h, x, digest_size)
    digest = h.digest()
    if cacheable:
        if len(_SUB_DIGESTS) >= _SUB_DIGESTS_MAX:
            _evict_sub_digests()
        _SUB_DIGESTS[(digest_size, x)] = digest
    return digest


def program_fingerprint(program: Program) -> str:
    """A stable hex digest identifying ``program`` by content."""
    payload = repr(_encode(program)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def cache_key(
    program: Program,
    max_states: int,
    canonicalise: bool = True,
    reduction: str = "off",
) -> str:
    """The persistent-cache key for one exploration request.

    Exploration parameters that affect the result — the state cap, the
    canonicalisation mode, and the reduction policy (reductions change
    which configurations exist, so state/edge counts differ between
    policies) — are part of the key, as is the semantics version salt.
    The policy enters through its registered *fingerprint token*
    (:data:`repro.semantics.reduce.ReductionStrategy.fingerprint_token`),
    so one policy's cached verdicts can be invalidated by bumping its
    token without touching the others' entries.
    """
    from repro.semantics.reduce import get_strategy

    payload = repr(
        (
            SEMANTICS_VERSION,
            program_fingerprint(program),
            int(max_states),
            bool(canonicalise),
            get_strategy(reduction).fingerprint_token,
        )
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
