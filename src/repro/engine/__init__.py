"""repro.engine — parallel, pluggable state-space exploration.

Exploration as a first-class subsystem, decoupled from the semantics:

* :class:`~repro.engine.core.ExplorationEngine` — one API over pluggable
  frontier strategies (BFS / DFS / random swarm,
  :mod:`repro.engine.strategy`) and two sharded multiprocess backends
  that partition the state space by canonical-key digest:
  ``"pipeline"`` (:mod:`repro.engine.pipeline`, default for
  ``workers > 1`` — persistent shard-owned workers, streaming frontier,
  compact-codec cross-shard batches) and ``"rounds"``
  (:mod:`repro.engine.parallel` — level-synchronous BFS, shortest
  recorded parent edges);
* :class:`~repro.engine.cache.ResultCache` — a persistent result cache
  keyed by stable program fingerprint
  (:mod:`repro.engine.fingerprint`), so repeated litmus/refinement runs
  hit disk instead of recomputing;
* :func:`~repro.engine.batch.run_batch` — a concurrent runner for named
  verification jobs (litmus battery, figure checks, lock refinements)
  with a JSON report.

``repro.semantics.explore.explore`` remains the compatibility wrapper
over the sequential engine; :func:`default_engine` is the shared
CLI-facing instance configured from the environment (``REPRO_WORKERS``,
``REPRO_STRATEGY``, ``REPRO_CACHE``, ``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import os

from repro.engine.batch import (
    JOB_NAMES,
    BatchReport,
    JobResult,
    run_batch,
    run_job,
)
from repro.engine.cache import ResultCache, cache_enabled_by_env
from repro.engine.core import (
    BACKENDS,
    DEFAULT_MAX_STATES,
    TRANSPORTS,
    ExplorationEngine,
    explore_sequential,
)
from repro.engine.fingerprint import (
    SEMANTICS_VERSION,
    cache_key,
    program_fingerprint,
)
from repro.engine.parallel import explore_parallel
from repro.engine.pipeline import explore_pipeline
from repro.engine.result import ExploreResult, ExploreSummary, summarise
from repro.engine.strategy import (
    BFSFrontier,
    DFSFrontier,
    Frontier,
    SwarmFrontier,
    make_frontier,
)

__all__ = [
    "BACKENDS",
    "BFSFrontier",
    "BatchReport",
    "CODECS",
    "DEFAULT_MAX_STATES",
    "DFSFrontier",
    "ExplorationEngine",
    "ExploreResult",
    "ExploreSummary",
    "Frontier",
    "JOB_NAMES",
    "JobResult",
    "REDUCTIONS",
    "ResultCache",
    "SEMANTICS_VERSION",
    "SwarmFrontier",
    "TRANSPORTS",
    "cache_key",
    "default_engine",
    "explore_parallel",
    "explore_pipeline",
    "explore_sequential",
    "make_frontier",
    "program_fingerprint",
    "run_batch",
    "run_job",
    "summarise",
]


def __getattr__(name: str):
    # The policy tuple lives in the reduction registry; resolving it
    # lazily keeps the engine package import-time independent of
    # repro.semantics (see the NOTE in repro.engine.core).
    if name == "REDUCTIONS":
        from repro.semantics.reduce import REDUCTIONS

        return REDUCTIONS
    if name == "CODECS":
        from repro.memory.flatcodec import CODECS

        return CODECS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def default_engine() -> ExplorationEngine:
    """A CLI-defaults engine, configured from the environment.

    Reads ``REPRO_WORKERS`` (default 1), ``REPRO_STRATEGY`` (default
    ``bfs``), ``REPRO_REDUCTION`` (default ``off``), ``REPRO_BACKEND``
    (default ``pipeline`` — the sharded backend for ``workers > 1``),
    ``REPRO_TRANSPORT`` (``shm``/``queue`` — the pipeline backend's
    cross-shard data plane; unset auto-resolves to ``shm`` where
    ``SharedMemory`` works), ``REPRO_CACHE`` (set to ``0`` to disable
    the persistent cache) and ``REPRO_CACHE_DIR`` afresh on every call,
    so environment changes (and monkeypatched tests) always take
    effect.  Engines are cheap to construct; the heavyweight state —
    the on-disk cache — is shared through the filesystem, not the
    object.
    """
    workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    strategy = os.environ.get("REPRO_STRATEGY", "bfs") or "bfs"
    reduction = os.environ.get("REPRO_REDUCTION", "off") or "off"
    backend = os.environ.get("REPRO_BACKEND", "pipeline") or "pipeline"
    transport = os.environ.get("REPRO_TRANSPORT") or None
    cache = ResultCache() if cache_enabled_by_env() else None
    return ExplorationEngine(
        strategy=strategy,
        workers=workers,
        cache=cache,
        reduction=reduction,
        backend=backend,
        transport=transport,
    )
