"""Exploration results: the full graph and its cacheable summary.

:class:`ExploreResult` is the complete product of one exploration — the
configuration map, terminal/stuck configurations and (optionally) the
labelled transition graph.  It is what the refinement and Owicki–Gries
checkers consume, and what :func:`repro.semantics.explore.explore`
returns (that module re-exports the class for backwards compatibility).

:class:`ExploreSummary` is the slice of a result that verification
verdicts actually need — counts, truncation flag and the terminal
configurations — small enough to pickle into the persistent result
cache (:mod:`repro.engine.cache`) and reload on a later run without
re-exploring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # imported for annotations only — keeps this module a
    # leaf of the import graph (semantics.explore imports the engine).
    from repro.lang.program import Program
    from repro.semantics.config import Config


@dataclass
class ExploreResult:
    """Everything the explorer learned about a program."""

    program: "Program"
    initial: "Config"
    initial_key: Tuple
    configs: Dict[Tuple, "Config"]
    terminals: List["Config"]
    stuck: List["Config"]
    edge_count: int
    truncated: bool
    elapsed: float
    edges: Optional[Dict[Tuple, List[Tuple[str, str, object, Tuple]]]] = None
    #: True when an ``on_config`` callback requested an early halt; the
    #: result then covers only the states visited before the stop.
    stopped: bool = False
    #: Explicit visited-state total, set whenever ``configs`` may hold
    #: fewer entries than the exploration visited: summary-only
    #: explorations (``keep_configs=False``, where ``configs`` holds
    #: only the terminal/stuck configurations a verdict needs) and
    #: every pipeline-backend result (stopped/truncated pipeline runs
    #: admit states they never materialise).
    state_total: Optional[int] = None
    #: Predecessor graph recorded when the exploration was asked to
    #: ``track_parents``: state key -> ``(parent_key, tid, component,
    #: action)`` — the edge that first discovered the state — with the
    #: initial key mapped to None.  Under BFS the first-discovery edge
    #: is a shortest edge, so
    #: :func:`repro.semantics.witness.reconstruct_witness` rebuilds
    #: shortest counterexamples from this graph without re-exploring
    #: (and without a stored configuration per state).
    parents: Optional[Dict[Tuple, Optional[Tuple]]] = None
    #: Telemetry snapshot (``repro.obs.metrics.Metrics.snapshot()``:
    #: counters/timers/gauges) when the exploration ran with a metrics
    #: sink attached; ``None`` — the default — means telemetry was off.
    #: Deliberately absent from :class:`ExploreSummary`: cached entries
    #: describe the program, not the run that produced them.
    metrics: Optional[Dict[str, Dict]] = None

    @property
    def state_count(self) -> int:
        if self.state_total is not None:
            return self.state_total
        return len(self.configs)

    def terminal_locals(self, *regs: Tuple[str, str]) -> set:
        """Distinct terminal register valuations.

        ``regs`` is a sequence of ``(tid, reg)`` pairs; the result is the
        set of value tuples those registers take in terminal states.
        """
        out = set()
        for cfg in self.terminals:
            out.add(tuple(cfg.local(t, r) for t, r in regs))
        return out


@dataclass
class ExploreSummary:
    """The cache-persistable essence of an :class:`ExploreResult`.

    Carries everything a verdict needs (state/edge counts, truncation,
    terminal configurations, a stuck witness) but not the full
    configuration map, so entries stay small on disk.
    """

    state_count: int
    edge_count: int
    truncated: bool
    terminals: List["Config"] = field(default_factory=list)
    stuck_count: int = 0
    stuck_example: Optional["Config"] = None
    elapsed: float = 0.0
    #: True when this summary was served from the persistent cache.
    cached: bool = False

    def terminal_locals(self, *regs: Tuple[str, str]) -> set:
        """Distinct terminal register valuations (as on the full result)."""
        out = set()
        for cfg in self.terminals:
            out.add(tuple(cfg.local(t, r) for t, r in regs))
        return out


def summarise(result: ExploreResult) -> ExploreSummary:
    """Condense a full exploration result into its cacheable summary."""
    return ExploreSummary(
        state_count=result.state_count,
        edge_count=result.edge_count,
        truncated=result.truncated,
        terminals=list(result.terminals),
        stuck_count=len(result.stuck),
        stuck_example=result.stuck[0] if result.stuck else None,
        elapsed=result.elapsed,
        cached=False,
    )
