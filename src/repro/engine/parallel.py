"""Sharded multiprocess exploration: the ``rounds`` backend + dispatch.

Two parallel backends share the same sharding scheme — states are
assigned to workers by a 16-byte *stable digest* of their canonical key
(:func:`repro.engine.fingerprint.stable_digest`,
``PYTHONHASHSEED``-independent, so dedup is consistent across processes
under both fork and spawn) and cross the process boundary as compact
codec blobs (:mod:`repro.memory.codec`) — but differ in who owns the
exploration state:

* ``"rounds"`` (this module) — *level-synchronous BFS*.  Each round the
  master partitions the global frontier into one shard per pool worker,
  ``pool.map`` expands the shards, and the master merges every
  discovered ``(digest, blob)`` back into the global visited set.  The
  master's serial merge is the scalability bottleneck and every blob
  round-trips master↔worker twice per state, but the rounds are BFS
  levels by construction: recorded parent edges are shortest, which is
  why :meth:`repro.engine.core.ExplorationEngine.find_witness` pins
  this backend.
* ``"pipeline"`` (:mod:`repro.engine.pipeline`) — *persistent
  shard-owned workers*.  Each worker owns its shard's visited set,
  frontier and result fragments for the whole exploration; same-shard
  successors never leave the discovering process (no codec round-trip
  at all) and cross-shard successors stream through the master — now a
  pure router/terminator — as ``(digest, blob)`` batches.  No round
  barrier: a worker expands as long as it has local work.  The default
  for ``workers > 1``.

Both backends key ``configs``/``edges``/``initial_key`` by digests —
opaque identifiers, exactly how every consumer (refinement,
Owicki–Gries, the tests) treats exploration keys — and both are
bit-identical to sequential BFS on non-truncated runs in every
representation-independent observable (``state_count``, ``edge_count``,
terminal/stuck configurations, terminal outcomes), because visited-set
exploration is order-insensitive.

``workers == 1`` never reaches this module — the engine falls back to
the in-process sequential loop, which is the deterministic reference.

Each call builds its own worker set (workers are initialised with the
program, so they are per-exploration by construction).  Under fork that
costs milliseconds; under spawn, batching many small explorations
through one parallel engine pays a per-call re-import — prefer
``workers=1`` for small state spaces and save the sharded backends for
the large ones, where they matter.

Early-stop/truncation count semantics (both backends): once ``stopped``
(an ``on_config`` callback returned truthy) or ``truncated`` (the state
cap was hit) flips, the merge bails out promptly instead of draining
the batch in hand, so ``state_count``, ``edge_count``, ``terminals``
and ``stuck`` are *lower bounds* on such runs — exactly the sequential
loop's contract.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.engine.core import _check_backend
from repro.engine.fingerprint import stable_digest
from repro.engine.result import ExploreResult
from repro.obs.metrics import Metrics, collecting as _collecting

if TYPE_CHECKING:
    from repro.lang.program import Program
    from repro.semantics.config import Config

#: Per-worker state, installed once by the pool initializer so each
#: frontier round ships only configurations, not the program.
_WORKER: dict = {}


def _init_worker(
    program: "Program",
    canonicalise: bool,
    check_invariants: bool,
    collect_edges: bool,
    reduction: str = "off",
    track_parents: bool = False,
    metrics_on: bool = False,
) -> None:
    from repro.engine.core import key_function
    from repro.semantics.reduce import get_strategy

    strat = get_strategy(reduction)
    _WORKER["program"] = program
    _WORKER["keyf"] = key_function(program, canonicalise)
    _WORKER["succf"] = strat.successors
    # Sleep-set policies ("dpor") expand through the strategy's
    # sleep_expand hook; the shard items then carry a sleep set per
    # configuration and every emitted target carries its child sleep.
    _WORKER["sleepf"] = strat.sleep_expand
    _WORKER["check_invariants"] = check_invariants
    _WORKER["collect_edges"] = collect_edges
    _WORKER["track_parents"] = track_parents
    _WORKER["metrics_on"] = metrics_on


def _expand_shard(shard: List) -> Tuple[List[Tuple], Optional[Dict]]:
    """Expand one frontier shard of pickled configurations.

    Shard items are pickled configurations — or, under a sleep-set
    policy, ``(blob, sleep frozenset)`` pairs.  Returns
    ``(rows, metrics_fragment)``.  ``rows`` holds, positionally
    aligned with ``shard``, tuples
    ``(is_terminal, edge_count, edge_labels, targets)`` where
    ``targets`` holds each distinct successor exactly once as
    ``(digest, pickled configuration)`` (placement nondeterminism
    produces many transitions into the same canonical state —
    deduplicating worker-side keeps the result pipe lean) and
    ``edge_labels`` is None unless the caller asked for the labelled
    transition graph.  Successor generation honours the worker's
    reduction policy: under ``"closure"`` the expanded edges are the
    reduction layer's macro-steps, exactly as in the sequential backend.
    Under parent tracking each target additionally carries the
    ``(tid, component, action)`` label of the transition that first
    produced it, so the master can record predecessor edges without
    unpickling anything.  Under a sleep-set policy each target
    additionally carries (last) its child sleep set — intersected over
    siblings when several transitions reach the same canonical state,
    since only what *every* arriving edge justifies is safely prunable.

    ``metrics_fragment`` is None unless the pool was initialised with
    ``metrics_on``: then a fresh per-call collector is installed around
    the expansion (capturing the reduction layer's fusion/prune counts
    and the shipped blob bytes) and its snapshot rides home with the
    rows for the master to merge.
    """
    program: "Program" = _WORKER["program"]
    keyf = _WORKER["keyf"]
    successors = _WORKER["succf"]
    sleepf = _WORKER.get("sleepf")
    check_invariants: bool = _WORKER["check_invariants"]
    collect_edges: bool = _WORKER["collect_edges"]
    track_parents: bool = _WORKER["track_parents"]
    m = Metrics() if _WORKER.get("metrics_on") else None
    out = []
    with _collecting(m):
        for item in shard:
            if sleepf is None:
                blob, pairs = item, None
            else:
                blob, sleep = item
            cfg: "Config" = pickle.loads(blob)
            if check_invariants:
                cfg.gamma.check_invariants(program.tids)
                cfg.beta.check_invariants(program.tids)
            if sleepf is None:
                succs = successors(program, cfg)
            else:
                pairs = sleepf(program, cfg, sleep)
                succs = [tr for tr, _child in pairs]
            entries: Dict[Tuple, list] = {}  # dedup before digesting
            labels = [] if collect_edges else None
            for i, tr in enumerate(succs):
                key = keyf(tr.target)
                entry = entries.get(key)
                if entry is None:
                    digest = stable_digest(key)
                    tblob = pickle.dumps(tr.target, pickle.HIGHEST_PROTOCOL)
                    if m is not None:
                        m.inc("rounds.blob_bytes", len(tblob))
                    entry = [digest, tblob]
                    if track_parents:
                        entry.append((tr.tid, tr.component, tr.action))
                    if pairs is not None:
                        entry.append(pairs[i][1])
                    entries[key] = entry
                else:
                    digest = entry[0]
                    if pairs is not None:
                        entry[-1] = entry[-1] & pairs[i][1]
                if collect_edges:
                    labels.append((tr.tid, tr.component, tr.action, digest))
            targets = [tuple(e) for e in entries.values()]
            out.append((cfg.is_terminal(), len(succs), labels, targets))
    return out, m.snapshot() if m is not None else None


def _pool_context():
    """Prefer fork (cheap, no re-import) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _shard_of(digest: bytes, workers: int) -> int:
    """Deterministic shard assignment from the key digest."""
    return int.from_bytes(digest[:8], "big") % workers


def explore_parallel(
    program: "Program",
    workers: int,
    max_states: int,
    collect_edges: bool = False,
    canonicalise: bool = True,
    check_invariants: bool = False,
    on_config: Optional[Callable[["Config"], Optional[bool]]] = None,
    reduction: str = "off",
    keep_configs: bool = True,
    track_parents: bool = False,
    backend: str = "pipeline",
    metrics: Optional[Metrics] = None,
    progress=None,
    trace=None,
    transport: Optional[str] = None,
    codec: Optional[str] = None,
) -> ExploreResult:
    """Explore ``program`` with ``workers`` processes, sharded by
    canonical-key digest — dispatching to the requested ``backend``
    (``"pipeline"`` default, ``"rounds"`` the level-synchronous BFS;
    see the module docstring for the architectural difference).

    ``reduction="closure"`` makes the workers expand the reduction
    layer's macro-steps (the master additionally ε-closes the initial
    configuration), with counts and outcomes matching the sequential
    backend under the same policy.

    ``reduction="dpor"`` is supported on the ``"rounds"`` backend only:
    per-state sleep sets ride the shard payloads out to the workers and
    the child sleep sets ride the expansion rows back, with the master
    intersecting sleeps on rediscovery and re-queueing states whose
    sleep set strictly shrank.  Terminal valuations and verdicts match
    the sequential backend; *state counts may differ slightly* between
    worker counts because sleep sets depend on discovery order.  The
    pipeline backend rejects ``"dpor"`` with a ``ValueError`` — its
    streaming shards never re-visit a state, so the sleep-shrink
    re-expansion protocol has no sound home there.

    ``keep_configs=False`` is the summary path: per-state payloads are
    dropped once expanded (the visited set needs only digests), and
    only terminal/stuck configurations — what a verdict actually
    consumes — are materialised at the end.  The result's ``configs``
    map then holds just those, with ``state_total`` carrying the true
    visited count; callers that need the full map or the transition
    graph keep the default.

    ``track_parents`` records each state's first-discovery edge as
    ``parents[digest] = (parent digest, tid, component, action)`` —
    16-byte digests plus an edge label, never configurations.  Under
    ``"rounds"`` the level-synchronous rounds are BFS by construction,
    so the recorded path is shortest in (macro-)steps; the pipeline
    backend records *a* valid discovery path (witness reconstruction
    replays either, but :meth:`~repro.engine.core.ExplorationEngine.
    find_witness` pins ``"rounds"`` for the shortest-path guarantee).
    Combined with ``keep_configs=False`` this is the memory-lean
    witness-search mode.

    One behavioural asymmetry: the pipeline backend evaluates
    ``on_config`` *worker-side* (with a stop broadcast on a truthy
    return) instead of unpickling every discovered state master-side.
    The callback therefore runs in the worker processes — mutations it
    makes do not propagate back to the caller, so stateful callbacks
    (accumulating a witness list, counting) need ``backend="rounds"``;
    pure predicates, the ``reachable``/``assert_invariant`` shape, work
    under both.  Under a spawn start method an unpicklable callback
    falls back to ``"rounds"`` transparently.

    ``transport`` selects the pipeline backend's cross-shard data plane
    (``"shm"`` rings / ``"queue"`` blobs; None auto-resolves via
    ``REPRO_TRANSPORT`` then availability) and ``codec`` its batch wire
    format (``"flat"`` / ``"pickle"``; None resolves via ``REPRO_CODEC``
    then defaults to flat) — pure performance, never results; the
    rounds backend ignores both.

    ``metrics``/``progress``/``trace`` are the observability sinks
    (:mod:`repro.obs`), all defaulting to None (off).  Workers collect
    into private registries shipped home inside their result payloads
    and merged master-side, so the counter totals match the sequential
    backend's exactly on full runs; ``trace`` gains one
    ``explore.round`` event per BFS round under this backend.
    """
    from repro.engine.core import explore_sequential, key_function

    _check_backend(backend)  # fail fast even on the sequential fallback
    if workers <= 1:
        return explore_sequential(
            program,
            max_states=max_states,
            collect_edges=collect_edges,
            canonicalise=canonicalise,
            check_invariants=check_invariants,
            on_config=on_config,
            reduction=reduction,
            track_parents=track_parents,
            metrics=metrics,
            progress=progress,
        )
    from repro.semantics.reduce import get_strategy

    strat = get_strategy(reduction)
    if strat.requires_canonical and not canonicalise:
        raise ValueError(
            f"reduction {reduction!r} is only sound under canonical state "
            "keys; canonicalise=False is not supported"
        )
    if backend == "pipeline":
        if not strat.pipeline_safe:
            # An explicit error, not a silent fallback: the caller chose
            # the backend, and the policy's constraint should be visible.
            raise ValueError(
                f"reduction {reduction!r} is not supported on the pipeline "
                "backend (cross-shard sleep-set exchange is not "
                "implemented); use backend='rounds' or workers=1"
            )
        from repro.engine.pipeline import explore_pipeline, pipeline_usable

        if pipeline_usable(on_config):
            return explore_pipeline(
                program,
                workers=workers,
                max_states=max_states,
                collect_edges=collect_edges,
                canonicalise=canonicalise,
                check_invariants=check_invariants,
                on_config=on_config,
                reduction=reduction,
                keep_configs=keep_configs,
                track_parents=track_parents,
                metrics=metrics,
                progress=progress,
                trace=trace,
                transport=transport,
                codec=codec,
            )
        # Spawn-only host and an unpicklable callback: the rounds
        # backend evaluates on_config master-side and needs neither.

    from repro.semantics.config import initial_config

    if collect_edges:
        # Edge consumers address states by digest: the full map is the
        # point of the exploration, so the summary path is off the table.
        keep_configs = True

    start = time.perf_counter()
    keyf = key_function(program, canonicalise)
    with _collecting(metrics):
        # Collected master-side so the initial configuration's ε-closure
        # fusions are counted exactly as the sequential backend counts
        # them (workers only ever close successor suffixes).
        init = initial_config(program)
        init = strat.normalise_initial(program, init)
    init_key = stable_digest(keyf(init))
    init_blob = pickle.dumps(init, pickle.HIGHEST_PROTOCOL)

    # Sleep-set bookkeeping (sleep-set policies only) — the sharded
    # mirror of the sequential loop's: ``sleep_of`` holds the current
    # sleep set per state digest (shipped to the owning worker with the
    # frontier entry), ``queued`` suppresses duplicate frontier
    # entries, ``sunk`` suppresses re-pushing successor-free states.  A
    # rediscovery whose intersection strictly shrinks the stored sleep
    # set re-pushes the state for re-expansion in a later round.
    sleep_mode = strat.sleep_expand is not None
    sleep_of: Optional[Dict[bytes, frozenset]] = (
        {init_key: frozenset()} if sleep_mode else None
    )
    queued: Optional[set] = {init_key} if sleep_mode else None
    sunk: Optional[set] = set() if sleep_mode else None

    visited = {init_key}
    parents: Optional[Dict[bytes, Optional[Tuple]]] = (
        {init_key: None} if track_parents else None
    )
    blobs: Optional[Dict[bytes, bytes]] = (
        {init_key: init_blob} if keep_configs else None
    )
    edges: Optional[Dict[bytes, List]] = {} if collect_edges else None
    terminal_keys: List[bytes] = []
    stuck_keys: List[bytes] = []
    # Summary path: remember the blobs of sink states as they are
    # discovered (their frontier entry is in hand right then), so the
    # final materialisation loop touches only terminals and stuck.
    sink_blobs: Dict[bytes, bytes] = {}
    edge_count = 0
    truncated = False
    stopped = False

    frontier: List[Tuple[bytes, bytes]] = [(init_key, init_blob)]
    if on_config is not None and on_config(init):
        frontier = []
        stopped = True

    ctx = _pool_context()
    pool = ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(
            program, canonicalise, check_invariants, collect_edges,
            reduction, track_parents, metrics is not None,
        ),
    )
    round_no = 0
    frontier_peak = len(frontier)
    shard_tally = [0] * workers
    try:
        while frontier and not stopped and not truncated:
            round_no += 1
            if len(frontier) > frontier_peak:
                frontier_peak = len(frontier)
            if trace is not None:
                trace.emit(
                    "explore.round",
                    round=round_no,
                    frontier=len(frontier),
                    states=len(visited),
                )
            shards: List[List[Tuple[bytes, bytes]]] = [
                [] for _ in range(workers)
            ]
            for digest, blob in frontier:
                shards[_shard_of(digest, workers)].append((digest, blob))
                if sleep_mode:
                    queued.discard(digest)
            occupied = [(w, s) for w, s in enumerate(shards) if s]
            if sleep_mode:
                # Ship each state's *current* sleep set (intersections
                # from earlier rounds included) alongside its blob.
                payloads = [
                    [(blob, sleep_of[d]) for d, blob in s]
                    for _, s in occupied
                ]
            else:
                payloads = [[blob for _, blob in s] for _, s in occupied]
            results = pool.map(_expand_shard, payloads)
            batches = []
            for (w, s), (rows, fragment) in zip(occupied, results):
                batches.append(rows)
                shard_tally[w] += len(s)
                if metrics is not None:
                    metrics.merge(fragment)
                    metrics.inc(f"shard.{w}.states", len(s))
            if progress is not None:
                progress.update(
                    len(visited),
                    shards=[shard_tally[w] for w in range(workers)],
                    force=True,
                )
            frontier = []
            # The merge bails out of the whole batch as soon as stopped
            # or truncated flips: admitting the rest of the round's
            # targets (and accumulating their edge counts) after an
            # early stop would inflate `visited`/`edge_count` past the
            # states the run actually covers.  Counts on such runs are
            # lower bounds — the documented truncation contract.
            for (_w, shard), batch in zip(occupied, batches):
                for (digest, blob), row in zip(shard, batch):
                    is_terminal, n_edges, labels, targets = row
                    edge_count += n_edges
                    if collect_edges:
                        edges[digest] = labels
                    if not targets:
                        if sleep_mode:
                            # A re-expanded sink must not be recounted.
                            if digest in sunk:
                                continue
                            sunk.add(digest)
                        (terminal_keys if is_terminal else stuck_keys).append(
                            digest
                        )
                        if not keep_configs:
                            sink_blobs[digest] = blob
                        continue
                    for entry in targets:
                        if sleep_mode:
                            child_sleep = entry[-1]
                            entry = entry[:-1]
                        if track_parents:
                            tdigest, tblob, label = entry
                        else:
                            tdigest, tblob = entry
                        if tdigest in visited:
                            if sleep_mode:
                                stored = sleep_of.get(tdigest, frozenset())
                                if stored:
                                    inter = stored & child_sleep
                                    if inter != stored:
                                        # This discovery path justifies
                                        # less pruning than the stored
                                        # set: shrink and re-expand.
                                        sleep_of[tdigest] = inter
                                        if (
                                            tdigest not in queued
                                            and tdigest not in sunk
                                        ):
                                            queued.add(tdigest)
                                            frontier.append((tdigest, tblob))
                            continue
                        if len(visited) >= max_states:
                            truncated = True
                            break
                        visited.add(tdigest)
                        if sleep_mode:
                            sleep_of[tdigest] = child_sleep
                            queued.add(tdigest)
                        if track_parents:
                            parents[tdigest] = (digest,) + label
                        if keep_configs:
                            blobs[tdigest] = tblob
                        frontier.append((tdigest, tblob))
                        if on_config is not None:
                            if on_config(pickle.loads(tblob)):
                                stopped = True
                                break
                    if stopped or truncated:
                        break
                if stopped or truncated:
                    break
    finally:
        pool.close()
        pool.join()

    if keep_configs:
        # Materialise the configuration map once, master-side; keep the
        # original initial object so `initial is configs[initial_key]`.
        configs: Dict[bytes, Config] = {
            digest: pickle.loads(blob) for digest, blob in blobs.items()
        }
        configs[init_key] = init
        state_total = None
    else:
        # Summary path: unpickle sinks only — no O(|states|) loop.
        configs = {
            digest: pickle.loads(blob)
            for digest, blob in sink_blobs.items()
        }
        if init_key in configs:
            configs[init_key] = init
        state_total = len(visited)

    elapsed = time.perf_counter() - start
    if metrics is not None:
        metrics.inc("explore.states", len(visited))
        metrics.inc("explore.edges", edge_count)
        metrics.add_time("explore.elapsed", elapsed)
        metrics.gauge_max("explore.frontier_peak", frontier_peak)
    if progress is not None:
        progress.finish()
    return ExploreResult(
        program=program,
        initial=init,
        initial_key=init_key,
        configs=configs,
        terminals=[configs[d] for d in terminal_keys],
        stuck=[configs[d] for d in stuck_keys],
        edge_count=edge_count,
        truncated=truncated,
        elapsed=elapsed,
        edges=edges,
        stopped=stopped,
        state_total=state_total,
        parents=parents,
        metrics=metrics.snapshot() if metrics is not None else None,
    )
