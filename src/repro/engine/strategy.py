"""Frontier strategies for the exploration engine.

A *strategy* decides which pending configuration the sequential engine
expands next.  Because exploration memoises by canonical key, the set of
reachable configurations — and hence ``state_count``, terminal outcomes
and litmus verdicts — is independent of the visit order; what changes is
how quickly a *witness* is found (``reachable``/``find_path`` style
queries) and memory locality:

* :class:`BFSFrontier` — breadth-first (FIFO); shortest counterexamples,
  the historical default.
* :class:`DFSFrontier` — depth-first (LIFO); small frontier, reaches
  terminal states early.
* :class:`SwarmFrontier` — seeded random pops; the classic swarm
  verification trick for falling into bugs that both systematic orders
  postpone.  Deterministic for a fixed seed.

Strategies are *specs*, not shared state: each exploration builds a
fresh frontier via :func:`make_frontier`, so one engine object can be
reused across programs.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # annotation-only import; this module stays a leaf.
    from repro.semantics.config import Config

#: Frontier entries are ``(canonical_key, configuration)`` pairs.
Entry = Tuple[tuple, "Config"]


class Frontier(ABC):
    """The pending-configuration container driving one exploration."""

    name: str = "frontier"

    @abstractmethod
    def push(self, key: tuple, cfg: Config) -> None:
        """Add a newly discovered configuration."""

    @abstractmethod
    def pop(self) -> Entry:
        """Remove and return the next configuration to expand."""

    @abstractmethod
    def __len__(self) -> int: ...

    def __bool__(self) -> bool:
        return len(self) > 0


class BFSFrontier(Frontier):
    """First-in first-out: classic breadth-first search."""

    name = "bfs"

    def __init__(self) -> None:
        self._q: deque = deque()

    def push(self, key: tuple, cfg: Config) -> None:
        self._q.append((key, cfg))

    def pop(self) -> Entry:
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)


class DFSFrontier(Frontier):
    """Last-in first-out: depth-first search."""

    name = "dfs"

    def __init__(self) -> None:
        self._s: list = []

    def push(self, key: tuple, cfg: Config) -> None:
        self._s.append((key, cfg))

    def pop(self) -> Entry:
        return self._s.pop()

    def __len__(self) -> int:
        return len(self._s)


class SwarmFrontier(Frontier):
    """Random pops with a fixed seed (swarm exploration order)."""

    name = "swarm"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._s: list = []

    def push(self, key: tuple, cfg: Config) -> None:
        self._s.append((key, cfg))

    def pop(self) -> Entry:
        i = self._rng.randrange(len(self._s))
        self._s[i], self._s[-1] = self._s[-1], self._s[i]
        return self._s.pop()

    def __len__(self) -> int:
        return len(self._s)


def make_frontier(spec) -> Frontier:
    """Build a fresh frontier from a strategy spec.

    ``spec`` may be a name (``"bfs"``, ``"dfs"``, ``"swarm"`` or
    ``"swarm:<seed>"``), a :class:`Frontier` subclass / zero-argument
    factory, or an existing (empty) :class:`Frontier` instance.
    """
    if isinstance(spec, Frontier):
        if len(spec):
            raise ValueError("frontier instances cannot be reused mid-run")
        return spec
    if isinstance(spec, type) and issubclass(spec, Frontier):
        return spec()
    if callable(spec):
        frontier = spec()
        if not isinstance(frontier, Frontier):
            raise TypeError(f"strategy factory returned {type(frontier)!r}")
        return frontier
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        if name == "bfs":
            return BFSFrontier()
        if name == "dfs":
            return DFSFrontier()
        if name == "swarm":
            return SwarmFrontier(seed=int(arg) if arg else 0)
    raise ValueError(f"unknown exploration strategy: {spec!r}")
