"""Persistent exploration-result cache.

The litmus battery, the figure checks, the benchmarks and the test-suite
all re-explore *identical* programs dozens of times per session.  This
cache stores :class:`~repro.engine.result.ExploreSummary` pickles on
disk keyed by stable program fingerprint
(:mod:`repro.engine.fingerprint`), so a warm run answers from disk with
zero re-explorations.

Layout: one file per entry, ``<root>/<key[:2]>/<key>.pkl``, written via
a temp file + ``os.replace`` so concurrent writers (the batch runner's
worker processes) can never expose a torn entry.  Unreadable or corrupt
entries are treated as misses and deleted.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-engine``;
set ``REPRO_CACHE=0`` to disable caching in the CLI entry points.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.engine.result import ExploreSummary

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable disabling the CLI's default cache ("0"/"off").
CACHE_TOGGLE_ENV = "REPRO_CACHE"


def default_cache_root() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-engine"


def cache_enabled_by_env() -> bool:
    return os.environ.get(CACHE_TOGGLE_ENV, "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


class ResultCache:
    """A directory of pickled exploration summaries."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- access --------------------------------------------------------------
    def get(self, key: str) -> Optional[ExploreSummary]:
        """The cached summary for ``key``, or None (counted as a miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                summary = pickle.load(fh)
            if not isinstance(summary, ExploreSummary):
                raise TypeError(f"cache entry is {type(summary)!r}")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt, truncated or stale-format entry: drop and miss.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        summary.cached = True
        return summary

    def put(self, key: str, summary: ExploreSummary) -> None:
        """Persist ``summary`` under ``key`` (atomic within the cache dir)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(summary, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ---------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        """Structured session counters plus the on-disk entry count —
        the shape the CLI prints and batch JSON reports embed.  Note
        ``hits``/``misses`` count this process's ``get`` calls while
        ``entries`` inspects the (shared, persistent) directory."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
        }

    def describe(self) -> str:
        """The one-line human form of :meth:`stats`."""
        s = self.stats()
        return (
            f"{s['hits']} hits, {s['misses']} misses, "
            f"{s['entries']} entries"
        )
