"""The exploration engine: strategy-driven enumeration behind one API.

This is the subsystem the rest of the framework routes through.  The
sequential loop generalises the original BFS in
:mod:`repro.semantics.explore` (which is now a thin wrapper) with

* pluggable frontier strategies (:mod:`repro.engine.strategy`);
* an early-stop protocol — ``on_config`` may return ``True`` to halt
  exploration as soon as a witness is found;
* prompt truncation — once ``max_states`` is hit the loop bails out
  instead of draining the queue, so the cap also bounds wall-clock time
  (``edge_count``/``terminals`` are lower bounds when ``truncated``).

:class:`ExplorationEngine` bundles a strategy, a worker count and an
optional persistent result cache:

* ``engine.explore(program)`` — full :class:`ExploreResult`, computed
  in-process (``workers == 1``) or by the sharded multiprocess explorer
  (:mod:`repro.engine.parallel`);
* ``engine.run(program)`` — cache-aware :class:`ExploreSummary`: on a
  warm cache a repeated verification performs zero re-explorations.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.engine.result import ExploreResult, ExploreSummary, summarise
from repro.engine.strategy import make_frontier
from repro.obs.metrics import Metrics, collecting as _collecting

if TYPE_CHECKING:
    from repro.lang.program import Program
    from repro.semantics.config import Config

# NOTE: the semantics modules are imported inside the functions below
# (once per exploration, a sys.modules lookup thereafter).  The engine
# package must stay import-time independent of repro.semantics because
# repro.semantics.explore imports this module: a module-level import in
# either direction deadlocks the package initialisation order.

#: Default safety cap on explored configurations.
DEFAULT_MAX_STATES = 500_000

#: Process-wide profiler backing ``REPRO_PROFILE`` (lazily created by
#: :func:`explore_sequential` so stats accumulate across explorations).
_PROFILER = None


def __getattr__(name: str):
    # ``REDUCTIONS`` lives in the policy registry
    # (repro.semantics.reduce), which cannot be imported at module
    # level — see the NOTE above.  PEP 562 keeps the historical
    # ``repro.engine.core.REDUCTIONS`` surface without restating the
    # policy list here.
    if name == "REDUCTIONS":
        from repro.semantics.reduce import REDUCTIONS

        return REDUCTIONS
    # ``CODECS`` likewise lives with the wire formats themselves
    # (repro.memory.flatcodec) — one registry, surfaced here for the
    # engine-facing consumers (CLI choices, option validation).
    if name == "CODECS":
        from repro.memory.flatcodec import CODECS

        return CODECS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Recognised sharded-backend names (defined here — the import-time
#: root of the engine package — and used by the parallel module's
#: dispatch): "pipeline" — persistent shard-owned workers with a
#: streaming frontier (the default for workers > 1); "rounds" —
#: level-synchronous BFS, whose recorded parent edges are shortest
#: (pinned by find_witness).
BACKENDS = ("pipeline", "rounds")


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; "
            f"expected one of {', '.join(BACKENDS)}"
        )
    return backend


#: Recognised pipeline-backend transports: "shm" — per-worker-pair
#: shared-memory SPSC rings, batches encoded straight into the owner's
#: mapped ring memory (zero intermediate copies; the default where
#: SharedMemory works); "queue" — master-routed multiprocessing.Queue
#: blobs (the portable fallback).  Result-identical by construction;
#: see repro.engine.pipeline.resolve_transport for the resolution
#: order (argument → REPRO_TRANSPORT → availability).
TRANSPORTS = ("shm", "queue")


def _check_transport(transport: str) -> str:
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown pipeline transport {transport!r}; "
            f"expected one of {', '.join(TRANSPORTS)}"
        )
    return transport


def _check_codec(codec: str) -> str:
    """Validate a batch-codec spec against the codec registry
    (:data:`repro.memory.flatcodec.CODECS` — "flat", the struct-packed
    v2 wire format, or "pickle", the v1 ``__reduce__`` format kept as
    measured fallback and parity reference)."""
    from repro.memory.flatcodec import CODECS

    if codec not in CODECS:
        raise ValueError(
            f"unknown batch codec {codec!r}; "
            f"expected one of {', '.join(CODECS)}"
        )
    return codec


def _check_analysis(policy: str) -> str:
    # Lazy for symmetry with the reduction registry (and to keep the
    # engine package import-light).
    from repro.analysis import validate_analysis

    return validate_analysis(policy)


def _check_reduction(reduction: str) -> str:
    """Validate a policy spec via the registry's own validator, so the
    accepted set cannot drift from the semantics side (the error
    message lists the registered policies)."""
    from repro.semantics.reduce import validate_reduction

    return validate_reduction(reduction)


def successor_function(reduction: str):
    """The successor generator used by every engine backend — the
    registered strategy's macro-step relation
    (:data:`repro.semantics.reduce.ReductionStrategy.successors`)."""
    from repro.semantics.reduce import get_strategy

    return get_strategy(reduction).successors


def key_function(
    program: "Program", canonicalise: bool
) -> Callable[["Config"], Tuple]:
    """The state-identification function used by every engine backend."""
    if canonicalise:
        from repro.semantics.canon import canonical_key

        return lambda cfg: canonical_key(program, cfg)
    return _raw_key


def explore_sequential(
    program: "Program",
    max_states: int = DEFAULT_MAX_STATES,
    collect_edges: bool = False,
    canonicalise: bool = True,
    check_invariants: bool = False,
    on_config: Optional[Callable[["Config"], Optional[bool]]] = None,
    strategy="bfs",
    reduction: str = "off",
    track_parents: bool = False,
    metrics: Optional[Metrics] = None,
    progress=None,
) -> ExploreResult:
    """See :func:`_explore_sequential`.  This wrapper adds the optional
    profiling hook: when ``REPRO_PROFILE=FILE`` is set (or ``--profile``
    on the CLI, which sets it), the exploration runs under
    :mod:`cProfile` and the stats are dumped to ``FILE`` — the
    sequential counterpart of the pipeline backend's per-worker
    ``FILE.w<wid>`` dumps.  One process-wide profiler accumulates
    across explorations, so after a battery (e.g. ``litmus``) ``FILE``
    covers every exploration of the run, not just the last."""
    import os

    profile_to = os.environ.get("REPRO_PROFILE")
    if profile_to:
        global _PROFILER
        if _PROFILER is None:
            import cProfile

            _PROFILER = cProfile.Profile()
        try:
            return _PROFILER.runcall(
                _explore_sequential, program, max_states, collect_edges,
                canonicalise, check_invariants, on_config, strategy,
                reduction, track_parents, metrics, progress,
            )
        finally:
            _PROFILER.dump_stats(profile_to)
    return _explore_sequential(
        program, max_states, collect_edges, canonicalise, check_invariants,
        on_config, strategy, reduction, track_parents, metrics, progress,
    )


def _explore_sequential(
    program: "Program",
    max_states: int = DEFAULT_MAX_STATES,
    collect_edges: bool = False,
    canonicalise: bool = True,
    check_invariants: bool = False,
    on_config: Optional[Callable[["Config"], Optional[bool]]] = None,
    strategy="bfs",
    reduction: str = "off",
    track_parents: bool = False,
    metrics: Optional[Metrics] = None,
    progress=None,
) -> ExploreResult:
    """Enumerate the reachable configurations of ``program`` in-process.

    ``on_config`` is invoked on every configuration as it is expanded
    (the initial one included); returning a truthy value halts the
    exploration immediately and marks the result ``stopped``.

    ``reduction="closure"`` explores the ε-closed macro-step system
    (:mod:`repro.semantics.reduce`): terminal outcomes, stuck-ness and
    register-level verdicts are preserved, but intermediate silent
    configurations are fused away — they are not stored, counted, or
    passed to ``on_config``/``check_invariants`` — and edges are
    macro-edges labelled with their visible action.
    ``reduction="dpor"`` additionally prunes interleavings of
    independent visible steps (:mod:`repro.semantics.dpor`): sleep sets
    ride the frontier entries, states may be re-expanded when a
    rediscovery shrinks their sleep set, and terminal/stuck outcomes
    (not intermediate state counts) are what is preserved.

    ``track_parents`` records each state's first-discovery edge
    (parent key + ``(tid, component, action)`` label, no extra
    configurations) in ``result.parents`` so a witness can be
    reconstructed from the explored graph afterwards; under the default
    BFS frontier the recorded path is shortest (DFS/swarm record *a*
    discovery path, not a shortest one).

    ``metrics`` (a :class:`repro.obs.metrics.Metrics`) collects the
    engine counter schema — states, edges, frontier peak, elapsed, and
    (installed as the active collector for the duration) the reduction
    layer's fusion/prune counts — and its snapshot lands on
    ``result.metrics``.  ``progress`` (a
    :class:`repro.obs.progress.Progress`) receives rate-limited
    ``update`` calls while the loop runs.  Both default to ``None``,
    which keeps the hot loop's telemetry cost to one boolean test per
    expanded configuration.
    """
    from repro.semantics.config import initial_config
    from repro.semantics.reduce import get_strategy

    strat = get_strategy(reduction)
    if strat.requires_canonical and not canonicalise:
        raise ValueError(
            f"reduction {reduction!r} is only sound under canonical state "
            "keys; canonicalise=False is not supported"
        )
    successors = strat.successors
    sleep_expand = strat.sleep_expand
    start = time.perf_counter()
    with _collecting(metrics):
        init = initial_config(program)
        init = strat.normalise_initial(program, init)
        keyf = key_function(program, canonicalise)

        init_key = keyf(init)
        configs: Dict[Tuple, Config] = {init_key: init}
        parents: Optional[Dict[Tuple, Optional[Tuple]]] = (
            {init_key: None} if track_parents else None
        )
        edges: Optional[Dict[Tuple, List]] = {} if collect_edges else None
        terminals: List[Config] = []
        stuck: List[Config] = []
        edge_count = 0
        truncated = False
        stopped = False
        # One boolean gates all per-iteration telemetry: with no sinks
        # installed the loop pays a single test per expanded state.
        instrumented = metrics is not None or progress is not None
        frontier_peak = 0

        # Sleep-set bookkeeping (only when the strategy threads sleep
        # sets, e.g. "dpor").  ``sleep_of`` holds the current sleep set
        # per state key; a rediscovery with a smaller intersection
        # re-pushes the state for re-expansion (sets shrink strictly,
        # so the loop terminates).  ``queued`` suppresses duplicate
        # frontier entries; ``sunk`` suppresses re-pushing (and
        # double-counting) successor-free states, which are sinks under
        # any sleep set.
        _EMPTY_SLEEP: frozenset = frozenset()
        sleep_of: Dict[Tuple, frozenset] = {}
        queued: set = set()
        sunk: set = set()

        frontier = make_frontier(strategy)
        frontier.push(init_key, init)
        while frontier:
            key, cfg = frontier.pop()
            if instrumented:
                depth = len(frontier)
                if depth > frontier_peak:
                    frontier_peak = depth
                if progress is not None:
                    progress.update(len(configs))
            if check_invariants:
                cfg.gamma.check_invariants(program.tids)
                cfg.beta.check_invariants(program.tids)
            if on_config is not None and on_config(cfg):
                stopped = True
                break
            if sleep_expand is None:
                succs = successors(program, cfg)
                child_sleeps = None
            else:
                queued.discard(key)
                expansion = sleep_expand(
                    program, cfg, sleep_of.get(key, _EMPTY_SLEEP)
                )
                succs = [tr for tr, _child in expansion]
                child_sleeps = [child for _tr, child in expansion]
            if collect_edges:
                edges[key] = []
            if not succs:
                if sleep_expand is not None:
                    if key in sunk:
                        continue
                    sunk.add(key)
                if cfg.is_terminal():
                    terminals.append(cfg)
                else:
                    stuck.append(cfg)
                continue
            for i, tr in enumerate(succs):
                edge_count += 1
                tkey = keyf(tr.target)
                if collect_edges:
                    edges[key].append((tr.tid, tr.component, tr.action, tkey))
                if tkey not in configs:
                    if len(configs) >= max_states:
                        truncated = True
                        continue
                    configs[tkey] = tr.target
                    if child_sleeps is not None:
                        sleep_of[tkey] = child_sleeps[i]
                        queued.add(tkey)
                    if track_parents:
                        parents[tkey] = (key, tr.tid, tr.component, tr.action)
                    frontier.push(tkey, tr.target)
                elif child_sleeps is not None:
                    # Rediscovery: the state is only safely prunable by
                    # what *every* discovery path has already covered —
                    # intersect, and re-expand if that strictly shrank
                    # the stored sleep set.
                    stored = sleep_of.get(tkey, _EMPTY_SLEEP)
                    if stored:
                        inter = stored & child_sleeps[i]
                        if inter != stored:
                            sleep_of[tkey] = inter
                            if tkey not in queued and tkey not in sunk:
                                queued.add(tkey)
                                frontier.push(tkey, configs[tkey])
            if truncated:
                # Bail out promptly: the cap bounds work done, not just
                # states recorded.  Counts are lower bounds from here on.
                break

    elapsed = time.perf_counter() - start
    if metrics is not None:
        metrics.inc("explore.states", len(configs))
        metrics.inc("explore.edges", edge_count)
        metrics.add_time("explore.elapsed", elapsed)
        metrics.gauge_max("explore.frontier_peak", frontier_peak)
    if progress is not None:
        progress.finish()
    return ExploreResult(
        program=program,
        initial=init,
        initial_key=init_key,
        configs=configs,
        terminals=terminals,
        stuck=stuck,
        edge_count=edge_count,
        truncated=truncated,
        elapsed=elapsed,
        edges=edges,
        stopped=stopped,
        parents=parents,
        metrics=metrics.snapshot() if metrics is not None else None,
    )


def _raw_key(cfg: Config) -> Tuple:
    """Structural identity without timestamp normalisation (ablation)."""
    return (
        tuple(sorted(cfg.cmds.items(), key=lambda kv: kv[0])),
        tuple(sorted((t, ls.items_sorted()) for t, ls in cfg.locals.items())),
        _raw_state(cfg.gamma),
        _raw_state(cfg.beta),
    )


def _raw_state(state) -> Tuple:
    return (
        state.ops,
        tuple(sorted(state.tview.items(), key=lambda kv: repr(kv[0]))),
        tuple(sorted(state.mview.items(), key=lambda kv: repr(kv[0]))),
        state.cvd,
    )


class ExplorationEngine:
    """A configured exploration backend: strategy × workers × cache.

    Parameters
    ----------
    strategy:
        Frontier policy for sequential exploration — ``"bfs"`` (default),
        ``"dfs"``, ``"swarm[:seed]"`` or anything
        :func:`repro.engine.strategy.make_frontier` accepts.  The
        multiprocess backend is inherently level-synchronous BFS, so
        ``workers > 1`` requires the default strategy.
    workers:
        Number of worker processes; ``1`` (default) explores in-process
        — the deterministic fallback.
    cache:
        Optional :class:`repro.engine.cache.ResultCache`; when set,
        :meth:`run` serves repeated explorations from disk.
    max_states:
        Default safety cap, overridable per call.
    reduction:
        State-space reduction policy, one of
        :data:`repro.semantics.reduce.REDUCTIONS` — ``"off"`` (default,
        the historical semantics), ``"closure"`` (ε-closure +
        covering-read prune, :mod:`repro.semantics.reduce`) or
        ``"dpor"`` (sleep-set + persistent-set partial-order reduction
        on top of the closure, :mod:`repro.semantics.dpor`; sequential
        and ``"rounds"`` only, and requires canonical keys) — applied
        by every backend and overridable per call.  The policy's
        fingerprint token is part of the persistent-cache key:
        explorations under different policies are cached separately
        because they store different configuration sets.
    backend:
        Sharded backend for ``workers > 1`` — ``"pipeline"`` (default:
        persistent shard-owned workers, streaming frontier,
        :mod:`repro.engine.pipeline`) or ``"rounds"``
        (level-synchronous BFS, :mod:`repro.engine.parallel`),
        overridable per call.  Non-truncated results are bit-identical
        across backends (and sequential), so the choice is pure
        performance — except that only ``"rounds"`` guarantees
        shortest recorded parent edges, which is why
        :meth:`find_witness` pins it.  Ignored when ``workers == 1``.
    transport:
        Cross-shard data plane for the pipeline backend —
        ``"shm"`` (shared-memory rings) or ``"queue"`` (master-routed
        blobs), or ``None`` (default) to auto-resolve
        (``REPRO_TRANSPORT``, then ``"shm"`` where ``SharedMemory``
        works).  Result-identical either way; overridable per call.
        Ignored by ``"rounds"`` and when ``workers == 1``.
    codec:
        Batch wire format for the pipeline backend's cross-shard
        traffic — ``"flat"`` (the pickle-free struct-packed v2 format,
        :mod:`repro.memory.flatcodec`) or ``"pickle"`` (the v1
        ``__reduce__`` format), or ``None`` (default) to resolve via
        ``REPRO_CODEC`` then the ``"flat"`` default.  Value-identical
        decoded batches either way; overridable per call.  Ignored by
        ``"rounds"`` and when ``workers == 1``.
    metrics:
        Optional :class:`repro.obs.metrics.Metrics` sink.  When set (or
        when ``trace`` is), every exploration collects the engine
        counter schema into a fresh per-run registry — merged across
        worker fragments by the sharded backends — whose snapshot lands
        on ``ExploreResult.metrics``; the per-run registry is then
        folded into this engine-level sink, which accumulates across
        explorations (plus the ``cache.hits``/``cache.misses`` outcomes
        of :meth:`run`).  ``None`` (default) keeps telemetry off the
        hot paths entirely.
    trace:
        Optional :class:`repro.obs.trace.TraceWriter`.  When set, the
        engine emits ``explore.start``/``explore.finish`` span events,
        a ``metrics.sample`` per exploration and ``explore.cached`` for
        cache-served :meth:`run` calls (backends add their own
        ``explore.round``/``explore.drain`` events).
    progress:
        Optional :class:`repro.obs.progress.Progress` heartbeat,
        updated while explorations run and erased when they finish.
    analysis:
        Static-analysis policy applied to every program before it is
        explored, one of :data:`repro.analysis.ANALYSIS_POLICIES` —
        ``"off"`` (default: skip the passes entirely), ``"warn"`` (log
        findings on the ``repro.analysis`` logger and count them in the
        run metrics) or ``"strict"`` (additionally refuse to explore a
        program with error-severity findings, raising
        :class:`~repro.util.errors.VerificationError`).  Overridable
        per :meth:`explore` call; when a trace writer is attached an
        ``analysis.report`` event is emitted per analysed program.
    """

    def __init__(
        self,
        strategy="bfs",
        workers: int = 1,
        cache=None,
        max_states: int = DEFAULT_MAX_STATES,
        reduction: str = "off",
        backend: str = "pipeline",
        metrics: Optional[Metrics] = None,
        trace=None,
        progress=None,
        transport: Optional[str] = None,
        codec: Optional[str] = None,
        analysis: str = "off",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and strategy != "bfs":
            raise ValueError(
                "the sharded parallel explorers enumerate shard-complete "
                f"visited sets (BFS-equivalent); strategy {strategy!r} "
                "requires workers=1"
            )
        make_frontier(strategy)  # fail fast on a bad spec
        self.strategy = strategy
        self.workers = workers
        self.cache = cache
        self.max_states = max_states
        self.reduction = _check_reduction(reduction)
        self.analysis = _check_analysis(analysis)
        self.backend = _check_backend(backend)
        self.transport = (
            None if transport is None else _check_transport(transport)
        )
        self.codec = None if codec is None else _check_codec(codec)
        self.metrics = metrics
        self.trace = trace
        self.progress = progress
        #: Number of live (non-cached) explorations this engine ran.
        self.explorations = 0

    def __repr__(self) -> str:
        backend = f", backend={self.backend!r}" if self.workers > 1 else ""
        return (
            f"ExplorationEngine(strategy={self.strategy!r}, "
            f"workers={self.workers}, cache={'on' if self.cache else 'off'}, "
            f"reduction={self.reduction!r}{backend})"
        )

    # -- full exploration ---------------------------------------------------
    def explore(
        self,
        program: Program,
        max_states: Optional[int] = None,
        collect_edges: bool = False,
        canonicalise: bool = True,
        check_invariants: bool = False,
        on_config: Optional[Callable[[Config], Optional[bool]]] = None,
        reduction: Optional[str] = None,
        keep_configs: bool = True,
        track_parents: bool = False,
        backend: Optional[str] = None,
        transport: Optional[str] = None,
        codec: Optional[str] = None,
        analysis: Optional[str] = None,
    ) -> ExploreResult:
        """Run one exploration, honouring this engine's configuration.

        ``reduction`` overrides the engine's policy for this call —
        checkers that consume the un-fused transition graph (refinement,
        Owicki–Gries) pass ``reduction="off"`` explicitly.
        ``analysis`` likewise overrides the engine's static-analysis
        policy for this call.
        ``keep_configs=False`` lets the sharded backends drop per-state
        payloads once expanded (summary-only consumers); the sequential
        backend keys its visited set by configuration and ignores it.
        ``track_parents`` records each state's first-discovery edge in
        ``result.parents`` (see :meth:`find_witness`).  ``backend``
        overrides the engine's sharded backend for this call (used by
        :meth:`find_witness`, which needs the rounds backend's
        shortest-parent guarantee); note that the pipeline backend
        evaluates ``on_config`` worker-side — pure predicates only.
        ``transport`` overrides the engine's pipeline transport for
        this call (``"shm"``/``"queue"``; None auto-resolves), and
        ``codec`` the batch wire format (``"flat"``/``"pickle"``; None
        resolves via ``REPRO_CODEC`` then defaults to ``"flat"``).
        """
        self.explorations += 1
        cap = self.max_states if max_states is None else max_states
        mode = (
            self.reduction if reduction is None else _check_reduction(reduction)
        )
        # Validated even when workers == 1 ignores it: a bad spec is a
        # usage error, not a silent no-op.
        chosen_backend = (
            self.backend if backend is None else _check_backend(backend)
        )
        chosen_transport = (
            self.transport if transport is None else _check_transport(transport)
        )
        chosen_codec = self.codec if codec is None else _check_codec(codec)
        # A fresh per-run registry whenever any sink wants data; the
        # engine-level sink accumulates across explorations while
        # result.metrics stays per-run.
        run_metrics = (
            Metrics()
            if (self.metrics is not None or self.trace is not None)
            else None
        )
        policy = (
            self.analysis if analysis is None else _check_analysis(analysis)
        )
        if policy != "off":
            try:
                self._run_analysis(program, policy, run_metrics)
            except Exception:
                # A strict refusal still leaves its counters behind.
                if self.metrics is not None and run_metrics is not None:
                    self.metrics.merge(run_metrics)
                raise
        if self.trace is not None:
            self.trace.emit(
                "explore.start",
                backend="sequential" if self.workers == 1 else chosen_backend,
                workers=self.workers,
                reduction=mode,
                max_states=cap,
            )
        if self.workers > 1:
            from repro.engine.parallel import explore_parallel

            result = explore_parallel(
                program,
                workers=self.workers,
                max_states=cap,
                collect_edges=collect_edges,
                canonicalise=canonicalise,
                check_invariants=check_invariants,
                on_config=on_config,
                reduction=mode,
                keep_configs=keep_configs,
                track_parents=track_parents,
                backend=chosen_backend,
                transport=chosen_transport,
                codec=chosen_codec,
                metrics=run_metrics,
                progress=self.progress,
                trace=self.trace,
            )
        else:
            result = explore_sequential(
                program,
                max_states=cap,
                collect_edges=collect_edges,
                canonicalise=canonicalise,
                check_invariants=check_invariants,
                on_config=on_config,
                strategy=self.strategy,
                reduction=mode,
                track_parents=track_parents,
                metrics=run_metrics,
                progress=self.progress,
            )
        if self.trace is not None:
            rate = (
                run_metrics.states_per_sec() if run_metrics is not None else 0.0
            )
            self.trace.emit(
                "explore.finish",
                states=result.state_count,
                edges=result.edge_count,
                elapsed=result.elapsed,
                truncated=result.truncated,
                stopped=result.stopped,
                states_per_sec=rate,
            )
            if run_metrics is not None:
                self.trace.emit("metrics.sample", metrics=run_metrics.snapshot())
        if self.metrics is not None and run_metrics is not None:
            self.metrics.merge(run_metrics)
        return result

    # -- static analysis ----------------------------------------------------
    def _run_analysis(
        self, program: Program, policy: str, run_metrics: Optional[Metrics]
    ):
        """Run the static passes under ``policy`` (``"warn"`` or
        ``"strict"``); returns the report, raising under ``"strict"``
        when it contains error-severity findings."""
        import logging

        from repro.analysis import analyse_program

        report = analyse_program(program)
        errors, warnings = report.errors, report.warnings
        if run_metrics is not None:
            run_metrics.inc("analysis.runs")
            if errors:
                run_metrics.inc("analysis.errors", len(errors))
            if warnings:
                run_metrics.inc("analysis.warnings", len(warnings))
        if self.trace is not None:
            self.trace.emit(
                "analysis.report",
                policy=policy,
                errors=len(errors),
                warnings=len(warnings),
            )
        if report.diagnostics:
            logger = logging.getLogger("repro.analysis")
            for diag in report.diagnostics:
                level = (
                    logging.ERROR
                    if diag.severity == "error"
                    else logging.WARNING
                )
                logger.log(level, "%s", diag.format())
        if policy == "strict" and errors:
            from repro.util.errors import VerificationError

            raise VerificationError(
                "static analysis found "
                f"{len(errors)} error(s) under analysis='strict':\n"
                + "\n".join(d.format() for d in errors)
            )
        return report

    # -- counterexample witnesses -------------------------------------------
    def _witness_key_of(self, program: Program) -> Callable[["Config"], object]:
        """The state-identity function this engine's backend uses —
        canonical keys in-process, stable digests of them sharded."""
        from repro.semantics.canon import canonical_key

        if self.workers > 1:
            from repro.engine.fingerprint import stable_digest

            return lambda cfg: stable_digest(canonical_key(program, cfg))
        return lambda cfg: canonical_key(program, cfg)

    def find_witness(
        self,
        program: Program,
        predicate: Callable[["Config"], bool],
        max_states: Optional[int] = None,
        reduction: Optional[str] = None,
        terminal_only: bool = False,
    ):
        """A concrete execution to a configuration satisfying
        ``predicate``, found by *this* engine's backend, or ``None``
        when an exhaustive search proves none exists.

        One engine exploration runs with predecessor tracking — per
        state a parent key plus the ``(tid, component, action)`` edge
        label, no stored configurations — and stops at the first hit;
        the witness is then reconstructed from the recorded graph
        (:func:`repro.semantics.witness.reconstruct_witness`) instead
        of re-exploring.  Under the default BFS strategy the witness is
        shortest; DFS/swarm engines return a valid but not necessarily
        minimal execution.  Sharded searches always run on the
        ``"rounds"`` backend regardless of the engine's configured
        backend: its level-synchronous rounds are BFS levels, so the
        recorded parent edges are shortest, and its master-side
        ``on_config`` lets the probe accumulate the hit configuration
        (the pipeline backend evaluates callbacks worker-side, where
        mutations don't propagate).

        ``reduction="closure"`` searches the ε-closed macro-step system
        — typically several times fewer states — and the predicate is
        then evaluated on closed configurations only (sound for
        terminal-state and visible-boundary properties, see
        :func:`repro.semantics.explore.reachable`).  The returned
        witness is nevertheless *step-exact*: every macro-edge is
        re-expanded into its concrete schedule, and every step replays
        through the raw unreduced ``successors`` relation.

        ``terminal_only`` restricts hits to terminal configurations
        (the usual shape for weak-behaviour witnesses).  Raises
        :class:`VerificationError` when the search was truncated by
        ``max_states`` without a hit — inconclusive, not unreachable.
        """
        from repro.semantics.witness import reconstruct_witness

        mode = (
            self.reduction if reduction is None else _check_reduction(reduction)
        )
        hits: list = []

        def probe(cfg: "Config") -> bool:
            if (not terminal_only or cfg.is_terminal()) and predicate(cfg):
                hits.append(cfg)
                return True
            return False

        result = self.explore(
            program,
            max_states=max_states,
            on_config=probe,
            reduction=mode,
            keep_configs=False,
            track_parents=True,
            backend="rounds",
        )
        if hits:
            key_of = self._witness_key_of(program)
            return reconstruct_witness(
                program,
                result.parents,
                key_of(hits[0]),
                key_of,
                reduction=mode,
            )
        if result.truncated:
            from repro.util.errors import VerificationError

            raise VerificationError(
                f"no witness within the first {result.state_count} states "
                "and the search was truncated, inconclusive — raise "
                "max_states"
            )
        return None

    # -- cache-aware verification -------------------------------------------
    def run(
        self,
        program: Program,
        max_states: Optional[int] = None,
        canonicalise: bool = True,
    ) -> ExploreSummary:
        """Explore (or recall) ``program`` and return the result summary.

        With a cache configured, a warm entry is returned directly —
        zero re-exploration; otherwise the program is explored and the
        summary persisted under its stable fingerprint (which includes
        the engine's reduction policy — state counts differ across
        policies, so their summaries never alias).
        """
        cap = self.max_states if max_states is None else max_states
        key = None
        if self.cache is not None:
            from repro.engine.fingerprint import cache_key

            key = cache_key(
                program,
                max_states=cap,
                canonicalise=canonicalise,
                reduction=self.reduction,
            )
            hit = self.cache.get(key)
            # Truncated summaries depend on visit order (strategy and
            # worker count, which the key deliberately omits because
            # complete results don't) — never serve or store them.
            if hit is not None and not hit.truncated:
                if self.metrics is not None:
                    self.metrics.inc("cache.hits")
                if self.trace is not None:
                    self.trace.emit("explore.cached", key=str(key))
                return hit
            if self.metrics is not None:
                self.metrics.inc("cache.misses")
        summary = summarise(
            self.explore(
                program,
                max_states=cap,
                canonicalise=canonicalise,
                keep_configs=False,
            )
        )
        if self.cache is not None and not summary.truncated:
            self.cache.put(key, summary)
        return summary
