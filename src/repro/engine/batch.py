"""Batch job runner: named verification jobs, run concurrently.

A *job* is a self-contained verification workload — the litmus battery,
the paper-figure checks, or one lock-refinement proof — returning a
JSON-safe verdict.  :func:`run_batch` executes a list of jobs, spreading
them across worker processes when ``workers > 1`` (each job is
single-process internally, so job-level parallelism composes with the
engine's own sharded explorer only when requested separately), and
emits a machine-readable report.  ``use_cache`` governs the litmus
battery, the one workload whose verdicts are summary-shaped and hence
cacheable; the figure and refinement jobs need full transition graphs
and always explore live.  Usage::

    python -m repro batch --workers 2 --json report.json

Job functions import their subject modules lazily so this module stays
importable from ``repro.engine`` without dragging in the whole
framework at startup.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import Metrics


def _job_litmus(use_cache: bool, reduction: str = "closure") -> Dict:
    from repro.analysis import analyse_program
    from repro.engine import default_engine
    from repro.engine.core import ExplorationEngine
    from repro.litmus.catalog import (
        LITMUS_TESTS,
        reduction_baseline,
        run_litmus,
    )

    # Honour the environment-configured engine (REPRO_WORKERS /
    # REPRO_STRATEGY / REPRO_BACKEND / REPRO_TRANSPORT / cache
    # settings) with the batch-level reduction policy layered on top.
    base = default_engine()
    metrics = Metrics()
    engine = ExplorationEngine(
        strategy=base.strategy,
        workers=base.workers,
        cache=base.cache if use_cache else None,
        reduction=reduction,
        backend=base.backend,
        transport=base.transport,
        metrics=metrics,
    )
    # "Full" states per test come from the committed reduction-benchmark
    # baseline — the unreduced exploration is *not* re-run here.
    baseline = reduction_baseline() if reduction == "closure" else None
    rows = []
    ok = True
    diag_errors = 0
    diag_warnings = 0
    diag_by_test: Dict[str, List[str]] = {}
    for test in LITMUS_TESTS:
        report = analyse_program(test.build())
        diag_errors += len(report.errors)
        diag_warnings += len(report.warnings)
        if not report.clean():
            diag_by_test[test.name] = sorted(report.codes())
        verdict = run_litmus(test, engine=engine, use_cache=use_cache)
        ok &= verdict["verdict_ok"]
        row = {
            "name": verdict["name"],
            "verdict_ok": verdict["verdict_ok"],
            "states": verdict["states"],
            "weak_observed": verdict["weak_observed"],
            "cached": verdict["cached"],
            "reduction": reduction,
        }
        if not verdict["verdict_ok"]:
            # A forbidden-outcome violation embeds the witness schedule
            # in the JSON report (None for absence-only violations).
            row["witness"] = verdict.get("witness")
        if baseline is not None:
            row["full_states"] = baseline.get(test.name)
        rows.append(row)
    if engine.cache is not None:
        # Structured cache counts ride with the telemetry (the entry
        # count is a point-in-time reading, hence a gauge).
        cache_stats = engine.cache.stats()
        metrics.gauge_max("cache.entries", cache_stats["entries"])
    return {
        "ok": ok,
        "detail": rows,
        "metrics": metrics.snapshot(),
        "diagnostics": {
            "analysed": len(LITMUS_TESTS),
            "errors": diag_errors,
            "warnings": diag_warnings,
            "by_test": diag_by_test,
        },
    }


def _job_figures() -> Dict:
    from repro.figures.fig1 import EXPECTED_OUTCOMES as F1
    from repro.figures.fig1 import fig1_program
    from repro.figures.fig2 import EXPECTED_OUTCOMES as F2
    from repro.figures.fig2 import fig2_program
    from repro.figures.fig3 import fig3_outline
    from repro.figures.fig7 import EXPECTED_OUTCOMES as F7
    from repro.figures.fig7 import fig7_outline, fig7_program
    from repro.figures.mp_outline import mp_outline
    from repro.logic.owicki import check_proof_outline
    from repro.semantics.explore import explore

    rows = []

    def check(name: str, passed: bool, measured: str) -> None:
        rows.append({"check": name, "ok": bool(passed), "measured": measured})

    out1 = explore(fig1_program()).terminal_locals(("2", "r2"))
    check("figure-1", out1 == F1, repr(sorted(out1, key=repr)))
    out2 = explore(fig2_program()).terminal_locals(("2", "r2"))
    check("figure-2", out2 == F2, repr(sorted(out2, key=repr)))
    r3 = check_proof_outline(fig3_outline())
    check("figure-3-outline", r3.valid, f"{r3.obligations} obligations")
    rmp = check_proof_outline(mp_outline())
    check("mp-outline", rmp.valid, f"{rmp.obligations} obligations")
    out7 = explore(fig7_program()).terminal_locals(
        ("2", "rl"), ("2", "r1"), ("2", "r2")
    )
    check("figure-7", out7 == F7, repr(sorted(out7)))
    r7 = check_proof_outline(fig7_outline())
    check("lemma-4-outline", r7.valid, f"{r7.obligations} obligations")
    return {"ok": all(r["ok"] for r in rows), "detail": rows}


def _job_refine(impl: str) -> Dict:
    from repro.toolkit import verify_lock_implementation

    if impl == "seqlock":
        from repro.impls.seqlock import SEQLOCK_VARS as lib_vars
        from repro.impls.seqlock import seqlock_fill as fill
    elif impl == "ticketlock":
        from repro.impls.ticketlock import TICKETLOCK_VARS as lib_vars
        from repro.impls.ticketlock import ticketlock_fill as fill
    elif impl == "spinlock":
        from repro.impls.spinlock import SPINLOCK_VARS as lib_vars
        from repro.impls.spinlock import spinlock_fill as fill
    else:  # pragma: no cover - guarded by JOB_NAMES
        raise ValueError(f"unknown implementation: {impl}")

    report = verify_lock_implementation(fill, lib_vars)
    clients = [
        {
            "client": v.client,
            "ok": v.ok,
            "simulation_found": v.simulation.found,
            "relation_size": v.simulation.relation_size,
            "traces_ok": None if v.traces is None else bool(v.traces.refines),
        }
        for v in report.verdicts
    ]
    return {
        "ok": report.ok,
        "detail": {"implementation": report.implementation, "clients": clients},
    }


#: Version of the batch-report JSON layout.  2 added the ``meta`` block,
#: per-job ``metrics`` snapshots and the aggregated report ``metrics``
#: (the un-versioned original layout is retroactively 1); 3 added the
#: per-job ``diagnostics`` block (static-analysis summaries — populated
#: by the litmus battery, ``null`` for jobs that don't run the passes).
REPORT_SCHEMA = 3


def batch_meta(
    workers: int,
    use_cache: bool,
    reduction: str,
    jobs: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """The self-describing ``meta`` block of a batch JSON report:
    enough provenance that an archived report answers "what ran this,
    where, with which engine settings" without the shell history.

    ``jobs`` records the *effective* per-job reduction policy: the
    batch-level ``reduction`` applies to the litmus battery only, while
    the figure checks and refinement jobs always explore unreduced
    (see :func:`run_job`) — so an archived report states which policy
    produced each job's numbers instead of leaving the reader to infer
    the exception.
    """
    return {
        "schema": REPORT_SCHEMA,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "use_cache": use_cache,
        "reduction": reduction,
        "jobs": {
            name: {
                "reduction": reduction if name == "litmus" else "off",
            }
            for name in (jobs if jobs is not None else JOB_NAMES)
        },
        # Engine settings the jobs inherit from the environment.
        "engine_workers": int(os.environ.get("REPRO_WORKERS", "1") or "1"),
        "engine_backend": os.environ.get("REPRO_BACKEND", "pipeline")
        or "pipeline",
        # "auto" = resolved per run (shm where SharedMemory works).
        "engine_transport": os.environ.get("REPRO_TRANSPORT") or "auto",
    }


#: Registered job names, in default execution order.
JOB_NAMES = (
    "litmus",
    "figures",
    "refine-seqlock",
    "refine-ticketlock",
    "refine-spinlock",
)


@dataclass
class JobResult:
    """Verdict of one batch job."""

    name: str
    ok: bool
    elapsed: float
    detail: object = None
    error: Optional[str] = None
    #: Telemetry snapshot (``Metrics.snapshot()``) for jobs that run the
    #: exploration engine with a metrics sink — currently the litmus
    #: battery; None for the rest.
    metrics: Optional[Dict] = None
    #: Static-analysis summary for jobs that run the passes — the litmus
    #: battery reports ``{analysed, errors, warnings, by_test}`` (codes
    #: per non-clean test); None for the rest.
    diagnostics: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "elapsed": round(self.elapsed, 3),
            "detail": self.detail,
            "error": self.error,
            "metrics": self.metrics,
            "diagnostics": self.diagnostics,
        }


@dataclass
class BatchReport:
    """Aggregated verdicts of one batch run."""

    jobs: List[JobResult] = field(default_factory=list)
    workers: int = 1
    elapsed: float = 0.0
    #: Provenance block (:func:`batch_meta`); empty for hand-built
    #: reports.
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(j.ok for j in self.jobs)

    def aggregate_metrics(self) -> Optional[Dict]:
        """All jobs' telemetry merged into one snapshot (None when no
        job collected any)."""
        merged = Metrics()
        found = False
        for j in self.jobs:
            if j.metrics:
                merged.merge(j.metrics)
                found = True
        return merged.snapshot() if found else None

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "workers": self.workers,
            "elapsed": round(self.elapsed, 3),
            "meta": self.meta,
            "metrics": self.aggregate_metrics(),
            "jobs": [j.to_dict() for j in self.jobs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        lines = [f"{'job':20s} {'elapsed':>8s}  verdict"]
        for j in self.jobs:
            verdict = "OK" if j.ok else "FAIL"
            if j.error:
                verdict = f"ERROR ({j.error})"
            lines.append(f"{j.name:20s} {j.elapsed:7.2f}s  {verdict}")
        lines.append(
            f"batch {'PASS' if self.ok else 'FAIL'} "
            f"({len(self.jobs)} jobs, {self.workers} workers, "
            f"{self.elapsed:.2f}s)"
        )
        return "\n".join(lines)


def run_job(
    name: str, use_cache: bool = True, reduction: str = "closure"
) -> JobResult:
    """Execute one named job, capturing failures as a verdict.

    ``reduction`` applies to the litmus battery only: the figure checks
    enumerate proof outlines over intermediate configurations and the
    refinement jobs consume un-fused transition graphs, so both always
    explore with the reduction off (their internal call sites request
    it explicitly).
    """
    if name not in JOB_NAMES:
        raise ValueError(
            f"unknown job {name!r}; available: {', '.join(JOB_NAMES)}"
        )
    start = time.perf_counter()
    try:
        if name == "litmus":
            outcome = _job_litmus(use_cache, reduction)
        elif name == "figures":
            outcome = _job_figures()
        else:
            outcome = _job_refine(name.split("-", 1)[1])
    except Exception as exc:  # a crashing job fails the batch, not the runner
        return JobResult(
            name=name,
            ok=False,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return JobResult(
        name=name,
        ok=bool(outcome["ok"]),
        elapsed=time.perf_counter() - start,
        detail=outcome.get("detail"),
        metrics=outcome.get("metrics"),
        diagnostics=outcome.get("diagnostics"),
    )


def run_batch(
    jobs: Optional[Sequence[str]] = None,
    workers: int = 1,
    use_cache: bool = True,
    json_path: Optional[str] = None,
    reduction: str = "closure",
    trace=None,
) -> BatchReport:
    """Run ``jobs`` (default: all registered) with ``workers`` processes.

    ``workers == 1`` runs the jobs in-process, sequentially and
    deterministically; otherwise the jobs are distributed over a process
    pool.  When ``json_path`` is given the report is also written there.
    ``reduction`` selects the litmus battery's exploration policy (see
    :func:`run_job`).

    ``trace`` (a :class:`repro.obs.trace.TraceWriter`) receives
    ``batch.start``/``batch.job.start``/``batch.job.finish``/
    ``batch.finish`` lifecycle events.  All events are emitted from the
    coordinating process — the writer never crosses into the pool (it
    is not picklable), so under ``workers > 1`` job-start events mark
    submission and job-finish events completion-arrival order.
    """
    names = list(jobs) if jobs is not None else list(JOB_NAMES)
    for name in names:
        if name not in JOB_NAMES:
            raise ValueError(
                f"unknown job {name!r}; available: {', '.join(JOB_NAMES)}"
            )
    from repro.engine.core import _check_reduction

    _check_reduction(reduction)
    start = time.perf_counter()
    if trace is not None:
        trace.emit("batch.start", jobs=names, workers=workers)
    if workers > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.engine.parallel import _pool_context

        with ProcessPoolExecutor(
            max_workers=min(workers, len(names)),
            mp_context=_pool_context(),
        ) as pool:
            if trace is not None:
                for name in names:
                    trace.emit("batch.job.start", job=name)
            results = list(
                pool.map(
                    run_job,
                    names,
                    [use_cache] * len(names),
                    [reduction] * len(names),
                )
            )
            if trace is not None:
                for r in results:
                    trace.emit(
                        "batch.job.finish",
                        job=r.name,
                        ok=r.ok,
                        elapsed=r.elapsed,
                    )
    else:
        results = []
        for name in names:
            if trace is not None:
                trace.emit("batch.job.start", job=name)
            r = run_job(name, use_cache, reduction)
            results.append(r)
            if trace is not None:
                trace.emit(
                    "batch.job.finish", job=r.name, ok=r.ok, elapsed=r.elapsed
                )
    report = BatchReport(
        jobs=results,
        workers=workers,
        elapsed=time.perf_counter() - start,
        meta=batch_meta(workers, use_cache, reduction, names),
    )
    if trace is not None:
        trace.emit("batch.finish", ok=report.ok, elapsed=report.elapsed)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
    return report
