"""Configurations of the combined semantics (paper §3.2, §6.1).

A configuration is the 4-tuple ``Π = (P, ls, γ, β)``: per-thread
continuations, per-thread local states, the client component state and
the library component state.  Configurations are immutable and hashable;
the explorer identifies them up to canonical timestamp relabelling
(:mod:`repro.semantics.canon`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.lang.ast import Com
from repro.lang.expr import Value
from repro.lang.labels import pc_of
from repro.lang.program import Program
from repro.memory.initial import initial_states
from repro.memory.state import ComponentState
from repro.util.fmap import FMap


@dataclass(frozen=True)
class Config:
    """``(P, ls, γ, β)`` — one state of the combined transition system."""

    cmds: FMap  # tid -> Com (None = terminated, the paper's E(t) = ⊥)
    locals: FMap  # tid -> FMap(reg -> Value)
    gamma: ComponentState  # client component
    beta: ComponentState  # library component

    # -- serialisation -------------------------------------------------------
    def __reduce__(self):
        """Compact positional encoding of the four defining fields
        (:mod:`repro.memory.codec`): cached canonical keys (installed by
        :mod:`repro.semantics.canon`) are derived data and would bloat
        the sharded explorer's cross-process byte stream."""
        from repro.memory.codec import reduce_config

        return reduce_config(self)

    def __getstate__(self):
        """The defining fields only (pre-codec wire format — retained so
        old pickles load and the codec benchmark has its reference)."""
        return {
            "cmds": self.cmds,
            "locals": self.locals,
            "gamma": self.gamma,
            "beta": self.beta,
        }

    def __setstate__(self, state) -> None:
        for k, v in state.items():
            object.__setattr__(self, k, v)

    # -- inspection ----------------------------------------------------------
    def cmd(self, tid: str) -> Com:
        return self.cmds[tid]

    def local(self, tid: str, reg: str, default: Value = None) -> Value:
        return self.locals[tid].get(reg, default)

    def local_state(self, tid: str) -> FMap:
        return self.locals[tid]

    def is_terminal(self) -> bool:
        """All threads have terminated (``P = E = λt.⊥``)."""
        return all(c is None for c in self.cmds.values())

    def pc(self, tid: str, program: Program):
        """The proof-outline program counter of ``tid`` (see §5.3)."""
        return pc_of(self.cmds[tid], done_label=program.done_label_of(tid))

    # -- updates ---------------------------------------------------------------
    def with_thread(
        self,
        tid: str,
        cmd: Com,
        ls: FMap,
        gamma: ComponentState,
        beta: ComponentState,
    ) -> "Config":
        return Config(
            cmds=self.cmds.set(tid, cmd),
            locals=self.locals.set(tid, ls),
            gamma=gamma,
            beta=beta,
        )


def initial_config(program: Program) -> Config:
    """``Π_Init = (Prog, ls_Init, γ_Init, β_Init)``."""
    gamma, beta = initial_states(program)
    cmds = FMap({t: program.body_of(t) for t in program.tids})
    locals_ = FMap(
        {t: FMap(program.initial_locals_of(t)) for t in program.tids}
    )
    return Config(cmds=cmds, locals=locals_, gamma=gamma, beta=beta)
