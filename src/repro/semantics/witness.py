"""Witness extraction: shortest executions reaching a configuration.

``reachable`` answers *whether* a configuration exists;
:func:`find_path` additionally reconstructs a shortest execution — the
schedule (thread, component, action) that exhibits it.  This is what
turns a failed verification into an actionable counterexample: the
broken-lock benches print the exact interleaving through which a client
observes stale data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.program import Program
from repro.memory.actions import Action
from repro.semantics.canon import canonical_key
from repro.semantics.config import Config, initial_config
from repro.semantics.step import successors


@dataclass(frozen=True)
class WitnessStep:
    """One scheduled transition of a witness execution."""

    tid: str
    component: str  # 'C' or 'L'
    action: Optional[Action]  # None for silent steps
    config: Config  # configuration *after* the step

    def describe(self) -> str:
        act = "ǫ" if self.action is None else repr(self.action)
        return f"[{self.component}] {self.tid}: {act}"


@dataclass
class Witness:
    """A shortest execution from the initial configuration to a target."""

    initial: Config
    steps: List[WitnessStep]

    @property
    def final(self) -> Config:
        return self.steps[-1].config if self.steps else self.initial

    def __len__(self) -> int:
        return len(self.steps)

    def schedule(self) -> Tuple[str, ...]:
        """The thread schedule of the execution."""
        return tuple(s.tid for s in self.steps)

    def describe(self) -> str:
        lines = [f"witness execution ({len(self.steps)} steps):"]
        lines += [f"  {i + 1:2d}. {s.describe()}" for i, s in enumerate(self.steps)]
        return "\n".join(lines)


def find_path(
    program: Program,
    predicate: Callable[[Config], bool],
    max_states: int = 500_000,
) -> Optional[Witness]:
    """Shortest execution to a configuration satisfying ``predicate``.

    BFS with parent pointers over canonical states; ``None`` when no
    reachable configuration satisfies the predicate (within the cap).
    """
    init = initial_config(program)
    if predicate(init):
        return Witness(initial=init, steps=[])
    init_key = canonical_key(program, init)
    # key -> (parent_key, WitnessStep)
    parents: Dict[Tuple, Tuple[Optional[Tuple], Optional[WitnessStep]]] = {
        init_key: (None, None)
    }
    configs: Dict[Tuple, Config] = {init_key: init}
    queue = deque([(init_key, init)])
    while queue:
        key, cfg = queue.popleft()
        for tr in successors(program, cfg):
            tkey = canonical_key(program, tr.target)
            if tkey in parents:
                continue
            if len(parents) >= max_states:
                return None
            step = WitnessStep(
                tid=tr.tid,
                component=tr.component,
                action=tr.action,
                config=tr.target,
            )
            parents[tkey] = (key, step)
            configs[tkey] = tr.target
            if predicate(tr.target):
                return _rebuild(init, parents, tkey)
            queue.append((tkey, tr.target))
    return None


def _rebuild(init: Config, parents, target_key) -> Witness:
    steps: List[WitnessStep] = []
    key = target_key
    while True:
        parent_key, step = parents[key]
        if step is None:
            break
        steps.append(step)
        key = parent_key
    steps.reverse()
    return Witness(initial=init, steps=steps)


def find_terminal_witness(
    program: Program,
    predicate: Callable[[Config], bool],
    max_states: int = 500_000,
) -> Optional[Witness]:
    """Shortest execution to a *terminal* configuration satisfying
    ``predicate`` — the usual shape for weak-behaviour witnesses."""
    return find_path(
        program,
        lambda cfg: cfg.is_terminal() and predicate(cfg),
        max_states=max_states,
    )
