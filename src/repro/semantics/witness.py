"""Witness extraction: shortest executions reaching a configuration.

``reachable`` answers *whether* a configuration exists; a *witness*
additionally carries a schedule — the (thread, component, action)
sequence — that exhibits it.  This is what turns a failed verification
into an actionable counterexample: the broken-lock benches print the
exact interleaving through which a client observes stale data.

Two producers live here:

* :func:`find_path` — the naive reference: a sequential, unreduced BFS
  that stores a full configuration per state.  It is deliberately
  simple (the property suite checks engine witnesses against its
  shortest lengths) and expensive (the witness benchmark measures how
  much).
* :func:`reconstruct_witness` — rebuilds a concrete execution from the
  predecessor graph an engine exploration records when asked
  (``track_parents=True``): per state only the *parent key* and the
  ``(tid, component, action)`` edge label, no stored configurations.
  The path is re-derived by replaying forward through the raw
  :func:`~repro.semantics.step.successors` relation, so every returned
  step is a real transition by construction; under
  ``reduction="closure"`` each fused macro-step is re-expanded into its
  concrete visible-step-plus-silent-suffix schedule.
  :meth:`repro.engine.ExplorationEngine.find_witness` is the end-to-end
  entry point.

Truncation contract (shared with ``reachable``/``assert_invariant``):
a search that hits ``max_states`` has inspected only part of the state
space, so "no witness found" is *inconclusive*, not "unreachable" —
these functions raise :class:`~repro.util.errors.VerificationError`
instead of returning ``None`` in that case.  ``None`` always means the
search was exhaustive.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.program import Program
from repro.memory.actions import Action
from repro.semantics.canon import canonical_key
from repro.semantics.config import Config, initial_config
from repro.semantics.step import successors, thread_successors
from repro.util.errors import VerificationError


@dataclass(frozen=True)
class WitnessStep:
    """One scheduled transition of a witness execution."""

    tid: str
    component: str  # 'C' or 'L'
    action: Optional[Action]  # None for silent steps
    config: Config  # configuration *after* the step

    def describe(self) -> str:
        act = "ε" if self.action is None else repr(self.action)
        return f"[{self.component}] {self.tid}: {act}"


@dataclass
class Witness:
    """A shortest execution from the initial configuration to a target."""

    initial: Config
    steps: List[WitnessStep]

    @property
    def final(self) -> Config:
        return self.steps[-1].config if self.steps else self.initial

    def __len__(self) -> int:
        return len(self.steps)

    def schedule(self) -> Tuple[str, ...]:
        """The thread schedule of the execution."""
        return tuple(s.tid for s in self.steps)

    def visible_steps(self) -> int:
        """Number of non-silent steps (the macro-length under closure)."""
        return sum(1 for s in self.steps if s.action is not None)

    def describe(self) -> str:
        lines = [f"witness execution ({len(self.steps)} steps):"]
        lines += [f"  {i + 1:2d}. {s.describe()}" for i, s in enumerate(self.steps)]
        return "\n".join(lines)


def find_path(
    program: Program,
    predicate: Callable[[Config], bool],
    max_states: int = 500_000,
) -> Optional[Witness]:
    """Shortest execution to a configuration satisfying ``predicate``.

    BFS with parent pointers over canonical states; ``None`` only when
    an *exhaustive* search found no reachable configuration satisfying
    the predicate.  A search truncated by ``max_states`` without a
    witness raises :class:`VerificationError` instead — truncated means
    inconclusive, and returning ``None`` would let a partial search
    masquerade as a proof of unreachability (the same contract as
    ``reachable``/``assert_invariant``).  The predicate is tested on
    every generated successor *before* any cap bookkeeping, so a
    witness sitting exactly at the ``max_states`` boundary (or later in
    the same successor list) is still found and returned.

    This is the config-storing reference implementation; prefer
    :meth:`repro.engine.ExplorationEngine.find_witness` for anything
    large — it rides the engine (sharded workers, ε-closure reduction)
    and tracks predecessors by key + edge label instead of storing a
    configuration per state.
    """
    init = initial_config(program)
    if predicate(init):
        return Witness(initial=init, steps=[])
    init_key = canonical_key(program, init)
    # key -> (parent_key, WitnessStep)
    parents: Dict[Tuple, Tuple[Optional[Tuple], Optional[WitnessStep]]] = {
        init_key: (None, None)
    }
    queue = deque([(init_key, init)])
    truncated = False
    while queue:
        key, cfg = queue.popleft()
        for tr in successors(program, cfg):
            tkey = canonical_key(program, tr.target)
            if tkey in parents:
                continue
            step = WitnessStep(
                tid=tr.tid,
                component=tr.component,
                action=tr.action,
                config=tr.target,
            )
            # Predicate before the cap bail: a witness discovered at (or
            # beyond) the max_states boundary is still a witness.
            if predicate(tr.target):
                parents[tkey] = (key, step)
                return _rebuild(init, parents, tkey)
            if len(parents) >= max_states:
                # Stop recording states but keep testing the remaining
                # successors (and the rest of the queued frontier).
                truncated = True
                continue
            parents[tkey] = (key, step)
            queue.append((tkey, tr.target))
    if truncated:
        raise VerificationError(
            f"no witness within the first {max_states} states and the "
            "search was truncated, inconclusive — unreachability not "
            "established; raise max_states"
        )
    return None


def _rebuild(init: Config, parents, target_key) -> Witness:
    steps: List[WitnessStep] = []
    key = target_key
    while True:
        parent_key, step = parents[key]
        if step is None:
            break
        steps.append(step)
        key = parent_key
    steps.reverse()
    return Witness(initial=init, steps=steps)


def find_terminal_witness(
    program: Program,
    predicate: Callable[[Config], bool],
    max_states: int = 500_000,
) -> Optional[Witness]:
    """Shortest execution to a *terminal* configuration satisfying
    ``predicate`` — the usual shape for weak-behaviour witnesses.

    Shares :func:`find_path`'s truncation contract: raises on a capped
    inconclusive search rather than returning ``None``."""
    return find_path(
        program,
        lambda cfg: cfg.is_terminal() and predicate(cfg),
        max_states=max_states,
    )


# ---------------------------------------------------------------------------
# engine-side reconstruction: predecessor graph -> concrete execution
# ---------------------------------------------------------------------------

#: A predecessor entry: ``(parent_key, tid, component, action)``; the
#: initial key maps to None.  Keys are whatever the exploration used for
#: state identity — canonical keys sequentially, stable digests sharded.
ParentGraph = Dict[object, Optional[Tuple]]


def reconstruct_witness(
    program: Program,
    parents: ParentGraph,
    target_key,
    key_of: Callable[[Config], object],
    reduction: str = "off",
) -> Witness:
    """Rebuild the concrete execution reaching ``target_key`` from the
    predecessor graph of an engine exploration.

    ``parents`` maps each explored state key to ``(parent_key, tid,
    component, action)`` — the edge that first discovered it — and the
    initial key to ``None``; ``key_of`` must be the exploration's own
    state-identity function (canonical key for the sequential backend,
    stable digest of it for the sharded one).  Under a breadth-first
    exploration the first-discovery edge is a shortest edge, so the
    reconstructed path is shortest in (macro-)steps.

    The parent chain stores no configurations: the path is re-derived
    by replaying forward from the initial configuration through the raw
    :func:`~repro.semantics.step.successors` relation, matching each
    recorded edge by thread, action and target key.  Under
    ``reduction="closure"`` each recorded macro-edge is re-expanded
    into its concrete schedule — the visible transition followed by the
    stepping thread's fused silent suffix (and the initial ε-closure is
    emitted as leading silent steps) — so a closure-fast search still
    yields a step-exact, unreduced-replayable witness.  Every returned
    step is an element of ``successors`` at its point by construction.
    """
    from repro.semantics.reduce import get_strategy

    # Policies built on the closed macro-step system ("closure" and
    # "dpor" — the strategy's closure_expansion flag) record macro-edges
    # that must be re-expanded through the ε-closure replay below.
    closure = get_strategy(reduction).closure_expansion

    # Walk the predecessor chain back to the exploration's initial key.
    edges: List[Tuple] = []
    key = target_key
    while True:
        entry = parents.get(key)
        if entry is None:
            if key in parents:
                break  # the initial key
            raise VerificationError(
                "witness reconstruction failed: target key is not in the "
                "exploration's predecessor graph"
            )
        parent_key, tid, component, action = entry
        edges.append((tid, component, action, key))
        key = parent_key
    edges.reverse()

    init = initial_config(program)
    cfg = init
    steps: List[WitnessStep] = []
    if closure:
        # The engine ε-closed the initial configuration before
        # exploring; emit that closure as concrete leading silent steps.
        for tid in program.tids:
            sub, cfg = _close_tid_steps(program, cfg, tid)
            steps += sub
    if key_of(cfg) != key:
        raise VerificationError(
            "witness reconstruction failed: the predecessor chain does "
            "not start at the initial configuration (key function or "
            "reduction policy mismatch with the exploration)"
        )
    for tid, component, action, node_key in edges:
        sub, cfg = _expand_edge(
            program, cfg, tid, component, action, node_key, key_of, closure
        )
        steps += sub
    return Witness(initial=init, steps=steps)


def replay_witness(program: Program, witness: Witness) -> Config:
    """Replay ``witness`` step by step through the raw (unreduced)
    ``successors`` relation, checking every step is a real transition;
    returns the final configuration.  Raises :class:`VerificationError`
    on the first step that is not a successor — the validation the
    property suite runs on every engine-reconstructed witness."""
    cfg = witness.initial
    for i, step in enumerate(witness.steps):
        for tr in successors(program, cfg):
            if (
                tr.tid == step.tid
                and tr.component == step.component
                and tr.action == step.action
                and tr.target == step.config
            ):
                break
        else:
            raise VerificationError(
                f"witness step {i + 1} ({step.describe()}) is not a "
                "successor of the configuration it is scheduled from"
            )
        cfg = step.config
    return cfg


def _silent_transition(program: Program, cfg: Config, tid: str):
    """Thread ``tid``'s (unique) pending silent transition, or None."""
    for tr in thread_successors(program, cfg, tid):
        if tr.action is None:
            return tr
        return None  # visible-headed: no silent step pending
    return None


def _close_tid_steps(
    program: Program, cfg: Config, tid: str
) -> Tuple[List[WitnessStep], Config]:
    """Concrete silent steps realising ``close_thread(cfg, tid)``.

    Mirrors the reduction layer's closure exactly — including its
    divergence cut-off — by stepping until the thread's continuation
    and locals match the closed image."""
    from repro.semantics.reduce import close_thread

    closed = close_thread(cfg, tid)
    steps: List[WitnessStep] = []
    while (
        cfg.cmds[tid] != closed.cmds[tid]
        or cfg.locals[tid] != closed.locals[tid]
    ):
        tr = _silent_transition(program, cfg, tid)
        if tr is None:
            raise VerificationError(
                f"ε-closure replay diverged from close_thread on {tid!r}"
            )
        steps.append(WitnessStep(tid, tr.component, None, tr.target))
        cfg = tr.target
    return steps, cfg


def _expand_edge(
    program: Program,
    cfg: Config,
    tid: str,
    component: str,
    action: Optional[Action],
    node_key,
    key_of: Callable[[Config], object],
    closure: bool,
) -> Tuple[List[WitnessStep], Config]:
    """Concretise one recorded (macro-)edge from ``cfg``.

    Candidates are the raw successors matching the edge label; the
    right one is identified by its (closed) target key — action labels
    alone are ambiguous under placement nondeterminism, keys are not.
    """
    for tr in successors(program, cfg):
        if (
            tr.tid != tid
            or tr.component != component
            or tr.action != action
        ):
            continue
        if not closure:
            if key_of(tr.target) == node_key:
                return (
                    [WitnessStep(tid, component, action, tr.target)],
                    tr.target,
                )
            continue
        steps = [WitnessStep(tid, component, action, tr.target)]
        sub, cur = _close_tid_steps(program, tr.target, tid)
        if key_of(cur) == node_key:
            return steps + sub, cur
    raise VerificationError(
        f"witness replay failed: no successor of thread {tid!r} with "
        f"action {action!r} reaches the recorded state — predecessor "
        "graph and semantics disagree"
    )
