"""Canonical configuration keys (timestamp rank normalisation).

Two configurations that differ only in the rational values of their
timestamps — not in the relative order of operations — describe the same
abstract state: timestamps encode *per-variable* modification order, and
every comparison the semantics performs (``Obs``, the ``⊗`` merge,
``maxTS``, ``last``) is between operations on the same variable.
Cross-variable timestamp relationships are semantically irrelevant, so
the canonical key replaces each timestamp by its rank *within its
(component, variable) group*.  This is strictly stronger than a global
ranking: two interleavings that produce the same per-variable orders but
different cross-variable numeric interleavings collapse to one state.

Rank-from-index encoding
------------------------
Each component state already maintains its operations sorted by
timestamp per variable (:attr:`~repro.memory.state.ComponentState.index`),
so an operation's canonical rank is simply its *position* in that
sequence — read off the index in O(1) per operation instead of
rebuilding per-variable ``rank_map``s from an unsorted ``ops`` scan for
every visited state.  Because the client/library variable partition
makes every operation belong to exactly one component's index, one
combined ``op → rank`` table resolves the cross-component references in
modification views without consulting the program's partition, and the
resulting key is a pure function of the configuration — it is therefore
cached on the (immutable) configuration, so BFS dedup, witness search
and the refinement machinery rank-encode each state at most once.
Deterministic orderings inside the key use cheap *structural* sort keys
(action fields and integer ranks), not ``repr`` of whole encodings.

Soundness: an order-isomorphic per-variable relabelling is a bisimulation
— the enabled transitions, placement choices and view updates of the
semantics are invariant under it (the numeric value chosen by ``fresh``
never feeds back into behaviour, only its per-variable position does).
The property suite cross-validates this by comparing terminal outcomes
of canonical vs raw exploration over random programs, and by checking
the indexed encoding against a retained naive reference implementation
(:mod:`repro.memory.naive`) over the litmus catalog.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lang.program import Program
from repro.memory.actions import Op
from repro.memory.state import ComponentState
from repro.semantics.config import Config


def _enc_table(state: ComponentState) -> Dict[Op, Tuple]:
    """``op -> (action, rank)``: each operation's canonical encoding,
    with the rank read directly off its per-variable index position.
    The single rank-derivation walk shared by the canonical keys and the
    refinement projection (:mod:`repro.refinement.traces`).

    A pure function of the (immutable) state, so the table is cached on
    it: component states are shared across many configurations — a step
    of one component leaves the other's state object untouched — and
    the unchanged component's ranks are then read back instead of
    re-derived for every successor.  Callers must treat the returned
    table as read-only.
    """
    cached = state.__dict__.get("_enc_table")
    if cached is not None:
        return cached
    enc: Dict[Op, Tuple] = {}
    for seq, _ts in state.index.values():
        for i, op in enumerate(seq):
            enc[op] = (op.act, i)
    object.__setattr__(state, "_enc_table", enc)
    return enc


def _enc_state(
    state: ComponentState, own: Dict[Op, Tuple], other: Dict[Op, Tuple]
) -> Tuple:
    """Encode one component under its own ``op -> (action, rank)``
    table plus the other component's (modification views span both).

    All orderings inside the encoding are *structural*: operations are
    emitted by walking the per-variable index in (variable name, rank)
    order — already deterministic, so the modification-view sequence
    needs no sort at all (dom(mview) = ops), let alone the former
    ``repr``-lexicographic one; view and thread-view entries come from
    the maps' cached natural-order item tuples.  The two tables are
    consulted without merging them into a throwaway combined dict:
    ``ops``/``tview``/``cvd`` entries are own-component by invariant,
    and only view entries can fall through to ``other``.  An encoding
    that never fell through is a pure function of the state and is
    cached on it.
    """
    cached = state.__dict__.get("_enc_key")
    if cached is not None:
        return cached
    ops = []
    mview_items = []
    mv = state.mview
    index = state.index
    own_get = own.get
    foreign = False
    for var in sorted(index):
        for op in index[var][0]:
            e = own[op]
            ops.append(e)
            view = mv.get(op)
            if view is not None:
                enc_view = []
                for x, o in view.items_ordered():
                    eo = own_get(o)
                    if eo is None:
                        eo = other[o]
                        foreign = True
                    enc_view.append((x, eo))
                mview_items.append((e, tuple(enc_view)))
    tview = tuple(
        (key, own[op]) for key, op in state.tview.items_ordered()
    )
    cvd = frozenset(own[op] for op in state.cvd)
    key = (frozenset(ops), tview, tuple(mview_items), cvd)
    if not foreign:
        # The encoding consulted only this component's own rank table —
        # it is then a pure function of the (immutable) state and is
        # cached on it, like the table itself.  Encodings with
        # cross-component view references stay per-call: they depend on
        # the partner state's ranks too.
        object.__setattr__(state, "_enc_key", key)
    return key


def canonical_key(program: Program, cfg: Config) -> Tuple:
    """A hashable key identifying ``cfg`` up to per-variable timestamp
    relabelling.

    The key is a pure function of the configuration (the variable
    partition resolves itself through the per-component indices), so it
    is computed once and cached on ``cfg``; ``program`` is retained for
    API stability.
    """
    cached = cfg.__dict__.get("_canonical_key")
    if cached is not None:
        return cached
    genc = _enc_table(cfg.gamma)
    benc = _enc_table(cfg.beta)

    cmds = cfg.cmds.items_ordered()
    locals_ = tuple(
        (tid, ls.items_sorted()) for tid, ls in cfg.locals.items_ordered()
    )
    key = (
        cmds,
        locals_,
        _enc_state(cfg.gamma, genc, benc),
        _enc_state(cfg.beta, benc, genc),
    )
    object.__setattr__(cfg, "_canonical_key", key)
    return key


def client_state_key(program: Program, cfg: Config) -> Tuple:
    """Canonical key of the *client-observable* part of a configuration.

    Used by the refinement machinery (paper §6.1): client-projected local
    states plus the canonicalised client component.  Library registers
    (``LVar_L``) are excluded from local states.  Cached per
    configuration (the library-register set is a fixture of the program
    the configuration belongs to).
    """
    cached = cfg.__dict__.get("_client_state_key")
    if cached is not None:
        return cached
    enc = _enc_table(cfg.gamma)
    lib_regs = program.lib_registers()

    gamma = cfg.gamma
    ops = frozenset(enc[op] for op in gamma.ops)
    tview = tuple(
        (key, enc[op]) for key, op in gamma.tview.items_ordered()
    )
    cvd = frozenset(enc[op] for op in gamma.cvd)
    locals_ = tuple(
        (
            tid,
            tuple(
                sorted(
                    (r, v) for r, v in ls.items() if r not in lib_regs
                )
            ),
        )
        for tid, ls in cfg.locals.items_ordered()
    )
    key = (locals_, ops, tview, cvd)
    object.__setattr__(cfg, "_client_state_key", key)
    return key
